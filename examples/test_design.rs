//! The paper's Fig. 17 workflow, end to end: design load-test points with
//! Chebyshev Nodes, run the (simulated) load tests, interpolate the
//! measured service demands, and predict with MVASD — then check how few
//! tests you could have gotten away with.
//!
//! ```sh
//! cargo run --release --example test_design
//! ```

use mvasd_suite::core::accuracy::compare_solution;
use mvasd_suite::core::designer::SamplingStrategy;
use mvasd_suite::core::pipeline::PredictionWorkflow;
use mvasd_suite::testbed::apps::jpetstore;
use mvasd_suite::testbed::campaign::{run_campaign, CampaignConfig};

fn main() {
    let app = jpetstore::model();
    let cfg = CampaignConfig {
        test_duration: 400.0,
        ..CampaignConfig::default()
    };

    // Ground truth to score against: the paper's standard levels.
    let reference = run_campaign(&app, &jpetstore::STANDARD_LEVELS, &cfg).expect("campaign");

    println!("Fig. 17 workflow on JPetStore, design interval [1, 300]:");
    for test_points in [3usize, 5, 7] {
        // Step 1 — design the load-test points.
        let workflow = PredictionWorkflow {
            strategy: SamplingStrategy::Chebyshev,
            test_points,
            range: jpetstore::CHEBYSHEV_RANGE,
            ..PredictionWorkflow::default()
        };
        let levels = workflow.design().expect("design");

        // Step 2 — run the load tests (one simulated test per level).
        let campaign = run_campaign(&app, &levels, &cfg).expect("campaign");

        // Step 3 — interpolate demands + MVASD.
        let prediction = workflow
            .predict(&campaign.to_demand_samples(), 300)
            .expect("solver");

        let report = compare_solution(
            &format!("Chebyshev {test_points}"),
            &prediction,
            &reference.levels(),
            &reference.throughputs(),
            &reference.cycle_times(),
        )
        .expect("deviation");
        println!(
            "  {} load tests at {:?}\n    -> throughput deviation {:.2} %, cycle-time deviation {:.2} %",
            levels.len(),
            levels,
            report.throughput_mean_pct,
            report.cycle_mean_pct
        );
    }
    println!("\nEven 3 well-placed tests predict the whole curve (paper Fig. 16).");
}
