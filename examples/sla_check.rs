//! SLA validation — the paper's Section 1 example contracts: "with 100
//! users concurrently accessing, the response time should be less than 1
//! second per page; the maximum CPU utilization with 500 concurrent users
//! should be less than 50 %." This example measures a deployment once,
//! then verifies such clauses analytically at populations that were never
//! load-tested.
//!
//! ```sh
//! cargo run --release --example sla_check
//! ```

use mvasd_suite::core::algorithm::mvasd;
use mvasd_suite::core::profile::{DemandAxis, InterpolationKind, ServiceDemandProfile};
use mvasd_suite::core::solver::MvasdSolver;
use mvasd_suite::queueing::mva::{run_until, ClosedSolver, StopCondition, StopReason};
use mvasd_suite::testbed::apps::vins;
use mvasd_suite::testbed::campaign::{run_campaign, CampaignConfig};

type ClauseCheck = Box<dyn Fn(&mvasd_suite::queueing::mva::MvaSolution) -> (bool, String)>;

struct Clause {
    text: &'static str,
    check: ClauseCheck,
}

fn main() {
    let app = vins::model();
    let campaign = run_campaign(
        &app,
        &[1, 20, 60, 120, 250],
        &CampaignConfig {
            test_duration: 400.0,
            ..CampaignConfig::default()
        },
    )
    .expect("campaign");
    let profile = ServiceDemandProfile::from_samples(
        &campaign.to_demand_samples(),
        InterpolationKind::CubicNotAKnot,
        DemandAxis::Concurrency,
    )
    .expect("profile");
    let prediction = mvasd(&profile, 500).expect("solver");

    let db_cpu = campaign.station_index("db-cpu").expect("station");
    let db_disk = campaign.station_index("db-disk").expect("station");

    let clauses = vec![
        Clause {
            text: "R(100 users) < 1 s per page",
            check: Box::new(move |sol| {
                let r = sol.at(100).unwrap().response;
                (r < 1.0, format!("predicted R = {r:.3} s"))
            }),
        },
        Clause {
            text: "DB CPU utilization at 500 users < 50 %",
            check: Box::new(move |sol| {
                let u = sol.at(500).unwrap().stations[db_cpu].utilization;
                (u < 0.5, format!("predicted U = {:.1} %", u * 100.0))
            }),
        },
        Clause {
            text: "DB disk utilization at 500 users < 95 %",
            check: Box::new(move |sol| {
                let u = sol.at(500).unwrap().stations[db_disk].utilization;
                (u < 0.95, format!("predicted U = {:.1} %", u * 100.0))
            }),
        },
        Clause {
            text: "throughput at 150 users >= 90 pages/s",
            check: Box::new(|sol| {
                let x = sol.at(150).unwrap().throughput;
                (x >= 90.0, format!("predicted X = {x:.1} pages/s"))
            }),
        },
    ];

    println!("SLA validation for VINS (fitted from 5 load tests, checked to N=500):\n");
    let mut all_ok = true;
    for clause in &clauses {
        let (ok, detail) = (clause.check)(&prediction);
        all_ok &= ok;
        println!(
            "  [{}] {:<45} {}",
            if ok { "PASS" } else { "FAIL" },
            clause.text,
            detail
        );
    }
    println!(
        "\n{}",
        if all_ok {
            "All clauses hold under the fitted model."
        } else {
            "Some clauses FAIL — renegotiate or upgrade before deployment."
        }
    );

    // The inverse question — "how many users until the 1 s clause breaks?"
    // — streams the population sweep and stops at the first violation,
    // rather than solving all 500 populations and scanning afterwards.
    let solver = MvasdSolver::new(profile);
    let mut iter = solver.start().expect("iterator");
    let outcome = run_until(
        iter.as_mut(),
        &[StopCondition::SlaResponseTime { max_response: 1.0 }],
        500,
    )
    .expect("streamed sweep");
    match &outcome.reason {
        StopReason::Met(_) => println!(
            "\nCapacity limit: R first exceeds 1 s at N = {} \
             (answered in {} population steps instead of 500).",
            outcome.solution.last().n,
            outcome.steps
        ),
        StopReason::PopulationCap => {
            println!("\nR stays under 1 s through N = 500.")
        }
    }
}
