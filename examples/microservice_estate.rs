//! Hierarchical modeling of a microservice estate: build a tiered
//! topology, collapse each subsystem into a Norton flow-equivalent
//! server, and solve a 62-station model through a 5-station root — then
//! check the aggregation against the flat exact solve it replaces.
//!
//! ```sh
//! cargo run --release --example microservice_estate
//! ```

use std::sync::Arc;

use mvasd_suite::queueing::hierarchy::{
    AggregationOptions, HierarchicalNetwork, HierarchicalSolver, NetworkNode, ProfileCache,
    Subsystem,
};
use mvasd_suite::queueing::mva::{ClosedSolver, ConvolutionSolver};
use mvasd_suite::queueing::network::Station;

/// One microservice: a contention-scaled 4-way CPU, a disk, and a LAN
/// hop. `mult` spreads the demands so each tier has a clear internal
/// bottleneck (profiles then plateau fast under truncation).
fn service(tier: &str, idx: usize, tier_mult: f64) -> NetworkNode {
    let mult = tier_mult * 1.15f64.powi(idx as i32);
    let name = format!("{tier}-svc{idx}");
    Subsystem::new(
        &name,
        vec![
            // Effective-core curve: 4 cores scale to ~3.2 under contention.
            Station::load_dependent(
                &format!("{name}-cpu"),
                1.0,
                0.020 * mult,
                vec![1.0, 1.9, 2.7, 3.2],
            )
            .into(),
            Station::queueing(&format!("{name}-disk"), 1, 1.0, 0.004 * mult).into(),
            Station::delay(&format!("{name}-lan"), 1.0, 0.008).into(),
        ],
    )
    .into()
}

fn tier(name: &str, services: usize, tier_mult: f64) -> NetworkNode {
    Subsystem::new(
        name,
        (0..services).map(|i| service(name, i, tier_mult)).collect(),
    )
    .into()
}

fn main() {
    // Three tiers of microservices behind two load balancers: 62 leaf
    // stations, but the solved root model only ever sees 5 (2 stations +
    // 3 flow-equivalent servers). web and app share a hardware profile,
    // so their aggregation profiles are computed once and shared.
    let net = HierarchicalNetwork::new(
        vec![
            Station::queueing("ingress-lb", 1, 1.0, 0.001).into(),
            Station::queueing("egress-lb", 1, 1.0, 0.001).into(),
            tier("web", 8, 1.0),
            tier("app", 8, 1.0),
            tier("db", 4, 1.4),
        ],
        1.0,
    )
    .expect("valid estate");
    let leaves = net.leaf_count();

    // Aggregated solve: subsystem throughput profiles are truncated once
    // they plateau (rel. increment < 1e-6), so deep populations cost only
    // the root model. The profile cache is shared across solves the way
    // `ScenarioSweep::over_hierarchy` shares it across scenarios.
    let cache = Arc::new(ProfileCache::new());
    let solver = HierarchicalSolver::with_options(net.clone(), AggregationOptions::truncated(1e-6))
        .with_cache(cache.clone());
    let agg = solver.solve(300).expect("aggregated solve");

    // The flat exact reference: the identical 62-station product-form
    // network, solved station-by-station through log-domain convolution.
    let flat = ConvolutionSolver::new(net.flatten())
        .solve(300)
        .expect("flat exact solve");

    println!(
        "{leaves}-station estate, {} isolation solves ({} shared via cache)\n",
        cache.stats().solves,
        cache.stats().hits
    );
    println!(
        "{:>6} {:>14} {:>14} {:>16}",
        "users", "X (req/s)", "R (s)", "rel err vs flat"
    );
    for n in [1usize, 25, 50, 100, 200, 300] {
        let pa = agg.at(n).expect("in range");
        let pf = flat.at(n).expect("in range");
        let rel = (pa.throughput - pf.throughput).abs() / pf.throughput;
        println!(
            "{:>6} {:>14.2} {:>14.4} {:>15.2e}",
            n, pa.throughput, pa.response, rel
        );
    }

    // Per-leaf detail survives aggregation: queue lengths are
    // disaggregated back through each subsystem's isolation marginals.
    let p = agg.at(300).expect("in range");
    let (hot_idx, hot) = p
        .stations
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.queue.total_cmp(&b.1.queue))
        .expect("non-empty");
    println!(
        "\nbottleneck leaf at N=300: {} (queue {:.1}, utilization {:.1}%)",
        agg.station_names[hot_idx],
        hot.queue,
        hot.utilization * 100.0
    );
}
