//! Tracing a capacity-planning run — the observability layer end to end.
//!
//! Installs a live [`Collector`], runs the paper's workflow against the
//! simulated VINS deployment (measurement campaign → fitted demand profile →
//! streamed SLA query → what-if scenario sweep), then writes everything the
//! recorder saw as a Chrome `trace_event` file loadable in
//! `chrome://tracing` or <https://ui.perfetto.dev>. The emitted JSON is
//! re-parsed and sanity-checked before exiting, so CI can treat a zero exit
//! status as "the trace is valid".
//!
//! ```sh
//! cargo run --release --example trace_capacity [TRACE_PATH]
//! ```

use std::process::ExitCode;
use std::sync::Arc;

use mvasd_suite::core::sweep::{Scenario, ScenarioSweep};
use mvasd_suite::obsv;
use mvasd_suite::obsv::json::{parse, Json};
use mvasd_suite::queueing::mva::{run_until, ClosedSolver, StopCondition};
use mvasd_suite::testbed::apps::vins;
use mvasd_suite::testbed::campaign::{run_campaign, CampaignConfig};

fn main() -> ExitCode {
    let trace_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "trace_capacity.json".to_string());

    let collector = Arc::new(obsv::Collector::new());
    obsv::install(collector.clone());

    // Step 1 — measure: a small load-test campaign on the simulated lab.
    // Campaign spans tag each worker with queue-wait vs execute time.
    let app = vins::model();
    let campaign = run_campaign(
        &app,
        &[1, 50, 150, 300],
        &CampaignConfig {
            test_duration: 200.0,
            ..CampaignConfig::default()
        },
    )
    .expect("campaign on the calibrated VINS model");

    // Step 2 — ask the SLA question as a streamed query: per-step solver
    // spans plus `run_until.*` early-exit accounting land in the collector.
    let solver = mvasd_suite::queueing::mva::MultiserverMvaSolver::new(
        app.closed_network_at(1500.0).unwrap(),
    );
    let mut iter = solver.start().expect("iterator");
    let outcome = run_until(
        iter.as_mut(),
        &[StopCondition::SlaResponseTime { max_response: 2.0 }],
        1500,
    )
    .expect("streamed SLA query");
    println!(
        "SLA query answered in {} of 1500 population steps ({})",
        outcome.steps,
        outcome.reason.metric_name()
    );

    // Step 3 — what-if sweep with a warm replay: cache hits/misses and
    // warm-restart savings become live metrics.
    let mut sweep = ScenarioSweep::new(campaign.to_demand_samples()).default_cap(300);
    let scenarios = [
        Scenario::new("baseline"),
        Scenario::new("db-upgrade").scale_demands(0.85),
    ];
    sweep.run(&scenarios).expect("scenario sweep");
    sweep.run(&scenarios).expect("warm replay");
    let stats = sweep.stats();
    println!(
        "sweep: computed {} of {} demanded steps ({} cache hits)",
        stats.steps_computed, stats.steps_demanded, stats.cache_hits
    );

    // Snapshot, render, and self-validate the Chrome trace.
    obsv::uninstall();
    let snapshot = collector.snapshot();
    print!("{}", snapshot.summary_table());
    let trace = snapshot.to_chrome_trace();
    if let Err(e) = std::fs::write(&trace_path, &trace) {
        eprintln!("FAIL: cannot write {trace_path}: {e}");
        return ExitCode::FAILURE;
    }

    let doc = match parse(&trace) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("FAIL: emitted trace is not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    let events = match &doc {
        Json::Object(obj) => match obj.get("traceEvents") {
            Some(Json::Array(events)) => events,
            _ => {
                eprintln!("FAIL: trace has no traceEvents array");
                return ExitCode::FAILURE;
            }
        },
        _ => {
            eprintln!("FAIL: trace root is not an object");
            return ExitCode::FAILURE;
        }
    };
    // Every instrumented layer must have left spans behind.
    for needle in ["campaign.run", "campaign.level", "run_until", "sweep.run"] {
        let seen = events.iter().any(|e| match e {
            Json::Object(obj) => matches!(
                obj.get("name"),
                Some(Json::String(name)) if name.starts_with(needle)
            ),
            _ => false,
        });
        if !seen {
            eprintln!("FAIL: no trace event named {needle}");
            return ExitCode::FAILURE;
        }
    }
    println!(
        "wrote {trace_path}: {} trace events, valid JSON — load it in chrome://tracing",
        events.len()
    );
    ExitCode::SUCCESS
}
