//! Quickstart: predict throughput and response time of a 3-tier system
//! from service demands measured at a handful of concurrency levels.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mvasd_suite::core::accuracy::predictions_at;
use mvasd_suite::core::algorithm::mvasd;
use mvasd_suite::core::profile::{
    DemandAxis, DemandSamples, InterpolationKind, ServiceDemandProfile,
};

fn main() {
    // Suppose your load tests at N = 1, 50, 200 and 400 users measured the
    // following per-page service demands (seconds), extracted from
    // monitored utilizations with the Service Demand Law (D = U·C/X):
    let samples = DemandSamples {
        station_names: vec![
            "app-cpu".into(), // 8 cores
            "db-cpu".into(),  // 8 cores
            "db-disk".into(), // single spindle
        ],
        server_counts: vec![8, 8, 1],
        think_time: 1.0, // seconds between page requests
        levels: vec![1.0, 50.0, 200.0, 400.0],
        demands: vec![
            vec![0.0240, 0.0215, 0.0205, 0.0200], // falls as caches warm
            vec![0.0560, 0.0510, 0.0490, 0.0480],
            vec![0.0082, 0.0075, 0.0072, 0.0071],
        ],
    };

    // Interpolate the demand arrays (cubic splines, clamped outside the
    // sampled range) and run MVASD up to 600 concurrent users.
    let profile = ServiceDemandProfile::from_samples(
        &samples,
        InterpolationKind::CubicNotAKnot,
        DemandAxis::Concurrency,
    )
    .expect("valid samples");
    let prediction = mvasd(&profile, 600).expect("solver");

    println!(
        "{:>6} {:>14} {:>14} {:>12}",
        "users", "X (pages/s)", "R (s)", "db-disk util"
    );
    for n in [1u64, 50, 100, 200, 300, 400, 500, 600] {
        let p = prediction.at(n as usize).expect("in range");
        println!(
            "{:>6} {:>14.2} {:>14.4} {:>11.1}%",
            n,
            p.throughput,
            p.response,
            p.stations[2].utilization * 100.0
        );
    }

    let (xs, cycles) = predictions_at(&prediction, &[100, 300, 500]).expect("in range");
    println!("\npredicted throughput at 100/300/500 users: {xs:.1?}");
    println!("predicted cycle times  at 100/300/500 users: {cycles:.3?}");
    println!(
        "\nbottleneck ceiling: {:.1} pages/s (db-disk: 1 / {:.4})",
        1.0 / 0.0071,
        0.0071
    );
}
