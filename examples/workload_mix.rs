//! Multiclass workload mix — beyond the paper's single-class model.
//!
//! The paper analyzes the VINS *Renew Policy* workflow alone ("we make use
//! of single class models wherein the customers are assumed to be
//! indistinguishable"). Real deployments mix workflows: policy renewals
//! are heavy (database writes, premium computation), policy look-ups are
//! light reads, and API traffic hammers the system with almost no think
//! time. The class-aware streaming core answers questions the single-class
//! model cannot: *which* class breaks its SLA first as load ramps, and at
//! what mix?
//!
//! The workload streams along a population path through the class lattice
//! (one customer per step, classes interleaved proportionally), so SLA
//! checks run per class at every step and the sweep stops the moment the
//! first ceiling is crossed — no full-lattice solve needed.
//!
//! ```sh
//! cargo run --release --example workload_mix
//! ```

use mvasd_suite::queueing::mva::{
    run_until_classes, ClassStopReason, MomSolver, MulticlassIter, MulticlassStepper, StopCondition,
};
use mvasd_suite::testbed::apps::vins;

fn main() {
    // The calibrated three-class VINS mix (renew / browse / api) at a
    // total population of 150 users.
    let workload = vins::workload_mix(150).expect("workload");
    let names: Vec<&str> = workload.classes().iter().map(|c| c.name.as_str()).collect();
    println!(
        "VINS three-class mix, {} users total ({}):\n",
        workload.total_population(),
        workload
            .classes()
            .iter()
            .map(|c| format!("{} {}", c.population, c.name))
            .collect::<Vec<_>>()
            .join(", "),
    );

    // Stream the class-aware recursion and watch the mix evolve.
    println!(
        "{:>6} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "users", "X_renew", "R_renew", "X_browse", "R_browse", "X_api", "R_api"
    );
    let mut iter = MulticlassIter::new(&workload).expect("iterator");
    let mut last = None;
    while iter.steps_done() < iter.steps_total() {
        let point = iter.step_classes().expect("step");
        if point.step % 25 == 0 || point.step == workload.total_population() {
            println!(
                "{:>6} {:>10.2} {:>10.4} {:>10.2} {:>10.4} {:>10.2} {:>10.4}",
                point.step,
                point.classes[0].throughput,
                point.classes[0].response,
                point.classes[1].throughput,
                point.classes[1].response,
                point.classes[2].throughput,
                point.classes[2].response,
            );
        }
        last = Some(point);
    }
    let full = last.expect("at least one step");

    // Cross-check the corner against the Method of Moments backend: a
    // completely different recurrence (normalizing constants, log domain)
    // must land on the same numbers.
    let mom = MomSolver::new(workload.clone())
        .solve_classes()
        .expect("mom");
    let max_rel = full
        .classes
        .iter()
        .zip(&mom.classes)
        .map(|(a, b)| ((a.throughput - b.throughput) / b.throughput).abs())
        .fold(0.0f64, f64::max)
        .max(
            full.classes
                .iter()
                .zip(&mom.classes)
                .map(|(a, b)| ((a.response - b.response) / b.response).abs())
                .fold(0.0f64, f64::max),
        );
    println!(
        "\nMethod-of-Moments cross-check at the full mix: max relative\n\
         deviation {max_rel:.2e} across all class throughputs and responses."
    );
    assert!(max_rel < 1e-8, "backends disagree: {max_rel:e}");

    // Per-class SLAs: renewals must finish in 300 ms, API calls in 60 ms.
    // Stream a fresh ramp and stop the moment the first class breaks.
    let slas = [
        (
            0usize,
            StopCondition::SlaResponseTime { max_response: 0.30 },
        ),
        (
            2usize,
            StopCondition::SlaResponseTime { max_response: 0.06 },
        ),
    ];
    let mut iter = MulticlassIter::new(&workload).expect("iterator");
    let outcome = run_until_classes(&mut iter, &slas, usize::MAX).expect("sla run");
    match outcome.reason {
        ClassStopReason::Met { class, condition } => {
            let point = outcome.points.last().expect("points");
            println!(
                "\nRamping the mix, class `{}` breaks its SLA first ({:?})\n\
                 at {} mixed users ({}): R_{} = {:.4} s.",
                names[class],
                condition,
                point.step,
                point
                    .populations
                    .iter()
                    .zip(&names)
                    .map(|(n, c)| format!("{n} {c}"))
                    .collect::<Vec<_>>()
                    .join(", "),
                names[class],
                point.classes[class].response,
            );
        }
        ClassStopReason::PathExhausted => {
            println!("\nNo SLA broke over the whole ramp — the mix fits.");
        }
    }

    // Where does the contention land at the full mix?
    let mut worst = (0usize, 0.0f64);
    for (k, &u) in full.station_utilizations.iter().enumerate() {
        if u > worst.1 {
            worst = (k, u);
        }
    }
    println!(
        "\nAt the full mix the shared bottleneck is {} at {:.1} % utilization —\n\
         browse and API traffic ride the same disk the renewals need.",
        workload.station_names()[worst.0],
        worst.1 * 100.0
    );
}
