//! Multiclass workload mix — beyond the paper's single-class model.
//!
//! The paper analyzes the VINS *Renew Policy* workflow alone ("we make use
//! of single class models wherein the customers are assumed to be
//! indistinguishable"). Real deployments mix workflows: policy renewals are
//! heavy (database writes, premium computation) while policy look-ups are
//! light reads. The exact multiclass MVA extension answers questions the
//! single-class model cannot: how does adding read-only traffic change
//! renewal latency?
//!
//! ```sh
//! cargo run --release --example workload_mix
//! ```

use mvasd_suite::queueing::mva::{multiclass_mva, ClassSpec};
use mvasd_suite::queueing::network::StationKind;
use mvasd_suite::testbed::apps::vins;

fn main() {
    let app = vins::model();
    // Station kinds from the calibrated VINS model (16-core CPUs etc.).
    let kinds: Vec<StationKind> = app
        .stations
        .iter()
        .map(|s| StationKind::Queueing { servers: s.servers })
        .collect();

    // Renew Policy: the calibrated demands at a warm operating point.
    let renew_demands = app.demands_at(200.0);
    // Read Policy Details: mostly cache hits — 30 % of the CPU work, 15 %
    // of the disk work, same network footprint.
    let read_demands: Vec<f64> = app
        .stations
        .iter()
        .zip(renew_demands.iter())
        .map(|(s, &d)| {
            if s.name.ends_with("cpu") {
                d * 0.30
            } else if s.name.ends_with("disk") {
                d * 0.15
            } else {
                d
            }
        })
        .collect();

    println!("How does read-only traffic affect 120 renewal users?\n");
    println!(
        "{:>12} {:>14} {:>14} {:>14} {:>14}",
        "readers", "X_renew", "R_renew(s)", "X_read", "R_read(s)"
    );
    for readers in [0usize, 50, 100, 200, 400] {
        let classes = vec![
            ClassSpec {
                name: "renew-policy".into(),
                population: 120,
                think_time: 1.0,
                demands: renew_demands.clone(),
            },
            ClassSpec {
                name: "read-policy".into(),
                population: readers,
                think_time: 2.0, // browsing users think longer
                demands: read_demands.clone(),
            },
        ];
        let sol = multiclass_mva(&classes, &kinds).expect("solver");
        println!(
            "{:>12} {:>14.2} {:>14.4} {:>14.2} {:>14.4}",
            readers,
            sol.classes[0].throughput,
            sol.classes[0].response,
            sol.classes[1].throughput,
            sol.classes[1].response,
        );
    }

    // Where does the contention land?
    let classes = vec![
        ClassSpec {
            name: "renew-policy".into(),
            population: 120,
            think_time: 1.0,
            demands: renew_demands.clone(),
        },
        ClassSpec {
            name: "read-policy".into(),
            population: 400,
            think_time: 2.0,
            demands: read_demands,
        },
    ];
    let sol = multiclass_mva(&classes, &kinds).expect("solver");
    let mut worst = (0usize, 0.0f64);
    for (k, &u) in sol.station_utilizations.iter().enumerate() {
        if u > worst.1 {
            worst = (k, u);
        }
    }
    println!(
        "\nWith 400 readers the shared bottleneck is {} at {:.1} % utilization —\n\
         read traffic rides the same disk the renewals need.",
        app.stations[worst.0].name,
        worst.1 * 100.0
    );
}
