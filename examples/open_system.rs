//! Open-system prediction — the extension the paper's Section 7 motivates:
//! "generating splines with respect to increasing throughput can lead to
//! more tractable models when using open systems, where throughput can be
//! easier measured."
//!
//! An internet-facing deployment is driven by an arrival rate λ, not a
//! closed user population. We measure the (simulated) system at a few
//! operating points, index the extracted demands by *throughput*, and sweep
//! λ through the open model to find the response curve and the saturation
//! point.
//!
//! ```sh
//! cargo run --release --example open_system
//! ```

use mvasd_suite::core::open_system::predict_open;
use mvasd_suite::core::profile::{DemandAxis, InterpolationKind, ServiceDemandProfile};
use mvasd_suite::testbed::apps::vins;
use mvasd_suite::testbed::campaign::{run_campaign, CampaignConfig};

fn main() {
    // Measure the closed testbed at a few levels; what we keep is the
    // (throughput, demand) relation, which transfers to the open setting.
    let app = vins::model();
    let campaign = run_campaign(
        &app,
        &[1, 20, 60, 120, 250],
        &CampaignConfig {
            test_duration: 400.0,
            ..CampaignConfig::default()
        },
    )
    .expect("campaign");
    let samples = campaign.to_demand_samples_by_throughput();
    println!(
        "measured operating points (throughput axis): {:?}",
        samples
            .levels
            .iter()
            .map(|x| (x * 10.0).round() / 10.0)
            .collect::<Vec<_>>()
    );

    let profile = ServiceDemandProfile::from_samples(
        &samples,
        InterpolationKind::CubicNotAKnot,
        DemandAxis::Throughput,
    )
    .expect("profile");

    let lambdas: Vec<f64> = (1..=30).map(|i| i as f64 * 4.0).collect();
    let sweep = predict_open(&profile, &lambdas).expect("sweep");

    let disk = profile.station_index("db-disk").expect("station");
    println!(
        "\n{:>8} {:>12} {:>12} {:>14}",
        "λ (tx/s)", "R (s)", "in system", "db-disk util"
    );
    for pt in sweep.points.iter().step_by(3) {
        println!(
            "{:>8.0} {:>12.4} {:>12.2} {:>13.1}%",
            pt.lambda,
            pt.response,
            pt.number_in_system,
            pt.utilization[disk] * 100.0
        );
    }
    match sweep.saturation_lambda {
        Some(l) => println!(
            "\nsaturation: some resource exceeds capacity at λ = {l:.0} tx/s —\n\
             provision before sustained arrivals reach that rate."
        ),
        None => println!("\nstable across the whole swept range."),
    }
}
