//! Capacity planning with what-if analysis on the VINS application: the
//! kind of question the paper's Section 1 motivates ("predict future
//! performance indexes under changes in hardware or assumptions on
//! concurrency").
//!
//! We (1) measure the simulated deployment at a few concurrency levels,
//! (2) fit MVASD, (3) run a *scenario sweep* — SSD upgrade, think-time
//! change — without re-running any load test, and (4) come back with a
//! follow-up SLA question that is answered entirely from the sweep
//! engine's memoized populations (a warm restart: zero fresh solver
//! steps).
//!
//! ```sh
//! cargo run --release --example capacity_planning
//! ```

use mvasd_suite::core::sweep::{Scenario, ScenarioSweep};
use mvasd_suite::queueing::mva::{StopCondition, StopReason};
use mvasd_suite::testbed::apps::vins;
use mvasd_suite::testbed::campaign::{run_campaign, CampaignConfig};

fn main() {
    let app = vins::model();
    println!("== Step 1: measured campaign (simulated lab) ==");
    let campaign = run_campaign(
        &app,
        &[1, 25, 75, 150, 300],
        &CampaignConfig {
            test_duration: 400.0,
            ..CampaignConfig::default()
        },
    )
    .expect("campaign");
    for p in &campaign.points {
        println!(
            "  N={:<4} X={:>7.2} pages/s  R={:>7.4} s",
            p.users, p.throughput, p.response
        );
    }

    println!("\n== Step 2: MVASD fit & scenario sweep (no new load tests) ==");
    let samples = campaign.to_demand_samples();
    let disk = campaign.station_index("db-disk").expect("station");
    let k_count = campaign.stations.len();
    // SSD upgrade: halve the db-disk demand curve, leave the rest alone.
    let mut ssd_scales = vec![1.0; k_count];
    ssd_scales[disk] = 0.5;

    let mut sweep = ScenarioSweep::new(samples).default_cap(600);
    let report = sweep
        .run(&[
            Scenario::new("baseline"),
            Scenario::new("ssd-upgrade").scale_stations(ssd_scales.clone()),
            Scenario::new("ssd+hot-think")
                .scale_stations(ssd_scales)
                .with_think_time(0.5),
        ])
        .expect("sweep");
    let baseline = &report.result("baseline").unwrap().solution;
    let upgraded = &report.result("ssd-upgrade").unwrap().solution;
    let hot = &report.result("ssd+hot-think").unwrap().solution;
    println!(
        "  baseline ceiling {:.1} pages/s; db-disk util at N=600: {:.1}%",
        baseline.last().throughput,
        baseline.last().stations[disk].utilization * 100.0
    );
    println!(
        "  SSD upgrade ceiling {:.1} -> {:.1} pages/s",
        baseline.last().throughput,
        upgraded.last().throughput
    );
    for n in [100usize, 300, 600] {
        println!(
            "  N={:<4} X={:>7.2} (SSD, Z=0.5)   {:>7.2} (SSD, Z=1.0)",
            n,
            hot.at(n).unwrap().throughput,
            upgraded.at(n).unwrap().throughput
        );
    }
    println!(
        "  sweep work: {} population steps computed for {} demanded",
        report.steps_computed, report.steps_demanded
    );

    println!("\n== Step 3: follow-up question, answered from the warm cache ==");
    // "How many users can the SSD deployment carry before R exceeds 0.5 s?"
    // The model is already swept to 600, so the engine replays memoized
    // points and computes nothing new.
    let mut ssd_scales = vec![1.0; k_count];
    ssd_scales[disk] = 0.5;
    let followup = sweep
        .run(&[Scenario::new("ssd-sla")
            .scale_stations(ssd_scales)
            .until(StopCondition::SlaResponseTime { max_response: 0.5 })])
        .expect("warm sweep");
    let r = &followup.results[0];
    match &r.reason {
        StopReason::Met(_) => println!(
            "  R crosses 0.5 s at N = {} ({} fresh solver steps — warm restart)",
            r.solution.last().n,
            followup.steps_computed
        ),
        StopReason::PopulationCap => println!("  R stays under 0.5 s through N = 600."),
    }
    println!("\nNo additional load tests were run after step 1.");
}
