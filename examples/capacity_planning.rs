//! Capacity planning with what-if analysis on the VINS application: the
//! kind of question the paper's Section 1 motivates ("predict future
//! performance indexes under changes in hardware or assumptions on
//! concurrency").
//!
//! We (1) measure the simulated deployment at a few concurrency levels,
//! (2) fit MVASD, (3) ask what an SSD upgrade of the database disk
//! (demand halved) and a think-time change would do — without re-running
//! any load test.
//!
//! ```sh
//! cargo run --release --example capacity_planning
//! ```

use mvasd_suite::core::algorithm::mvasd;
use mvasd_suite::core::profile::{DemandAxis, InterpolationKind, ServiceDemandProfile};
use mvasd_suite::queueing::mva::multiserver_mva;
use mvasd_suite::testbed::apps::vins;
use mvasd_suite::testbed::campaign::{run_campaign, CampaignConfig};

fn main() {
    let app = vins::model();
    println!("== Step 1: measured campaign (simulated lab) ==");
    let campaign = run_campaign(
        &app,
        &[1, 25, 75, 150, 300],
        &CampaignConfig {
            test_duration: 400.0,
            ..CampaignConfig::default()
        },
    )
    .expect("campaign");
    for p in &campaign.points {
        println!(
            "  N={:<4} X={:>7.2} pages/s  R={:>7.4} s",
            p.users, p.throughput, p.response
        );
    }

    println!("\n== Step 2: MVASD fit & baseline prediction ==");
    let samples = campaign.to_demand_samples();
    let profile = ServiceDemandProfile::from_samples(
        &samples,
        InterpolationKind::CubicNotAKnot,
        DemandAxis::Concurrency,
    )
    .expect("profile");
    let baseline = mvasd(&profile, 600).expect("solver");
    let disk = campaign.station_index("db-disk").expect("station");
    println!(
        "  predicted ceiling {:.1} pages/s; db-disk util at N=600: {:.1}%",
        baseline.last().throughput,
        baseline.last().stations[disk].utilization * 100.0
    );

    println!("\n== Step 3: what-if — SSD upgrade halves db-disk demand ==");
    // Take the high-concurrency demands MVASD interpolated, halve the DB
    // disk, and solve the modified static model.
    let mut demands = profile.demands_at(600.0);
    demands[disk] *= 0.5;
    let upgraded_net = app.closed_network_with(&demands).expect("modified model");
    let upgraded = multiserver_mva(&upgraded_net, 600).expect("solver");
    println!(
        "  ceiling {:.1} -> {:.1} pages/s; new bottleneck: {}",
        baseline.last().throughput,
        upgraded.last().throughput,
        upgraded_net.stations()[upgraded_net.bottleneck().0].name
    );

    println!("\n== Step 4: what-if — think time drops from 1.0 s to 0.5 s ==");
    let hot_net = upgraded_net.with_think_time(0.5).expect("model");
    let hot = multiserver_mva(&hot_net, 600).expect("solver");
    for n in [100usize, 300, 600] {
        println!(
            "  N={:<4} X={:>7.2} (upgraded, Z=1.0: {:>7.2})",
            n,
            hot.at(n).unwrap().throughput,
            upgraded.at(n).unwrap().throughput
        );
    }
    println!("\nNo additional load tests were run for steps 3-4.");
}
