//! The `lint-baseline.toml` ratchet.
//!
//! The baseline records, per `(file, rule:code)` pair, how many L3
//! findings are grandfathered. The ratchet is one-directional: a scan that
//! finds **more** than the recorded count fails; one that finds fewer
//! passes (and `--fix-baseline` tightens the file to the new, lower
//! counts). New files start at zero — any fresh `unwrap()` in library code
//! fails CI immediately.
//!
//! The format is a deliberately tiny TOML subset (comments, a `version`
//! key, and one `[counts]` table of `"file rule:code" = n` entries) so the
//! workspace's zero-dependency policy holds: we write it and we parse it,
//! and the round-trip is property-tested.

use std::collections::BTreeMap;
use std::fmt;

/// Parsed baseline: `(file, rule:code) -> grandfathered count`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    counts: BTreeMap<(String, String), u64>,
}

/// A malformed baseline file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineError {
    /// 1-based line number of the offending entry.
    pub line: usize,
    /// What was wrong with it.
    pub message: String,
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "baseline line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for BaselineError {}

impl Baseline {
    /// An empty baseline (everything must be clean).
    pub fn empty() -> Self {
        Self::default()
    }

    /// The grandfathered count for one `(file, rule:code)` pair.
    pub fn allowed(&self, file: &str, rule_code: &str) -> u64 {
        self.counts
            .get(&(file.to_string(), rule_code.to_string()))
            .copied()
            .unwrap_or(0)
    }

    /// Inserts/overwrites one entry (used by `--fix-baseline`).
    pub fn set(&mut self, file: &str, rule_code: &str, count: u64) {
        self.counts
            .insert((file.to_string(), rule_code.to_string()), count);
    }

    /// Total grandfathered findings for one `rule:code` across all files
    /// (the acceptance criterion tracks `L3:unwrap`).
    pub fn total_for(&self, rule_code: &str) -> u64 {
        self.counts
            .iter()
            .filter(|((_, rc), _)| rc == rule_code)
            .map(|(_, &n)| n)
            .sum()
    }

    /// All entries, sorted.
    pub fn entries(&self) -> impl Iterator<Item = (&str, &str, u64)> {
        self.counts
            .iter()
            .map(|((f, rc), &n)| (f.as_str(), rc.as_str(), n))
    }

    /// Parses the baseline format written by [`Baseline::render`].
    pub fn parse(text: &str) -> Result<Self, BaselineError> {
        let mut counts = BTreeMap::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty()
                || line.starts_with('#')
                || line == "[counts]"
                || line.starts_with("version")
            {
                continue;
            }
            let err = |message: String| BaselineError {
                line: idx + 1,
                message,
            };
            let rest = line
                .strip_prefix('"')
                .ok_or_else(|| err("expected `\"file rule:code\" = count`".to_string()))?;
            let (key, rest) = rest
                .split_once('"')
                .ok_or_else(|| err("unterminated key".to_string()))?;
            let (file, rule_code) = key
                .rsplit_once(' ')
                .ok_or_else(|| err("key must be `file rule:code`".to_string()))?;
            let value = rest
                .trim()
                .strip_prefix('=')
                .ok_or_else(|| err("missing `=`".to_string()))?
                .trim();
            let n: u64 = value
                .parse()
                .map_err(|_| err(format!("invalid count `{value}`")))?;
            counts.insert((file.to_string(), rule_code.to_string()), n);
        }
        Ok(Self { counts })
    }

    /// Renders the baseline file, entries sorted for stable diffs.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# mvasd-lint baseline: grandfathered L3 findings (panic-free library paths).\n\
             # The ratchet only permits counts to DECREASE; regenerate after burning\n\
             # sites down with `cargo run -p mvasd-lint -- --fix-baseline`.\n\
             version = 1\n\n[counts]\n",
        );
        for ((file, rule_code), n) in &self.counts {
            out.push_str(&format!("\"{file} {rule_code}\" = {n}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let mut b = Baseline::empty();
        b.set("crates/a/src/lib.rs", "L3:unwrap", 3);
        b.set("crates/b/src/x.rs", "L3:index", 1);
        let parsed = Baseline::parse(&b.render()).expect("own output parses");
        assert_eq!(parsed, b);
        assert_eq!(parsed.allowed("crates/a/src/lib.rs", "L3:unwrap"), 3);
        assert_eq!(parsed.allowed("crates/a/src/lib.rs", "L3:panic"), 0);
        assert_eq!(parsed.total_for("L3:unwrap"), 3);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(Baseline::parse("nonsense").is_err());
        assert!(Baseline::parse("\"no-rule-code\" = 3").is_err());
        assert!(Baseline::parse("\"a b\" = not-a-number").is_err());
        assert!(Baseline::parse("\"a L3:unwrap\" 3").is_err());
    }

    #[test]
    fn tolerates_comments_and_headers() {
        let text = "# hi\nversion = 1\n\n[counts]\n\"f.rs L3:unwrap\" = 2\n";
        let b = Baseline::parse(text).expect("valid");
        assert_eq!(b.allowed("f.rs", "L3:unwrap"), 2);
    }
}
