//! Intraprocedural log-domain dataflow over the [`crate::ast`] tree.
//!
//! The MVA kernels keep magnitudes as *logarithms*; mixing a log-domain
//! value into linear-domain arithmetic is the class of bug the paper's
//! Alg. 2/3 recursions cannot survive (a probability that is actually a
//! log-probability is silently wrong by hundreds of orders of
//! magnitude). This pass walks each function body once, in source
//! order, and tracks which bindings hold log-domain values:
//!
//! - **Producers**: `.ln()`-family calls, calls to the log-sum-exp
//!   helpers (`lse2`, `conv_cell`, `scalar_reference`), and anything
//!   read from an `ln_*`/`log_*`-named binding, field, or parameter
//!   (the naming discipline the convolution workspace already follows).
//! - **Propagation**: `+`/`-` keep the log domain (log-space products
//!   and quotients), simple copies via `let`, and `-x` negation.
//! - **Discharge**: `.exp()` on a log-domain value returns to the
//!   linear domain.
//! - **Compensated accumulators**: a binding fed by `x += e.exp()` (or
//!   the running-maximum rescale `x = x * e.exp() + 1.0`) is an
//!   *exp-sum*; taking `.ln()` of it is the sanctioned log-sum-exp
//!   re-entry, which retroactively sanctions the feeding `exp` sites.
//!
//! The result is two-fold: a set of **sanctioned** `exp`/`ln` call
//! sites (used by rule L2 to replace its old blanket file allowlist
//! with per-site reasoning), and **L7 findings** for flows that are
//! wrong in any reading: multiplying two log-domain values, `ln` of a
//! log-domain value, `exp` of an `exp`, and `powf` on a log-domain
//! value.

use std::collections::{HashMap, HashSet};

use crate::ast::{walk_expr, Block, Expr, ExprKind, FnItem, Stmt};
use crate::lexer::Token;

/// The abstract value a binding can hold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Domain {
    /// A logarithm of a magnitude (`d.ln()`, `lse2(..)`, `ln_*` names).
    Log,
    /// A sum of `exp(..)` terms awaiting its `.ln()` re-entry.
    ExpSum,
    /// A plain linear-domain number (literals, discharged `exp`).
    Linear,
    /// No information.
    Unknown,
}

/// One L7 diagnostic from the flow walk.
#[derive(Debug, Clone)]
pub struct Trouble {
    /// 1-based source line.
    pub line: u32,
    /// Finding code within the L7 family.
    pub code: &'static str,
    /// Human explanation.
    pub message: String,
}

/// The per-function analysis result.
#[derive(Debug, Default)]
pub struct FlowReport {
    /// Significant-token indices of `exp`/`ln`-family method-name tokens
    /// the dataflow pass sanctions (the L2 scan skips these).
    pub sanctioned: HashSet<usize>,
    /// L7 findings.
    pub trouble: Vec<Trouble>,
}

impl FlowReport {
    /// Merges another report into this one.
    pub fn merge(&mut self, other: FlowReport) {
        self.sanctioned.extend(other.sanctioned);
        self.trouble.extend(other.trouble);
    }
}

const EXP_FAMILY: &[&str] = &["exp", "exp_m1", "exp2"];
const LN_FAMILY: &[&str] = &["ln", "ln_1p", "log", "log2", "log10"];
/// Workspace functions whose return value is a log-domain magnitude.
const LOG_PRODUCER_FNS: &[&str] = &["lse2", "conv_cell", "scalar_reference"];

fn log_named(name: &str) -> bool {
    name.starts_with("ln_") || name.starts_with("log_")
}

/// Analyzes one function body.
pub fn analyze_fn(f: &FnItem, sig: &[Token]) -> FlowReport {
    let mut a = Analyzer {
        sig,
        facts: HashMap::new(),
        pending_exp: HashMap::new(),
        report: FlowReport::default(),
    };
    for p in &f.params {
        if log_named(p) {
            a.facts.insert(p.clone(), Domain::Log);
        }
    }
    if let Some(body) = &f.body {
        a.eval_block(body);
    }
    a.report
}

struct Analyzer<'a> {
    sig: &'a [Token],
    facts: HashMap<String, Domain>,
    /// Unsanctioned `exp` sites feeding each exp-sum accumulator; the
    /// accumulator's `.ln()` re-entry sanctions them retroactively.
    pending_exp: HashMap<String, Vec<usize>>,
    report: FlowReport,
}

impl Analyzer<'_> {
    fn line_of(&self, sig_idx: usize) -> u32 {
        self.sig.get(sig_idx).map(|t| t.line).unwrap_or(0)
    }

    fn line_of_span(&self, e: &Expr) -> u32 {
        self.line_of(e.span.lo)
    }

    fn eval_block(&mut self, block: &Block) -> Domain {
        let mut last = Domain::Unknown;
        for stmt in &block.stmts {
            last = Domain::Unknown;
            match stmt {
                Stmt::Let(l) => {
                    let d = match &l.init {
                        Some(init) => self.eval(init),
                        None => Domain::Unknown,
                    };
                    if let [name] = l.names.as_slice() {
                        let d = if log_named(name) { Domain::Log } else { d };
                        // `let ln_x = e.ln();` — the naming makes the
                        // domain explicit, which sanctions the call.
                        if log_named(name) {
                            if let Some(init) = &l.init {
                                self.sanction_direct_ln(init);
                            }
                        }
                        self.facts.insert(name.clone(), d);
                    } else {
                        for name in &l.names {
                            let d = if log_named(name) {
                                Domain::Log
                            } else {
                                Domain::Unknown
                            };
                            self.facts.insert(name.clone(), d);
                        }
                    }
                }
                Stmt::Expr(es) => last = self.eval(&es.expr),
                Stmt::Item(_) => {}
            }
        }
        last
    }

    /// Sanctions `e` when it is a direct `ln`-family method call.
    fn sanction_direct_ln(&mut self, e: &Expr) {
        if let ExprKind::Method { name, name_idx, .. } = &e.kind {
            if LN_FAMILY.contains(&name.as_str()) {
                self.report.sanctioned.insert(*name_idx);
            }
        }
    }

    /// The base identifier of an lvalue-ish chain (`self.ln_d[k]` → `ln_d`,
    /// `acc` → `acc`): the innermost log-relevant name.
    fn base_name<'e>(&self, e: &'e Expr) -> Option<&'e str> {
        match &e.kind {
            ExprKind::Path(segs) => segs.last().map(|s| s.as_str()),
            ExprKind::Field { name, .. } => Some(name.as_str()),
            ExprKind::Index { recv, .. } => self.base_name(recv),
            ExprKind::Unary { inner, .. } | ExprKind::Ref { inner, .. } => self.base_name(inner),
            _ => None,
        }
    }

    /// Does `value` mention the identifier `name`?
    fn mentions(&self, value: &Expr, name: &str) -> bool {
        let mut found = false;
        walk_expr(value, &mut |e| {
            if let ExprKind::Path(segs) = &e.kind {
                if matches!(segs.as_slice(), [seg] if seg == name) {
                    found = true;
                }
            }
        });
        found
    }

    /// Collects the `name_idx` of every exp-family method call in `value`.
    fn exp_sites(&self, value: &Expr) -> Vec<usize> {
        let mut sites = Vec::new();
        walk_expr(value, &mut |e| {
            if let ExprKind::Method { name, name_idx, .. } = &e.kind {
                if EXP_FAMILY.contains(&name.as_str()) {
                    sites.push(*name_idx);
                }
            }
        });
        sites
    }

    fn eval(&mut self, e: &Expr) -> Domain {
        match &e.kind {
            ExprKind::Path(segs) => {
                if let [seg] = segs.as_slice() {
                    if let Some(d) = self.facts.get(seg) {
                        return *d;
                    }
                    if log_named(seg) {
                        return Domain::Log;
                    }
                }
                Domain::Unknown
            }
            ExprKind::Lit => Domain::Linear,
            ExprKind::Tuple(xs) => {
                // A one-element "tuple" is a parenthesized group: `(a - b)`
                // keeps its inner domain so `(ln_a - ln_b).exp()` sanctions.
                if let [inner] = xs.as_slice() {
                    return self.eval(inner);
                }
                for x in xs {
                    self.eval(x);
                }
                Domain::Unknown
            }
            ExprKind::Call { callee, args } => {
                for a in args {
                    self.eval(a);
                }
                self.eval(callee);
                if let ExprKind::Path(segs) = &callee.kind {
                    if let Some(last) = segs.last() {
                        if LOG_PRODUCER_FNS.contains(&last.as_str()) || log_named(last) {
                            return Domain::Log;
                        }
                    }
                }
                Domain::Unknown
            }
            ExprKind::MacroCall { args, .. } => {
                for a in args {
                    self.eval(a);
                }
                Domain::Unknown
            }
            ExprKind::Method {
                recv,
                name,
                name_idx,
                args,
            } => self.eval_method(recv, name, *name_idx, args),
            ExprKind::Field { recv, name } => {
                self.eval(recv);
                if log_named(name) {
                    Domain::Log
                } else {
                    Domain::Unknown
                }
            }
            ExprKind::Index { recv, index } => {
                self.eval(index);
                // Indexing a log-named table (`ln_d[k]`) reads a log value.
                self.eval(recv)
            }
            ExprKind::Unary { op, inner } => {
                let d = self.eval(inner);
                if *op == '-' || *op == '*' {
                    d
                } else {
                    Domain::Unknown
                }
            }
            ExprKind::Ref { inner, .. } | ExprKind::Cast { inner } => self.eval(inner),
            ExprKind::Binary { op, lhs, rhs } => {
                let dl = self.eval(lhs);
                let dr = self.eval(rhs);
                match op.as_str() {
                    "+" | "-" => {
                        if dl == Domain::Log || dr == Domain::Log {
                            Domain::Log
                        } else if dl == Domain::ExpSum || dr == Domain::ExpSum {
                            Domain::ExpSum
                        } else if dl == Domain::Linear && dr == Domain::Linear {
                            Domain::Linear
                        } else {
                            Domain::Unknown
                        }
                    }
                    "*" | "/" => {
                        if dl == Domain::Log && dr == Domain::Log {
                            self.report.trouble.push(Trouble {
                                line: self.line_of_span(e),
                                code: "log-as-linear",
                                message: format!(
                                    "`{op}` between two log-domain values: log-space \
                                     products are *sums*; `exp()` back to the linear \
                                     domain first, or use `lse2`/the kernel helpers"
                                ),
                            });
                            Domain::Unknown
                        } else if dl == Domain::ExpSum || dr == Domain::ExpSum {
                            // Running-maximum rescale: `acc * (m - t).exp()`.
                            Domain::ExpSum
                        } else if dl == Domain::Linear && dr == Domain::Linear {
                            Domain::Linear
                        } else {
                            Domain::Unknown
                        }
                    }
                    _ => Domain::Unknown,
                }
            }
            ExprKind::Assign { op, target, value } => {
                self.eval_assign(op.as_deref(), target, value);
                Domain::Unknown
            }
            ExprKind::Closure { body, .. } => {
                self.eval(body);
                Domain::Unknown
            }
            ExprKind::Block(b) => self.eval_block(b),
            ExprKind::Flow { children, .. } => {
                for c in children {
                    self.eval(c);
                }
                Domain::Unknown
            }
            ExprKind::StructLit { fields, .. } => {
                for f in fields {
                    self.eval(f);
                }
                Domain::Unknown
            }
            ExprKind::Unknown => Domain::Unknown,
        }
    }

    fn eval_method(&mut self, recv: &Expr, name: &str, name_idx: usize, args: &[Expr]) -> Domain {
        let arg_domains: Vec<Domain> = args.iter().map(|a| self.eval(a)).collect();
        let d_recv = self.eval(recv);

        // Storing into a log-named container (`self.ln_rate.set(r, j, x.ln())`)
        // sanctions direct ln-family arguments: the slot name declares the
        // domain.
        if let Some(base) = self.base_name(recv) {
            if log_named(base) {
                for a in args {
                    if let ExprKind::Method {
                        name: an,
                        name_idx: ai,
                        ..
                    } = &a.kind
                    {
                        if LN_FAMILY.contains(&an.as_str()) {
                            self.report.sanctioned.insert(*ai);
                        }
                    }
                }
            }
        }

        if EXP_FAMILY.contains(&name) {
            if d_recv == Domain::Log {
                // Proper discharge of a log-domain value.
                self.report.sanctioned.insert(name_idx);
            } else if matches!(
                &recv.kind,
                ExprKind::Method { name: inner, .. } if EXP_FAMILY.contains(&inner.as_str())
            ) {
                self.report.trouble.push(Trouble {
                    line: self.line_of(name_idx),
                    code: "double-exp",
                    message: "`.exp()` of an `.exp()` result: the receiver is already \
                              in the linear domain"
                        .to_string(),
                });
            }
            return Domain::Linear;
        }

        if LN_FAMILY.contains(&name) {
            // Log-sum-exp re-entry: `.ln()` of an exp-sum accumulator
            // sanctions this call *and* the exp sites that fed it.
            if let ExprKind::Path(segs) = &recv.kind {
                if let [seg] = segs.as_slice() {
                    if self.facts.get(seg) == Some(&Domain::ExpSum) {
                        self.report.sanctioned.insert(name_idx);
                        if let Some(sites) = self.pending_exp.remove(seg) {
                            self.report.sanctioned.extend(sites);
                        }
                        return Domain::Log;
                    }
                }
            }
            // Compensated chain: `(lo - hi).exp().ln_1p()` — the exp is
            // immediately re-logged, so the round trip is safe by
            // construction.
            if let ExprKind::Method {
                name: inner,
                name_idx: inner_idx,
                ..
            } = &recv.kind
            {
                if EXP_FAMILY.contains(&inner.as_str()) {
                    self.report.sanctioned.insert(name_idx);
                    self.report.sanctioned.insert(*inner_idx);
                    return Domain::Log;
                }
            }
            if d_recv == Domain::Log {
                self.report.trouble.push(Trouble {
                    line: self.line_of(name_idx),
                    code: "double-ln",
                    message: format!(
                        "`.{name}()` of a value that is already a logarithm; this \
                         produces log(log(x)), which is never what the MVA \
                         recursions want"
                    ),
                });
            }
            return Domain::Log;
        }

        match name {
            "powf" | "powi" | "sqrt" => {
                if d_recv == Domain::Log {
                    self.report.trouble.push(Trouble {
                        line: self.line_of(name_idx),
                        code: "log-as-linear",
                        message: format!(
                            "`.{name}()` on a log-domain value treats a logarithm as a \
                             linear magnitude; `exp()` first or stay in log space"
                        ),
                    });
                }
                Domain::Unknown
            }
            "max" | "min" => {
                // max/min of same-domain values keeps the domain.
                if arg_domains.iter().all(|&d| d == d_recv) {
                    d_recv
                } else {
                    Domain::Unknown
                }
            }
            // Table reads (`Grid::at`) return an element of the table's
            // domain: `self.ln_prefix.at(i, j)` is a log value.
            "at" | "abs" | "copied" | "cloned" | "clone" => d_recv,
            _ => Domain::Unknown,
        }
    }

    fn eval_assign(&mut self, op: Option<&str>, target: &Expr, value: &Expr) {
        let dv = self.eval(value);
        let exp_sites = self.exp_sites(value);

        // Assignment into a log-named slot sanctions a direct ln value.
        if let Some(base) = self.base_name(target) {
            if log_named(base) {
                self.sanction_direct_ln(value);
            }
        }

        // Only single-ident targets get tracked facts.
        let ExprKind::Path(segs) = &target.kind else {
            return;
        };
        let [name] = segs.as_slice() else { return };
        let name = name.clone();

        let accumulates = matches!(op, Some("+")) || (op.is_none() && self.mentions(value, &name));
        if accumulates && !exp_sites.is_empty() {
            // `acc += e.exp()` / `acc = acc * e.exp() + 1.0`: exp-sum
            // accumulator; its exp sites stay pending until `.ln()`.
            self.facts.insert(name.clone(), Domain::ExpSum);
            self.pending_exp.entry(name).or_default().extend(exp_sites);
            return;
        }
        match op {
            None => {
                let d = if log_named(&name) { Domain::Log } else { dv };
                self.facts.insert(name, d);
            }
            Some("+") | Some("-") => {
                let cur = self.facts.get(&name).copied().unwrap_or(Domain::Unknown);
                let joined = if cur == Domain::ExpSum || dv == Domain::ExpSum {
                    Domain::ExpSum
                } else if cur == Domain::Log || dv == Domain::Log {
                    Domain::Log
                } else if cur == Domain::Linear && dv == Domain::Linear {
                    Domain::Linear
                } else {
                    Domain::Unknown
                };
                self.facts.insert(name, joined);
            }
            _ => {
                self.facts.insert(name, Domain::Unknown);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{for_each_fn, parse};
    use crate::lexer::{lex, TokKind};

    fn analyze(src: &str) -> FlowReport {
        let toks = lex(src);
        let sig: Vec<Token> = toks
            .into_iter()
            .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
            .collect();
        let ast = parse(&sig, src);
        let mut report = FlowReport::default();
        for_each_fn(&ast.items, &mut |f| {
            report.merge(analyze_fn(f, &sig));
        });
        report
    }

    fn codes(r: &FlowReport) -> Vec<&'static str> {
        r.trouble.iter().map(|t| t.code).collect()
    }

    #[test]
    fn discharge_of_tracked_log_value_is_sanctioned() {
        let r = analyze(
            "fn f(d: f64) -> f64 {\n\
                 let ld = d.ln();\n\
                 let lo = ld - 3.0;\n\
                 lo.exp()\n\
             }",
        );
        // `d.ln()` itself is unsanctioned (plain binding name), but the
        // `.exp()` of the tracked log value is a proper boundary.
        assert_eq!(r.sanctioned.len(), 1, "{:?}", r.sanctioned);
        assert!(codes(&r).is_empty());
    }

    #[test]
    fn ln_named_bindings_sanction_their_producer() {
        let r = analyze("fn f(d: f64) -> f64 { let ln_d = d.ln(); ln_d.exp() }");
        // Both the `.ln()` (named slot) and the `.exp()` (log receiver).
        assert_eq!(r.sanctioned.len(), 2, "{:?}", r.sanctioned);
        assert!(codes(&r).is_empty());
    }

    #[test]
    fn exp_sum_accumulator_round_trip_is_sanctioned() {
        let r = analyze(
            "fn scalar(a: &[f64], n: usize) -> f64 {\n\
                 let mut m = f64::NEG_INFINITY;\n\
                 let mut acc = 0.0;\n\
                 for j in 0..n {\n\
                     let t = a[j];\n\
                     if t <= m {\n\
                         acc += (t - m).exp();\n\
                     } else {\n\
                         acc = acc * (m - t).exp() + 1.0;\n\
                         m = t;\n\
                     }\n\
                 }\n\
                 m + acc.ln()\n\
             }",
        );
        // Two pending exp sites plus the ln re-entry.
        assert_eq!(r.sanctioned.len(), 3, "{:?}", r.sanctioned);
        assert!(codes(&r).is_empty());
    }

    #[test]
    fn split_lane_accumulators_stay_unsanctioned() {
        // conv_cell's shape: lanes feed a second accumulator; the lane
        // exps are beyond one-step reasoning and need annotations.
        let r = analyze(
            "fn cell(t: &[f64], m: f64) -> f64 {\n\
                 let mut a0 = 0.0;\n\
                 let mut acc = 0.0;\n\
                 for x in t {\n\
                     a0 += (x - m).exp();\n\
                 }\n\
                 acc += a0;\n\
                 m + acc.ln()\n\
             }",
        );
        // Only the final ln is sanctioned (acc is an exp-sum via a0);
        // the lane exp stays pending under `a0`, which is never ln'd.
        assert!(codes(&r).is_empty());
        assert_eq!(r.sanctioned.len(), 1, "{:?}", r.sanctioned);
    }

    #[test]
    fn compensated_chain_is_sanctioned() {
        let r = analyze("fn lse2(a: f64, b: f64) -> f64 { a + (b - a).exp().ln_1p() }");
        assert_eq!(r.sanctioned.len(), 2, "{:?}", r.sanctioned);
        assert!(codes(&r).is_empty());
    }

    #[test]
    fn log_times_log_is_trouble() {
        let r = analyze(
            "fn f(x: f64, y: f64) -> f64 {\n\
                 let a = x.ln();\n\
                 let b = y.ln();\n\
                 a * b\n\
             }",
        );
        assert_eq!(codes(&r), ["log-as-linear"]);
    }

    #[test]
    fn double_ln_and_double_exp_are_trouble() {
        let r = analyze("fn f(x: f64) -> f64 { let a = x.ln(); a.ln() }");
        assert_eq!(codes(&r), ["double-ln"]);
        let r = analyze("fn g(x: f64) -> f64 { x.exp().exp() }");
        assert_eq!(codes(&r), ["double-exp"]);
    }

    #[test]
    fn powf_on_log_value_is_trouble() {
        let r = analyze("fn f(x: f64) -> f64 { let ld = x.ln(); ld.powf(2.0) }");
        assert_eq!(codes(&r), ["log-as-linear"]);
    }

    #[test]
    fn log_named_tables_sanction_stores() {
        let r = analyze(
            "fn f(&mut self, j: usize) {\n\
                 self.ln_int[j] = (j as f64).ln();\n\
                 self.ln_rate.set(j, self.rate(j).ln());\n\
             }",
        );
        assert_eq!(r.sanctioned.len(), 2, "{:?}", r.sanctioned);
        assert!(codes(&r).is_empty());
    }
}
