//! A lightweight, loss-tolerant AST over the [`crate::lexer`] token
//! stream: items, fn bodies, `let` bindings, method-call chains, and
//! closures with enough pattern awareness to tell a binding from a
//! capture. No `syn`, no grammar completeness: anything the parser does
//! not understand becomes an [`ExprKind::Unknown`] leaf (or an
//! [`Item::Other`]) that still carries its token span, so the tree
//! always *tiles* the significant-token stream (see [`check_coverage`])
//! and downstream passes can reason about what they do understand
//! without ever being wrong about where code is.
//!
//! The parser is total: it never panics, never loops (every step makes
//! progress), and never reads outside the token slice. Precedence is
//! the real Rust operator table for the arithmetic/logic subset the
//! dataflow pass cares about (`a.ln() + b * c` must parse as
//! `a.ln() + (b * c)`, or the log-domain rules would mis-track).

use crate::lexer::{TokKind, Token};

/// Half-open range of *significant* (comment-free) token indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// First token index.
    pub lo: usize,
    /// One past the last token index.
    pub hi: usize,
}

/// A parsed file: a sequence of items tiling the token stream.
#[derive(Debug)]
pub struct Ast {
    /// Top-level items, in source order.
    pub items: Vec<Item>,
}

/// A top-level or nested item.
#[derive(Debug)]
pub enum Item {
    /// `fn name(params) { body }` (or a bodiless trait signature).
    Fn(FnItem),
    /// `mod`/`impl`/`trait` containers whose body holds further items.
    Mod(ModItem),
    /// Anything else (structs, uses, consts, macros, stragglers).
    Other(Span),
}

impl Item {
    /// The item's token span.
    pub fn span(&self) -> Span {
        match self {
            Item::Fn(f) => f.span,
            Item::Mod(m) => m.span,
            Item::Other(s) => *s,
        }
    }
}

/// A function item.
#[derive(Debug)]
pub struct FnItem {
    /// The function name (`<anon>` if the parser lost it).
    pub name: String,
    /// Parameter binding names (including `self` when present).
    pub params: Vec<String>,
    /// The body block; `None` for signatures.
    pub body: Option<Block>,
    /// Token span of the whole item.
    pub span: Span,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
}

/// A `mod`/`impl`/`trait` container.
#[derive(Debug)]
pub struct ModItem {
    /// `mod` name, or `impl`/`trait` for those containers.
    pub name: String,
    /// Items inside the braces.
    pub items: Vec<Item>,
    /// Token span of the whole item.
    pub span: Span,
}

/// A `{ ... }` block: statements tiling the inside of the braces.
#[derive(Debug)]
pub struct Block {
    /// Statements in source order.
    pub stmts: Vec<Stmt>,
    /// Span including both braces.
    pub span: Span,
}

/// One statement.
#[derive(Debug)]
pub enum Stmt {
    /// `let <pat> = <init>;`
    Let(LetStmt),
    /// An expression statement (with or without trailing `;`).
    Expr(ExprStmt),
    /// A nested item.
    Item(Box<Item>),
}

impl Stmt {
    /// The statement's token span.
    pub fn span(&self) -> Span {
        match self {
            Stmt::Let(l) => l.span,
            Stmt::Expr(e) => e.span,
            Stmt::Item(i) => i.span(),
        }
    }
}

/// A `let` statement.
#[derive(Debug)]
pub struct LetStmt {
    /// Names bound by the pattern (lowercase idents; `let (a, b)` binds both).
    pub names: Vec<String>,
    /// The initializer, when present.
    pub init: Option<Expr>,
    /// Token span including the trailing `;`.
    pub span: Span,
    /// 1-based line of the `let` keyword.
    pub line: u32,
}

/// An expression statement.
#[derive(Debug)]
pub struct ExprStmt {
    /// The expression.
    pub expr: Expr,
    /// Token span including any trailing `;`.
    pub span: Span,
}

/// An expression node.
#[derive(Debug)]
pub struct Expr {
    /// What kind of expression.
    pub kind: ExprKind,
    /// Token span.
    pub span: Span,
}

/// Expression shapes the rule passes care about; everything else is
/// `Unknown` with an honest span.
#[derive(Debug)]
pub enum ExprKind {
    /// `a`, `a::b::c` (turbofish segments skipped).
    Path(Vec<String>),
    /// A literal token (number, string, char, lifetime).
    Lit,
    /// `( ... )`, `[ ... ]`, and tuple/array element lists.
    Tuple(Vec<Expr>),
    /// `callee(args)`.
    Call {
        /// The callee (usually a `Path`).
        callee: Box<Expr>,
        /// Arguments, one expression per top-level comma.
        args: Vec<Expr>,
    },
    /// `name!(args)` / `name![..]` / `name!{..}`.
    MacroCall {
        /// Macro name (last path segment).
        name: String,
        /// Arguments split on top-level commas.
        args: Vec<Expr>,
    },
    /// `recv.name(args)`.
    Method {
        /// The receiver chain.
        recv: Box<Expr>,
        /// Method name.
        name: String,
        /// Significant-token index of the method-name ident (for
        /// pinpoint suppression bookkeeping).
        name_idx: usize,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `recv.name` / `recv.0` / `recv.await`.
    Field {
        /// The receiver chain.
        recv: Box<Expr>,
        /// Field name (tuple indices render as digits).
        name: String,
    },
    /// `recv[index]`.
    Index {
        /// The indexed expression.
        recv: Box<Expr>,
        /// The index expression.
        index: Box<Expr>,
    },
    /// `-x`, `!x`, `*x`.
    Unary {
        /// The operator character.
        op: char,
        /// The operand.
        inner: Box<Expr>,
    },
    /// `&x` / `&mut x`.
    Ref {
        /// Whether the borrow is `&mut`.
        mutable: bool,
        /// The borrowed expression.
        inner: Box<Expr>,
    },
    /// `x as T` (the type is skipped).
    Cast {
        /// The cast operand.
        inner: Box<Expr>,
    },
    /// `lhs <op> rhs` with real precedence for the arithmetic subset.
    Binary {
        /// Operator text (`+`, `==`, `&&`, ...).
        op: String,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// `target = value` / `target += value` (op is the compound prefix).
    Assign {
        /// `None` for plain `=`, `Some("+")` for `+=`, etc.
        op: Option<String>,
        /// Assignment target.
        target: Box<Expr>,
        /// Assigned value.
        value: Box<Expr>,
    },
    /// `|params| body` / `move |params| body`.
    Closure {
        /// Parameter binding names.
        params: Vec<String>,
        /// The body expression (a `Block` when braced).
        body: Box<Expr>,
    },
    /// A braced block in expression position.
    Block(Block),
    /// `if`/`while`/`for`/`loop`/`match`/`return`/`break` and friends:
    /// header expressions and body blocks in source order.
    Flow {
        /// The keyword.
        kw: String,
        /// Names bound by `for`/`if let`/`while let`/match-arm patterns.
        bound: Vec<String>,
        /// Headers, blocks, and arm expressions in order.
        children: Vec<Expr>,
    },
    /// `Path { field: value, .. }`.
    StructLit {
        /// The struct path.
        path: Vec<String>,
        /// Field value expressions.
        fields: Vec<Expr>,
    },
    /// A token (or run) the parser did not understand.
    Unknown,
}

/// Parses significant tokens into an [`Ast`]. Never fails; unknown
/// syntax degrades to `Unknown`/`Other` nodes with correct spans.
pub fn parse(sig: &[Token], src: &str) -> Ast {
    let mut p = Parser { sig, src, pos: 0 };
    let items = p.parse_items(sig.len());
    Ast { items }
}

const ITEM_KEYWORDS: &[&str] = &[
    "fn",
    "mod",
    "impl",
    "struct",
    "enum",
    "union",
    "trait",
    "use",
    "type",
    "static",
    "macro_rules",
];

const PATTERN_NON_BINDING: &[&str] = &[
    "mut", "ref", "box", "dyn", "impl", "if", "else", "in", "move", "as", "_", "true", "false",
];

struct Parser<'a> {
    sig: &'a [Token],
    src: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn kindof(&self, i: usize) -> Option<TokKind> {
        self.sig.get(i).map(|t| t.kind)
    }

    fn is_p(&self, i: usize, c: char) -> bool {
        self.kindof(i) == Some(TokKind::Punct(c))
    }

    fn ident(&self, i: usize) -> Option<&'a str> {
        let t = self.sig.get(i)?;
        (t.kind == TokKind::Ident).then(|| t.text(self.src))
    }

    fn is_kw(&self, i: usize, w: &str) -> bool {
        self.ident(i) == Some(w)
    }

    fn line(&self, i: usize) -> u32 {
        self.sig.get(i).map(|t| t.line).unwrap_or(0)
    }

    /// Are tokens `i` and `i + 1` flush against each other (`==` vs `= =`)?
    fn adjacent(&self, i: usize) -> bool {
        match (self.sig.get(i), self.sig.get(i + 1)) {
            (Some(a), Some(b)) => a.end == b.start,
            _ => false,
        }
    }

    /// Matching close delimiter for the open at `open` (same-kind count),
    /// bounded by `hi`.
    fn match_delim(&self, open: usize, hi: usize) -> Option<usize> {
        let (o, c) = match self.kindof(open)? {
            TokKind::Punct('(') => ('(', ')'),
            TokKind::Punct('[') => ('[', ']'),
            TokKind::Punct('{') => ('{', '}'),
            _ => return None,
        };
        let mut depth = 0usize;
        for i in open..hi.min(self.sig.len()) {
            match self.kindof(i) {
                Some(TokKind::Punct(p)) if p == o => depth += 1,
                Some(TokKind::Punct(p)) if p == c => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return Some(i);
                    }
                }
                _ => {}
            }
        }
        None
    }

    /// Matching `>` for a `<` at `open`, arrow-aware (`->`'s `>` does not
    /// close a generic list).
    fn match_angle(&self, open: usize, hi: usize) -> Option<usize> {
        let mut depth = 0i32;
        let mut i = open;
        while i < hi.min(self.sig.len()) {
            match self.kindof(i) {
                Some(TokKind::Punct('<')) => depth += 1,
                Some(TokKind::Punct('>')) => {
                    let arrow = i > 0 && self.is_p(i - 1, '-') && self.adjacent(i - 1);
                    if !arrow {
                        depth -= 1;
                        if depth == 0 {
                            return Some(i);
                        }
                    }
                }
                Some(TokKind::Punct(';')) | Some(TokKind::Punct('{')) | None => return None,
                _ => {}
            }
            i += 1;
        }
        None
    }

    /// Skips `#[...]` / `#![...]` attributes at the cursor.
    fn skip_attrs(&mut self, hi: usize) {
        while self.pos < hi && self.is_p(self.pos, '#') {
            let b = if self.is_p(self.pos + 1, '[') {
                self.pos + 1
            } else if self.is_p(self.pos + 1, '!') && self.is_p(self.pos + 2, '[') {
                self.pos + 2
            } else {
                return;
            };
            match self.match_delim(b, hi) {
                Some(close) => self.pos = close + 1,
                None => {
                    self.pos = hi;
                    return;
                }
            }
        }
    }

    fn parse_items(&mut self, hi: usize) -> Vec<Item> {
        let mut items = Vec::new();
        while self.pos < hi {
            let before = self.pos;
            items.push(self.parse_item(hi));
            if self.pos <= before {
                // Defensive: guarantee progress even on parser bugs.
                self.pos = before + 1;
            }
        }
        items
    }

    /// Scans from the cursor to the end of a `;`-terminated run (or a
    /// terminal brace block), returning the exclusive end.
    fn scan_to_semi_or_block(&self, hi: usize) -> usize {
        let mut i = self.pos;
        while i < hi {
            if self.is_p(i, ';') {
                return i + 1;
            }
            if self.is_p(i, '(') || self.is_p(i, '[') {
                match self.match_delim(i, hi) {
                    Some(c) => i = c + 1,
                    None => return hi,
                }
                continue;
            }
            if self.is_p(i, '{') {
                return match self.match_delim(i, hi) {
                    Some(c) => c + 1,
                    None => hi,
                };
            }
            i += 1;
        }
        hi
    }

    fn parse_item(&mut self, hi: usize) -> Item {
        let start = self.pos;
        self.skip_attrs(hi);
        // Modifiers: `pub`, `pub(crate)`, `unsafe`, `async`, `default`,
        // `const fn`, `extern "C" fn`.
        loop {
            match self.ident(self.pos) {
                Some("pub") => {
                    self.pos += 1;
                    if self.is_p(self.pos, '(') {
                        match self.match_delim(self.pos, hi) {
                            Some(c) => self.pos = c + 1,
                            None => self.pos = hi,
                        }
                    }
                }
                Some("unsafe") | Some("async") | Some("default") => self.pos += 1,
                Some("const") => {
                    // `const fn` is a modifier; `const NAME: T = ..;` is an item.
                    if matches!(self.ident(self.pos + 1), Some("fn") | Some("unsafe")) {
                        self.pos += 1;
                    } else {
                        let end = self.scan_to_semi_or_block(hi);
                        self.pos = end;
                        return Item::Other(Span { lo: start, hi: end });
                    }
                }
                Some("extern") => {
                    if self.ident(self.pos + 1) == Some("crate") {
                        let end = self.scan_to_semi_or_block(hi);
                        self.pos = end;
                        return Item::Other(Span { lo: start, hi: end });
                    }
                    self.pos += 1;
                    if self.kindof(self.pos) == Some(TokKind::Str) {
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
        match self.ident(self.pos) {
            Some("fn") => self.parse_fn(start, hi),
            Some("mod") | Some("impl") | Some("trait") => self.parse_container(start, hi),
            _ => {
                let end = self.scan_to_semi_or_block(hi);
                self.pos = end;
                Item::Other(Span { lo: start, hi: end })
            }
        }
    }

    fn parse_fn(&mut self, start: usize, hi: usize) -> Item {
        let fn_line = self.line(self.pos);
        self.pos += 1; // `fn`
        let name = match self.ident(self.pos) {
            Some(n) => {
                self.pos += 1;
                n.to_string()
            }
            None => "<anon>".to_string(),
        };
        if self.is_p(self.pos, '<') {
            if let Some(close) = self.match_angle(self.pos, hi) {
                self.pos = close + 1;
            }
        }
        let mut params = Vec::new();
        if self.is_p(self.pos, '(') {
            let open = self.pos;
            let close = self.match_delim(open, hi).unwrap_or(hi.saturating_sub(1));
            // Param names: depth-0 idents directly followed by `:`, plus `self`.
            let mut depth = 0usize;
            let mut i = open + 1;
            while i < close {
                match self.kindof(i) {
                    Some(TokKind::Punct('('))
                    | Some(TokKind::Punct('['))
                    | Some(TokKind::Punct('{'))
                    | Some(TokKind::Punct('<')) => depth += 1,
                    Some(TokKind::Punct(')'))
                    | Some(TokKind::Punct(']'))
                    | Some(TokKind::Punct('}'))
                    | Some(TokKind::Punct('>')) => depth = depth.saturating_sub(1),
                    Some(TokKind::Ident) => {
                        let w = self.ident(i).unwrap_or("");
                        if depth == 0 {
                            if w == "self" {
                                params.push("self".to_string());
                            } else if self.is_p(i + 1, ':')
                                && !PATTERN_NON_BINDING.contains(&w)
                                && w.starts_with(|c: char| c.is_ascii_lowercase() || c == '_')
                            {
                                params.push(w.to_string());
                            }
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
            self.pos = close + 1;
        }
        // Skip return type / where clause to the body `{` or a `;`.
        while self.pos < hi {
            if self.is_p(self.pos, ';') {
                self.pos += 1;
                return Item::Fn(FnItem {
                    name,
                    params,
                    body: None,
                    span: Span {
                        lo: start,
                        hi: self.pos,
                    },
                    line: fn_line,
                });
            }
            if self.is_p(self.pos, '{') {
                let body = self.parse_block(hi);
                let end = body.span.hi;
                return Item::Fn(FnItem {
                    name,
                    params,
                    body: Some(body),
                    span: Span { lo: start, hi: end },
                    line: fn_line,
                });
            }
            if self.is_p(self.pos, '(') || self.is_p(self.pos, '[') {
                match self.match_delim(self.pos, hi) {
                    Some(c) => self.pos = c + 1,
                    None => self.pos = hi,
                }
                continue;
            }
            self.pos += 1;
        }
        Item::Fn(FnItem {
            name,
            params,
            body: None,
            span: Span {
                lo: start,
                hi: self.pos,
            },
            line: fn_line,
        })
    }

    fn parse_container(&mut self, start: usize, hi: usize) -> Item {
        let kw = self.ident(self.pos).unwrap_or("mod").to_string();
        self.pos += 1;
        let name = if kw == "mod" {
            self.ident(self.pos).unwrap_or("<anon>").to_string()
        } else {
            kw.clone()
        };
        // Find the body `{` (or a `;` for `mod name;`).
        while self.pos < hi {
            if self.is_p(self.pos, ';') {
                self.pos += 1;
                return Item::Other(Span {
                    lo: start,
                    hi: self.pos,
                });
            }
            if self.is_p(self.pos, '{') {
                break;
            }
            if self.is_p(self.pos, '(') || self.is_p(self.pos, '[') {
                match self.match_delim(self.pos, hi) {
                    Some(c) => self.pos = c + 1,
                    None => self.pos = hi,
                }
                continue;
            }
            self.pos += 1;
        }
        if !self.is_p(self.pos, '{') {
            return Item::Other(Span {
                lo: start,
                hi: self.pos,
            });
        }
        let open = self.pos;
        let close = self.match_delim(open, hi).unwrap_or(hi.saturating_sub(1));
        self.pos = open + 1;
        let items = self.parse_items(close);
        self.pos = close + 1;
        Item::Mod(ModItem {
            name,
            items,
            span: Span {
                lo: start,
                hi: self.pos,
            },
        })
    }

    fn parse_block(&mut self, hi: usize) -> Block {
        let open = self.pos;
        let close = self.match_delim(open, hi).unwrap_or(hi.saturating_sub(1));
        self.pos = open + 1;
        let mut stmts = Vec::new();
        while self.pos < close {
            let before = self.pos;
            stmts.push(self.parse_stmt(close));
            if self.pos <= before {
                self.pos = before + 1;
            }
        }
        self.pos = close + 1;
        Block {
            stmts,
            span: Span {
                lo: open,
                hi: self.pos,
            },
        }
    }

    /// Statement boundary: the exclusive end of the statement starting at
    /// the cursor — past a depth-0 `;`, or past a terminal brace block.
    fn scan_stmt_end(&self, limit: usize) -> usize {
        let mut i = self.pos;
        while i < limit {
            if self.is_p(i, ';') {
                return i + 1;
            }
            if self.is_p(i, '(') || self.is_p(i, '[') {
                match self.match_delim(i, limit) {
                    Some(c) => i = c + 1,
                    None => return limit,
                }
                continue;
            }
            if self.is_p(i, '{') {
                let c = match self.match_delim(i, limit) {
                    Some(c) => c,
                    None => return limit,
                };
                // Continuations after a block: `else`, method chains, `?`,
                // a trailing `;`, and match-arm/assignment glue.
                if self.is_kw(c + 1, "else") || self.is_p(c + 1, '.') || self.is_p(c + 1, '?') {
                    i = c + 1;
                    continue;
                }
                if self.is_p(c + 1, ';') {
                    return c + 2;
                }
                return c + 1;
            }
            i += 1;
        }
        limit
    }

    fn parse_stmt(&mut self, limit: usize) -> Stmt {
        let start = self.pos;
        self.skip_attrs(limit);
        if self.pos >= limit {
            return Stmt::Expr(ExprStmt {
                expr: Expr {
                    kind: ExprKind::Unknown,
                    span: Span {
                        lo: start,
                        hi: limit,
                    },
                },
                span: Span {
                    lo: start,
                    hi: limit,
                },
            });
        }
        // Items in statement position. `unsafe`/`const` are ambiguous
        // (unsafe blocks, const blocks): only treat them as items when an
        // item keyword follows.
        let is_item = match self.ident(self.pos) {
            Some(w) if ITEM_KEYWORDS.contains(&w) && w != "impl" => true,
            Some("pub") => true,
            Some("unsafe") | Some("const") | Some("async") => {
                matches!(
                    self.ident(self.pos + 1),
                    Some("fn") | Some("trait") | Some("impl")
                )
            }
            _ => false,
        };
        if is_item {
            let item = self.parse_item(limit);
            return Stmt::Item(Box::new(item));
        }
        if self.is_kw(self.pos, "let") {
            return self.parse_let(start, limit);
        }
        let end = self.scan_stmt_end(limit);
        let expr_hi = if end > start && self.is_p(end - 1, ';') {
            end - 1
        } else {
            end
        };
        let expr = self.parse_expr_range(self.pos, expr_hi);
        self.pos = end;
        Stmt::Expr(ExprStmt {
            expr,
            span: Span { lo: start, hi: end },
        })
    }

    fn parse_let(&mut self, start: usize, limit: usize) -> Stmt {
        let let_line = self.line(self.pos);
        let end = self.scan_stmt_end(limit);
        // Find the `=` separating pattern(+type) from initializer: a `=`
        // at all-delimiter depth 0 that is not `==`/`<=`/`>=`/`!=`/`=>`.
        let mut depth = 0usize;
        let mut eq = None;
        let mut i = self.pos + 1;
        while i < end {
            match self.kindof(i) {
                Some(TokKind::Punct('('))
                | Some(TokKind::Punct('['))
                | Some(TokKind::Punct('{'))
                | Some(TokKind::Punct('<')) => depth += 1,
                Some(TokKind::Punct(')'))
                | Some(TokKind::Punct(']'))
                | Some(TokKind::Punct('}'))
                | Some(TokKind::Punct('>')) => depth = depth.saturating_sub(1),
                Some(TokKind::Punct('=')) if depth == 0 => {
                    let prev_glued = i > 0
                        && self.adjacent(i - 1)
                        && matches!(
                            self.kindof(i - 1),
                            Some(TokKind::Punct('='))
                                | Some(TokKind::Punct('<'))
                                | Some(TokKind::Punct('>'))
                                | Some(TokKind::Punct('!'))
                        );
                    let next_glued = self.adjacent(i)
                        && matches!(
                            self.kindof(i + 1),
                            Some(TokKind::Punct('=')) | Some(TokKind::Punct('>'))
                        );
                    if !prev_glued && !next_glued {
                        eq = Some(i);
                        break;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        // Pattern region: up to the type `:` (depth 0) or the `=`.
        let pat_hi = {
            let bound = eq.unwrap_or(end);
            let mut d = 0usize;
            let mut colon = bound;
            let mut j = self.pos + 1;
            while j < bound {
                match self.kindof(j) {
                    Some(TokKind::Punct('('))
                    | Some(TokKind::Punct('['))
                    | Some(TokKind::Punct('{'))
                    | Some(TokKind::Punct('<')) => d += 1,
                    Some(TokKind::Punct(')'))
                    | Some(TokKind::Punct(']'))
                    | Some(TokKind::Punct('}'))
                    | Some(TokKind::Punct('>')) => d = d.saturating_sub(1),
                    Some(TokKind::Punct(':')) if d == 0 => {
                        // `::` path separators are not the type colon.
                        let double = (self.is_p(j + 1, ':') && self.adjacent(j))
                            || (j > 0 && self.is_p(j - 1, ':') && self.adjacent(j - 1));
                        if !double {
                            colon = j;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            colon
        };
        let names = self.pattern_idents(self.pos + 1, pat_hi);
        let init = eq.map(|e| {
            let init_hi = if end > e && self.is_p(end - 1, ';') {
                end - 1
            } else {
                end
            };
            self.parse_expr_range(e + 1, init_hi)
        });
        self.pos = end;
        Stmt::Let(LetStmt {
            names,
            init,
            span: Span { lo: start, hi: end },
            line: let_line,
        })
    }

    /// Lowercase idents in a pattern region (bindings, over-approximate:
    /// type primitives may slip in, which only widens "bound" sets).
    fn pattern_idents(&self, lo: usize, hi: usize) -> Vec<String> {
        let mut names = Vec::new();
        for i in lo..hi.min(self.sig.len()) {
            if let Some(w) = self.ident(i) {
                if w.starts_with(|c: char| c.is_ascii_lowercase() || c == '_')
                    && !PATTERN_NON_BINDING.contains(&w)
                    && !names.iter().any(|n| n == w)
                {
                    // Skip path segments like `foo::Bar` heads.
                    let path_head = self.is_p(i + 1, ':') && self.is_p(i + 2, ':');
                    if !path_head {
                        names.push(w.to_string());
                    }
                }
            }
        }
        names
    }

    fn parse_expr_range(&mut self, lo: usize, hi: usize) -> Expr {
        let saved = self.pos;
        self.pos = lo;
        let e = if lo >= hi {
            Expr {
                kind: ExprKind::Unknown,
                span: Span { lo, hi },
            }
        } else {
            self.parse_expr_bp(hi, 0, true)
        };
        self.pos = saved;
        e
    }

    /// Pratt loop: prefix/postfix then binary operators by binding power.
    fn parse_expr_bp(&mut self, hi: usize, min_bp: u8, allow_struct: bool) -> Expr {
        let start = self.pos;
        let mut lhs = self.parse_prefix(hi, allow_struct);
        loop {
            if self.pos >= hi {
                break;
            }
            // `as` casts bind tightest of the infix forms.
            if self.is_kw(self.pos, "as") {
                self.pos += 1;
                // Consume the type path: idents, `::`, and one angle group.
                while self.pos < hi {
                    if self.ident(self.pos).is_some() {
                        self.pos += 1;
                        if self.is_p(self.pos, ':') && self.is_p(self.pos + 1, ':') {
                            self.pos += 2;
                            continue;
                        }
                        break;
                    }
                    break;
                }
                lhs = Expr {
                    span: Span {
                        lo: start,
                        hi: self.pos,
                    },
                    kind: ExprKind::Cast {
                        inner: Box::new(lhs),
                    },
                };
                continue;
            }
            if min_bp == 0 {
                if let Some((op, len)) = self.assign_op_at(self.pos) {
                    self.pos += len;
                    let value = self.parse_expr_bp(hi, 0, allow_struct);
                    lhs = Expr {
                        span: Span {
                            lo: start,
                            hi: self.pos,
                        },
                        kind: ExprKind::Assign {
                            op,
                            target: Box::new(lhs),
                            value: Box::new(value),
                        },
                    };
                    continue;
                }
            }
            let Some((op, bp, len)) = self.binary_op_at(self.pos) else {
                break;
            };
            if bp < min_bp {
                break;
            }
            self.pos += len;
            let rhs = self.parse_expr_bp(hi, bp + 1, allow_struct);
            lhs = Expr {
                span: Span {
                    lo: start,
                    hi: self.pos,
                },
                kind: ExprKind::Binary {
                    op: op.to_string(),
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
            };
        }
        lhs
    }

    /// Compound/plain assignment operator at `i`: `(prefix-op, token count)`.
    fn assign_op_at(&self, i: usize) -> Option<(Option<String>, usize)> {
        match self.kindof(i)? {
            TokKind::Punct('=') => {
                let next_glued = self.adjacent(i)
                    && matches!(
                        self.kindof(i + 1),
                        Some(TokKind::Punct('=')) | Some(TokKind::Punct('>'))
                    );
                if next_glued {
                    None
                } else {
                    Some((None, 1))
                }
            }
            TokKind::Punct(c) if "+-*/%^".contains(c) => {
                (self.adjacent(i) && self.is_p(i + 1, '=')).then(|| (Some(c.to_string()), 2))
            }
            TokKind::Punct('&') => {
                (self.adjacent(i) && self.is_p(i + 1, '=')).then(|| (Some("&".to_string()), 2))
            }
            TokKind::Punct('|') => {
                (self.adjacent(i) && self.is_p(i + 1, '=')).then(|| (Some("|".to_string()), 2))
            }
            _ => None,
        }
    }

    /// Binary operator at `i`: `(text, binding power, token count)`.
    fn binary_op_at(&self, i: usize) -> Option<(&'static str, u8, usize)> {
        let glued = |j: usize, c: char| self.adjacent(j) && self.is_p(j + 1, c);
        match self.kindof(i)? {
            TokKind::Punct('|') if glued(i, '|') => Some(("||", 1, 2)),
            TokKind::Punct('&') if glued(i, '&') => Some(("&&", 2, 2)),
            TokKind::Punct('=') if glued(i, '=') => Some(("==", 3, 2)),
            TokKind::Punct('!') if glued(i, '=') => Some(("!=", 3, 2)),
            TokKind::Punct('<') if glued(i, '=') => Some(("<=", 3, 2)),
            TokKind::Punct('>') if glued(i, '=') => Some((">=", 3, 2)),
            TokKind::Punct('.') if glued(i, '.') => {
                if self.adjacent(i + 1) && self.is_p(i + 2, '=') {
                    Some(("..=", 1, 3))
                } else {
                    Some(("..", 1, 2))
                }
            }
            TokKind::Punct('<') if glued(i, '<') => Some(("<<", 7, 2)),
            TokKind::Punct('>') if glued(i, '>') => Some((">>", 7, 2)),
            TokKind::Punct('<') => Some(("<", 3, 1)),
            TokKind::Punct('>') => Some((">", 3, 1)),
            TokKind::Punct('|') => Some(("|", 4, 1)),
            TokKind::Punct('^') => Some(("^", 5, 1)),
            TokKind::Punct('&') => Some(("&", 6, 1)),
            TokKind::Punct('+') => Some(("+", 8, 1)),
            TokKind::Punct('-') if !glued(i, '>') => Some(("-", 8, 1)),
            TokKind::Punct('*') => Some(("*", 9, 1)),
            TokKind::Punct('/') => Some(("/", 9, 1)),
            TokKind::Punct('%') => Some(("%", 9, 1)),
            _ => None,
        }
    }

    fn parse_prefix(&mut self, hi: usize, allow_struct: bool) -> Expr {
        let start = self.pos;
        if self.pos >= hi {
            return Expr {
                kind: ExprKind::Unknown,
                span: Span {
                    lo: start,
                    hi: start,
                },
            };
        }
        self.skip_attrs(hi);
        let mut e = match self.kindof(self.pos) {
            // In operand position `&` is always a borrow (the binary loop
            // never hands an operator token to `parse_prefix`).
            Some(TokKind::Punct('&')) => {
                self.pos += 1;
                let mutable = self.is_kw(self.pos, "mut");
                if mutable {
                    self.pos += 1;
                }
                let inner = self.parse_prefix(hi, allow_struct);
                Expr {
                    span: Span {
                        lo: start,
                        hi: self.pos,
                    },
                    kind: ExprKind::Ref {
                        mutable,
                        inner: Box::new(inner),
                    },
                }
            }
            Some(TokKind::Punct(c)) if c == '-' || c == '!' || c == '*' => {
                self.pos += 1;
                let inner = self.parse_prefix(hi, allow_struct);
                Expr {
                    span: Span {
                        lo: start,
                        hi: self.pos,
                    },
                    kind: ExprKind::Unary {
                        op: c,
                        inner: Box::new(inner),
                    },
                }
            }
            Some(TokKind::Punct('|')) => self.parse_closure(hi),
            Some(TokKind::Punct('(')) | Some(TokKind::Punct('[')) => {
                let open = self.pos;
                let close = self.match_delim(open, hi).unwrap_or(hi.saturating_sub(1));
                let args = self.parse_delim_args(open, close);
                self.pos = close + 1;
                Expr {
                    span: Span {
                        lo: start,
                        hi: self.pos,
                    },
                    kind: ExprKind::Tuple(args),
                }
            }
            Some(TokKind::Punct('{')) => {
                let block = self.parse_block(hi);
                let end = block.span.hi;
                Expr {
                    span: Span { lo: start, hi: end },
                    kind: ExprKind::Block(block),
                }
            }
            Some(TokKind::Ident) => {
                let w = self.ident(self.pos).unwrap_or("");
                match w {
                    "move" => {
                        self.pos += 1;
                        if self.is_p(self.pos, '|') {
                            self.parse_closure(hi)
                        } else {
                            Expr {
                                span: Span {
                                    lo: start,
                                    hi: self.pos,
                                },
                                kind: ExprKind::Unknown,
                            }
                        }
                    }
                    "if" | "while" => self.parse_cond_flow(hi),
                    "for" => self.parse_for(hi),
                    "loop" | "unsafe" => {
                        self.pos += 1;
                        if self.is_p(self.pos, '{') {
                            let block = self.parse_block(hi);
                            let end = block.span.hi;
                            Expr {
                                span: Span { lo: start, hi: end },
                                kind: ExprKind::Flow {
                                    kw: "loop".to_string(),
                                    bound: Vec::new(),
                                    children: vec![Expr {
                                        span: block.span,
                                        kind: ExprKind::Block(block),
                                    }],
                                },
                            }
                        } else {
                            Expr {
                                span: Span {
                                    lo: start,
                                    hi: self.pos,
                                },
                                kind: ExprKind::Unknown,
                            }
                        }
                    }
                    "match" => self.parse_match(hi),
                    "return" | "break" | "continue" => {
                        let kw = w.to_string();
                        self.pos += 1;
                        let mut children = Vec::new();
                        let ends = self.pos >= hi
                            || self.is_p(self.pos, ';')
                            || self.is_p(self.pos, ',')
                            || self.is_p(self.pos, ')')
                            || self.is_p(self.pos, '}');
                        if !ends && kw != "continue" {
                            children.push(self.parse_expr_bp(hi, 1, allow_struct));
                        }
                        Expr {
                            span: Span {
                                lo: start,
                                hi: self.pos,
                            },
                            kind: ExprKind::Flow {
                                kw,
                                bound: Vec::new(),
                                children,
                            },
                        }
                    }
                    _ => self.parse_path_expr(hi, allow_struct),
                }
            }
            Some(TokKind::Number { .. })
            | Some(TokKind::Str)
            | Some(TokKind::RawStr)
            | Some(TokKind::Char)
            | Some(TokKind::Lifetime) => {
                self.pos += 1;
                Expr {
                    span: Span {
                        lo: start,
                        hi: self.pos,
                    },
                    kind: ExprKind::Lit,
                }
            }
            _ => {
                self.pos += 1;
                Expr {
                    span: Span {
                        lo: start,
                        hi: self.pos,
                    },
                    kind: ExprKind::Unknown,
                }
            }
        };
        // Postfix chain: `.method(..)`, `.field`, `(..)`, `[..]`, `?`.
        loop {
            if self.pos >= hi {
                break;
            }
            if self.is_p(self.pos, '.')
                && !(self.adjacent(self.pos) && self.is_p(self.pos + 1, '.'))
            {
                if let Some(name) = self.ident(self.pos + 1) {
                    let name = name.to_string();
                    let name_idx = self.pos + 1;
                    self.pos += 2;
                    // Turbofish on the method.
                    if self.is_p(self.pos, ':') && self.is_p(self.pos + 1, ':') {
                        self.pos += 2;
                        if self.is_p(self.pos, '<') {
                            if let Some(c) = self.match_angle(self.pos, hi) {
                                self.pos = c + 1;
                            }
                        }
                    }
                    if self.is_p(self.pos, '(') {
                        let open = self.pos;
                        let close = self.match_delim(open, hi).unwrap_or(hi.saturating_sub(1));
                        let args = self.parse_delim_args(open, close);
                        self.pos = close + 1;
                        e = Expr {
                            span: Span {
                                lo: start,
                                hi: self.pos,
                            },
                            kind: ExprKind::Method {
                                recv: Box::new(e),
                                name,
                                name_idx,
                                args,
                            },
                        };
                    } else {
                        e = Expr {
                            span: Span {
                                lo: start,
                                hi: self.pos,
                            },
                            kind: ExprKind::Field {
                                recv: Box::new(e),
                                name,
                            },
                        };
                    }
                    continue;
                }
                if matches!(self.kindof(self.pos + 1), Some(TokKind::Number { .. })) {
                    let name = self
                        .sig
                        .get(self.pos + 1)
                        .map(|t| t.text(self.src).to_string())
                        .unwrap_or_default();
                    self.pos += 2;
                    e = Expr {
                        span: Span {
                            lo: start,
                            hi: self.pos,
                        },
                        kind: ExprKind::Field {
                            recv: Box::new(e),
                            name,
                        },
                    };
                    continue;
                }
                break;
            }
            if self.is_p(self.pos, '(') {
                let open = self.pos;
                let close = self.match_delim(open, hi).unwrap_or(hi.saturating_sub(1));
                let args = self.parse_delim_args(open, close);
                self.pos = close + 1;
                e = Expr {
                    span: Span {
                        lo: start,
                        hi: self.pos,
                    },
                    kind: ExprKind::Call {
                        callee: Box::new(e),
                        args,
                    },
                };
                continue;
            }
            if self.is_p(self.pos, '[') {
                let open = self.pos;
                let close = self.match_delim(open, hi).unwrap_or(hi.saturating_sub(1));
                let index = self.parse_expr_range(open + 1, close);
                self.pos = close + 1;
                e = Expr {
                    span: Span {
                        lo: start,
                        hi: self.pos,
                    },
                    kind: ExprKind::Index {
                        recv: Box::new(e),
                        index: Box::new(index),
                    },
                };
                continue;
            }
            if self.is_p(self.pos, '?') {
                self.pos += 1;
                e.span.hi = self.pos;
                continue;
            }
            break;
        }
        e
    }

    fn parse_closure(&mut self, hi: usize) -> Expr {
        let start = self.pos;
        // Params live between this `|` and the matching `|` (depth 0).
        let open = self.pos;
        self.pos += 1;
        let mut depth = 0usize;
        let mut close = open;
        let mut j = open + 1;
        while j < hi {
            match self.kindof(j) {
                Some(TokKind::Punct('('))
                | Some(TokKind::Punct('['))
                | Some(TokKind::Punct('{'))
                | Some(TokKind::Punct('<')) => depth += 1,
                Some(TokKind::Punct(')'))
                | Some(TokKind::Punct(']'))
                | Some(TokKind::Punct('}'))
                | Some(TokKind::Punct('>')) => depth = depth.saturating_sub(1),
                Some(TokKind::Punct('|')) if depth == 0 => {
                    close = j;
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        if close == open {
            // No closing `|`: degrade to Unknown.
            return Expr {
                span: Span {
                    lo: start,
                    hi: self.pos,
                },
                kind: ExprKind::Unknown,
            };
        }
        // Param names: idents outside type ascriptions.
        let mut params = Vec::new();
        let mut in_type = false;
        let mut d = 0usize;
        for k in open + 1..close {
            match self.kindof(k) {
                Some(TokKind::Punct('('))
                | Some(TokKind::Punct('['))
                | Some(TokKind::Punct('{'))
                | Some(TokKind::Punct('<')) => d += 1,
                Some(TokKind::Punct(')'))
                | Some(TokKind::Punct(']'))
                | Some(TokKind::Punct('}'))
                | Some(TokKind::Punct('>')) => d = d.saturating_sub(1),
                Some(TokKind::Punct(',')) if d == 0 => in_type = false,
                Some(TokKind::Punct(':')) if d == 0 => in_type = true,
                Some(TokKind::Ident) if !in_type && d == 0 => {
                    if let Some(w) = self.ident(k) {
                        if w.starts_with(|c: char| c.is_ascii_lowercase() || c == '_')
                            && !PATTERN_NON_BINDING.contains(&w)
                        {
                            params.push(w.to_string());
                        }
                    }
                }
                _ => {}
            }
        }
        self.pos = close + 1;
        // Optional `-> T` before a braced body.
        if self.is_p(self.pos, '-') && self.is_p(self.pos + 1, '>') && self.adjacent(self.pos) {
            while self.pos < hi && !self.is_p(self.pos, '{') {
                self.pos += 1;
            }
        }
        let body = if self.is_p(self.pos, '{') {
            let block = self.parse_block(hi);
            Expr {
                span: block.span,
                kind: ExprKind::Block(block),
            }
        } else {
            self.parse_expr_bp(hi, 0, true)
        };
        Expr {
            span: Span {
                lo: start,
                hi: self.pos,
            },
            kind: ExprKind::Closure {
                params,
                body: Box::new(body),
            },
        }
    }

    /// `if`/`while`, with `let`-pattern headers.
    fn parse_cond_flow(&mut self, hi: usize) -> Expr {
        let start = self.pos;
        let kw = self.ident(self.pos).unwrap_or("if").to_string();
        self.pos += 1;
        let mut bound = Vec::new();
        if self.is_kw(self.pos, "let") {
            // `if let PAT = EXPR { .. }`: bound idents come from PAT.
            self.pos += 1;
            let pat_lo = self.pos;
            let mut depth = 0usize;
            while self.pos < hi {
                match self.kindof(self.pos) {
                    Some(TokKind::Punct('('))
                    | Some(TokKind::Punct('['))
                    | Some(TokKind::Punct('{'))
                    | Some(TokKind::Punct('<')) => depth += 1,
                    Some(TokKind::Punct(')'))
                    | Some(TokKind::Punct(']'))
                    | Some(TokKind::Punct('}'))
                    | Some(TokKind::Punct('>')) => depth = depth.saturating_sub(1),
                    Some(TokKind::Punct('=')) if depth == 0 => break,
                    None => break,
                    _ => {}
                }
                self.pos += 1;
            }
            bound = self.pattern_idents(pat_lo, self.pos);
            if self.is_p(self.pos, '=') {
                self.pos += 1;
            }
        }
        let mut children = Vec::new();
        if !self.is_p(self.pos, '{') {
            children.push(self.parse_expr_bp(hi, 1, false));
        }
        if self.is_p(self.pos, '{') {
            let block = self.parse_block(hi);
            children.push(Expr {
                span: block.span,
                kind: ExprKind::Block(block),
            });
        }
        if kw == "if" && self.is_kw(self.pos, "else") {
            self.pos += 1;
            if self.is_kw(self.pos, "if") {
                children.push(self.parse_cond_flow(hi));
            } else if self.is_p(self.pos, '{') {
                let block = self.parse_block(hi);
                children.push(Expr {
                    span: block.span,
                    kind: ExprKind::Block(block),
                });
            }
        }
        Expr {
            span: Span {
                lo: start,
                hi: self.pos,
            },
            kind: ExprKind::Flow {
                kw,
                bound,
                children,
            },
        }
    }

    fn parse_for(&mut self, hi: usize) -> Expr {
        let start = self.pos;
        self.pos += 1;
        let pat_lo = self.pos;
        while self.pos < hi && !self.is_kw(self.pos, "in") {
            self.pos += 1;
        }
        let bound = self.pattern_idents(pat_lo, self.pos);
        if self.is_kw(self.pos, "in") {
            self.pos += 1;
        }
        let mut children = Vec::new();
        if !self.is_p(self.pos, '{') {
            children.push(self.parse_expr_bp(hi, 1, false));
        }
        if self.is_p(self.pos, '{') {
            let block = self.parse_block(hi);
            children.push(Expr {
                span: block.span,
                kind: ExprKind::Block(block),
            });
        }
        Expr {
            span: Span {
                lo: start,
                hi: self.pos,
            },
            kind: ExprKind::Flow {
                kw: "for".to_string(),
                bound,
                children,
            },
        }
    }

    fn parse_match(&mut self, hi: usize) -> Expr {
        let start = self.pos;
        self.pos += 1;
        let mut bound = Vec::new();
        let mut children = Vec::new();
        if !self.is_p(self.pos, '{') {
            children.push(self.parse_expr_bp(hi, 1, false));
        }
        if self.is_p(self.pos, '{') {
            let open = self.pos;
            let close = self.match_delim(open, hi).unwrap_or(hi.saturating_sub(1));
            self.pos = open + 1;
            while self.pos < close {
                let before = self.pos;
                // Pattern: tokens up to the depth-0 `=>`.
                let pat_lo = self.pos;
                let mut depth = 0usize;
                while self.pos < close {
                    match self.kindof(self.pos) {
                        Some(TokKind::Punct('('))
                        | Some(TokKind::Punct('['))
                        | Some(TokKind::Punct('{')) => depth += 1,
                        Some(TokKind::Punct(')'))
                        | Some(TokKind::Punct(']'))
                        | Some(TokKind::Punct('}')) => depth = depth.saturating_sub(1),
                        Some(TokKind::Punct('='))
                            if depth == 0
                                && self.adjacent(self.pos)
                                && self.is_p(self.pos + 1, '>') =>
                        {
                            break;
                        }
                        _ => {}
                    }
                    self.pos += 1;
                }
                for n in self.pattern_idents(pat_lo, self.pos) {
                    if !bound.contains(&n) {
                        bound.push(n);
                    }
                }
                if self.pos < close {
                    self.pos += 2; // `=>`
                }
                if self.pos < close {
                    children.push(self.parse_expr_bp(close, 0, true));
                }
                if self.is_p(self.pos, ',') {
                    self.pos += 1;
                }
                if self.pos <= before {
                    self.pos = before + 1;
                }
            }
            self.pos = close + 1;
        }
        Expr {
            span: Span {
                lo: start,
                hi: self.pos,
            },
            kind: ExprKind::Flow {
                kw: "match".to_string(),
                bound,
                children,
            },
        }
    }

    /// A path, then a macro call, struct literal, or plain path.
    fn parse_path_expr(&mut self, hi: usize, allow_struct: bool) -> Expr {
        let start = self.pos;
        let mut segs = Vec::new();
        while let Some(w) = self.ident(self.pos) {
            segs.push(w.to_string());
            self.pos += 1;
            if self.is_p(self.pos, ':') && self.is_p(self.pos + 1, ':') && self.adjacent(self.pos) {
                self.pos += 2;
                if self.is_p(self.pos, '<') {
                    if let Some(c) = self.match_angle(self.pos, hi) {
                        self.pos = c + 1;
                    }
                }
                continue;
            }
            break;
        }
        if segs.is_empty() {
            self.pos += 1;
            return Expr {
                span: Span {
                    lo: start,
                    hi: self.pos,
                },
                kind: ExprKind::Unknown,
            };
        }
        // Macro call.
        if self.is_p(self.pos, '!')
            && (self.is_p(self.pos + 1, '(')
                || self.is_p(self.pos + 1, '[')
                || self.is_p(self.pos + 1, '{'))
        {
            let name = segs.last().cloned().unwrap_or_default();
            let open = self.pos + 1;
            let close = self.match_delim(open, hi).unwrap_or(hi.saturating_sub(1));
            let args = self.parse_delim_args(open, close);
            self.pos = close + 1;
            return Expr {
                span: Span {
                    lo: start,
                    hi: self.pos,
                },
                kind: ExprKind::MacroCall { name, args },
            };
        }
        // Struct literal: `CapitalizedPath { .. }`.
        let last_caps = segs
            .last()
            .map(|s| s.starts_with(|c: char| c.is_ascii_uppercase()))
            .unwrap_or(false);
        if allow_struct && last_caps && self.is_p(self.pos, '{') {
            let open = self.pos;
            let close = self.match_delim(open, hi).unwrap_or(hi.saturating_sub(1));
            let mut fields = Vec::new();
            // Split on depth-0 commas; each piece is `name: expr` or shorthand.
            let mut piece_lo = open + 1;
            let mut depth = 0usize;
            let mut k = open + 1;
            while k <= close {
                let at_end = k == close;
                let split = at_end || (depth == 0 && self.kindof(k) == Some(TokKind::Punct(',')));
                if split {
                    let mut lo = piece_lo;
                    if self.ident(lo).is_some() && self.is_p(lo + 1, ':') && !self.is_p(lo + 2, ':')
                    {
                        lo += 2;
                    }
                    if lo < k {
                        fields.push(self.parse_expr_range(lo, k));
                    }
                    piece_lo = k + 1;
                } else {
                    match self.kindof(k) {
                        Some(TokKind::Punct('('))
                        | Some(TokKind::Punct('['))
                        | Some(TokKind::Punct('{')) => depth += 1,
                        Some(TokKind::Punct(')'))
                        | Some(TokKind::Punct(']'))
                        | Some(TokKind::Punct('}')) => depth = depth.saturating_sub(1),
                        _ => {}
                    }
                }
                k += 1;
            }
            self.pos = close + 1;
            return Expr {
                span: Span {
                    lo: start,
                    hi: self.pos,
                },
                kind: ExprKind::StructLit { path: segs, fields },
            };
        }
        Expr {
            span: Span {
                lo: start,
                hi: self.pos,
            },
            kind: ExprKind::Path(segs),
        }
    }

    /// Splits `(open..close)` on depth-0 commas and parses each piece.
    fn parse_delim_args(&mut self, open: usize, close: usize) -> Vec<Expr> {
        let mut args = Vec::new();
        let mut piece_lo = open + 1;
        let mut depth = 0usize;
        let mut k = open + 1;
        while k <= close {
            let at_end = k == close;
            let split = at_end || (depth == 0 && self.kindof(k) == Some(TokKind::Punct(',')));
            if split {
                if piece_lo < k {
                    args.push(self.parse_expr_range(piece_lo, k));
                }
                piece_lo = k + 1;
            } else {
                match self.kindof(k) {
                    Some(TokKind::Punct('('))
                    | Some(TokKind::Punct('['))
                    | Some(TokKind::Punct('{')) => depth += 1,
                    Some(TokKind::Punct(')'))
                    | Some(TokKind::Punct(']'))
                    | Some(TokKind::Punct('}')) => depth = depth.saturating_sub(1),
                    _ => {}
                }
            }
            k += 1;
        }
        args
    }
}

/// Visits every `fn` item in the tree (including fns nested in mods,
/// impls, and statement position).
pub fn for_each_fn<'ast>(items: &'ast [Item], f: &mut dyn FnMut(&'ast FnItem)) {
    for item in items {
        match item {
            Item::Fn(func) => {
                f(func);
                if let Some(body) = &func.body {
                    for_each_fn_in_block(body, f);
                }
            }
            Item::Mod(m) => for_each_fn(&m.items, f),
            Item::Other(_) => {}
        }
    }
}

fn for_each_fn_in_block<'ast>(block: &'ast Block, f: &mut dyn FnMut(&'ast FnItem)) {
    for stmt in &block.stmts {
        if let Stmt::Item(item) = stmt {
            for_each_fn(std::slice::from_ref(item.as_ref()), f);
        }
    }
}

/// Pre-order walk over an expression tree.
pub fn walk_expr<'ast>(e: &'ast Expr, f: &mut dyn FnMut(&'ast Expr)) {
    f(e);
    match &e.kind {
        ExprKind::Path(_) | ExprKind::Lit | ExprKind::Unknown => {}
        ExprKind::Tuple(xs) => xs.iter().for_each(|x| walk_expr(x, f)),
        ExprKind::Call { callee, args } => {
            walk_expr(callee, f);
            args.iter().for_each(|x| walk_expr(x, f));
        }
        ExprKind::MacroCall { args, .. } => args.iter().for_each(|x| walk_expr(x, f)),
        ExprKind::Method { recv, args, .. } => {
            walk_expr(recv, f);
            args.iter().for_each(|x| walk_expr(x, f));
        }
        ExprKind::Field { recv, .. } => walk_expr(recv, f),
        ExprKind::Index { recv, index } => {
            walk_expr(recv, f);
            walk_expr(index, f);
        }
        ExprKind::Unary { inner, .. } | ExprKind::Ref { inner, .. } | ExprKind::Cast { inner } => {
            walk_expr(inner, f)
        }
        ExprKind::Binary { lhs, rhs, .. } => {
            walk_expr(lhs, f);
            walk_expr(rhs, f);
        }
        ExprKind::Assign { target, value, .. } => {
            walk_expr(target, f);
            walk_expr(value, f);
        }
        ExprKind::Closure { body, .. } => walk_expr(body, f),
        ExprKind::Block(b) => walk_block_exprs(b, f),
        ExprKind::Flow { children, .. } => children.iter().for_each(|x| walk_expr(x, f)),
        ExprKind::StructLit { fields, .. } => fields.iter().for_each(|x| walk_expr(x, f)),
    }
}

/// Pre-order walk over every statement in a block tree, including the
/// statements of blocks nested inside expressions (loop bodies, match
/// arms, closure bodies). Statements of nested `fn` items are *not*
/// visited — enumerate those via [`for_each_fn`].
pub fn for_each_stmt<'ast>(block: &'ast Block, f: &mut dyn FnMut(&'ast Stmt)) {
    for stmt in &block.stmts {
        f(stmt);
    }
    walk_block_exprs(block, &mut |e| {
        if let ExprKind::Block(b) = &e.kind {
            for stmt in &b.stmts {
                f(stmt);
            }
        }
    });
}

/// Walks every expression in a block (skipping nested items).
pub fn walk_block_exprs<'ast>(block: &'ast Block, f: &mut dyn FnMut(&'ast Expr)) {
    for stmt in &block.stmts {
        match stmt {
            Stmt::Let(l) => {
                if let Some(init) = &l.init {
                    walk_expr(init, f);
                }
            }
            Stmt::Expr(e) => walk_expr(&e.expr, f),
            Stmt::Item(_) => {}
        }
    }
}

/// The structural safety property the propcheck suite drives: top-level
/// item spans tile `[0, sig_len)` exactly, every block's statements tile
/// the inside of its braces, and child spans nest inside parents.
pub fn check_coverage(ast: &Ast, sig_len: usize) -> Result<(), String> {
    let mut cursor = 0usize;
    for item in &ast.items {
        let s = item.span();
        if s.lo != cursor {
            return Err(format!(
                "item span gap: expected lo {cursor}, got {}..{}",
                s.lo, s.hi
            ));
        }
        if s.hi < s.lo || s.hi > sig_len {
            return Err(format!(
                "item span out of bounds: {}..{} (len {sig_len})",
                s.lo, s.hi
            ));
        }
        cursor = s.hi;
        check_item(item)?;
    }
    if cursor != sig_len {
        return Err(format!(
            "items cover 0..{cursor}, file has {sig_len} tokens"
        ));
    }
    Ok(())
}

fn check_item(item: &Item) -> Result<(), String> {
    match item {
        Item::Fn(f) => {
            if let Some(body) = &f.body {
                if body.span.lo < f.span.lo || body.span.hi > f.span.hi {
                    return Err(format!(
                        "fn `{}` body {}..{} escapes item {}..{}",
                        f.name, body.span.lo, body.span.hi, f.span.lo, f.span.hi
                    ));
                }
                check_block(body)?;
            }
            Ok(())
        }
        Item::Mod(m) => {
            let mut cursor = None;
            for it in &m.items {
                let s = it.span();
                if s.lo < m.span.lo || s.hi > m.span.hi {
                    return Err(format!(
                        "mod `{}` child {}..{} escapes {}..{}",
                        m.name, s.lo, s.hi, m.span.lo, m.span.hi
                    ));
                }
                if let Some(c) = cursor {
                    if s.lo != c {
                        return Err(format!(
                            "mod `{}` child gap: expected {c}, got {}",
                            m.name, s.lo
                        ));
                    }
                }
                cursor = Some(s.hi);
                check_item(it)?;
            }
            Ok(())
        }
        Item::Other(_) => Ok(()),
    }
}

fn check_block(block: &Block) -> Result<(), String> {
    let inner_lo = block.span.lo + 1;
    let inner_hi = block.span.hi.saturating_sub(1);
    let mut cursor = inner_lo;
    for stmt in &block.stmts {
        let s = stmt.span();
        if s.lo != cursor {
            return Err(format!(
                "stmt gap in block {}..{}: expected {cursor}, got {}..{}",
                block.span.lo, block.span.hi, s.lo, s.hi
            ));
        }
        if s.hi > inner_hi {
            return Err(format!(
                "stmt {}..{} escapes block {}..{}",
                s.lo, s.hi, block.span.lo, block.span.hi
            ));
        }
        cursor = s.hi;
        if let Stmt::Item(item) = stmt {
            check_item(item)?;
        }
    }
    if cursor != inner_hi && !(block.stmts.is_empty() && inner_lo >= inner_hi) {
        return Err(format!(
            "stmts cover ..{cursor}, block interior ends at {inner_hi}"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn ast_of(src: &str) -> (Ast, usize) {
        let toks = lex(src);
        let sig: Vec<Token> = toks
            .into_iter()
            .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
            .collect();
        let ast = parse(&sig, src);
        let len = sig.len();
        (ast, len)
    }

    fn fns(ast: &Ast) -> Vec<String> {
        let mut names = Vec::new();
        for_each_fn(&ast.items, &mut |f| names.push(f.name.clone()));
        names
    }

    #[test]
    fn parses_items_and_tiles_the_stream() {
        let src = "use std::fmt;\n\
                   pub struct S { x: f64 }\n\
                   impl S {\n    pub fn get(&self) -> f64 { self.x }\n}\n\
                   fn free(a: f64, b: f64) -> f64 { a + b }\n";
        let (ast, len) = ast_of(src);
        check_coverage(&ast, len).expect("coverage holds");
        assert_eq!(fns(&ast), ["get", "free"]);
    }

    #[test]
    fn let_bindings_and_method_chains() {
        let src = "fn f(xs: &[f64]) -> f64 {\n\
                       let total = xs.iter().copied().sum::<f64>();\n\
                       let (a, mut b) = (total, 0.0);\n\
                       b += a.ln();\n\
                       b\n\
                   }\n";
        let (ast, len) = ast_of(src);
        check_coverage(&ast, len).expect("coverage holds");
        let Item::Fn(f) = &ast.items[0] else {
            panic!("expected fn")
        };
        let body = f.body.as_ref().expect("has body");
        let Stmt::Let(l) = &body.stmts[0] else {
            panic!("expected let")
        };
        assert_eq!(l.names, ["total"]);
        let Stmt::Let(l2) = &body.stmts[1] else {
            panic!("expected let")
        };
        assert_eq!(l2.names, ["a", "b"]);
        // The compound assignment parses with the `.ln()` call visible.
        let Stmt::Expr(es) = &body.stmts[2] else {
            panic!("expected expr stmt")
        };
        let ExprKind::Assign { op, value, .. } = &es.expr.kind else {
            panic!("expected assign, got {:?}", es.expr.kind)
        };
        assert_eq!(op.as_deref(), Some("+"));
        let ExprKind::Method { name, .. } = &value.kind else {
            panic!("expected method call")
        };
        assert_eq!(name, "ln");
    }

    #[test]
    fn precedence_keeps_mul_above_add() {
        let src = "fn f(a: f64, b: f64, c: f64) -> f64 { a + b * c }";
        let (ast, _) = ast_of(src);
        let Item::Fn(f) = &ast.items[0] else {
            panic!("expected fn")
        };
        let body = f.body.as_ref().expect("has body");
        let Stmt::Expr(es) = &body.stmts[0] else {
            panic!("expected expr")
        };
        let ExprKind::Binary { op, rhs, .. } = &es.expr.kind else {
            panic!("expected binary")
        };
        assert_eq!(op, "+");
        let ExprKind::Binary { op: inner, .. } = &rhs.kind else {
            panic!("expected nested binary")
        };
        assert_eq!(inner, "*");
    }

    #[test]
    fn closures_record_params_and_bodies() {
        let src = "fn f(xs: &[f64]) -> Vec<f64> { xs.iter().map(|x| x * 2.0).collect() }";
        let (ast, len) = ast_of(src);
        check_coverage(&ast, len).expect("coverage holds");
        let mut saw_closure = false;
        for_each_fn(&ast.items, &mut |func| {
            if let Some(body) = &func.body {
                walk_block_exprs(body, &mut |e| {
                    if let ExprKind::Closure { params, .. } = &e.kind {
                        assert_eq!(params, &["x"]);
                        saw_closure = true;
                    }
                });
            }
        });
        assert!(saw_closure);
    }

    #[test]
    fn nested_closures_and_raw_strings_still_tile() {
        let src = r##"fn outer() -> usize {
    let f = |a: usize| {
        let g = move |b: usize| a + b;
        g(r#"not } a { brace"#.len())
    };
    f(1)
}
"##;
        let (ast, len) = ast_of(src);
        check_coverage(&ast, len).expect("coverage holds");
        assert_eq!(fns(&ast), ["outer"]);
    }

    #[test]
    fn match_and_if_let_record_bound_names() {
        let src = "fn f(o: Option<(f64, f64)>) -> f64 {\n\
                       if let Some((a, b)) = o { a + b } else { 0.0 };\n\
                       match o { Some((x, y)) => x * y, None => 0.0 }\n\
                   }\n";
        let (ast, len) = ast_of(src);
        check_coverage(&ast, len).expect("coverage holds");
        let Item::Fn(f) = &ast.items[0] else {
            panic!("expected fn")
        };
        let body = f.body.as_ref().expect("has body");
        let mut bound_sets = Vec::new();
        for stmt in &body.stmts {
            if let Stmt::Expr(es) = stmt {
                walk_expr(&es.expr, &mut |e| {
                    if let ExprKind::Flow { bound, .. } = &e.kind {
                        if !bound.is_empty() {
                            bound_sets.push(bound.clone());
                        }
                    }
                });
            }
        }
        assert!(bound_sets.iter().any(|b| b.contains(&"a".to_string())));
        assert!(bound_sets.iter().any(|b| b.contains(&"x".to_string())));
    }

    #[test]
    fn struct_literals_do_not_eat_blocks() {
        let src = "fn f() -> Point { Point { x: 1.0, y: 2.0 } }\nfn g() -> u32 { 3 }";
        let (ast, len) = ast_of(src);
        check_coverage(&ast, len).expect("coverage holds");
        assert_eq!(fns(&ast), ["f", "g"]);
    }

    #[test]
    fn parser_is_total_on_garbage() {
        for src in [
            "fn f( {{{",
            "let;;;",
            "impl",
            "match } {",
            "fn g() { if { } else",
            ") ] } ;",
            "fn h<T>(x: T) where T: Ord",
        ] {
            let (ast, _) = ast_of(src);
            // Totality: parse returned; spans stay in bounds even when
            // the tiling cannot (malformed input may not tile).
            for item in &ast.items {
                let s = item.span();
                assert!(s.lo <= s.hi);
            }
        }
    }
}
