//! `mvasd-lint`: in-house static analysis for the MVASD workspace.
//!
//! The MVASD hot path depends on invariants the compiler cannot see: log
//! domain arithmetic must stay inside the compensated log-sum-exp helpers
//! (naked `exp()`/`ln()` underflows the PAPER.md Alg. 2/3 recursions near
//! n = 1500), steady-state stepping must not allocate, and library crates
//! must not panic. Instead of pulling in dylint/clippy plugins — the
//! workspace builds offline with an empty registry — this crate is a small
//! hand-rolled lexer ([`lexer`]) plus a rule engine ([`rules`]) that walks
//! every `.rs` file and enforces those contracts, with a ratcheted
//! baseline ([`baseline`]) for the pre-existing `unwrap()` debt.
//!
//! # Quickstart
//!
//! ```text
//! cargo run -p mvasd-lint                # human-readable diagnostics
//! cargo run -p mvasd-lint -- --json     # machine-readable (mvasd-lint/1)
//! cargo run -p mvasd-lint -- --fix-baseline   # tighten lint-baseline.toml
//! ```
//!
//! The binary exits 0 when the tree is clean (modulo baseline), 1 on any
//! finding, 2 on usage/IO errors. `tests/lint_clean.rs` at the workspace
//! root runs the same engine in-process so `cargo test` enforces the
//! contracts without a separate CI step.

#![forbid(unsafe_code)]

pub mod ast;
pub mod baseline;
pub mod dataflow;
pub mod lexer;
pub mod rules;

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

use baseline::Baseline;
use mvasd_obsv::json;
use rules::Finding;

/// How a lint run is configured.
#[derive(Debug, Clone)]
pub struct Options {
    /// Workspace root to scan.
    pub root: PathBuf,
    /// Path to the ratchet file (usually `<root>/lint-baseline.toml`).
    pub baseline_path: PathBuf,
    /// Rewrite the baseline with the current (hopefully lower) counts.
    pub fix_baseline: bool,
}

impl Options {
    /// Options rooted at `root` with the conventional baseline path.
    pub fn at_root(root: impl Into<PathBuf>) -> Self {
        let root = root.into();
        let baseline_path = root.join("lint-baseline.toml");
        Self {
            root,
            baseline_path,
            fix_baseline: false,
        }
    }
}

/// A failed run (not "findings found" — real IO/parse errors).
#[derive(Debug)]
pub enum LintError {
    /// Reading a source file or the baseline failed.
    Io {
        /// The offending path.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The baseline file exists but does not parse.
    Baseline(baseline::BaselineError),
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintError::Io { path, source } => {
                write!(f, "io error on {}: {source}", path.display())
            }
            LintError::Baseline(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for LintError {}

/// One stale baseline entry: the tree now has fewer findings than the
/// ratchet allows, so the baseline should be tightened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaleEntry {
    /// Workspace-relative file.
    pub file: String,
    /// `rule:code` pair.
    pub rule_code: String,
    /// Count the baseline grandfathers.
    pub allowed: u64,
    /// Count actually found (strictly less than `allowed`).
    pub found: u64,
}

/// The result of a lint run.
#[derive(Debug, Clone, Default)]
pub struct Outcome {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Findings that fail the run (non-baselineable rules, plus L3 groups
    /// exceeding their grandfathered count).
    pub errors: Vec<Finding>,
    /// L3 findings absorbed by the baseline.
    pub baselined: u64,
    /// Baseline entries that are now looser than reality.
    pub stale: Vec<StaleEntry>,
    /// Total `L3:unwrap` sites the (possibly just-rewritten) baseline
    /// records — the number the acceptance ratchet watches.
    pub baseline_unwrap_total: u64,
}

impl Outcome {
    /// Whether the run passes.
    pub fn clean(&self) -> bool {
        self.errors.is_empty()
    }

    /// Per-`rule:code` error counts, sorted.
    pub fn error_counts(&self) -> BTreeMap<String, usize> {
        let mut m = BTreeMap::new();
        for f in &self.errors {
            *m.entry(f.rule_code()).or_insert(0) += 1;
        }
        m
    }

    /// Human-readable report: one `file:line: rule: message` per error
    /// plus a summary trailer.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.errors {
            out.push_str(&format!(
                "{}:{}: {}: {}\n",
                f.file,
                f.line,
                f.rule_code(),
                f.message
            ));
        }
        for s in &self.stale {
            out.push_str(&format!(
                "note: baseline is stale for {} {} (allows {}, found {}); \
                 run --fix-baseline to tighten\n",
                s.file, s.rule_code, s.allowed, s.found
            ));
        }
        out.push_str(&format!(
            "mvasd-lint: {} file(s), {} error(s), {} baselined finding(s), \
             {} unwrap site(s) in baseline\n",
            self.files_scanned,
            self.errors.len(),
            self.baselined,
            self.baseline_unwrap_total
        ));
        out
    }

    /// Machine-readable report (schema `mvasd-lint/1`), in the same
    /// hand-built JSON style as `mvasd-obsv`'s sinks and validated by its
    /// bundled parser in the test suite.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"schema\":\"mvasd-lint/1\"");
        out.push_str(&format!(",\"files_scanned\":{}", self.files_scanned));
        out.push_str(&format!(",\"clean\":{}", self.clean()));
        out.push_str(",\"errors\":[");
        for (i, f) in self.errors.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"code\":\"{}\",\
                 \"message\":\"{}\"}}",
                json::escape(&f.file),
                f.line,
                f.rule,
                f.code,
                json::escape(&f.message)
            ));
        }
        out.push(']');
        out.push_str(",\"error_counts\":{");
        for (i, (rc, n)) in self.error_counts().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{n}", json::escape(rc)));
        }
        out.push('}');
        out.push_str(&format!(",\"baselined\":{}", self.baselined));
        out.push_str(&format!(
            ",\"baseline_unwrap_total\":{}",
            self.baseline_unwrap_total
        ));
        out.push_str(&format!(",\"stale_baseline_entries\":{}", self.stale.len()));
        out.push('}');
        out
    }
}

/// Recursively collects the workspace's `.rs` files (skipping `target/`,
/// VCS metadata, and other dot-directories), sorted for deterministic
/// diagnostics.
pub fn collect_rs_files(root: &Path) -> Result<Vec<PathBuf>, LintError> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries = std::fs::read_dir(&dir).map_err(|source| LintError::Io {
            path: dir.clone(),
            source,
        })?;
        for entry in entries {
            let entry = entry.map_err(|source| LintError::Io {
                path: dir.clone(),
                source,
            })?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target" || name.starts_with('.') {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Runs the full pipeline: walk, lint, apply the baseline ratchet, and
/// (optionally) rewrite the baseline.
pub fn run(opts: &Options) -> Result<Outcome, LintError> {
    let files = collect_rs_files(&opts.root)?;
    let mut all: Vec<Finding> = Vec::new();
    for path in &files {
        let src = std::fs::read_to_string(path).map_err(|source| LintError::Io {
            path: path.clone(),
            source,
        })?;
        let rel = path
            .strip_prefix(&opts.root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        all.extend(rules::lint_file(&rel, &src));
    }

    let mut baseline = match std::fs::read_to_string(&opts.baseline_path) {
        Ok(text) => Baseline::parse(&text).map_err(LintError::Baseline)?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Baseline::empty(),
        Err(source) => {
            return Err(LintError::Io {
                path: opts.baseline_path.clone(),
                source,
            })
        }
    };

    if opts.fix_baseline {
        let mut tightened = Baseline::empty();
        for ((file, rule_code), group) in group_baselineable(&all) {
            tightened.set(&file, &rule_code, group.len() as u64);
        }
        std::fs::write(&opts.baseline_path, tightened.render()).map_err(|source| {
            LintError::Io {
                path: opts.baseline_path.clone(),
                source,
            }
        })?;
        baseline = tightened;
    }
    let mut outcome = apply_baseline(all, &baseline, files.len());
    outcome.baseline_unwrap_total = baseline.total_for("L3:unwrap");
    Ok(outcome)
}

/// Groups baselineable findings by `(file, rule:code)`.
fn group_baselineable(findings: &[Finding]) -> BTreeMap<(String, String), Vec<Finding>> {
    let mut groups: BTreeMap<(String, String), Vec<Finding>> = BTreeMap::new();
    for f in findings {
        if f.baselineable() {
            groups
                .entry((f.file.clone(), f.rule_code()))
                .or_default()
                .push(f.clone());
        }
    }
    groups
}

/// Splits findings into hard errors vs baseline-absorbed, recording stale
/// entries. Exposed for the in-process test harness (`tests/lint_clean.rs`
/// seeds synthetic findings through it).
pub fn apply_baseline(findings: Vec<Finding>, baseline: &Baseline, files: usize) -> Outcome {
    let mut outcome = Outcome {
        files_scanned: files,
        ..Outcome::default()
    };
    let mut grouped: BTreeMap<(String, String), Vec<Finding>> = BTreeMap::new();
    for f in findings {
        if f.baselineable() {
            grouped
                .entry((f.file.clone(), f.rule_code()))
                .or_default()
                .push(f);
        } else {
            outcome.errors.push(f);
        }
    }
    // Baseline entries with no current findings at all are maximally stale.
    for (file, rule_code, allowed) in baseline.entries() {
        if allowed > 0 && !grouped.contains_key(&(file.to_string(), rule_code.to_string())) {
            outcome.stale.push(StaleEntry {
                file: file.to_string(),
                rule_code: rule_code.to_string(),
                allowed,
                found: 0,
            });
        }
    }
    for ((file, rule_code), group) in grouped {
        let allowed = baseline.allowed(&file, &rule_code);
        let found = group.len() as u64;
        if found > allowed {
            for mut f in group {
                f.message
                    .push_str(&format!(" [{found} found, baseline allows {allowed}]"));
                outcome.errors.push(f);
            }
        } else {
            outcome.baselined += found;
            if found < allowed {
                outcome.stale.push(StaleEntry {
                    file,
                    rule_code,
                    allowed,
                    found,
                });
            }
        }
    }
    outcome.errors.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule, a.code).cmp(&(b.file.as_str(), b.line, b.rule, b.code))
    });
    outcome
}

/// Walks up from `start` to find the workspace root (a directory whose
/// `Cargo.toml` declares `[workspace]`).
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
