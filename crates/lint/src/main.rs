//! CLI entry point for `mvasd-lint`.
//!
//! ```text
//! cargo run -p mvasd-lint [-- [--json] [--fix-baseline] [--root DIR] [--baseline FILE]]
//! cargo run -p mvasd-lint -- --explain L7
//! ```
//!
//! Exit codes: 0 = clean, 1 = findings, 2 = usage or IO error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use mvasd_lint::rules::explain;
use mvasd_lint::{find_workspace_root, run, Options};

const USAGE: &str = "\
mvasd-lint: static analysis for the MVASD workspace contracts (L1-L9)

USAGE:
    mvasd-lint [OPTIONS]

OPTIONS:
    --json             emit a machine-readable report (schema mvasd-lint/1)
    --fix-baseline     rewrite lint-baseline.toml with the current counts
    --explain RULE     print the contract a rule family enforces (L1..L9, A0)
    --root DIR         workspace root (default: walk up from the cwd)
    --baseline FILE    ratchet file (default: <root>/lint-baseline.toml)
    -h, --help         show this help
";

fn main() -> ExitCode {
    let mut json = false;
    let mut fix_baseline = false;
    let mut root: Option<PathBuf> = None;
    let mut baseline: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--explain" => match args.next() {
                Some(rule) => {
                    return match explain(&rule) {
                        Some(text) => {
                            println!("{text}");
                            ExitCode::SUCCESS
                        }
                        None => usage_error(&format!(
                            "no rule family named `{rule}` (expected L1..L9 or A0)"
                        )),
                    }
                }
                None => return usage_error("--explain requires a rule name"),
            },
            "--fix-baseline" => fix_baseline = true,
            "--root" => match args.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => return usage_error("--root requires a directory"),
            },
            "--baseline" => match args.next() {
                Some(v) => baseline = Some(PathBuf::from(v)),
                None => return usage_error("--baseline requires a file"),
            },
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("mvasd-lint: cannot determine cwd: {e}");
                    return ExitCode::from(2);
                }
            };
            match find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "mvasd-lint: no workspace root found above {} (pass --root)",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };

    let mut opts = Options::at_root(root);
    opts.fix_baseline = fix_baseline;
    if let Some(b) = baseline {
        opts.baseline_path = b;
    }

    match run(&opts) {
        Ok(outcome) => {
            if json {
                println!("{}", outcome.render_json());
            } else {
                print!("{}", outcome.render_text());
            }
            if outcome.clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("mvasd-lint: {e}");
            ExitCode::from(2)
        }
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("mvasd-lint: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}
