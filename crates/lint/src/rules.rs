//! The rule engine: repo-specific contracts checked over the token stream.
//!
//! | Rule | Contract |
//! |------|----------|
//! | `L1:float-eq`    | no `f64`/`f32` literal `==`/`!=` in library `src/` trees |
//! | `L2:log-domain`  | no `.exp()`/`.ln()`/`.powf()` family inside `queueing::mva` |
//! | `L3:unwrap` etc. | no `unwrap()`/non-literal `expect()`/`panic!`/literal indexing in library `src/` trees (baseline-ratcheted) |
//! | `L4:no-alloc`    | functions marked `// lint: no-alloc` contain no allocating tokens |
//! | `L5:allow-justify` | every `#[allow(...)]` carries a trailing justification comment |
//! | `L6:kernel-ratchet` | `convolution/kernel.rs` keeps `// lint: no-alloc` on `conv_cell` |
//! | `A0:annotation`  | `// lint:` annotations themselves must be well-formed |
//!
//! Escape hatches: `// lint: float-eq-ok <reason>` (L1) and
//! `// lint: log-domain-ok <reason>` (L2), trailing on the offending line
//! or standalone on the line above; the reason is mandatory. L3 has no
//! annotation — existing sites live in `lint-baseline.toml` and may only
//! disappear. `#[cfg(test)]` items inside `src/` files are exempt from
//! L1–L3, as are `tests/`, `benches/`, and `examples/` trees.
//!
//! Everything here is a *token-level* heuristic: `x == 0.0` is flagged
//! because a float literal sits next to the operator; `a == b` between two
//! `f64` bindings is invisible without type inference and out of scope by
//! design (see DESIGN.md §9).

use crate::lexer::{lex, TokKind, Token};

/// One diagnostic: `file:line:rule` plus a human message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Rule family: `L1`..`L5` or `A0`.
    pub rule: &'static str,
    /// Specific code within the rule (e.g. `unwrap`, `float-eq`).
    pub code: &'static str,
    /// What went wrong and how to fix it.
    pub message: String,
}

impl Finding {
    /// The `RULE:code` pair used in diagnostics and the baseline file.
    pub fn rule_code(&self) -> String {
        format!("{}:{}", self.rule, self.code)
    }

    /// Whether this finding may be absorbed by `lint-baseline.toml`
    /// (only the ratcheted L3 family is).
    pub fn baselineable(&self) -> bool {
        self.rule == "L3"
    }
}

/// A parsed `// lint: <key> <reason>` annotation.
struct Annotation {
    line: u32,
    key: AnnKey,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AnnKey {
    FloatEqOk,
    LogDomainOk,
    NoAlloc,
}

/// `.exp()`-family methods banned on the MVA hot path (L2); the batched
/// log-sum-exp kernel (`convolution/kernel.rs`) and the workspace that
/// drives it (`convolution/workspace.rs`) are the only sanctioned homes
/// for them.
const LOG_DOMAIN_METHODS: &[&str] = &[
    "exp", "ln", "powf", "ln_1p", "exp_m1", "exp2", "log", "log2", "log10",
];

/// Method calls that allocate (or can allocate) and are therefore banned
/// inside `// lint: no-alloc` functions (L4).
const ALLOC_METHODS: &[&str] = &[
    "push",
    "to_vec",
    "collect",
    "clone",
    "to_string",
    "to_owned",
];

/// Macros that allocate (L4).
const ALLOC_MACROS: &[&str] = &["format", "vec"];

/// Lints one file. `relpath` is the workspace-relative path and drives the
/// per-rule scoping; `src` is the file contents.
pub fn lint_file(relpath: &str, src: &str) -> Vec<Finding> {
    let path = relpath.replace('\\', "/");
    let toks = lex(src);
    let mut out = Vec::new();

    // Significant (non-comment) tokens, for syntactic pattern matching.
    let sig: Vec<Token> = toks
        .iter()
        .copied()
        .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();
    let in_test = test_regions(&sig, src);
    let annotations = parse_annotations(&path, src, &toks, &mut out);

    let scope = Scope::of(&path);
    let ctx = Ctx {
        path: &path,
        src,
        toks: &toks,
        sig: &sig,
        in_test: &in_test,
    };

    if scope.l1 {
        check_float_eq(&ctx, &mut out);
    }
    if scope.l2 {
        check_log_domain(&ctx, &mut out);
    }
    if scope.l3 {
        check_panic_paths(&ctx, &mut out);
    }
    check_no_alloc(&ctx, &annotations, &mut out);
    check_allow_justified(&ctx, &mut out);
    if path.ends_with("queueing/src/mva/convolution/kernel.rs") {
        check_kernel_ratchet(&ctx, &annotations, &mut out);
    }

    // Apply annotation suppression: an escape-hatch annotation covers
    // findings on its own line and on the line directly below it.
    out.retain(|f| {
        let key = match (f.rule, f.code) {
            ("L1", _) => AnnKey::FloatEqOk,
            ("L2", _) => AnnKey::LogDomainOk,
            _ => return true,
        };
        !annotations
            .iter()
            .any(|a| a.key == key && (a.line == f.line || a.line + 1 == f.line))
    });
    out.sort_by(|a, b| (a.line, a.rule, a.code).cmp(&(b.line, b.rule, b.code)));
    out
}

/// Which rule families apply to a given path.
struct Scope {
    l1: bool,
    l2: bool,
    l3: bool,
}

impl Scope {
    fn of(path: &str) -> Self {
        let in_src = (path.starts_with("src/") || path.contains("/src/"))
            && !path.contains("/tests/")
            && !path.contains("/benches/")
            && !path.contains("/examples/");
        Self {
            // `numerics::dd` is the allowlisted double-double module: its
            // exact float comparisons ARE the algorithm.
            l1: in_src && !path.ends_with("numerics/src/dd.rs"),
            // The batched log-sum-exp kernel and the convolution workspace
            // that drives it are the sanctioned homes for exp/ln on the
            // MVA path.
            l2: path.contains("queueing/src/mva/")
                && !path.ends_with("convolution/workspace.rs")
                && !path.ends_with("convolution/kernel.rs"),
            l3: in_src,
        }
    }
}

struct Ctx<'a> {
    path: &'a str,
    src: &'a str,
    toks: &'a [Token],
    sig: &'a [Token],
    in_test: &'a [bool],
}

impl Ctx<'_> {
    fn text(&self, t: &Token) -> &str {
        t.text(self.src)
    }

    fn is_punct(&self, i: usize, c: char) -> bool {
        self.sig.get(i).is_some_and(|t| t.kind == TokKind::Punct(c))
    }

    fn ident_at(&self, i: usize) -> Option<&str> {
        let t = self.sig.get(i)?;
        (t.kind == TokKind::Ident).then(|| t.text(self.src))
    }

    fn float_at(&self, i: usize) -> bool {
        self.sig
            .get(i)
            .is_some_and(|t| t.kind == TokKind::Number { float: true })
    }

    fn int_at(&self, i: usize) -> bool {
        self.sig
            .get(i)
            .is_some_and(|t| t.kind == TokKind::Number { float: false })
    }

    /// Two tokens with nothing (not even whitespace) between them, the way
    /// `==` arrives as two adjacent `=` puncts.
    fn adjacent(&self, i: usize, j: usize) -> bool {
        match (self.sig.get(i), self.sig.get(j)) {
            (Some(a), Some(b)) => a.end == b.start,
            _ => false,
        }
    }

    fn finding(
        &self,
        out: &mut Vec<Finding>,
        i: usize,
        rule: &'static str,
        code: &'static str,
        message: String,
    ) {
        let line = self.sig.get(i).map(|t| t.line).unwrap_or(0);
        out.push(Finding {
            file: self.path.to_string(),
            line,
            rule,
            code,
            message,
        });
    }
}

/// Marks every significant token inside a `#[cfg(test)]` item (usually the
/// trailing `mod tests { ... }`) so library rules skip test code embedded
/// in `src/` files.
fn test_regions(sig: &[Token], src: &str) -> Vec<bool> {
    let mut in_test = vec![false; sig.len()];
    let mut i = 0;
    while i < sig.len() {
        if !(sig_punct(sig, i, '#') && sig_punct(sig, i + 1, '[')) {
            i += 1;
            continue;
        }
        let Some(close) = match_bracket(sig, i + 1, '[', ']') else {
            i += 1;
            continue;
        };
        if !is_cfg_test_attr(sig, src, i + 2, close) {
            i = close + 1;
            continue;
        }
        // Skip any further attributes between `#[cfg(test)]` and the item.
        let mut k = close + 1;
        while sig_punct(sig, k, '#') && sig_punct(sig, k + 1, '[') {
            match match_bracket(sig, k + 1, '[', ']') {
                Some(c) => k = c + 1,
                None => break,
            }
        }
        // The item body is the first `{ ... }` before any `;`.
        let mut m = k;
        let end = loop {
            if m >= sig.len() {
                break sig.len().saturating_sub(1);
            }
            if sig_punct(sig, m, ';') {
                break m;
            }
            if sig_punct(sig, m, '{') {
                break match_bracket(sig, m, '{', '}').unwrap_or(sig.len() - 1);
            }
            m += 1;
        };
        for flag in in_test.iter_mut().take(end + 1).skip(i) {
            *flag = true;
        }
        i = end + 1;
    }
    in_test
}

fn sig_punct(sig: &[Token], i: usize, c: char) -> bool {
    sig.get(i).is_some_and(|t| t.kind == TokKind::Punct(c))
}

/// Do the tokens in `(start..close)` spell exactly `cfg ( test )`?
fn is_cfg_test_attr(sig: &[Token], src: &str, start: usize, close: usize) -> bool {
    close == start + 4
        && ident_is(sig, src, start, "cfg")
        && sig_punct(sig, start + 1, '(')
        && ident_is(sig, src, start + 2, "test")
        && sig_punct(sig, start + 3, ')')
}

fn ident_is(sig: &[Token], src: &str, i: usize, word: &str) -> bool {
    sig.get(i)
        .is_some_and(|t| t.kind == TokKind::Ident && t.text(src) == word)
}

/// Finds the matching close bracket for the open bracket at `open_idx`.
fn match_bracket(sig: &[Token], open_idx: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in sig.iter().enumerate().skip(open_idx) {
        if t.kind == TokKind::Punct(open) {
            depth += 1;
        } else if t.kind == TokKind::Punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Collects `// lint: <key> <reason>` annotations; malformed ones become
/// `A0:annotation` findings so a typo'd escape hatch can never silently
/// suppress anything.
fn parse_annotations(
    path: &str,
    src: &str,
    toks: &[Token],
    out: &mut Vec<Finding>,
) -> Vec<Annotation> {
    let mut anns = Vec::new();
    for t in toks {
        if t.kind != TokKind::LineComment {
            continue;
        }
        let body = t
            .text(src)
            .trim_start_matches('/')
            .trim_start_matches('!')
            .trim();
        let Some(rest) = body.strip_prefix("lint:") else {
            continue;
        };
        let mut words = rest.split_whitespace();
        let key_text = words.next().unwrap_or("");
        let reason = words.next();
        let (key, needs_reason) = match key_text {
            "float-eq-ok" => (Some(AnnKey::FloatEqOk), true),
            "log-domain-ok" => (Some(AnnKey::LogDomainOk), true),
            "no-alloc" => (Some(AnnKey::NoAlloc), false),
            other => {
                out.push(Finding {
                    file: path.to_string(),
                    line: t.line,
                    rule: "A0",
                    code: "annotation",
                    message: format!(
                        "unknown lint annotation key `{other}` (expected \
                         float-eq-ok, log-domain-ok, or no-alloc)"
                    ),
                });
                (None, false)
            }
        };
        if let Some(key) = key {
            if needs_reason && reason.is_none() {
                out.push(Finding {
                    file: path.to_string(),
                    line: t.line,
                    rule: "A0",
                    code: "annotation",
                    message: format!(
                        "`lint: {key_text}` requires a justification: \
                         `// lint: {key_text} <reason>`"
                    ),
                });
            } else {
                anns.push(Annotation { line: t.line, key });
            }
        }
    }
    anns
}

/// L1: a float literal adjacent to `==`/`!=`.
fn check_float_eq(ctx: &Ctx, out: &mut Vec<Finding>) {
    let mut i = 0;
    while i + 1 < ctx.sig.len() {
        let is_eq = ctx.is_punct(i, '=') && ctx.is_punct(i + 1, '=') && ctx.adjacent(i, i + 1);
        let is_ne = ctx.is_punct(i, '!') && ctx.is_punct(i + 1, '=') && ctx.adjacent(i, i + 1);
        if !(is_eq || is_ne) || ctx.in_test.get(i).copied().unwrap_or(false) {
            i += 1;
            continue;
        }
        // `a === b` / `!==` can't occur in Rust; `x != =` neither. The
        // operand on the left is sig[i-1]; on the right sig[i+2], or
        // sig[i+3] behind a unary minus.
        let lhs_float = i > 0 && ctx.float_at(i - 1);
        let rhs_float = ctx.float_at(i + 2) || (ctx.is_punct(i + 2, '-') && ctx.float_at(i + 3));
        if lhs_float || rhs_float {
            let op = if is_eq { "==" } else { "!=" };
            ctx.finding(
                out,
                i,
                "L1",
                "float-eq",
                format!(
                    "floating-point literal compared with `{op}`; use a tolerance \
                     helper, bitwise `to_bits()`, or annotate \
                     `// lint: float-eq-ok <reason>` if exactness is intended"
                ),
            );
        }
        i += 2;
    }
}

/// L2: `.exp()` / `.ln()` / `.powf()` family on the MVA path.
fn check_log_domain(ctx: &Ctx, out: &mut Vec<Finding>) {
    for i in 0..ctx.sig.len() {
        if !ctx.is_punct(i, '.') || ctx.in_test.get(i).copied().unwrap_or(false) {
            continue;
        }
        let Some(name) = ctx.ident_at(i + 1) else {
            continue;
        };
        if LOG_DOMAIN_METHODS.contains(&name) && ctx.is_punct(i + 2, '(') {
            ctx.finding(
                out,
                i + 1,
                "L2",
                "log-domain",
                format!(
                    "`.{name}()` inside `queueing::mva`: raw exp/ln underflows the \
                     Alg. 2/3 recursions near n=1500; route through the compensated \
                     log-sum-exp kernel in `convolution/kernel.rs` or annotate \
                     `// lint: log-domain-ok <reason>`"
                ),
            );
        }
    }
}

/// L3: panic-prone constructs in library code (ratcheted by baseline).
fn check_panic_paths(ctx: &Ctx, out: &mut Vec<Finding>) {
    for i in 0..ctx.sig.len() {
        if ctx.in_test.get(i).copied().unwrap_or(false) {
            continue;
        }
        // `.unwrap()` and `.expect(<non-literal>)`.
        if ctx.is_punct(i, '.') {
            if let Some(name) = ctx.ident_at(i + 1) {
                if name == "unwrap" && ctx.is_punct(i + 2, '(') && ctx.is_punct(i + 3, ')') {
                    ctx.finding(
                        out,
                        i + 1,
                        "L3",
                        "unwrap",
                        "`.unwrap()` in library code: convert to `.expect(\"<invariant>\")` \
                         or propagate a typed error"
                            .to_string(),
                    );
                } else if name == "expect" && ctx.is_punct(i + 2, '(') {
                    let arg_is_literal = ctx
                        .sig
                        .get(i + 3)
                        .is_some_and(|t| matches!(t.kind, TokKind::Str | TokKind::RawStr));
                    if !arg_is_literal {
                        ctx.finding(
                            out,
                            i + 1,
                            "L3",
                            "expect",
                            "`.expect(..)` without a string-literal invariant message; \
                             state the invariant inline or propagate a typed error"
                                .to_string(),
                        );
                    }
                }
            }
        }
        // `panic!(...)`.
        if ctx.ident_at(i) == Some("panic") && ctx.is_punct(i + 1, '!') {
            ctx.finding(
                out,
                i,
                "L3",
                "panic",
                "`panic!` in library code: return a typed error instead".to_string(),
            );
        }
        // Indexing by an integer literal: `expr[0]`.
        if ctx.is_punct(i, '[')
            && ctx.int_at(i + 1)
            && ctx.is_punct(i + 2, ']')
            && i > 0
            && ctx.sig.get(i - 1).is_some_and(|t| {
                t.kind == TokKind::Ident
                    || t.kind == TokKind::Punct(')')
                    || t.kind == TokKind::Punct(']')
            })
        {
            ctx.finding(
                out,
                i + 1,
                "L3",
                "index",
                "indexing by integer literal can panic; prefer `.first()`/`.get(..)` \
                 with explicit handling"
                    .to_string(),
            );
        }
    }
}

/// L4: allocation tokens inside `// lint: no-alloc` functions.
fn check_no_alloc(ctx: &Ctx, annotations: &[Annotation], out: &mut Vec<Finding>) {
    for ann in annotations {
        if ann.key != AnnKey::NoAlloc {
            continue;
        }
        // The marker applies to the next `fn` item after the comment line.
        let Some(fn_idx) = ctx
            .sig
            .iter()
            .position(|t| t.line > ann.line && t.kind == TokKind::Ident && ctx.text(t) == "fn")
        else {
            continue;
        };
        let fn_name = ctx.ident_at(fn_idx + 1).unwrap_or("<unnamed>").to_string();
        // Skip the parameter list, then take the first `{ ... }` as the body.
        let Some(params_open) = (fn_idx..ctx.sig.len()).find(|&k| ctx.is_punct(k, '(')) else {
            continue;
        };
        let Some(params_close) = match_bracket(ctx.sig, params_open, '(', ')') else {
            continue;
        };
        let Some(body_open) = (params_close..ctx.sig.len()).find(|&k| ctx.is_punct(k, '{')) else {
            continue;
        };
        let body_close = match_bracket(ctx.sig, body_open, '{', '}').unwrap_or(ctx.sig.len() - 1);

        for k in body_open..body_close {
            if ctx.is_punct(k, '.') {
                if let Some(name) = ctx.ident_at(k + 1) {
                    if ALLOC_METHODS.contains(&name) {
                        let name = name.to_string();
                        ctx.finding(
                            out,
                            k + 1,
                            "L4",
                            "no-alloc",
                            format!(
                                "`.{name}` inside `// lint: no-alloc` fn `{fn_name}`; \
                                 the steady-state hot path must not allocate \
                                 (see tests/alloc_steady_state.rs)"
                            ),
                        );
                    }
                }
            }
            if let Some(name) = ctx.ident_at(k) {
                if ALLOC_MACROS.contains(&name) && ctx.is_punct(k + 1, '!') {
                    let name = name.to_string();
                    ctx.finding(
                        out,
                        k,
                        "L4",
                        "no-alloc",
                        format!("`{name}!` inside `// lint: no-alloc` fn `{fn_name}`"),
                    );
                }
                let path_new = (name == "Box" && path_seg_is(ctx, k, "new"))
                    || (name == "String" && path_seg_is(ctx, k, "from"));
                if path_new {
                    let name = name.to_string();
                    ctx.finding(
                        out,
                        k,
                        "L4",
                        "no-alloc",
                        format!(
                            "`{name}::..` constructor inside `// lint: no-alloc` fn `{fn_name}`"
                        ),
                    );
                }
            }
        }
    }
}

/// L6: the batched log-sum-exp kernel is exempt from L2 precisely because
/// it *is* the sanctioned exp/ln home — in exchange its `conv_cell` entry
/// point must keep the `// lint: no-alloc` ratchet (the L4 marker) so the
/// steady-state allocation contract can never silently regress. Not
/// baselineable: the marker either precedes `conv_cell` or the tree fails.
fn check_kernel_ratchet(ctx: &Ctx, annotations: &[Annotation], out: &mut Vec<Finding>) {
    let covered = annotations.iter().any(|ann| {
        ann.key == AnnKey::NoAlloc
            && ctx
                .sig
                .iter()
                .position(|t| t.line > ann.line && t.kind == TokKind::Ident && ctx.text(t) == "fn")
                .is_some_and(|fn_idx| ctx.ident_at(fn_idx + 1) == Some("conv_cell"))
    });
    if covered {
        return;
    }
    let line = ctx
        .sig
        .windows(2)
        .find_map(|w| match w {
            [f, n]
                if f.kind == TokKind::Ident
                    && ctx.text(f) == "fn"
                    && n.kind == TokKind::Ident
                    && ctx.text(n) == "conv_cell" =>
            {
                Some(f.line)
            }
            _ => None,
        })
        .unwrap_or(1);
    out.push(Finding {
        file: ctx.path.to_string(),
        line,
        rule: "L6",
        code: "kernel-ratchet",
        message: "the batched kernel's `conv_cell` must carry `// lint: no-alloc`: \
                  it runs inside the zero-allocation steady state of every \
                  convolution sweep (see tests/alloc_steady_state.rs)"
            .to_string(),
    });
}

/// Is `sig[k] :: <seg>` with the given trailing segment name?
fn path_seg_is(ctx: &Ctx, k: usize, seg: &str) -> bool {
    ctx.is_punct(k + 1, ':') && ctx.is_punct(k + 2, ':') && ctx.ident_at(k + 3) == Some(seg)
}

/// L5: `#[allow(...)]` / `#![allow(...)]` needs a trailing `// why`.
fn check_allow_justified(ctx: &Ctx, out: &mut Vec<Finding>) {
    for i in 0..ctx.sig.len() {
        if !ctx.is_punct(i, '#') {
            continue;
        }
        let bracket = if ctx.is_punct(i + 1, '[') {
            i + 1
        } else if ctx.is_punct(i + 1, '!') && ctx.is_punct(i + 2, '[') {
            i + 2
        } else {
            continue;
        };
        if ctx.ident_at(bracket + 1) != Some("allow") {
            continue;
        }
        let Some(close) = match_bracket(ctx.sig, bracket, '[', ']') else {
            continue;
        };
        let close_tok = ctx.sig[close];
        let justified = ctx.toks.iter().any(|t| {
            t.kind == TokKind::LineComment
                && t.line == close_tok.line
                && t.start >= close_tok.end
                && t.text(ctx.src).trim_start_matches('/').trim().len() > 1
        });
        if !justified {
            ctx.finding(
                out,
                i,
                "L5",
                "allow-justify",
                "`#[allow(...)]` without a trailing justification comment; \
                 append `// <why this allow is sound>`"
                    .to_string(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(path: &str, src: &str) -> Vec<String> {
        lint_file(path, src)
            .into_iter()
            .map(|f| f.rule_code())
            .collect()
    }

    const LIB: &str = "crates/demo/src/lib.rs";
    const MVA: &str = "crates/queueing/src/mva/solver.rs";

    #[test]
    fn l1_flags_float_literal_comparisons() {
        assert_eq!(
            codes(LIB, "fn f(x: f64) -> bool { x == 0.0 }"),
            ["L1:float-eq"]
        );
        assert_eq!(
            codes(LIB, "fn f(x: f64) -> bool { 1.5 != x }"),
            ["L1:float-eq"]
        );
        assert_eq!(
            codes(LIB, "fn f(x: f64) -> bool { x == -0.25 }"),
            ["L1:float-eq"]
        );
        // Integers, orderings, and bit comparisons are fine.
        assert!(codes(LIB, "fn f(x: u32) -> bool { x == 0 }").is_empty());
        assert!(codes(LIB, "fn f(x: f64) -> bool { x <= 0.0 }").is_empty());
        assert!(codes(
            LIB,
            "fn f(a: f64, b: f64) -> bool { a.to_bits() == b.to_bits() }"
        )
        .is_empty());
    }

    #[test]
    fn l1_respects_annotations_and_scope() {
        let trailing = "fn f(x: f64) -> bool { x == 0.0 } // lint: float-eq-ok exact sentinel";
        assert!(codes(LIB, trailing).is_empty());
        let above = "// lint: float-eq-ok exact sentinel\nfn f(x: f64) -> bool { x == 0.0 }";
        assert!(codes(LIB, above).is_empty());
        // Annotation without a reason is itself a finding and suppresses nothing.
        let bare = "// lint: float-eq-ok\nfn f(x: f64) -> bool { x == 0.0 }";
        assert_eq!(codes(LIB, bare), ["A0:annotation", "L1:float-eq"]);
        // dd.rs is allowlisted; tests/ trees are out of scope.
        assert!(codes(
            "crates/numerics/src/dd.rs",
            "fn f(x: f64) -> bool { x == 0.0 }"
        )
        .is_empty());
        assert!(codes(
            "crates/demo/tests/t.rs",
            "fn f(x: f64) -> bool { x == 0.0 }"
        )
        .is_empty());
    }

    #[test]
    fn l2_flags_exp_family_only_on_mva_path() {
        assert_eq!(
            codes(MVA, "fn f(x: f64) -> f64 { x.exp() }"),
            ["L2:log-domain"]
        );
        assert_eq!(
            codes(MVA, "fn f(x: f64) -> f64 { x.powf(2.0) }"),
            ["L2:log-domain"]
        );
        assert!(codes(LIB, "fn f(x: f64) -> f64 { x.exp() }").is_empty());
        let ws = "crates/queueing/src/mva/convolution/workspace.rs";
        assert!(codes(ws, "fn f(x: f64) -> f64 { x.exp() }").is_empty());
        // The batched kernel is the other sanctioned exp/ln home (its own
        // L6 ratchet applies instead).
        let kernel = "crates/queueing/src/mva/convolution/kernel.rs";
        assert!(codes(
            kernel,
            "// lint: no-alloc\nfn conv_cell(x: f64) -> f64 { x.exp() }"
        )
        .is_empty());
        let annotated =
            "fn f(x: f64) -> f64 {\n    // lint: log-domain-ok reference oracle\n    x.exp()\n}";
        assert!(codes(MVA, annotated).is_empty());
    }

    #[test]
    fn l3_flags_panic_paths() {
        assert_eq!(
            codes(LIB, "fn f(x: Option<u32>) -> u32 { x.unwrap() }"),
            ["L3:unwrap"]
        );
        assert_eq!(
            codes(LIB, "fn f(x: Option<u32>, m: &str) -> u32 { x.expect(m) }"),
            ["L3:expect"]
        );
        assert!(codes(
            LIB,
            "fn f(x: Option<u32>) -> u32 { x.expect(\"invariant\") }"
        )
        .is_empty());
        assert_eq!(codes(LIB, "fn f() { panic!(\"boom\") }"), ["L3:panic"]);
        assert_eq!(codes(LIB, "fn f(v: &[u32]) -> u32 { v[0] }"), ["L3:index"]);
        // Array literals and macro brackets are not indexing.
        assert!(codes(LIB, "fn f() -> [u32; 2] { [0, 1] }").is_empty());
        assert!(codes(LIB, "fn f() -> Vec<u32> { vec![0] }").is_empty());
    }

    #[test]
    fn l3_exempts_cfg_test_modules() {
        let src = "fn ok() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { let v = vec![1]; assert_eq!(v[0], Some(1).unwrap()); }\n}\n";
        assert!(codes(LIB, src).is_empty());
    }

    #[test]
    fn l4_flags_alloc_tokens_in_marked_fns() {
        let src = "// lint: no-alloc\nfn hot(&mut self) { self.buf.push(1); }";
        assert_eq!(codes(LIB, src), ["L4:no-alloc"]);
        let src = "// lint: no-alloc\nfn hot(x: &str) -> String { format!(\"{x}\") }";
        assert_eq!(codes(LIB, src), ["L4:no-alloc"]);
        let src = "// lint: no-alloc\nfn hot(x: u32) -> Box<u32> { Box::new(x) }";
        assert_eq!(codes(LIB, src), ["L4:no-alloc"]);
        // Unmarked functions may allocate freely.
        assert!(codes(LIB, "fn cold(&mut self) { self.buf.push(1); }").is_empty());
        // The marked fn's body ends where its braces do.
        let src = "// lint: no-alloc\nfn hot(x: u32) -> u32 { x + 1 }\nfn cold() { let v = vec![1].clone(); drop(v); }";
        assert!(codes(LIB, src).is_empty());
    }

    #[test]
    fn l6_requires_the_kernel_no_alloc_ratchet() {
        let kernel = "crates/queueing/src/mva/convolution/kernel.rs";
        let ok = "// lint: no-alloc\npub fn conv_cell(a: &[f64]) -> f64 { 0.0 }";
        assert!(codes(kernel, ok).is_empty());
        let missing = "pub fn conv_cell(a: &[f64]) -> f64 { 0.0 }";
        assert_eq!(codes(kernel, missing), ["L6:kernel-ratchet"]);
        // A marker on some *other* fn does not satisfy the ratchet.
        let wrong = "// lint: no-alloc\nfn other() {}\npub fn conv_cell(a: &[f64]) -> f64 { 0.0 }";
        assert_eq!(codes(kernel, wrong), ["L6:kernel-ratchet"]);
        // Only the kernel path is in scope.
        assert!(codes(LIB, missing).is_empty());
    }

    #[test]
    fn l5_requires_trailing_justification() {
        assert_eq!(
            codes(LIB, "#[allow(dead_code)]\nfn f() {}"),
            ["L5:allow-justify"]
        );
        assert!(codes(
            LIB,
            "#[allow(dead_code)] // kept for the ffi layer\nfn f() {}"
        )
        .is_empty());
        // Other attributes are untouched.
        assert!(codes(LIB, "#[inline]\nfn f() {}").is_empty());
    }

    #[test]
    fn string_and_comment_contents_never_trigger() {
        let src = r##"
fn f() -> &'static str {
    // example: x == 0.0 and v.unwrap() and .exp()
    /* also panic!("no") */
    r#"x == 0.0 .unwrap() panic!"#
}
"##;
        assert!(codes(MVA, src).is_empty());
    }
}
