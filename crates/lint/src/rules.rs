//! The rule engine: repo-specific contracts checked over the token stream.
//!
//! | Rule | Contract |
//! |------|----------|
//! | `L1:float-eq`    | no `f64`/`f32` literal `==`/`!=` in library `src/` trees |
//! | `L2:log-domain`  | no `.exp()`/`.ln()`/`.powf()` family inside `queueing::mva` |
//! | `L3:unwrap` etc. | no `unwrap()`/non-literal `expect()`/`panic!`/literal indexing in library `src/` trees (baseline-ratcheted) |
//! | `L4:no-alloc`    | functions marked `// lint: no-alloc` contain no allocating tokens |
//! | `L5:allow-justify` | every `#[allow(...)]` carries a trailing justification comment |
//! | `L6:kernel-ratchet` | `convolution/kernel.rs` keeps `// lint: no-alloc` on `conv_cell`; `hierarchy.rs` keeps `// lint: bit-identical` on `ensure` |
//! | `L7:log-domain dataflow` | tracked log-domain values never flow into linear-domain arithmetic (see [`crate::dataflow`]) |
//! | `L8:parallel-interference` | pool closures do not mutate captured state, touch interior mutability, or commit mid-plan |
//! | `L9:reduction-order` | `// lint: bit-identical` fns contain no completion-order-dependent float reductions |
//! | `A0:annotation`  | `// lint:` annotations themselves must be well-formed |
//!
//! Escape hatches: `// lint: float-eq-ok <reason>` (L1),
//! `// lint: log-domain-ok <reason>` (L2/L7), and
//! `// lint: interference-ok <reason>` (L8/L9), trailing on the offending
//! line, standalone on the line above, or — new with the AST engine —
//! covering the *whole statement* that starts on the next line (so one
//! annotation can sanction a multi-line loop). `// lint: commit-phase`
//! (no reason needed: the region name is the contract) marks post-pool
//! commit writes. L3 has no annotation — existing sites live in
//! `lint-baseline.toml` and may only disappear. `#[cfg(test)]` items
//! inside `src/` files are exempt from L1–L3 and L7–L9, as are `tests/`,
//! `benches/`, and `examples/` trees.
//!
//! L1–L6 are *token-level* heuristics: `x == 0.0` is flagged because a
//! float literal sits next to the operator; `a == b` between two `f64`
//! bindings is invisible without type inference and out of scope by
//! design (see DESIGN.md §9). L7–L9 run over the [`crate::ast`] tree and
//! the [`crate::dataflow`] facts computed from it (DESIGN.md §14).

use std::collections::HashSet;

use crate::ast::{self, Ast, Expr, ExprKind, Stmt};
use crate::dataflow::{analyze_fn, FlowReport};
use crate::lexer::{lex, TokKind, Token};

/// One diagnostic: `file:line:rule` plus a human message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Rule family: `L1`..`L5` or `A0`.
    pub rule: &'static str,
    /// Specific code within the rule (e.g. `unwrap`, `float-eq`).
    pub code: &'static str,
    /// What went wrong and how to fix it.
    pub message: String,
}

impl Finding {
    /// The `RULE:code` pair used in diagnostics and the baseline file.
    pub fn rule_code(&self) -> String {
        format!("{}:{}", self.rule, self.code)
    }

    /// Whether this finding may be absorbed by `lint-baseline.toml`
    /// (only the ratcheted L3 family is).
    pub fn baselineable(&self) -> bool {
        self.rule == "L3"
    }
}

/// Long-form documentation for one rule family, rendered by
/// `mvasd-lint --explain <RULE>` so a CI failure links straight to the
/// contract it enforces.
pub fn explain(rule: &str) -> Option<&'static str> {
    Some(match rule.to_ascii_uppercase().as_str() {
        "L1" => {
            "L1 float-eq: no f64/f32 literal ==/!= in library src/ trees.\n\
             Float equality against literals is almost always a tolerance bug on\n\
             iterative MVA output. Fix: compare with a tolerance helper or\n\
             to_bits(), or annotate `// lint: float-eq-ok <reason>`.\n\
             (numerics/src/dd.rs is allowlisted: exact comparison IS its algorithm.)"
        }
        "L2" => {
            "L2 log-domain: no raw .exp()/.ln()/.powf() family inside queueing::mva\n\
             unless the L7 dataflow pass sanctions the site. Sanctioned shapes:\n\
             discharging a tracked log value, binding into an ln_*/log_* name,\n\
             accumulate-then-.ln() (log-sum-exp), and .exp().ln_1p() chains.\n\
             Everything else routes through convolution/kernel.rs or carries\n\
             `// lint: log-domain-ok <reason>` (covers the next statement)."
        }
        "L3" => {
            "L3 unwrap/expect/panic/index: no .unwrap(), no .expect(<non-literal>),\n\
             no panic!, no indexing by integer literal in library src/ trees.\n\
             Existing sites are grandfathered in lint-baseline.toml and ratcheted:\n\
             counts may only shrink. Fix: typed errors, .get()/.first()/.split_first(),\n\
             slice patterns, or .expect(\"<invariant>\") with a literal message."
        }
        "L4" => {
            "L4 no-alloc: a fn marked `// lint: no-alloc` must not allocate\n\
             (.push/.collect/.to_vec/.clone/.to_string/.to_owned, format!/vec!,\n\
             Box::new/String::from). The steady-state MVA hot path is allocation-free\n\
             (tests/alloc_steady_state.rs); the marker makes that machine-checked."
        }
        "L5" => {
            "L5 allow-justify: every #[allow(...)] needs a trailing `// <why>`\n\
             comment on the closing bracket's line. An allow without a reason is\n\
             a suppressed warning nobody can audit."
        }
        "L6" => {
            "L6 ratchets: structural markers that may never disappear.\n\
             kernel-ratchet — convolution/kernel.rs keeps `// lint: no-alloc` on\n\
             conv_cell (the zero-allocation steady state).\n\
             hierarchy-ratchet — hierarchy.rs keeps `// lint: bit-identical` on\n\
             ensure (parallel sub-solves promise bitwise equality with serial;\n\
             the interleaving explorer in numerics::pool witnesses it)."
        }
        "L7" => {
            "L7 log-domain dataflow: the AST pass tracks values produced by\n\
             .ln()-family calls (and ln_*/log_* names) through let bindings and\n\
             arithmetic. Findings: log-as-linear (Log*Log, Log/Log, powf on Log),\n\
             double-ln (ln of a logarithm), double-exp (exp of an exp result).\n\
             These are wrong in every reading; there is no annotation that makes\n\
             log(log(x)) a probability. Restructure the flow, or if the analysis\n\
             is mistaken annotate `// lint: log-domain-ok <reason>`."
        }
        "L8" => {
            "L8 parallel-interference: inside scoped_indexed/spawn closures —\n\
             captured-mut: writes or &mut borrows of captured state (tasks race);\n\
             interior-mut: .lock()/.borrow_mut()/atomics on captured values\n\
             (annotate `// lint: interference-ok <reason>` for disjoint-by-\n\
             construction idioms like per-index slots);\n\
             plan-commit: telemetry counters or cache stores inside the closure\n\
             commit observable state in completion order;\n\
             unmarked-commit: serial commit writes after the pool call must sit\n\
             under `// lint: commit-phase`."
        }
        "L9" => {
            "L9 reduction-order: a fn marked `// lint: bit-identical` promises\n\
             schedule-independent output. Flags channel .recv() (completion-order\n\
             consumption) and +=/-=/*= accumulation into shared state from inside\n\
             a pool closure. Fix: collect per-index results, reduce serially in\n\
             index order. Witnessed dynamically by numerics::pool::explore_schedules."
        }
        "A0" => {
            "A0 annotation: `// lint: <key> ...` comments must use a known key\n\
             (float-eq-ok, log-domain-ok, no-alloc, commit-phase, interference-ok,\n\
             bit-identical) and carry a reason where one is required. A typo'd\n\
             escape hatch suppresses nothing — it fails the build instead."
        }
        _ => return None,
    })
}

/// A parsed `// lint: <key> <reason>` annotation.
struct Annotation {
    line: u32,
    key: AnnKey,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AnnKey {
    FloatEqOk,
    LogDomainOk,
    NoAlloc,
    /// Marks a post-pool commit region: the serial half of the
    /// plan/commit protocol, where counter bumps and cache stores are
    /// the *point* (L8 `unmarked-commit` requires it).
    CommitPhase,
    /// Declares a shared-state touch inside a pool closure sound
    /// (slot-claim idioms, per-index locks); the reason is mandatory.
    InterferenceOk,
    /// Declares a fn's parallel output bit-identical to its serial
    /// order; arms L9 and is itself required on `hierarchy::ensure`.
    BitIdentical,
}

/// `.exp()`-family methods banned on the MVA hot path (L2); the batched
/// log-sum-exp kernel (`convolution/kernel.rs`) and the workspace that
/// drives it (`convolution/workspace.rs`) are the only sanctioned homes
/// for them.
const LOG_DOMAIN_METHODS: &[&str] = &[
    "exp", "ln", "powf", "ln_1p", "exp_m1", "exp2", "log", "log2", "log10",
];

/// Method calls that allocate (or can allocate) and are therefore banned
/// inside `// lint: no-alloc` functions (L4).
const ALLOC_METHODS: &[&str] = &[
    "push",
    "to_vec",
    "collect",
    "clone",
    "to_string",
    "to_owned",
];

/// Macros that allocate (L4).
const ALLOC_MACROS: &[&str] = &["format", "vec"];

/// Lints one file. `relpath` is the workspace-relative path and drives the
/// per-rule scoping; `src` is the file contents.
pub fn lint_file(relpath: &str, src: &str) -> Vec<Finding> {
    let path = relpath.replace('\\', "/");
    let toks = lex(src);
    let mut out = Vec::new();

    // Significant (non-comment) tokens, for syntactic pattern matching.
    let sig: Vec<Token> = toks
        .iter()
        .copied()
        .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();
    let in_test = test_regions(&sig, src);
    let annotations = parse_annotations(&path, src, &toks, &mut out);

    let scope = Scope::of(&path);
    let tree = ast::parse(&sig, src);
    let stmt_lines = stmt_line_ranges(&tree, &sig);
    let ctx = Ctx {
        path: &path,
        src,
        toks: &toks,
        sig: &sig,
        in_test: &in_test,
    };

    // The intraprocedural dataflow pass: sanctioned exp/ln sites feed
    // L2's exemptions, trouble feeds L7.
    let mut flow = FlowReport::default();
    if scope.l2 || scope.l7 {
        ast::for_each_fn(&tree.items, &mut |f| {
            if !in_test.get(f.span.lo).copied().unwrap_or(false) {
                flow.merge(analyze_fn(f, &sig));
            }
        });
    }

    if scope.l1 {
        check_float_eq(&ctx, &mut out);
    }
    if scope.l2 {
        check_log_domain(&ctx, &flow.sanctioned, &mut out);
    }
    if scope.l3 {
        check_panic_paths(&ctx, &mut out);
    }
    if scope.l7 {
        for t in &flow.trouble {
            out.push(Finding {
                file: path.clone(),
                line: t.line,
                rule: "L7",
                code: t.code,
                message: t.message.clone(),
            });
        }
    }
    if scope.l8 {
        check_parallel_interference(&ctx, &tree, &mut out);
        check_reduction_order(&ctx, &tree, &annotations, &mut out);
    }
    check_no_alloc(&ctx, &annotations, &mut out);
    check_allow_justified(&ctx, &mut out);
    if path.ends_with("queueing/src/mva/convolution/kernel.rs") {
        check_kernel_ratchet(&ctx, &annotations, &mut out);
    }
    if path.ends_with("queueing/src/hierarchy.rs") {
        check_hierarchy_ratchet(&ctx, &tree, &annotations, &mut out);
    }

    // Apply annotation suppression: an escape-hatch annotation covers
    // findings on its own line, on the line directly below it, and — via
    // the AST — anywhere inside the statement that starts on the line
    // directly below it (so one annotation sanctions a whole loop).
    out.retain(|f| {
        let keys: &[AnnKey] = match (f.rule, f.code) {
            ("L1", _) => &[AnnKey::FloatEqOk],
            ("L2", _) | ("L7", _) => &[AnnKey::LogDomainOk],
            ("L8", "interior-mut") => &[AnnKey::InterferenceOk, AnnKey::CommitPhase],
            ("L8", "unmarked-commit") => &[AnnKey::CommitPhase],
            ("L8", _) => &[AnnKey::InterferenceOk],
            ("L9", _) => &[AnnKey::InterferenceOk],
            _ => return true,
        };
        !annotations
            .iter()
            .any(|a| keys.contains(&a.key) && ann_covers(a, f.line, &stmt_lines))
    });
    out.sort_by(|a, b| (a.line, a.rule, a.code).cmp(&(b.line, b.rule, b.code)));
    out
}

/// Does the annotation on line `a.line` cover a finding on `line`?
/// Same line, next line, or anywhere within a statement that *starts*
/// on the next line.
fn ann_covers(a: &Annotation, line: u32, stmt_lines: &[(u32, u32)]) -> bool {
    if a.line == line || a.line + 1 == line {
        return true;
    }
    stmt_lines
        .iter()
        .any(|&(s, e)| s == a.line + 1 && line >= s && line <= e)
}

/// `(first_line, last_line)` of every statement in every fn body.
fn stmt_line_ranges(tree: &Ast, sig: &[Token]) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    ast::for_each_fn(&tree.items, &mut |f| {
        if let Some(body) = &f.body {
            ast::for_each_stmt(body, &mut |stmt| {
                let sp = stmt.span();
                if sp.hi > sp.lo {
                    if let (Some(a), Some(b)) = (sig.get(sp.lo), sig.get(sp.hi - 1)) {
                        ranges.push((a.line, b.line));
                    }
                }
            });
        }
    });
    ranges
}

/// Which rule families apply to a given path.
struct Scope {
    l1: bool,
    l2: bool,
    l3: bool,
    /// L7 log-domain dataflow (library `src/` trees).
    l7: bool,
    /// L8 parallel-interference and L9 reduction-order (library `src/`).
    l8: bool,
}

impl Scope {
    fn of(path: &str) -> Self {
        let in_src = (path.starts_with("src/") || path.contains("/src/"))
            && !path.contains("/tests/")
            && !path.contains("/benches/")
            && !path.contains("/examples/");
        Self {
            // `numerics::dd` is the allowlisted double-double module: its
            // exact float comparisons ARE the algorithm.
            l1: in_src && !path.ends_with("numerics/src/dd.rs"),
            // Since the L7 dataflow pass learned to sanction the batched
            // exp boundary per-site, the kernel and workspace are no
            // longer blanket-exempt: every exp/ln there must either be
            // provably safe by dataflow or carry its own annotation.
            l2: path.contains("queueing/src/mva/"),
            l3: in_src,
            l7: in_src,
            l8: in_src,
        }
    }
}

struct Ctx<'a> {
    path: &'a str,
    src: &'a str,
    toks: &'a [Token],
    sig: &'a [Token],
    in_test: &'a [bool],
}

impl Ctx<'_> {
    fn text(&self, t: &Token) -> &str {
        t.text(self.src)
    }

    fn is_punct(&self, i: usize, c: char) -> bool {
        self.sig.get(i).is_some_and(|t| t.kind == TokKind::Punct(c))
    }

    fn ident_at(&self, i: usize) -> Option<&str> {
        let t = self.sig.get(i)?;
        (t.kind == TokKind::Ident).then(|| t.text(self.src))
    }

    fn float_at(&self, i: usize) -> bool {
        self.sig
            .get(i)
            .is_some_and(|t| t.kind == TokKind::Number { float: true })
    }

    fn int_at(&self, i: usize) -> bool {
        self.sig
            .get(i)
            .is_some_and(|t| t.kind == TokKind::Number { float: false })
    }

    /// Two tokens with nothing (not even whitespace) between them, the way
    /// `==` arrives as two adjacent `=` puncts.
    fn adjacent(&self, i: usize, j: usize) -> bool {
        match (self.sig.get(i), self.sig.get(j)) {
            (Some(a), Some(b)) => a.end == b.start,
            _ => false,
        }
    }

    fn finding(
        &self,
        out: &mut Vec<Finding>,
        i: usize,
        rule: &'static str,
        code: &'static str,
        message: String,
    ) {
        let line = self.sig.get(i).map(|t| t.line).unwrap_or(0);
        out.push(Finding {
            file: self.path.to_string(),
            line,
            rule,
            code,
            message,
        });
    }
}

/// Marks every significant token inside a `#[cfg(test)]` item (usually the
/// trailing `mod tests { ... }`) so library rules skip test code embedded
/// in `src/` files.
fn test_regions(sig: &[Token], src: &str) -> Vec<bool> {
    let mut in_test = vec![false; sig.len()];
    let mut i = 0;
    while i < sig.len() {
        if !(sig_punct(sig, i, '#') && sig_punct(sig, i + 1, '[')) {
            i += 1;
            continue;
        }
        let Some(close) = match_bracket(sig, i + 1, '[', ']') else {
            i += 1;
            continue;
        };
        if !is_cfg_test_attr(sig, src, i + 2, close) {
            i = close + 1;
            continue;
        }
        // Skip any further attributes between `#[cfg(test)]` and the item.
        let mut k = close + 1;
        while sig_punct(sig, k, '#') && sig_punct(sig, k + 1, '[') {
            match match_bracket(sig, k + 1, '[', ']') {
                Some(c) => k = c + 1,
                None => break,
            }
        }
        // The item body is the first `{ ... }` before any `;`.
        let mut m = k;
        let end = loop {
            if m >= sig.len() {
                break sig.len().saturating_sub(1);
            }
            if sig_punct(sig, m, ';') {
                break m;
            }
            if sig_punct(sig, m, '{') {
                break match_bracket(sig, m, '{', '}').unwrap_or(sig.len() - 1);
            }
            m += 1;
        };
        for flag in in_test.iter_mut().take(end + 1).skip(i) {
            *flag = true;
        }
        i = end + 1;
    }
    in_test
}

fn sig_punct(sig: &[Token], i: usize, c: char) -> bool {
    sig.get(i).is_some_and(|t| t.kind == TokKind::Punct(c))
}

/// Do the tokens in `(start..close)` spell exactly `cfg ( test )`?
fn is_cfg_test_attr(sig: &[Token], src: &str, start: usize, close: usize) -> bool {
    close == start + 4
        && ident_is(sig, src, start, "cfg")
        && sig_punct(sig, start + 1, '(')
        && ident_is(sig, src, start + 2, "test")
        && sig_punct(sig, start + 3, ')')
}

fn ident_is(sig: &[Token], src: &str, i: usize, word: &str) -> bool {
    sig.get(i)
        .is_some_and(|t| t.kind == TokKind::Ident && t.text(src) == word)
}

/// Finds the matching close bracket for the open bracket at `open_idx`.
fn match_bracket(sig: &[Token], open_idx: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in sig.iter().enumerate().skip(open_idx) {
        if t.kind == TokKind::Punct(open) {
            depth += 1;
        } else if t.kind == TokKind::Punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Collects `// lint: <key> <reason>` annotations; malformed ones become
/// `A0:annotation` findings so a typo'd escape hatch can never silently
/// suppress anything.
fn parse_annotations(
    path: &str,
    src: &str,
    toks: &[Token],
    out: &mut Vec<Finding>,
) -> Vec<Annotation> {
    let mut anns = Vec::new();
    for t in toks {
        if t.kind != TokKind::LineComment {
            continue;
        }
        let body = t
            .text(src)
            .trim_start_matches('/')
            .trim_start_matches('!')
            .trim();
        let Some(rest) = body.strip_prefix("lint:") else {
            continue;
        };
        let mut words = rest.split_whitespace();
        let key_text = words.next().unwrap_or("");
        let reason = words.next();
        let (key, needs_reason) = match key_text {
            "float-eq-ok" => (Some(AnnKey::FloatEqOk), true),
            "log-domain-ok" => (Some(AnnKey::LogDomainOk), true),
            "no-alloc" => (Some(AnnKey::NoAlloc), false),
            "commit-phase" => (Some(AnnKey::CommitPhase), false),
            "interference-ok" => (Some(AnnKey::InterferenceOk), true),
            "bit-identical" => (Some(AnnKey::BitIdentical), false),
            other => {
                out.push(Finding {
                    file: path.to_string(),
                    line: t.line,
                    rule: "A0",
                    code: "annotation",
                    message: format!(
                        "unknown lint annotation key `{other}` (expected \
                         float-eq-ok, log-domain-ok, no-alloc, commit-phase, \
                         interference-ok, or bit-identical)"
                    ),
                });
                (None, false)
            }
        };
        if let Some(key) = key {
            if needs_reason && reason.is_none() {
                out.push(Finding {
                    file: path.to_string(),
                    line: t.line,
                    rule: "A0",
                    code: "annotation",
                    message: format!(
                        "`lint: {key_text}` requires a justification: \
                         `// lint: {key_text} <reason>`"
                    ),
                });
            } else {
                anns.push(Annotation { line: t.line, key });
            }
        }
    }
    anns
}

/// L1: a float literal adjacent to `==`/`!=`.
fn check_float_eq(ctx: &Ctx, out: &mut Vec<Finding>) {
    let mut i = 0;
    while i + 1 < ctx.sig.len() {
        let is_eq = ctx.is_punct(i, '=') && ctx.is_punct(i + 1, '=') && ctx.adjacent(i, i + 1);
        let is_ne = ctx.is_punct(i, '!') && ctx.is_punct(i + 1, '=') && ctx.adjacent(i, i + 1);
        if !(is_eq || is_ne) || ctx.in_test.get(i).copied().unwrap_or(false) {
            i += 1;
            continue;
        }
        // `a === b` / `!==` can't occur in Rust; `x != =` neither. The
        // operand on the left is sig[i-1]; on the right sig[i+2], or
        // sig[i+3] behind a unary minus.
        let lhs_float = i > 0 && ctx.float_at(i - 1);
        let rhs_float = ctx.float_at(i + 2) || (ctx.is_punct(i + 2, '-') && ctx.float_at(i + 3));
        if lhs_float || rhs_float {
            let op = if is_eq { "==" } else { "!=" };
            ctx.finding(
                out,
                i,
                "L1",
                "float-eq",
                format!(
                    "floating-point literal compared with `{op}`; use a tolerance \
                     helper, bitwise `to_bits()`, or annotate \
                     `// lint: float-eq-ok <reason>` if exactness is intended"
                ),
            );
        }
        i += 2;
    }
}

/// L2: `.exp()` / `.ln()` / `.powf()` family on the MVA path, minus the
/// sites the L7 dataflow pass sanctions (proper log-domain boundaries).
fn check_log_domain(ctx: &Ctx, sanctioned: &HashSet<usize>, out: &mut Vec<Finding>) {
    for i in 0..ctx.sig.len() {
        if !ctx.is_punct(i, '.') || ctx.in_test.get(i).copied().unwrap_or(false) {
            continue;
        }
        let Some(name) = ctx.ident_at(i + 1) else {
            continue;
        };
        if LOG_DOMAIN_METHODS.contains(&name)
            && ctx.is_punct(i + 2, '(')
            && !sanctioned.contains(&(i + 1))
        {
            ctx.finding(
                out,
                i + 1,
                "L2",
                "log-domain",
                format!(
                    "`.{name}()` inside `queueing::mva` that the dataflow pass \
                     cannot sanction: raw exp/ln underflows the Alg. 2/3 \
                     recursions near n=1500; keep the log-domain provenance \
                     visible (bind to an `ln_*` name, discharge a tracked log \
                     value, accumulate-then-`.ln()`), route through the \
                     kernel in `convolution/kernel.rs`, or annotate \
                     `// lint: log-domain-ok <reason>`"
                ),
            );
        }
    }
}

/// L3: panic-prone constructs in library code (ratcheted by baseline).
fn check_panic_paths(ctx: &Ctx, out: &mut Vec<Finding>) {
    for i in 0..ctx.sig.len() {
        if ctx.in_test.get(i).copied().unwrap_or(false) {
            continue;
        }
        // `.unwrap()` and `.expect(<non-literal>)`.
        if ctx.is_punct(i, '.') {
            if let Some(name) = ctx.ident_at(i + 1) {
                if name == "unwrap" && ctx.is_punct(i + 2, '(') && ctx.is_punct(i + 3, ')') {
                    ctx.finding(
                        out,
                        i + 1,
                        "L3",
                        "unwrap",
                        "`.unwrap()` in library code: convert to `.expect(\"<invariant>\")` \
                         or propagate a typed error"
                            .to_string(),
                    );
                } else if name == "expect" && ctx.is_punct(i + 2, '(') {
                    let arg_is_literal = ctx
                        .sig
                        .get(i + 3)
                        .is_some_and(|t| matches!(t.kind, TokKind::Str | TokKind::RawStr));
                    if !arg_is_literal {
                        ctx.finding(
                            out,
                            i + 1,
                            "L3",
                            "expect",
                            "`.expect(..)` without a string-literal invariant message; \
                             state the invariant inline or propagate a typed error"
                                .to_string(),
                        );
                    }
                }
            }
        }
        // `panic!(...)`.
        if ctx.ident_at(i) == Some("panic") && ctx.is_punct(i + 1, '!') {
            ctx.finding(
                out,
                i,
                "L3",
                "panic",
                "`panic!` in library code: return a typed error instead".to_string(),
            );
        }
        // Indexing by an integer literal: `expr[0]`.
        if ctx.is_punct(i, '[')
            && ctx.int_at(i + 1)
            && ctx.is_punct(i + 2, ']')
            && i > 0
            && ctx.sig.get(i - 1).is_some_and(|t| {
                t.kind == TokKind::Ident
                    || t.kind == TokKind::Punct(')')
                    || t.kind == TokKind::Punct(']')
            })
        {
            ctx.finding(
                out,
                i + 1,
                "L3",
                "index",
                "indexing by integer literal can panic; prefer `.first()`/`.get(..)` \
                 with explicit handling"
                    .to_string(),
            );
        }
    }
}

/// L4: allocation tokens inside `// lint: no-alloc` functions.
fn check_no_alloc(ctx: &Ctx, annotations: &[Annotation], out: &mut Vec<Finding>) {
    for ann in annotations {
        if ann.key != AnnKey::NoAlloc {
            continue;
        }
        // The marker applies to the next `fn` item after the comment line.
        let Some(fn_idx) = ctx
            .sig
            .iter()
            .position(|t| t.line > ann.line && t.kind == TokKind::Ident && ctx.text(t) == "fn")
        else {
            continue;
        };
        let fn_name = ctx.ident_at(fn_idx + 1).unwrap_or("<unnamed>").to_string();
        // Skip the parameter list, then take the first `{ ... }` as the body.
        let Some(params_open) = (fn_idx..ctx.sig.len()).find(|&k| ctx.is_punct(k, '(')) else {
            continue;
        };
        let Some(params_close) = match_bracket(ctx.sig, params_open, '(', ')') else {
            continue;
        };
        let Some(body_open) = (params_close..ctx.sig.len()).find(|&k| ctx.is_punct(k, '{')) else {
            continue;
        };
        let body_close = match_bracket(ctx.sig, body_open, '{', '}').unwrap_or(ctx.sig.len() - 1);

        for k in body_open..body_close {
            if ctx.is_punct(k, '.') {
                if let Some(name) = ctx.ident_at(k + 1) {
                    if ALLOC_METHODS.contains(&name) {
                        let name = name.to_string();
                        ctx.finding(
                            out,
                            k + 1,
                            "L4",
                            "no-alloc",
                            format!(
                                "`.{name}` inside `// lint: no-alloc` fn `{fn_name}`; \
                                 the steady-state hot path must not allocate \
                                 (see tests/alloc_steady_state.rs)"
                            ),
                        );
                    }
                }
            }
            if let Some(name) = ctx.ident_at(k) {
                if ALLOC_MACROS.contains(&name) && ctx.is_punct(k + 1, '!') {
                    let name = name.to_string();
                    ctx.finding(
                        out,
                        k,
                        "L4",
                        "no-alloc",
                        format!("`{name}!` inside `// lint: no-alloc` fn `{fn_name}`"),
                    );
                }
                let path_new = (name == "Box" && path_seg_is(ctx, k, "new"))
                    || (name == "String" && path_seg_is(ctx, k, "from"));
                if path_new {
                    let name = name.to_string();
                    ctx.finding(
                        out,
                        k,
                        "L4",
                        "no-alloc",
                        format!(
                            "`{name}::..` constructor inside `// lint: no-alloc` fn `{fn_name}`"
                        ),
                    );
                }
            }
        }
    }
}

/// L6: the batched log-sum-exp kernel is exempt from L2 precisely because
/// it *is* the sanctioned exp/ln home — in exchange its `conv_cell` entry
/// point must keep the `// lint: no-alloc` ratchet (the L4 marker) so the
/// steady-state allocation contract can never silently regress. Not
/// baselineable: the marker either precedes `conv_cell` or the tree fails.
fn check_kernel_ratchet(ctx: &Ctx, annotations: &[Annotation], out: &mut Vec<Finding>) {
    let covered = annotations.iter().any(|ann| {
        ann.key == AnnKey::NoAlloc
            && ctx
                .sig
                .iter()
                .position(|t| t.line > ann.line && t.kind == TokKind::Ident && ctx.text(t) == "fn")
                .is_some_and(|fn_idx| ctx.ident_at(fn_idx + 1) == Some("conv_cell"))
    });
    if covered {
        return;
    }
    let line = ctx
        .sig
        .windows(2)
        .find_map(|w| match w {
            [f, n]
                if f.kind == TokKind::Ident
                    && ctx.text(f) == "fn"
                    && n.kind == TokKind::Ident
                    && ctx.text(n) == "conv_cell" =>
            {
                Some(f.line)
            }
            _ => None,
        })
        .unwrap_or(1);
    out.push(Finding {
        file: ctx.path.to_string(),
        line,
        rule: "L6",
        code: "kernel-ratchet",
        message: "the batched kernel's `conv_cell` must carry `// lint: no-alloc`: \
                  it runs inside the zero-allocation steady state of every \
                  convolution sweep (see tests/alloc_steady_state.rs)"
            .to_string(),
    });
}

/// Entry points that hand a closure to the worker pool; their closure
/// arguments execute concurrently on arbitrary threads.
const POOL_FNS: &[&str] = &["scoped_indexed", "scoped_indexed_min_chunk", "spawn"];

/// Methods that reach through interior mutability; inside a pool closure
/// each call is a potential cross-task interference point.
const INTERIOR_MUT_METHODS: &[&str] = &[
    "lock",
    "borrow_mut",
    "fetch_add",
    "fetch_sub",
    "fetch_or",
    "fetch_and",
    "fetch_xor",
    "fetch_update",
    "store",
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
];

/// Free functions whose call inside a pool closure commits telemetry
/// mid-plan (the plan/commit protocol defers these to the serial phase).
const COMMIT_COUNTER_FNS: &[&str] = &["counter", "gauge"];

/// The innermost name an lvalue-ish chain hangs off: `self.cache` →
/// `cache`, `jobs[j]` → `jobs`, `*slot` → `slot`.
fn expr_base_name(e: &Expr) -> Option<&str> {
    match &e.kind {
        ExprKind::Path(segs) => match segs.as_slice() {
            [seg] => Some(seg.as_str()),
            _ => None,
        },
        ExprKind::Field { name, .. } => Some(name.as_str()),
        ExprKind::Index { recv, .. } => expr_base_name(recv),
        ExprKind::Unary { inner, .. } | ExprKind::Ref { inner, .. } => expr_base_name(inner),
        _ => None,
    }
}

/// Every name bound *inside* a closure body: parameters, `let` bindings,
/// loop/`if let`/`match` pattern names, nested closure params. Anything
/// else the closure touches is captured from the enclosing scope.
fn closure_bound_names(params: &[String], body: &Expr) -> HashSet<String> {
    let mut bound: HashSet<String> = params.iter().cloned().collect();
    ast::walk_expr(body, &mut |e| match &e.kind {
        ExprKind::Closure { params, .. } => bound.extend(params.iter().cloned()),
        ExprKind::Flow { bound: b, .. } => bound.extend(b.iter().cloned()),
        ExprKind::Block(blk) => {
            for stmt in &blk.stmts {
                if let Stmt::Let(l) = stmt {
                    bound.extend(l.names.iter().cloned());
                }
            }
        }
        _ => {}
    });
    bound
}

/// Is this expression a pool dispatch? Returns the closure arguments
/// (the code that will run concurrently).
fn pool_closures(e: &Expr) -> Option<Vec<&Expr>> {
    let (name, args) = match &e.kind {
        ExprKind::Call { callee, args } => match &callee.kind {
            ExprKind::Path(segs) => (segs.last()?.as_str(), args),
            _ => return None,
        },
        ExprKind::Method { name, args, .. } => (name.as_str(), args),
        _ => return None,
    };
    if !POOL_FNS.contains(&name) {
        return None;
    }
    let closures: Vec<&Expr> = args
        .iter()
        .filter(|a| matches!(a.kind, ExprKind::Closure { .. }))
        .collect();
    if closures.is_empty() {
        None
    } else {
        Some(closures)
    }
}

fn line_of_expr(ctx: &Ctx, e: &Expr) -> u32 {
    ctx.sig.get(e.span.lo).map(|t| t.line).unwrap_or(0)
}

/// L8: parallel-interference. Inside `scoped_indexed`/`spawn` closures:
/// no writes to captured state (`captured-mut`), no interior mutability
/// on captured values (`interior-mut`, annotatable), no telemetry or
/// cache commits mid-plan (`plan-commit`); and the serial commit writes
/// *after* a pool call must sit under `// lint: commit-phase`
/// (`unmarked-commit`).
fn check_parallel_interference(ctx: &Ctx, tree: &Ast, out: &mut Vec<Finding>) {
    ast::for_each_fn(&tree.items, &mut |f| {
        if ctx.in_test.get(f.span.lo).copied().unwrap_or(false) {
            return;
        }
        let Some(body) = &f.body else { return };

        // Pass 1: the closures handed to the pool.
        ast::walk_block_exprs(body, &mut |e| {
            let Some(closures) = pool_closures(e) else {
                return;
            };
            for closure in closures {
                let ExprKind::Closure { params, body } = &closure.kind else {
                    continue;
                };
                let bound = closure_bound_names(params, body);
                lint_pool_closure(ctx, body, &bound, out);
            }
        });

        // Pass 2: commit writes after the pool call need the marker.
        let pool_stmt = body.stmts.iter().position(|stmt| {
            let mut found = false;
            each_stmt_expr(stmt, &mut |e| {
                if pool_closures(e).is_some() {
                    found = true;
                }
            });
            found
        });
        if let Some(p) = pool_stmt {
            for stmt in body.stmts.iter().skip(p + 1) {
                each_stmt_expr(stmt, &mut |e| {
                    if let Some(what) = commit_sink(e) {
                        out.push(Finding {
                            file: ctx.path.to_string(),
                            line: line_of_expr(ctx, e),
                            rule: "L8",
                            code: "unmarked-commit",
                            message: format!(
                                "{what} after a parallel section: this is the serial \
                                 commit half of the plan/commit protocol and must be \
                                 marked `// lint: commit-phase`"
                            ),
                        });
                    }
                });
            }
        }
    });
}

/// Walks every expression of one statement.
fn each_stmt_expr<'ast>(stmt: &'ast Stmt, f: &mut dyn FnMut(&'ast Expr)) {
    match stmt {
        Stmt::Let(l) => {
            if let Some(init) = &l.init {
                ast::walk_expr(init, f);
            }
        }
        Stmt::Expr(e) => ast::walk_expr(&e.expr, f),
        Stmt::Item(_) => {}
    }
}

/// Is this expression a commit-phase write (telemetry bump or cache
/// store)? Returns a description for the diagnostic.
fn commit_sink(e: &Expr) -> Option<String> {
    match &e.kind {
        ExprKind::Call { callee, args: _ } => {
            if let ExprKind::Path(segs) = &callee.kind {
                let last = segs.last()?;
                if COMMIT_COUNTER_FNS.contains(&last.as_str()) {
                    return Some(format!("telemetry `{last}(..)` call"));
                }
            }
            None
        }
        ExprKind::Method { recv, name, .. } => {
            if name.starts_with("note_") {
                return Some(format!("telemetry `.{name}(..)` call"));
            }
            if (name == "store" || name == "insert")
                && expr_base_name(recv).is_some_and(|b| b.contains("cache"))
            {
                return Some(format!("cache `.{name}(..)` write"));
            }
            None
        }
        _ => None,
    }
}

/// The body of one pool closure: flag interference with the enclosing
/// scope.
fn lint_pool_closure(ctx: &Ctx, body: &Expr, bound: &HashSet<String>, out: &mut Vec<Finding>) {
    let captured = |e: &Expr| -> Option<String> {
        let base = expr_base_name(e)?;
        if base == "_" || bound.contains(base) {
            None
        } else {
            Some(base.to_string())
        }
    };
    ast::walk_expr(body, &mut |e| match &e.kind {
        ExprKind::Assign { target, .. } => {
            if let Some(base) = captured(target) {
                out.push(Finding {
                    file: ctx.path.to_string(),
                    line: line_of_expr(ctx, e),
                    rule: "L8",
                    code: "captured-mut",
                    message: format!(
                        "write to captured `{base}` inside a pool closure: tasks \
                             race on shared state; return a value per index and \
                             reduce serially after the pool call"
                    ),
                });
            }
        }
        ExprKind::Ref {
            mutable: true,
            inner,
        } => {
            if let Some(base) = captured(inner) {
                out.push(Finding {
                    file: ctx.path.to_string(),
                    line: line_of_expr(ctx, e),
                    rule: "L8",
                    code: "captured-mut",
                    message: format!(
                        "`&mut {base}` borrow of captured state inside a pool \
                             closure: tasks race on shared state; make the state \
                             per-index or move it out of the closure"
                    ),
                });
            }
        }
        ExprKind::Method { recv, name, .. } => {
            if let Some(base) = INTERIOR_MUT_METHODS
                .contains(&name.as_str())
                .then(|| captured(recv))
                .flatten()
            {
                out.push(Finding {
                    file: ctx.path.to_string(),
                    line: line_of_expr(ctx, e),
                    rule: "L8",
                    code: "interior-mut",
                    message: format!(
                        "`.{name}()` on captured `{base}` inside a pool closure \
                             reaches through interior mutability; if the access is \
                             disjoint by construction annotate \
                             `// lint: interference-ok <reason>`"
                    ),
                });
            }
            if name.starts_with("note_") {
                out.push(Finding {
                    file: ctx.path.to_string(),
                    line: line_of_expr(ctx, e),
                    rule: "L8",
                    code: "plan-commit",
                    message: format!(
                        "telemetry `.{name}(..)` inside a pool closure commits \
                             observable state mid-plan in completion order; defer it \
                             to the serial commit phase"
                    ),
                });
            }
            if (name == "store" || name == "insert")
                && expr_base_name(recv).is_some_and(|b| b.contains("cache"))
            {
                out.push(Finding {
                    file: ctx.path.to_string(),
                    line: line_of_expr(ctx, e),
                    rule: "L8",
                    code: "plan-commit",
                    message: format!(
                        "cache `.{name}(..)` inside a pool closure commits in \
                             completion order; collect per-index results and commit \
                             serially after the pool call"
                    ),
                });
            }
        }
        ExprKind::Call { callee, .. } => {
            if let ExprKind::Path(segs) = &callee.kind {
                if let Some(last) = segs.last() {
                    if COMMIT_COUNTER_FNS.contains(&last.as_str()) {
                        out.push(Finding {
                            file: ctx.path.to_string(),
                            line: line_of_expr(ctx, e),
                            rule: "L8",
                            code: "plan-commit",
                            message: format!(
                                "telemetry `{last}(..)` inside a pool closure \
                                     commits counters mid-plan in completion order; \
                                     defer it to the serial commit phase"
                            ),
                        });
                    }
                }
            }
        }
        _ => {}
    });
}

/// L9: reduction-order stability inside `// lint: bit-identical` fns.
/// The annotation promises the fn's output is bit-identical across task
/// schedules, so nothing inside may reduce floats in completion order:
/// no channel receives, no accumulation into shared state from within a
/// pool closure.
fn check_reduction_order(
    ctx: &Ctx,
    tree: &Ast,
    annotations: &[Annotation],
    out: &mut Vec<Finding>,
) {
    let marked: Vec<u32> = annotations
        .iter()
        .filter(|a| a.key == AnnKey::BitIdentical)
        .map(|a| a.line)
        .collect();
    if marked.is_empty() {
        return;
    }
    // Each marker arms the first fn that starts after it.
    let mut fn_lines: Vec<u32> = Vec::new();
    ast::for_each_fn(&tree.items, &mut |f| fn_lines.push(f.line));
    fn_lines.sort_unstable();
    let armed: HashSet<u32> = marked
        .iter()
        .filter_map(|&l| fn_lines.iter().find(|&&fl| fl > l).copied())
        .collect();
    ast::for_each_fn(&tree.items, &mut |f| {
        if ctx.in_test.get(f.span.lo).copied().unwrap_or(false) {
            return;
        }
        if !armed.contains(&f.line) {
            return;
        }
        let Some(body) = &f.body else { return };
        ast::walk_block_exprs(body, &mut |e| {
            if let ExprKind::Method { name, .. } = &e.kind {
                if name == "recv" || name == "try_recv" || name == "recv_timeout" {
                    out.push(Finding {
                        file: ctx.path.to_string(),
                        line: line_of_expr(ctx, e),
                        rule: "L9",
                        code: "reduction-order",
                        message: format!(
                            "`.{name}()` in a `// lint: bit-identical` fn consumes \
                             results in completion order; collect per-index slots \
                             so the reduction order is schedule-independent"
                        ),
                    });
                }
            }
            if let Some(closures) = pool_closures(e) {
                for closure in closures {
                    let ExprKind::Closure { params, body } = &closure.kind else {
                        continue;
                    };
                    let bound = closure_bound_names(params, body);
                    ast::walk_expr(body, &mut |inner| {
                        if let ExprKind::Assign {
                            op: Some(op),
                            target,
                            ..
                        } = &inner.kind
                        {
                            let shared = match expr_base_name(target) {
                                Some(base) => !bound.contains(base),
                                None => true,
                            };
                            if matches!(op.as_str(), "+" | "-" | "*") && shared {
                                out.push(Finding {
                                    file: ctx.path.to_string(),
                                    line: line_of_expr(ctx, inner),
                                    rule: "L9",
                                    code: "reduction-order",
                                    message: format!(
                                        "`{op}=` accumulation into shared state inside \
                                         a pool closure of a `// lint: bit-identical` \
                                         fn: float reduction follows task completion \
                                         order; accumulate per index and reduce \
                                         serially in index order"
                                    ),
                                });
                            }
                        }
                    });
                }
            }
        });
    });
}

/// L6 (`hierarchy-ratchet`): the hierarchy's `ensure` runs the parallel
/// plan/commit sub-solves whose whole contract is bitwise equality with
/// the serial order, so it must carry — and keep — the
/// `// lint: bit-identical` marker that arms L9 over its body.
fn check_hierarchy_ratchet(
    ctx: &Ctx,
    tree: &Ast,
    annotations: &[Annotation],
    out: &mut Vec<Finding>,
) {
    let mut fns: Vec<(u32, String)> = Vec::new();
    ast::for_each_fn(&tree.items, &mut |f| {
        fns.push((f.line, f.name.clone()));
    });
    fns.sort_unstable();
    let covered = annotations.iter().any(|a| {
        a.key == AnnKey::BitIdentical
            && fns
                .iter()
                .find(|(l, _)| *l > a.line)
                .is_some_and(|(_, name)| name == "ensure")
    });
    if covered {
        return;
    }
    let line = fns
        .iter()
        .find(|(_, name)| name == "ensure")
        .map(|(l, _)| *l)
        .unwrap_or(1);
    out.push(Finding {
        file: ctx.path.to_string(),
        line,
        rule: "L6",
        code: "hierarchy-ratchet",
        message: "the hierarchy's `ensure` must carry `// lint: bit-identical`: \
                  its parallel sub-solves promise bitwise equality with the \
                  serial schedule (see the interleaving explorer in \
                  numerics::pool and tests/interleaving.rs)"
            .to_string(),
    });
}

/// Is `sig[k] :: <seg>` with the given trailing segment name?
fn path_seg_is(ctx: &Ctx, k: usize, seg: &str) -> bool {
    ctx.is_punct(k + 1, ':') && ctx.is_punct(k + 2, ':') && ctx.ident_at(k + 3) == Some(seg)
}

/// L5: `#[allow(...)]` / `#![allow(...)]` needs a trailing `// why`.
fn check_allow_justified(ctx: &Ctx, out: &mut Vec<Finding>) {
    for i in 0..ctx.sig.len() {
        if !ctx.is_punct(i, '#') {
            continue;
        }
        let bracket = if ctx.is_punct(i + 1, '[') {
            i + 1
        } else if ctx.is_punct(i + 1, '!') && ctx.is_punct(i + 2, '[') {
            i + 2
        } else {
            continue;
        };
        if ctx.ident_at(bracket + 1) != Some("allow") {
            continue;
        }
        let Some(close) = match_bracket(ctx.sig, bracket, '[', ']') else {
            continue;
        };
        let close_tok = ctx.sig[close];
        let justified = ctx.toks.iter().any(|t| {
            t.kind == TokKind::LineComment
                && t.line == close_tok.line
                && t.start >= close_tok.end
                && t.text(ctx.src).trim_start_matches('/').trim().len() > 1
        });
        if !justified {
            ctx.finding(
                out,
                i,
                "L5",
                "allow-justify",
                "`#[allow(...)]` without a trailing justification comment; \
                 append `// <why this allow is sound>`"
                    .to_string(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(path: &str, src: &str) -> Vec<String> {
        lint_file(path, src)
            .into_iter()
            .map(|f| f.rule_code())
            .collect()
    }

    const LIB: &str = "crates/demo/src/lib.rs";
    const MVA: &str = "crates/queueing/src/mva/solver.rs";

    #[test]
    fn l1_flags_float_literal_comparisons() {
        assert_eq!(
            codes(LIB, "fn f(x: f64) -> bool { x == 0.0 }"),
            ["L1:float-eq"]
        );
        assert_eq!(
            codes(LIB, "fn f(x: f64) -> bool { 1.5 != x }"),
            ["L1:float-eq"]
        );
        assert_eq!(
            codes(LIB, "fn f(x: f64) -> bool { x == -0.25 }"),
            ["L1:float-eq"]
        );
        // Integers, orderings, and bit comparisons are fine.
        assert!(codes(LIB, "fn f(x: u32) -> bool { x == 0 }").is_empty());
        assert!(codes(LIB, "fn f(x: f64) -> bool { x <= 0.0 }").is_empty());
        assert!(codes(
            LIB,
            "fn f(a: f64, b: f64) -> bool { a.to_bits() == b.to_bits() }"
        )
        .is_empty());
    }

    #[test]
    fn l1_respects_annotations_and_scope() {
        let trailing = "fn f(x: f64) -> bool { x == 0.0 } // lint: float-eq-ok exact sentinel";
        assert!(codes(LIB, trailing).is_empty());
        let above = "// lint: float-eq-ok exact sentinel\nfn f(x: f64) -> bool { x == 0.0 }";
        assert!(codes(LIB, above).is_empty());
        // Annotation without a reason is itself a finding and suppresses nothing.
        let bare = "// lint: float-eq-ok\nfn f(x: f64) -> bool { x == 0.0 }";
        assert_eq!(codes(LIB, bare), ["A0:annotation", "L1:float-eq"]);
        // dd.rs is allowlisted; tests/ trees are out of scope.
        assert!(codes(
            "crates/numerics/src/dd.rs",
            "fn f(x: f64) -> bool { x == 0.0 }"
        )
        .is_empty());
        assert!(codes(
            "crates/demo/tests/t.rs",
            "fn f(x: f64) -> bool { x == 0.0 }"
        )
        .is_empty());
    }

    #[test]
    fn l2_flags_exp_family_only_on_mva_path() {
        assert_eq!(
            codes(MVA, "fn f(x: f64) -> f64 { x.exp() }"),
            ["L2:log-domain"]
        );
        assert_eq!(
            codes(MVA, "fn f(x: f64) -> f64 { x.powf(2.0) }"),
            ["L2:log-domain"]
        );
        assert!(codes(LIB, "fn f(x: f64) -> f64 { x.exp() }").is_empty());
        let annotated =
            "fn f(x: f64) -> f64 {\n    // lint: log-domain-ok reference oracle\n    x.exp()\n}";
        assert!(codes(MVA, annotated).is_empty());
    }

    #[test]
    fn l2_dataflow_sanctions_proper_log_boundaries() {
        // Discharging a tracked log value is a sanctioned boundary.
        assert!(codes(MVA, "fn f(d: f64) -> f64 { let ln_d = d.ln(); ln_d.exp() }").is_empty());
        // Accumulate-then-ln is the log-sum-exp re-entry.
        let lse = "fn f(a: f64, b: f64, m: f64) -> f64 {\n\
                       let mut acc = 0.0;\n\
                       acc += (a - m).exp();\n\
                       acc += (b - m).exp();\n\
                       m + acc.ln()\n\
                   }";
        assert!(codes(MVA, lse).is_empty());
        // The kernel and workspace are no longer blanket-exempt: an exp
        // the dataflow cannot justify fires even there.
        let kernel = "crates/queueing/src/mva/convolution/kernel.rs";
        assert_eq!(
            codes(
                kernel,
                "// lint: no-alloc\npub fn conv_cell(q: f64) -> f64 { q.exp() }"
            ),
            ["L2:log-domain"]
        );
    }

    #[test]
    fn annotations_cover_the_whole_next_statement() {
        let src = "fn f(x: f64) -> f64 {\n\
                       // lint: log-domain-ok oracle comparison loop\n\
                       let v = [x, x]\n\
                           .iter()\n\
                           .map(|t| t.powf(2.0))\n\
                           .fold(0.0, |a, b| a + b);\n\
                       v\n\
                   }";
        assert!(codes(MVA, src).is_empty());
        let bare = src.replace("// lint: log-domain-ok oracle comparison loop\n", "");
        assert_eq!(codes(MVA, &bare), ["L2:log-domain"]);
    }

    #[test]
    fn l7_flags_log_domain_misuse_anywhere_in_src() {
        assert_eq!(
            codes(
                LIB,
                "fn f(x: f64, y: f64) -> f64 { let a = x.ln(); let b = y.ln(); a * b }"
            ),
            ["L7:log-as-linear"]
        );
        assert_eq!(
            codes(LIB, "fn f(x: f64) -> f64 { let a = x.ln(); a.ln() }"),
            ["L7:double-ln"]
        );
        assert_eq!(
            codes(LIB, "fn g(x: f64) -> f64 { x.exp().exp() }"),
            ["L7:double-exp"]
        );
        // The same escape hatch as L2 applies when the analysis is wrong.
        let ann = "fn f(x: f64) -> f64 {\n\
                       let a = x.ln();\n\
                       // lint: log-domain-ok iterated log is intended here\n\
                       a.ln()\n\
                   }";
        assert!(codes(LIB, ann).is_empty());
        // Test modules are exempt.
        let test_mod =
            "#[cfg(test)]\nmod tests {\n    fn f(x: f64) -> f64 { let a = x.ln(); a.ln() }\n}";
        assert!(codes(LIB, test_mod).is_empty());
    }

    #[test]
    fn l8_flags_interference_inside_pool_closures() {
        // Write to captured state.
        let src = "fn f(n: usize) -> usize {\n\
                       let mut hits = 0;\n\
                       pool::scoped_indexed(n, 4, |i| {\n\
                           hits += 1;\n\
                           i\n\
                       });\n\
                       hits\n\
                   }";
        assert!(codes(LIB, src).contains(&"L8:captured-mut".to_string()));
        // Interior mutability on a captured value, and its escape hatch.
        let src = "fn f(n: usize, next: &AtomicUsize) {\n\
                       scoped_indexed(n, 4, |i| {\n\
                           next.fetch_add(1, Ordering::Relaxed);\n\
                           i\n\
                       });\n\
                   }";
        assert_eq!(codes(LIB, src), ["L8:interior-mut"]);
        // The annotation above the pool statement covers the whole call.
        let ann = src.replace(
            "scoped_indexed",
            "// lint: interference-ok per-index claim, each task gets a unique slot\n\
             scoped_indexed",
        );
        assert!(codes(LIB, &ann).is_empty());
        // Telemetry mid-plan.
        let src = "fn f(n: usize) {\n\
                       scoped_indexed(n, 4, |i| {\n\
                           obsv::counter(\"solves\", 1);\n\
                           i\n\
                       });\n\
                   }";
        assert_eq!(codes(LIB, src), ["L8:plan-commit"]);
        // Closure-local state is not interference.
        let local = "fn f(n: usize) {\n\
                         scoped_indexed(n, 4, |i| {\n\
                             let mut acc = 0.0;\n\
                             for k in 0..i {\n\
                                 acc += k as f64;\n\
                             }\n\
                             acc\n\
                         });\n\
                     }";
        assert!(codes(LIB, local).is_empty());
    }

    #[test]
    fn l8_requires_commit_phase_markers_after_the_pool() {
        let src = "fn f(&mut self, n: usize) {\n\
                       let r = pool::scoped_indexed(n, 4, |i| i);\n\
                       self.cache.insert(n, r);\n\
                   }";
        assert_eq!(codes(LIB, src), ["L8:unmarked-commit"]);
        let marked = "fn f(&mut self, n: usize) {\n\
                          let r = pool::scoped_indexed(n, 4, |i| i);\n\
                          // lint: commit-phase\n\
                          self.cache.insert(n, r);\n\
                      }";
        assert!(codes(LIB, marked).is_empty());
    }

    #[test]
    fn l9_fires_inside_bit_identical_fns() {
        // Completion-order channel consumption.
        let src = "// lint: bit-identical\n\
                   fn reduce(n: usize, rx: &Receiver<f64>) -> f64 {\n\
                       let mut acc = 0.0;\n\
                       for _ in 0..n {\n\
                           acc += rx.recv().expect(\"worker sends once\");\n\
                       }\n\
                       acc\n\
                   }";
        assert_eq!(codes(LIB, src), ["L9:reduction-order"]);
        // Completion-order accumulation from inside a pool closure (also
        // an L8 captured-mut interference).
        let src = "// lint: bit-identical\n\
                   fn reduce(n: usize) -> f64 {\n\
                       let mut acc = 0.0;\n\
                       scoped_indexed(n, 4, |i| {\n\
                           acc += i as f64;\n\
                           i\n\
                       });\n\
                       acc\n\
                   }";
        let found = codes(LIB, src);
        assert!(
            found.contains(&"L9:reduction-order".to_string()),
            "{found:?}"
        );
        // Unmarked fns with the same shape are L8's business, not L9's.
        let unmarked = src.replace("// lint: bit-identical\n", "");
        assert!(!codes(LIB, &unmarked).contains(&"L9:reduction-order".to_string()));
    }

    #[test]
    fn l6_requires_the_hierarchy_bit_identical_ratchet() {
        let hier = "crates/queueing/src/hierarchy.rs";
        let ok = "// lint: bit-identical\npub fn ensure(&mut self) {}";
        assert!(codes(hier, ok).is_empty());
        let missing = "pub fn ensure(&mut self) {}";
        assert_eq!(codes(hier, missing), ["L6:hierarchy-ratchet"]);
        // A marker on some other fn does not satisfy the ratchet.
        let wrong = "// lint: bit-identical\nfn other() {}\npub fn ensure(&mut self) {}";
        assert_eq!(codes(hier, wrong), ["L6:hierarchy-ratchet"]);
    }

    #[test]
    fn explain_covers_every_rule_family() {
        for rule in ["L1", "L2", "L3", "L4", "L5", "L6", "L7", "L8", "L9", "A0"] {
            assert!(explain(rule).is_some(), "missing explain({rule})");
        }
        assert!(explain("L10").is_none());
        assert!(explain("l7").is_some(), "explain is case-insensitive");
    }

    #[test]
    fn l3_flags_panic_paths() {
        assert_eq!(
            codes(LIB, "fn f(x: Option<u32>) -> u32 { x.unwrap() }"),
            ["L3:unwrap"]
        );
        assert_eq!(
            codes(LIB, "fn f(x: Option<u32>, m: &str) -> u32 { x.expect(m) }"),
            ["L3:expect"]
        );
        assert!(codes(
            LIB,
            "fn f(x: Option<u32>) -> u32 { x.expect(\"invariant\") }"
        )
        .is_empty());
        assert_eq!(codes(LIB, "fn f() { panic!(\"boom\") }"), ["L3:panic"]);
        assert_eq!(codes(LIB, "fn f(v: &[u32]) -> u32 { v[0] }"), ["L3:index"]);
        // Array literals and macro brackets are not indexing.
        assert!(codes(LIB, "fn f() -> [u32; 2] { [0, 1] }").is_empty());
        assert!(codes(LIB, "fn f() -> Vec<u32> { vec![0] }").is_empty());
    }

    #[test]
    fn l3_exempts_cfg_test_modules() {
        let src = "fn ok() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { let v = vec![1]; assert_eq!(v[0], Some(1).unwrap()); }\n}\n";
        assert!(codes(LIB, src).is_empty());
    }

    #[test]
    fn l4_flags_alloc_tokens_in_marked_fns() {
        let src = "// lint: no-alloc\nfn hot(&mut self) { self.buf.push(1); }";
        assert_eq!(codes(LIB, src), ["L4:no-alloc"]);
        let src = "// lint: no-alloc\nfn hot(x: &str) -> String { format!(\"{x}\") }";
        assert_eq!(codes(LIB, src), ["L4:no-alloc"]);
        let src = "// lint: no-alloc\nfn hot(x: u32) -> Box<u32> { Box::new(x) }";
        assert_eq!(codes(LIB, src), ["L4:no-alloc"]);
        // Unmarked functions may allocate freely.
        assert!(codes(LIB, "fn cold(&mut self) { self.buf.push(1); }").is_empty());
        // The marked fn's body ends where its braces do.
        let src = "// lint: no-alloc\nfn hot(x: u32) -> u32 { x + 1 }\nfn cold() { let v = vec![1].clone(); drop(v); }";
        assert!(codes(LIB, src).is_empty());
    }

    #[test]
    fn l6_requires_the_kernel_no_alloc_ratchet() {
        let kernel = "crates/queueing/src/mva/convolution/kernel.rs";
        let ok = "// lint: no-alloc\npub fn conv_cell(a: &[f64]) -> f64 { 0.0 }";
        assert!(codes(kernel, ok).is_empty());
        let missing = "pub fn conv_cell(a: &[f64]) -> f64 { 0.0 }";
        assert_eq!(codes(kernel, missing), ["L6:kernel-ratchet"]);
        // A marker on some *other* fn does not satisfy the ratchet.
        let wrong = "// lint: no-alloc\nfn other() {}\npub fn conv_cell(a: &[f64]) -> f64 { 0.0 }";
        assert_eq!(codes(kernel, wrong), ["L6:kernel-ratchet"]);
        // Only the kernel path is in scope.
        assert!(codes(LIB, missing).is_empty());
    }

    #[test]
    fn l5_requires_trailing_justification() {
        assert_eq!(
            codes(LIB, "#[allow(dead_code)]\nfn f() {}"),
            ["L5:allow-justify"]
        );
        assert!(codes(
            LIB,
            "#[allow(dead_code)] // kept for the ffi layer\nfn f() {}"
        )
        .is_empty());
        // Other attributes are untouched.
        assert!(codes(LIB, "#[inline]\nfn f() {}").is_empty());
    }

    #[test]
    fn string_and_comment_contents_never_trigger() {
        let src = r##"
fn f() -> &'static str {
    // example: x == 0.0 and v.unwrap() and .exp()
    /* also panic!("no") */
    r#"x == 0.0 .unwrap() panic!"#
}
"##;
        assert!(codes(MVA, src).is_empty());
    }
}
