//! A hand-rolled Rust source tokenizer.
//!
//! Just enough lexical structure for reliable source-level linting: the
//! scanner must never mistake the contents of a string, comment, or char
//! literal for code (the classic false-positive traps). It therefore
//! handles the full set of Rust literal shapes:
//!
//! * nested block comments (`/* /* */ */`) and line/doc comments,
//! * plain strings with escapes, raw strings `r#".."#` with any number of
//!   hashes, byte strings `b".."` / `br#".."#`,
//! * char literals (`'c'`, `'\n'`, `b'x'`) vs lifetimes (`'a`, `'static`),
//! * numbers with base prefixes, `_` separators, `.`-vs-range
//!   disambiguation (`1.5` is a float, `1..5` is not), exponents, and
//!   type suffixes (`1f64` is a float).
//!
//! Everything else becomes [`TokKind::Ident`] or single-char
//! [`TokKind::Punct`] tokens. Tokens carry byte spans and 1-based line
//! numbers; the concatenation of all token texts plus the skipped
//! whitespace reproduces the input exactly (the round-trip property the
//! lexer test suite checks).

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (also raw identifiers `r#type`).
    Ident,
    /// A lifetime such as `'a` or `'static` (no closing quote).
    Lifetime,
    /// A char or byte literal: `'c'`, `'\u{1F600}'`, `b'x'`.
    Char,
    /// A string or byte-string literal with escapes: `"..."`, `b"..."`.
    Str,
    /// A raw (byte) string literal: `r"..."`, `r#"..."#`, `br#"..."#`.
    RawStr,
    /// A numeric literal; `float` distinguishes `1.5`/`1e3`/`1f64` from
    /// integers.
    Number {
        /// Whether the literal is a floating-point literal.
        float: bool,
    },
    /// `// ...` (including `///` and `//!` doc comments), newline excluded.
    LineComment,
    /// `/* ... */`, nesting handled.
    BlockComment,
    /// Any single punctuation character (`==` is two adjacent `=` tokens).
    Punct(char),
}

/// One lexed token: kind, byte span, and 1-based start line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Token classification.
    pub kind: TokKind,
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based line number of the first character.
    pub line: u32,
}

impl Token {
    /// The token's text within `src` (the string it was lexed from).
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        &src[self.start..self.end]
    }
}

/// Tokenizes `src`. Never fails: unterminated literals simply extend to
/// the end of input, which is the right behavior for a linter that must
/// degrade gracefully on half-edited files.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer::new(src).run()
}

struct Lexer<'s> {
    src: &'s str,
    /// `(byte_offset, char)` for every char; a final sentinel simplifies
    /// lookahead math.
    chars: Vec<(usize, char)>,
    i: usize,
    line: u32,
    out: Vec<Token>,
}

impl<'s> Lexer<'s> {
    fn new(src: &'s str) -> Self {
        Self {
            src,
            chars: src.char_indices().collect(),
            i: 0,
            line: 1,
            out: Vec::new(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).map(|&(_, c)| c)
    }

    fn pos(&self) -> usize {
        self.chars
            .get(self.i)
            .map(|&(p, _)| p)
            .unwrap_or(self.src.len())
    }

    /// Consumes one char, keeping the line counter in sync.
    fn bump(&mut self) {
        if let Some(&(_, c)) = self.chars.get(self.i) {
            if c == '\n' {
                self.line += 1;
            }
            self.i += 1;
        }
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn emit(&mut self, kind: TokKind, start: usize, line: u32) {
        self.out.push(Token {
            kind,
            start,
            end: self.pos(),
            line,
        });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let start = self.pos();
            let line = self.line;
            match c {
                c if c.is_whitespace() => self.bump(),
                '/' if self.peek(1) == Some('/') => {
                    while self.peek(0).is_some_and(|c| c != '\n') {
                        self.bump();
                    }
                    self.emit(TokKind::LineComment, start, line);
                }
                '/' if self.peek(1) == Some('*') => {
                    self.block_comment(start, line);
                }
                'r' if self.raw_string_ahead(0) => {
                    self.bump(); // r
                    self.raw_string(start, line);
                }
                'b' => self.byte_prefixed(start, line),
                '"' => self.string(start, line),
                '\'' => self.char_or_lifetime(start, line),
                c if c.is_ascii_digit() => self.number(start, line),
                c if is_ident_start(c) => {
                    self.ident(start, line);
                }
                _ => {
                    self.bump();
                    self.emit(TokKind::Punct(c), start, line);
                }
            }
        }
        self.out
    }

    fn block_comment(&mut self, start: usize, line: u32) {
        self.bump_n(2); // /*
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.bump_n(2);
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.bump_n(2);
                }
                (Some(_), _) => self.bump(),
                (None, _) => break, // unterminated: extend to EOF
            }
        }
        self.emit(TokKind::BlockComment, start, line);
    }

    /// Is `r`/`br` at `self.i + offset` the start of a raw string
    /// (`r"`, `r#`... followed eventually by `"`), as opposed to a raw
    /// identifier (`r#type`) or a plain ident starting with `r`?
    fn raw_string_ahead(&self, offset: usize) -> bool {
        let mut k = offset + 1; // past the `r`
        while self.peek(k) == Some('#') {
            k += 1;
        }
        // `r#ident` (no quote after the hashes) is a raw identifier.
        self.peek(k) == Some('"')
    }

    /// At a `r`-consumed position: `#*"` ... `"#*`.
    fn raw_string(&mut self, start: usize, line: u32) {
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening "
        'scan: while let Some(c) = self.peek(0) {
            self.bump();
            if c == '"' {
                for k in 0..hashes {
                    if self.peek(k) != Some('#') {
                        continue 'scan;
                    }
                }
                self.bump_n(hashes);
                break;
            }
        }
        self.emit(TokKind::RawStr, start, line);
    }

    /// Dispatches `b'..'`, `b".."`, `br#".."#`, or a plain ident.
    fn byte_prefixed(&mut self, start: usize, line: u32) {
        match self.peek(1) {
            Some('\'') => {
                self.bump(); // b
                self.bump(); // '
                self.char_body();
                self.emit(TokKind::Char, start, line);
            }
            Some('"') => {
                self.bump(); // b
                self.string(start, line);
            }
            Some('r') if self.raw_string_ahead(1) => {
                self.bump_n(2); // br
                self.raw_string(start, line);
            }
            _ => self.ident(start, line),
        }
    }

    fn string(&mut self, start: usize, line: u32) {
        self.bump(); // opening "
        while let Some(c) = self.peek(0) {
            if c == '\\' {
                self.bump_n(2); // escape + escaped char (enough for \" and \\)
            } else if c == '"' {
                self.bump();
                break;
            } else {
                self.bump();
            }
        }
        self.emit(TokKind::Str, start, line);
    }

    /// Consumes a char literal body after the opening `'` (escape or one
    /// char, then the closing `'`).
    fn char_body(&mut self) {
        if self.peek(0) == Some('\\') {
            self.bump_n(2); // \ + escaped char (covers \' \\ \n \u ...)
                            // \u{...}: consume up to the closing brace.
            while self.peek(0).is_some_and(|c| c != '\'') {
                self.bump();
            }
        } else {
            self.bump(); // the char itself
        }
        if self.peek(0) == Some('\'') {
            self.bump();
        }
    }

    /// The classic trap: `'a` (lifetime) vs `'a'` (char literal).
    fn char_or_lifetime(&mut self, start: usize, line: u32) {
        // `'\...` is always a char literal.
        if self.peek(1) == Some('\\') {
            self.bump(); // '
            self.char_body();
            self.emit(TokKind::Char, start, line);
            return;
        }
        // `'X'` (any single char followed by a quote) is a char literal;
        // `'ident` with no closing quote right after one char is a
        // lifetime (`'a`, `'static`, `'_`).
        if self.peek(2) == Some('\'') && self.peek(1).is_some_and(|c| c != '\'') {
            self.bump_n(3);
            self.emit(TokKind::Char, start, line);
            return;
        }
        self.bump(); // '
        while self.peek(0).is_some_and(is_ident_continue) {
            self.bump();
        }
        self.emit(TokKind::Lifetime, start, line);
    }

    fn number(&mut self, start: usize, line: u32) {
        let mut float = false;
        let prefixed = self.peek(0) == Some('0')
            && matches!(self.peek(1), Some('x' | 'X' | 'o' | 'O' | 'b' | 'B'));
        if prefixed {
            self.bump_n(2);
            while self
                .peek(0)
                .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
            {
                self.bump();
            }
            self.emit(TokKind::Number { float: false }, start, line);
            return;
        }
        while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
            self.bump();
        }
        // `.`: part of the number only when not a range (`1..5`) and not a
        // method call (`1.max(2)`).
        if self.peek(0) == Some('.')
            && self.peek(1) != Some('.')
            && !self.peek(1).is_some_and(is_ident_start)
        {
            float = true;
            self.bump();
            while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                self.bump();
            }
        }
        // Exponent: `1e9`, `1.5e-3` (only when digits follow).
        if matches!(self.peek(0), Some('e' | 'E')) {
            let signed = matches!(self.peek(1), Some('+' | '-'));
            let digit_at = if signed { 2 } else { 1 };
            if self.peek(digit_at).is_some_and(|c| c.is_ascii_digit()) {
                float = true;
                self.bump_n(digit_at);
                while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                    self.bump();
                }
            }
        }
        // Type suffix: `1f64` is a float, `1u32` stays an integer.
        let suffix_start = self.pos();
        while self.peek(0).is_some_and(is_ident_continue) {
            self.bump();
        }
        let suffix = &self.src[suffix_start..self.pos()];
        if suffix.starts_with("f32") || suffix.starts_with("f64") {
            float = true;
        }
        self.emit(TokKind::Number { float }, start, line);
    }

    fn ident(&mut self, start: usize, line: u32) {
        // Raw identifier `r#type`: consume the `r#` prefix as part of it.
        if self.peek(0) == Some('r') && self.peek(1) == Some('#') {
            self.bump_n(2);
        }
        while self.peek(0).is_some_and(is_ident_continue) {
            self.bump();
        }
        self.emit(TokKind::Ident, start, line);
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .into_iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("a /* x /* y */ z */ b");
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[1].0, TokKind::BlockComment);
        assert_eq!(toks[1].1, "/* x /* y */ z */");
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r###"let s = r#"contains "quotes" and \n"#;"###;
        let toks = kinds(src);
        let raw = toks
            .iter()
            .find(|(k, _)| *k == TokKind::RawStr)
            .expect("raw string token");
        assert_eq!(raw.1, r###"r#"contains "quotes" and \n"#"###);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'c'; let n = '\\n'; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Lifetime)
            .collect();
        let chars: Vec<_> = toks.iter().filter(|(k, _)| *k == TokKind::Char).collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(chars.len(), 2);
        assert_eq!(chars[0].1, "'c'");
        assert_eq!(chars[1].1, "'\\n'");
    }

    #[test]
    fn float_vs_range_vs_method() {
        let toks = kinds("1.5 1..5 1.max(2) 2e3 7f64 3usize 0x1f");
        let floats: Vec<_> = toks
            .iter()
            .filter(|(k, _)| matches!(k, TokKind::Number { float: true }))
            .map(|(_, s)| s.as_str())
            .collect();
        assert_eq!(floats, ["1.5", "2e3", "7f64"]);
    }

    #[test]
    fn string_escapes_do_not_terminate_early() {
        let toks = kinds(r#"let s = "a \" b"; x"#);
        let s = toks
            .iter()
            .find(|(k, _)| *k == TokKind::Str)
            .expect("string token");
        assert_eq!(s.1, r#""a \" b""#);
        assert_eq!(toks.last().expect("tokens").1, "x");
    }

    #[test]
    fn spans_cover_input_with_only_whitespace_gaps() {
        let src = "fn main() {\n    // hi\n    let x = r\"raw\";\n}\n";
        let toks = lex(src);
        let mut pos = 0usize;
        for t in &toks {
            assert!(src[pos..t.start].chars().all(char::is_whitespace));
            pos = t.end;
        }
        assert!(src[pos..].chars().all(char::is_whitespace));
    }

    #[test]
    fn line_numbers_follow_newlines_inside_tokens() {
        let src = "a\n/* one\ntwo */\nb \"x\ny\" c";
        let toks = lex(src);
        let by_text: Vec<(String, u32)> = toks
            .iter()
            .map(|t| (t.text(src).to_string(), t.line))
            .collect();
        assert_eq!(by_text[0], ("a".to_string(), 1));
        assert_eq!(by_text[1].1, 2); // block comment starts on line 2
        assert_eq!(by_text[2], ("b".to_string(), 4));
        assert_eq!(
            by_text.last().expect("tokens").clone(),
            ("c".to_string(), 5)
        );
    }

    #[test]
    fn byte_literals_and_raw_identifiers() {
        let toks = kinds("b'x' b\"bytes\" br#\"raw\"# r#type");
        assert_eq!(toks[0], (TokKind::Char, "b'x'".to_string()));
        assert_eq!(toks[1].0, TokKind::Str);
        assert_eq!(toks[2].0, TokKind::RawStr);
        assert_eq!(toks[3], (TokKind::Ident, "r#type".to_string()));
    }
}
