//! Property tests for the mvasd-lint lexer.
//!
//! The rule engine is only as trustworthy as the lexer underneath it: a
//! single mis-lexed string or comment silently turns rule hits into misses
//! (or worse, the reverse). These properties fuzz randomly assembled token
//! sequences — including the classic Rust traps: nested block comments, raw
//! strings with hash fences, escaped quotes, and the `'a` lifetime vs `'c'`
//! char ambiguity — and assert the lexer reproduces them exactly.

use mvasd_lint::lexer::{lex, TokKind};
use mvasd_numerics::propcheck::{check, Config, Gen};

/// One source fragment and the token kinds it must lex to, in order.
struct Piece {
    text: &'static str,
    kinds: &'static [TokKind],
}

const fn piece(text: &'static str, kinds: &'static [TokKind]) -> Piece {
    Piece { text, kinds }
}

/// The fragment pool. Every entry is a self-delimiting snippet, so any
/// whitespace-joined sequence of them is lexically valid.
fn pool() -> Vec<Piece> {
    use TokKind::*;
    const INT: TokKind = Number { float: false };
    const FLOAT: TokKind = Number { float: true };
    vec![
        piece("ident", &[Ident]),
        piece("r#type", &[Ident]),
        piece("x7_y", &[Ident]),
        piece("'a", &[Lifetime]),
        piece("'static", &[Lifetime]),
        piece("'_", &[Lifetime]),
        piece("'c'", &[Char]),
        piece("'\\''", &[Char]),
        piece("'\\\\'", &[Char]),
        piece("'\\n'", &[Char]),
        piece("'\"'", &[Char]),
        piece("b'x'", &[Char]),
        piece("\"hello\"", &[Str]),
        piece("\"he said \\\"hi\\\"\"", &[Str]),
        piece("\"/* not a comment */\"", &[Str]),
        piece("\"// not a comment\"", &[Str]),
        piece("\"multi\\nline\"", &[Str]),
        piece("r\"raw\"", &[RawStr]),
        piece("r#\"with \"quotes\"\"#", &[RawStr]),
        piece("r##\"fence \"# inside\"##", &[RawStr]),
        piece("br#\"raw bytes\"#", &[RawStr]),
        piece("42", &[INT]),
        piece("0xff", &[INT]),
        piece("0b1010", &[INT]),
        piece("1_000", &[INT]),
        piece("1.5", &[FLOAT]),
        piece("2e10", &[FLOAT]),
        piece("3.25e-4", &[FLOAT]),
        piece("1f64", &[FLOAT]),
        piece("/* simple */", &[BlockComment]),
        piece("/* /* nested */ still open */", &[BlockComment]),
        piece("/* multi\nline */", &[BlockComment]),
        piece("==", &[Punct('='), Punct('=')]),
        piece("!=", &[Punct('!'), Punct('=')]),
        piece("::", &[Punct(':'), Punct(':')]),
        piece("->", &[Punct('-'), Punct('>')]),
        piece("(", &[Punct('(')]),
        piece(")", &[Punct(')')]),
        piece("{", &[Punct('{')]),
        piece("}", &[Punct('}')]),
        piece(";", &[Punct(';')]),
    ]
}

/// Assembles a random whitespace-joined program from the pool, returning
/// the source and the expected kind sequence.
fn assemble(g: &mut Gen, pieces: &[Piece]) -> (String, Vec<TokKind>) {
    let n = g.usize_in(1, 40);
    let mut src = String::new();
    let mut expected = Vec::new();
    for _ in 0..n {
        let p = &pieces[g.usize_in(0, pieces.len() - 1)];
        src.push_str(p.text);
        expected.extend_from_slice(p.kinds);
        match g.usize_in(0, 3) {
            0 => src.push(' '),
            1 => src.push('\n'),
            2 => src.push('\t'),
            _ => src.push_str("  "),
        }
    }
    (src, expected)
}

#[test]
fn lexed_kinds_match_assembled_sequence() {
    let pieces = pool();
    check(
        "lexer kind fidelity",
        &Config::default().cases(300).seed(0xA11CE),
        |g: &mut Gen| {
            let (src, expected) = assemble(g, &pieces);
            let got: Vec<TokKind> = lex(&src).iter().map(|t| t.kind).collect();
            assert_eq!(got, expected, "source: {src:?}");
        },
    );
}

#[test]
fn spans_cover_every_nonwhitespace_byte_exactly_once() {
    let pieces = pool();
    check(
        "lexer span coverage",
        &Config::default().cases(300).seed(0xC0FFEE),
        |g: &mut Gen| {
            let (src, _) = assemble(g, &pieces);
            let toks = lex(&src);
            let mut covered = vec![false; src.len()];
            let mut prev_end = 0usize;
            for t in &toks {
                assert!(t.start >= prev_end, "overlap or disorder in {src:?}");
                assert!(t.end <= src.len());
                assert_eq!(t.text(&src), &src[t.start..t.end]);
                for c in covered.iter_mut().take(t.end).skip(t.start) {
                    *c = true;
                }
                prev_end = t.end;
            }
            for (i, b) in src.bytes().enumerate() {
                if !covered[i] {
                    assert!(
                        b.is_ascii_whitespace(),
                        "byte {i} ({:?}) uncovered in {src:?}",
                        b as char
                    );
                }
            }
        },
    );
}

#[test]
fn line_numbers_count_newlines_before_token_start() {
    let pieces = pool();
    check(
        "lexer line numbers",
        &Config::default().cases(200).seed(0x11FE),
        |g: &mut Gen| {
            let (src, _) = assemble(g, &pieces);
            for t in lex(&src) {
                let expect = 1 + src[..t.start].matches('\n').count() as u32;
                assert_eq!(t.line, expect, "token at {} in {src:?}", t.start);
            }
        },
    );
}

#[test]
fn arbitrary_ascii_never_panics_and_spans_stay_ordered() {
    // Seeds the generator with hostile prefixes the lexer must survive
    // mid-input: unterminated strings, lone quotes, half-open comments.
    const HOSTILE: &[&str] = &[
        "r#",
        "r#\"",
        "'",
        "b'",
        "\"",
        "/*",
        "/* /*",
        "//",
        "'\\",
        "0x",
        "1e",
        "r##\"x\"#",
    ];
    check(
        "lexer total on arbitrary input",
        &Config::default().cases(400).seed(0xF00D),
        |g: &mut Gen| {
            let mut src = String::new();
            if g.bool() {
                src.push_str(HOSTILE[g.usize_in(0, HOSTILE.len() - 1)]);
            }
            let len = g.usize_in(0, 60);
            for _ in 0..len {
                src.push(char::from(g.usize_in(0x20, 0x7e) as u8));
            }
            let toks = lex(&src);
            let mut prev_end = 0usize;
            for t in &toks {
                assert!(t.start >= prev_end && t.end <= src.len() && t.start < t.end);
                prev_end = t.end;
            }
        },
    );
}

// Deterministic regressions for the issue's named traps, at the public API.

#[test]
fn nested_block_comment_is_one_token() {
    let toks = lex("/* a /* b /* c */ */ */ after");
    assert_eq!(toks.len(), 2);
    assert_eq!(toks[0].kind, TokKind::BlockComment);
    assert_eq!(toks[1].text("/* a /* b /* c */ */ */ after"), "after");
}

#[test]
fn raw_string_fence_hides_quotes_and_comments() {
    let src = "r#\"// not /* code */ \"\"#.len()";
    let toks = lex(src);
    assert_eq!(toks[0].kind, TokKind::RawStr);
    assert_eq!(toks[0].text(src), "r#\"// not /* code */ \"\"#");
}

#[test]
fn escaped_quote_does_not_end_string() {
    let src = r#""an \" escaped quote" x"#;
    let toks = lex(src);
    assert_eq!(toks[0].kind, TokKind::Str);
    assert_eq!(toks[1].kind, TokKind::Ident);
}

#[test]
fn lifetime_vs_char_disambiguation() {
    let src = "&'a str == 'c' != '\\u{41}'";
    let kinds: Vec<TokKind> = lex(src).iter().map(|t| t.kind).collect();
    assert!(kinds.contains(&TokKind::Lifetime));
    assert_eq!(
        kinds.iter().filter(|k| **k == TokKind::Char).count(),
        2,
        "{kinds:?}"
    );
}
