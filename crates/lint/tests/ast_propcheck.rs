//! Property tests for the mvasd-lint AST layer.
//!
//! The dataflow rules (L7-L9) only see what the parser hands them, so the
//! parser's structural guarantees carry the whole rule engine. These
//! properties assemble random programs from a fragment pool — nested
//! closures, raw strings, match arms, generic turbofish — and assert the
//! invariants [`check_coverage`] encodes: top-level item spans tile the
//! significant-token stream exactly, block statements tile the inside of
//! their braces, and child spans nest inside parents. A fixed adversarial
//! corpus pins the known parser traps.

use mvasd_lint::ast::{self, check_coverage, for_each_fn, for_each_stmt, Stmt};
use mvasd_lint::lexer::{lex, TokKind, Token};
use mvasd_numerics::propcheck::{check, Config, Gen};

fn sig_tokens(src: &str) -> Vec<Token> {
    lex(src)
        .into_iter()
        .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .collect()
}

/// Statement fragments, each a complete statement so any sequence forms a
/// valid fn body. Several are deliberately nasty: strings containing `fn`
/// and braces, raw strings with hash fences, closures capturing closures.
const STMTS: &[&str] = &[
    "let a = 1.0;",
    "let b = (a + 2.0).ln();",
    "let c: f64 = b.exp() * 3.0;",
    "helper(a, b);",
    "if a > 0.0 { let d = a; } else { other(); }",
    "for i in 0..10 { acc += i as f64; }",
    "while go() { step(); }",
    "let f = |u: f64| u * 2.0;",
    "let g = move |u: f64| { let v = u + 1.0; v };",
    "let h = |x: f64| move |y: f64| x + y;",
    "match k { 0 => {} _ => { other(); } }",
    "let s = \"fn not_a_fn() { }\";",
    "let r = r#\"raw \" with } brace\"#;",
    "let t = (1, 2.0, \"three\");",
    "xs[0] = xs[1] + xs[2];",
    "let p = obj.field.method::<u64>(q)?;",
    "let v: Vec<Vec<f64>> = Vec::new();",
    "loop { if done { break; } }",
    "// a line comment inside the body\n    noop();",
    "/* block comment */ noop();",
];

/// Item templates; `{NAME}` is replaced with a unique identifier and
/// `{BODY}` with a random statement sequence.
const FN_TEMPLATES: &[&str] = &[
    "fn {NAME}() {\n{BODY}}\n",
    "pub fn {NAME}(x: f64, ys: &[f64]) -> f64 {\n{BODY}    x\n}\n",
    "fn {NAME}<'a, T: Clone>(v: &'a T) -> &'a T {\n{BODY}    v\n}\n",
    "#[inline]\nfn {NAME}(n: usize) -> usize {\n{BODY}    n + 1\n}\n",
];

const OTHER_ITEMS: &[&str] = &[
    "use std::collections::HashMap;\n",
    "struct Point { x: f64, y: f64 }\n",
    "enum Kind { A, B(u32) }\n",
    "const LIMIT: usize = 42;\n",
    "type Pair = (f64, f64);\n",
    "static NAME: &str = \"a } brace in a string\";\n",
];

/// Assembles a random program; returns the source and the names of every
/// generated `fn` item (including fns nested in mods).
fn assemble(g: &mut Gen) -> (String, Vec<String>) {
    let mut src = String::new();
    let mut fn_names = Vec::new();
    let items = g.usize_in(1, 7);
    for i in 0..items {
        match g.usize_in(0, 3) {
            0 => src.push_str(OTHER_ITEMS[g.usize_in(0, OTHER_ITEMS.len() - 1)]),
            1 => {
                // A mod holding one fn, to exercise item nesting.
                let name = format!("inner_{i}");
                let mut body = String::new();
                push_fn(g, &name, &mut body);
                src.push_str(&format!("mod m{i} {{\n{body}}}\n"));
                fn_names.push(name);
            }
            _ => {
                let name = format!("f{i}");
                push_fn(g, &name, &mut src);
                fn_names.push(name);
            }
        }
    }
    if src.is_empty() {
        src.push_str("fn lone() {}\n");
        fn_names.push("lone".to_string());
    }
    (src, fn_names)
}

fn push_fn(g: &mut Gen, name: &str, out: &mut String) {
    let template = FN_TEMPLATES[g.usize_in(0, FN_TEMPLATES.len() - 1)];
    let mut body = String::new();
    for _ in 0..g.usize_in(0, 5) {
        body.push_str("    ");
        body.push_str(STMTS[g.usize_in(0, STMTS.len() - 1)]);
        body.push('\n');
    }
    out.push_str(&template.replace("{NAME}", name).replace("{BODY}", &body));
}

#[test]
fn random_programs_tile_the_token_stream() {
    check(
        "ast.coverage_tiles_random_programs",
        &Config::default().cases(200),
        |g| {
            let (src, fn_names) = assemble(g);
            let sig = sig_tokens(&src);
            let tree = ast::parse(&sig, &src);
            check_coverage(&tree, sig.len())
                .unwrap_or_else(|e| panic!("coverage violated: {e}\nsource:\n{src}"));

            // Every generated fn is found by name, spans preserved: the
            // fn's span must contain a token whose text is its name.
            let mut seen = Vec::new();
            for_each_fn(&tree.items, &mut |f| {
                let named = (f.span.lo..f.span.hi)
                    .any(|i| sig.get(i).is_some_and(|t| t.text(&src) == f.name));
                assert!(named, "fn `{}` span lost its name token\n{src}", f.name);
                seen.push(f.name.clone());
            });
            for name in &fn_names {
                assert!(seen.contains(name), "fn `{name}` not found\nsource:\n{src}");
            }
        },
    );
}

#[test]
fn let_statements_start_with_the_let_token() {
    check(
        "ast.let_spans_anchor_on_let",
        &Config::default().cases(120),
        |g| {
            let (src, _) = assemble(g);
            let sig = sig_tokens(&src);
            let tree = ast::parse(&sig, &src);
            for_each_fn(&tree.items, &mut |f| {
                let Some(body) = &f.body else { return };
                for_each_stmt(body, &mut |stmt| {
                    if let Stmt::Let(_) = stmt {
                        let sp = stmt.span();
                        let first = sig.get(sp.lo).map(|t| t.text(&src));
                        assert_eq!(
                            first,
                            Some("let"),
                            "let-stmt span {}..{} does not start at `let`\n{src}",
                            sp.lo,
                            sp.hi
                        );
                    }
                });
            });
        },
    );
}

/// Known parser traps, pinned as a fixed corpus so regressions name the
/// exact construct that broke.
#[test]
fn adversarial_corpus_parses_with_full_coverage() {
    let corpus: &[(&str, &str)] = &[
        (
            "nested closures capturing closures",
            "fn a() { let f = |x: f64| { let g = move |y: f64| x + y; g(1.0) }; f(2.0); }",
        ),
        (
            "raw string with hash fence and braces",
            "fn b() { let s = r##\"fence \"# with { } and fn c() {}\"##; use_it(s); }",
        ),
        (
            "char literals that look like delimiters",
            "fn c() { let open = '{'; let close = '}'; let q = '\"'; pair(open, close, q); }",
        ),
        (
            "lifetimes vs chars in generics",
            "fn d<'a>(x: &'a str) -> &'a str { let c = 'a'; note(c); x }",
        ),
        (
            "turbofish and shift-right ambiguity",
            "fn e() { let v = Vec::<Vec<u64>>::new(); let n = 1u64 >> 2; grow(v, n); }",
        ),
        (
            "match with guards, ranges, and nested blocks",
            "fn f(k: u32) -> u32 { match k { 0..=4 if k > 1 => { k + 1 } 5 => 0, _ => { let t = k * 2; t } } }",
        ),
        (
            "macro calls with all three delimiters",
            "fn g() { println!(\"{}\", 1); vec![1, 2]; matches!(x, Some { .. }); }",
        ),
        (
            "mod nesting with trailing items",
            "mod outer { mod inner { fn deep() { work(); } } fn shallow() {} } fn top() {}",
        ),
        (
            "comments interleaved with expressions",
            "fn h() { let a /* mid */ = 1.0; // tail\n    let b = a + /* gap */ 2.0; sink(b); }",
        ),
        (
            "struct literals and field inits in tails",
            "fn i() -> P { let base = P { x: 1.0, y: 2.0 }; P { x: base.y, ..base } }",
        ),
    ];
    for (label, src) in corpus {
        let sig = sig_tokens(src);
        let tree = ast::parse(&sig, src);
        check_coverage(&tree, sig.len())
            .unwrap_or_else(|e| panic!("[{label}] coverage violated: {e}"));
        let mut fns = 0usize;
        for_each_fn(&tree.items, &mut |_| fns += 1);
        assert!(fns >= 1, "[{label}] no fn items recognized");
    }
}

/// The parser must be total: random byte-level mutations of a valid
/// program (token deletions, brace injections) may produce garbage, but
/// parsing must neither panic nor break span nesting bounds.
#[test]
fn mutated_programs_never_break_span_bounds() {
    check(
        "ast.mutations_stay_in_bounds",
        &Config::default().cases(150),
        |g| {
            let (mut src, _) = assemble(g);
            // Inject a random brace or delete a random ASCII char.
            for _ in 0..g.usize_in(1, 3) {
                let pos = g.usize_in(0, src.len().saturating_sub(1));
                if !src.is_char_boundary(pos) {
                    continue;
                }
                if g.bool() {
                    let brace = *g.choose(&['{', '}', '(', ')']);
                    src.insert(pos, brace);
                } else if src.len() > 1 {
                    let ch = src.remove(pos);
                    // Never bisect a multi-byte char's neighbours badly:
                    // remove() is char-aware, so just drop it.
                    let _ = ch;
                }
            }
            let sig = sig_tokens(&src);
            let tree = ast::parse(&sig, &src);
            // Tiling may legitimately fail on garbage, but spans must stay
            // inside the token stream.
            for_each_fn(&tree.items, &mut |f| {
                assert!(f.span.hi <= sig.len(), "fn span out of bounds\n{src}");
                if let Some(body) = &f.body {
                    assert!(
                        body.span.lo >= f.span.lo && body.span.hi <= f.span.hi,
                        "body escapes fn span\n{src}"
                    );
                }
            });
        },
    );
}
