//! A small std-only timing harness for the `harness = false` benches.
//!
//! Each measurement runs the closure for a few warmup iterations, then
//! takes `samples` timed samples of `iters` iterations each and reports
//! min / median / mean. No statistics beyond that: the benches here exist
//! to catch order-of-magnitude regressions and to document relative cost,
//! not to resolve nanoseconds.
//!
//! Set `MVASD_BENCH_QUICK=1` to cut samples roughly in half (useful in CI
//! smoke runs); the knob is read once per process.

use std::hint::black_box;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use mvasd_obsv as obsv;

/// True when `MVASD_BENCH_QUICK=1`: benches drop to a fast smoke pass.
pub fn quick_mode() -> bool {
    static QUICK: OnceLock<bool> = OnceLock::new();
    *QUICK.get_or_init(|| std::env::var_os("MVASD_BENCH_QUICK").is_some_and(|v| v == "1"))
}

/// How a [`Bench`] measures one target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Plan {
    /// Untimed iterations before sampling starts.
    pub warmup: u32,
    /// Number of timed samples.
    pub samples: u32,
    /// Closure invocations per sample (raise for sub-microsecond targets).
    pub iters: u32,
}

impl Default for Plan {
    fn default() -> Self {
        Self {
            warmup: 3,
            samples: 15,
            iters: 1,
        }
    }
}

impl Plan {
    /// A plan for expensive targets (seconds per call): fewer samples.
    pub fn heavy() -> Self {
        Self {
            warmup: 1,
            samples: 5,
            iters: 1,
        }
    }

    /// A plan for cheap targets: batch iterations per sample so the timer
    /// resolution doesn't dominate.
    pub fn light(iters: u32) -> Self {
        Self {
            warmup: 5,
            samples: 21,
            iters,
        }
    }

    fn effective(self) -> Self {
        if quick_mode() {
            Self {
                warmup: self.warmup.min(1),
                samples: ((self.samples + 1) / 2).max(3),
                iters: self.iters,
            }
        } else {
            self
        }
    }
}

/// One measured target.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Target label.
    pub name: String,
    /// Per-iteration sample durations, ascending.
    pub sorted: Vec<Duration>,
}

impl Measurement {
    /// Fastest observed per-iteration time.
    pub fn min(&self) -> Duration {
        self.sorted[0]
    }

    /// Median per-iteration time (the headline number).
    pub fn median(&self) -> Duration {
        let s = &self.sorted;
        let mid = s.len() / 2;
        if s.len() % 2 == 1 {
            s[mid]
        } else {
            (s[mid - 1] + s[mid]) / 2
        }
    }

    /// Mean per-iteration time.
    pub fn mean(&self) -> Duration {
        self.sorted.iter().sum::<Duration>() / self.sorted.len() as u32
    }

    /// Slowest observed per-iteration time.
    pub fn max(&self) -> Duration {
        *self.sorted.last().expect("measurements are non-empty")
    }

    /// Nearest-rank quantile of the per-iteration samples. `q` is clamped
    /// to `[0, 1]`; `quantile(0.0)` is `min()` and `quantile(1.0)` is
    /// `max()`.
    pub fn quantile(&self, q: f64) -> Duration {
        let q = q.clamp(0.0, 1.0);
        let n = self.sorted.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        self.sorted[rank - 1]
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// A named group of measurements, printed as an aligned table on `report`.
#[derive(Debug, Default)]
pub struct Bench {
    group: String,
    results: Vec<Measurement>,
}

impl Bench {
    /// Starts a benchmark group.
    pub fn new(group: &str) -> Self {
        Self {
            group: group.to_string(),
            results: Vec::new(),
        }
    }

    /// Measures `f` under `plan` and records the result. The closure's
    /// return value is passed through [`black_box`] so the optimizer can't
    /// delete the work.
    ///
    /// When an [`mvasd_obsv`] recorder is installed, each per-iteration
    /// sample is also fed into the `bench.{group}.{name}` histogram (in
    /// nanoseconds), so experiments and production code share one
    /// measurement vocabulary.
    pub fn measure<R>(&mut self, name: &str, plan: Plan, mut f: impl FnMut() -> R) -> &Measurement {
        let plan = plan.effective();
        for _ in 0..plan.warmup {
            black_box(f());
        }
        let metric = if obsv::enabled() {
            Some(format!("bench.{}.{}", self.group, name))
        } else {
            None
        };
        let mut sorted = Vec::with_capacity(plan.samples as usize);
        for _ in 0..plan.samples {
            let start = Instant::now();
            for _ in 0..plan.iters {
                black_box(f());
            }
            let per_iter = start.elapsed() / plan.iters;
            if let Some(metric) = &metric {
                obsv::observe_duration(metric, per_iter);
            }
            sorted.push(per_iter);
        }
        sorted.sort();
        self.results.push(Measurement {
            name: name.to_string(),
            sorted,
        });
        self.results.last().expect("just pushed")
    }

    /// Renders the group as an aligned text table.
    pub fn report(&self) -> String {
        let width = self
            .results
            .iter()
            .map(|m| m.name.len())
            .max()
            .unwrap_or(0)
            .max(6);
        let mut out = format!(
            "{}\n{:<width$}  {:>10}  {:>10}  {:>10}\n",
            self.group, "target", "median", "mean", "min"
        );
        for m in &self.results {
            out.push_str(&format!(
                "{:<width$}  {:>10}  {:>10}  {:>10}\n",
                m.name,
                fmt_duration(m.median()),
                fmt_duration(m.mean()),
                fmt_duration(m.min())
            ));
        }
        out
    }

    /// The recorded measurements.
    pub fn results(&self) -> &[Measurement] {
        &self.results
    }

    /// The group name.
    pub fn group(&self) -> &str {
        &self.group
    }
}

/// Serializes benchmark groups as machine-readable JSON (schema
/// `mvasd-bench/1`, documented in `EXPERIMENTS.md`): one object per group,
/// one entry per measured target with sample count and nanosecond timing
/// quantiles. The output parses with `mvasd_obsv::json::parse` and is what
/// `results/BENCH_streaming.json` contains.
pub fn bench_json(groups: &[&Bench]) -> String {
    use obsv::json::escape;
    let mut out = String::from("{\"schema\":\"mvasd-bench/1\",\"quick\":");
    out.push_str(if quick_mode() { "true" } else { "false" });
    out.push_str(",\"groups\":[");
    for (gi, g) in groups.iter().enumerate() {
        if gi > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"group\":\"{}\",\"experiments\":[",
            escape(&g.group)
        ));
        for (mi, m) in g.results.iter().enumerate() {
            if mi > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                concat!(
                    "{{\"name\":\"{}\",\"samples\":{},\"nanos\":{{",
                    "\"min\":{},\"p25\":{},\"median\":{},\"p75\":{},",
                    "\"p90\":{},\"max\":{},\"mean\":{}}}}}"
                ),
                escape(&m.name),
                m.sorted.len(),
                m.min().as_nanos(),
                m.quantile(0.25).as_nanos(),
                m.median().as_nanos(),
                m.quantile(0.75).as_nanos(),
                m.quantile(0.90).as_nanos(),
                m.max().as_nanos(),
                m.mean().as_nanos(),
            ));
        }
        out.push_str("]}");
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports() {
        let mut b = Bench::new("demo");
        let m = b.measure("spin", Plan::light(10), || {
            (0..100u64).map(black_box).sum::<u64>()
        });
        assert!(m.min() <= m.median() && m.median() <= *m.sorted.last().unwrap());
        assert!(m.mean() > Duration::ZERO);
        let txt = b.report();
        assert!(txt.contains("demo"));
        assert!(txt.contains("spin"));
        assert!(txt.contains("median"));
    }

    #[test]
    fn median_of_even_and_odd_sample_counts() {
        let m = Measurement {
            name: "x".into(),
            sorted: vec![Duration::from_nanos(10), Duration::from_nanos(30)],
        };
        assert_eq!(m.median(), Duration::from_nanos(20));
        let m = Measurement {
            name: "x".into(),
            sorted: (1..=3).map(Duration::from_nanos).collect(),
        };
        assert_eq!(m.median(), Duration::from_nanos(2));
    }

    #[test]
    fn quantiles_use_nearest_rank() {
        let m = Measurement {
            name: "x".into(),
            sorted: (1..=10).map(Duration::from_nanos).collect(),
        };
        assert_eq!(m.quantile(0.0), Duration::from_nanos(1));
        assert_eq!(m.quantile(0.25), Duration::from_nanos(3));
        assert_eq!(m.quantile(0.9), Duration::from_nanos(9));
        assert_eq!(m.quantile(1.0), Duration::from_nanos(10));
        assert_eq!(m.quantile(2.0), m.max());
        assert_eq!(m.quantile(-1.0), m.min());
        assert_eq!(m.max(), Duration::from_nanos(10));
    }

    #[test]
    fn bench_json_parses_and_carries_quantiles() {
        let mut b = Bench::new("grp \"q\"");
        b.measure("fast", Plan::light(4), || black_box(1u64) + 1);
        let json = bench_json(&[&b]);
        let doc = obsv::json::parse(&json).expect("bench_json emits valid JSON");
        let obj = match &doc {
            obsv::json::Json::Object(m) => m,
            other => panic!("expected object, got {other:?}"),
        };
        assert_eq!(
            obj.get("schema"),
            Some(&obsv::json::Json::String("mvasd-bench/1".into()))
        );
        let groups = match obj.get("groups") {
            Some(obsv::json::Json::Array(a)) => a,
            other => panic!("expected groups array, got {other:?}"),
        };
        assert_eq!(groups.len(), 1);
        let group = match &groups[0] {
            obsv::json::Json::Object(m) => m,
            other => panic!("expected group object, got {other:?}"),
        };
        assert_eq!(
            group.get("group"),
            Some(&obsv::json::Json::String("grp \"q\"".into()))
        );
        let experiments = match group.get("experiments") {
            Some(obsv::json::Json::Array(a)) => a,
            other => panic!("expected experiments array, got {other:?}"),
        };
        let exp = match &experiments[0] {
            obsv::json::Json::Object(m) => m,
            other => panic!("expected experiment object, got {other:?}"),
        };
        let nanos = match exp.get("nanos") {
            Some(obsv::json::Json::Object(m)) => m,
            other => panic!("expected nanos object, got {other:?}"),
        };
        for key in ["min", "p25", "median", "p75", "p90", "max", "mean"] {
            assert!(nanos.contains_key(key), "missing quantile {key}");
        }
    }

    #[test]
    fn measure_feeds_installed_histograms() {
        let collector = std::sync::Arc::new(obsv::Collector::new());
        let _guard = obsv::scoped(collector.clone());
        let mut b = Bench::new("obsv");
        b.measure("spin", Plan::light(2), || black_box(3u64) * 7);
        let snap = collector.snapshot();
        let hist = snap
            .histogram("bench.obsv.spin")
            .expect("samples land in the bench histogram");
        assert_eq!(hist.count, b.results()[0].sorted.len() as u64);
    }

    #[test]
    fn duration_formatting_picks_sane_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert!(fmt_duration(Duration::from_micros(500)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(500)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(20)).ends_with(" s"));
    }
}
