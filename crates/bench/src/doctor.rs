//! The `mvasd-doctor` regression sentinel: compares freshly regenerated
//! `BENCH_*.json` files (schema `mvasd-bench/1`) and an optional live
//! numeric-health report (`mvasd-health/1`) against a committed
//! `BASELINE.json` (`mvasd-baseline/1`) and renders a machine-readable
//! verdict (`mvasd-doctor/1`). The binary in `src/bin/doctor.rs` is a thin
//! CLI over [`load_bench_dir`] / [`load_baseline`] / [`evaluate`] /
//! [`write_baseline`]; everything decision-making lives here so the
//! thresholds are unit-testable without touching the filesystem.
//!
//! Baselines carry two sections, `"full"` and `"quick"`, because quick-mode
//! benches (`MVASD_BENCH_QUICK=1`) run smaller populations — experiment
//! names embed `n`, so the sections don't even share keys. Each bench file
//! records which mode produced it and is compared against the matching
//! section only.
//!
//! Threshold philosophy (documented in `EXPERIMENTS.md`): timing medians
//! may drift up to [`Thresholds::median_max_ratio`]× before failing (CI
//! machines are noisy; the sentinel exists to catch order-of-magnitude
//! regressions, not nanoseconds), accuracy metrics may degrade by
//! [`Thresholds::rel_err_factor`]× over baseline (with an absolute floor so
//! exact-arithmetic baselines near 1e-12 don't fail on harmless jitter),
//! and speedups may shrink to `1/speedup_factor` of baseline but never
//! below break-even.

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

use mvasd_obsv::health::HealthReport;
use mvasd_obsv::json::{self, escape, number, Json};

/// Why the doctor could not reach a verdict (CLI exit code 2). Every
/// variant's `Display` names the offending path and the command that fixes
/// the situation — an empty checkout must produce advice, not a panic.
#[derive(Debug)]
pub enum DoctorError {
    /// The bench-results directory does not exist.
    MissingResultsDir(PathBuf),
    /// The directory exists but holds no `BENCH_*.json` files.
    NoBenchFiles(PathBuf),
    /// Filesystem error reading a specific path.
    Io(PathBuf, std::io::Error),
    /// A file exists but is not parseable JSON (truncated write, merge
    /// damage).
    Parse(PathBuf, String),
    /// A file parsed but does not declare the expected schema.
    BadSchema {
        /// Offending file.
        path: PathBuf,
        /// Schema string the doctor wanted.
        expected: &'static str,
        /// What the file actually declared (`None` = no schema field).
        found: Option<String>,
    },
    /// No committed baseline to compare against.
    MissingBaseline(PathBuf),
    /// The baseline exists but lacks the section for the mode the bench
    /// files were produced in.
    MissingBaselineKey {
        /// Baseline file.
        path: PathBuf,
        /// Absent section (`"full"` or `"quick"`).
        key: &'static str,
    },
}

impl fmt::Display for DoctorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::MissingResultsDir(p) => write!(
                f,
                "bench results directory {} does not exist; regenerate it with \
                 `cargo bench` (or `MVASD_BENCH_QUICK=1 cargo bench` for a smoke pass)",
                p.display()
            ),
            Self::NoBenchFiles(p) => write!(
                f,
                "no BENCH_*.json files under {}; run `cargo bench` in crates/bench first",
                p.display()
            ),
            Self::Io(p, e) => write!(f, "cannot read {}: {e}", p.display()),
            Self::Parse(p, e) => write!(
                f,
                "{} is not valid JSON ({e}); the file is likely truncated — regenerate it",
                p.display()
            ),
            Self::BadSchema {
                path,
                expected,
                found,
            } => match found {
                Some(s) => write!(
                    f,
                    "{} declares schema {s:?}, expected {expected:?}; \
                     regenerate it with the current toolchain",
                    path.display()
                ),
                None => write!(
                    f,
                    "{} has no \"schema\" field, expected {expected:?}",
                    path.display()
                ),
            },
            Self::MissingBaseline(p) => write!(
                f,
                "baseline {} does not exist; create one from the current results with \
                 `mvasd-doctor --write-baseline`",
                p.display()
            ),
            Self::MissingBaselineKey { path, key } => write!(
                f,
                "baseline {} has no {key:?} section for these bench results; \
                 regenerate it with `mvasd-doctor --write-baseline` run in {key} mode",
                path.display()
            ),
        }
    }
}

impl std::error::Error for DoctorError {}

/// One parsed `BENCH_*.json` file.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchFile {
    /// Source path (for messages; fixtures may use a synthetic name).
    pub path: PathBuf,
    /// Whether `MVASD_BENCH_QUICK=1` produced it.
    pub quick: bool,
    /// `"{group}/{experiment}"` → median nanoseconds.
    pub timings: BTreeMap<String, f64>,
    /// Flattened non-timing numerics from extra top-level objects
    /// (`"hierarchy.max_rel_err_throughput"`, `"multiclass.speedup_…"`, …).
    pub metrics: BTreeMap<String, f64>,
}

/// One mode section of the baseline.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BaselineSection {
    /// `"{group}/{experiment}"` → reference median nanoseconds.
    pub timings: BTreeMap<String, f64>,
    /// Reference values for the flattened accuracy/speedup metrics.
    pub metrics: BTreeMap<String, f64>,
}

/// Floors/ceilings for the live numeric-health report, stored in the
/// baseline so they ratchet with the codebase instead of living in code.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HealthFloors {
    /// NaN-poison trips allowed (normally 0).
    pub max_nan_poison: u64,
    /// Clamp incidents allowed across all probes.
    pub max_clamp_events: u64,
    /// Minimum convolution log-sum-exp dynamic range (`None` = unchecked).
    pub min_lse_range: Option<f64>,
    /// Minimum hierarchy profile-cache hit rate.
    pub min_cache_hit_rate: Option<f64>,
    /// Maximum relative DES confidence-interval half-width.
    pub max_ci_rel_width: Option<f64>,
}

/// A parsed `mvasd-baseline/1` document.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Baseline {
    /// Reference numbers for full-length bench runs.
    pub full: Option<BaselineSection>,
    /// Reference numbers for `MVASD_BENCH_QUICK=1` runs.
    pub quick: Option<BaselineSection>,
    /// Health floors (mode-independent; `obsv_report` has no quick mode).
    pub health: Option<HealthFloors>,
}

/// Regression tolerances. Defaults are deliberately loose on timing and
/// tight on accuracy: CI machines vary, arithmetic must not.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Thresholds {
    /// A timing median may grow to `baseline × median_max_ratio`.
    pub median_max_ratio: f64,
    /// An error metric may grow to `max(baseline × rel_err_factor,
    /// rel_err_floor)`.
    pub rel_err_factor: f64,
    /// Absolute accuracy floor so ~1e-12 baselines tolerate jitter.
    pub rel_err_floor: f64,
    /// A speedup may shrink to `max(baseline / speedup_factor,
    /// speedup_floor)`.
    pub speedup_factor: f64,
    /// Speedups must never drop below break-even.
    pub speedup_floor: f64,
}

impl Default for Thresholds {
    fn default() -> Self {
        Self {
            median_max_ratio: 8.0,
            rel_err_factor: 10.0,
            rel_err_floor: 1e-8,
            speedup_factor: 4.0,
            speedup_floor: 1.0,
        }
    }
}

/// Outcome of one comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckStatus {
    /// Within tolerance.
    Pass,
    /// Regressed past the limit.
    Fail,
    /// No reference available (new experiment, absent health report).
    Skip,
}

impl CheckStatus {
    fn as_str(self) -> &'static str {
        match self {
            Self::Pass => "pass",
            Self::Fail => "fail",
            Self::Skip => "skip",
        }
    }
}

/// One named comparison in the verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct Check {
    /// `"timing:…"`, `"accuracy:…"`, `"speedup:…"`, or `"health:…"`.
    pub name: String,
    /// Pass/fail/skip.
    pub status: CheckStatus,
    /// Measured value (NaN when skipped before measuring).
    pub value: f64,
    /// Baseline reference (NaN when skipped).
    pub reference: f64,
    /// The bound the value was held to (NaN when skipped).
    pub limit: f64,
}

/// The doctor's verdict over one results directory.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Verdict {
    /// All comparisons performed, in deterministic order.
    pub checks: Vec<Check>,
}

impl Verdict {
    /// True when no check failed (skips do not fail the verdict).
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|c| c.status != CheckStatus::Fail)
    }

    /// Serializes as one `mvasd-doctor/1` JSON object.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"schema\":\"mvasd-doctor/1\",\"pass\":{},\"checks\":[",
            self.passed()
        );
        for (i, c) in self.checks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"status\":\"{}\",\"value\":{},\"reference\":{},\"limit\":{}}}",
                escape(&c.name),
                c.status.as_str(),
                number(c.value),
                number(c.reference),
                number(c.limit),
            ));
        }
        out.push_str("]}\n");
        out
    }

    /// Human-readable digest for terminals / CI logs.
    pub fn summary(&self) -> String {
        let (mut pass, mut fail, mut skip) = (0usize, 0usize, 0usize);
        let mut out = String::new();
        for c in &self.checks {
            match c.status {
                CheckStatus::Pass => pass += 1,
                CheckStatus::Skip => skip += 1,
                CheckStatus::Fail => {
                    fail += 1;
                    out.push_str(&format!(
                        "FAIL {}: value {} vs limit {} (baseline {})\n",
                        c.name,
                        number(c.value),
                        number(c.limit),
                        number(c.reference)
                    ));
                }
            }
        }
        out.push_str(&format!(
            "doctor: {pass} passed, {fail} failed, {skip} skipped — {}\n",
            if fail == 0 { "HEALTHY" } else { "REGRESSION" }
        ));
        out
    }
}

fn parse_file(path: &Path, expected: &'static str) -> Result<Json, DoctorError> {
    let text = std::fs::read_to_string(path).map_err(|e| DoctorError::Io(path.to_path_buf(), e))?;
    let doc =
        json::parse(&text).map_err(|e| DoctorError::Parse(path.to_path_buf(), e.to_string()))?;
    match doc.get("schema").and_then(Json::as_str) {
        Some(s) if s == expected => Ok(doc),
        other => Err(DoctorError::BadSchema {
            path: path.to_path_buf(),
            expected,
            found: other.map(str::to_string),
        }),
    }
}

/// Parses one `mvasd-bench/1` document (already schema-checked by the
/// caller when read from disk).
pub fn bench_from_json(path: &Path, doc: &Json) -> BenchFile {
    let quick = matches!(doc.get("quick"), Some(Json::Bool(true)));
    let mut timings = BTreeMap::new();
    for group in doc.get("groups").and_then(Json::as_array).unwrap_or(&[]) {
        let gname = group.get("group").and_then(Json::as_str).unwrap_or("?");
        for exp in group
            .get("experiments")
            .and_then(Json::as_array)
            .unwrap_or(&[])
        {
            let ename = exp.get("name").and_then(Json::as_str).unwrap_or("?");
            if let Some(median) = exp
                .get("nanos")
                .and_then(|n| n.get("median"))
                .and_then(Json::as_f64)
            {
                timings.insert(format!("{gname}/{ename}"), median);
            }
        }
    }
    // Extra top-level objects ("hierarchy", "multiclass", …) carry the
    // accuracy/speedup figures; flatten their numeric fields.
    let mut metrics = BTreeMap::new();
    if let Json::Object(top) = doc {
        for (key, val) in top {
            if key == "schema" || key == "quick" || key == "groups" {
                continue;
            }
            if let Json::Object(fields) = val {
                for (fk, fv) in fields {
                    if let Some(x) = fv.as_f64() {
                        metrics.insert(format!("{key}.{fk}"), x);
                    }
                }
            }
        }
    }
    BenchFile {
        path: path.to_path_buf(),
        quick,
        timings,
        metrics,
    }
}

/// Loads every `BENCH_*.json` under `dir`, sorted by filename.
pub fn load_bench_dir(dir: &Path) -> Result<Vec<BenchFile>, DoctorError> {
    if !dir.is_dir() {
        return Err(DoctorError::MissingResultsDir(dir.to_path_buf()));
    }
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| DoctorError::Io(dir.to_path_buf(), e))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(DoctorError::NoBenchFiles(dir.to_path_buf()));
    }
    let mut out = Vec::with_capacity(paths.len());
    for p in &paths {
        let doc = parse_file(p, "mvasd-bench/1")?;
        out.push(bench_from_json(p, &doc));
    }
    Ok(out)
}

fn section_from_json(v: &Json) -> BaselineSection {
    let numbers = |key: &str| -> BTreeMap<String, f64> {
        let mut out = BTreeMap::new();
        if let Some(Json::Object(m)) = v.get(key) {
            for (k, x) in m {
                if let Some(x) = x.as_f64() {
                    out.insert(k.clone(), x);
                }
            }
        }
        out
    };
    BaselineSection {
        timings: numbers("timings"),
        metrics: numbers("metrics"),
    }
}

fn floors_from_json(v: &Json) -> HealthFloors {
    let count = |key: &str| {
        v.get(key)
            .and_then(Json::as_f64)
            .map(|x| x.max(0.0) as u64)
            .unwrap_or(0)
    };
    HealthFloors {
        max_nan_poison: count("max_nan_poison"),
        max_clamp_events: count("max_clamp_events"),
        min_lse_range: v.get("min_lse_range").and_then(Json::as_f64),
        min_cache_hit_rate: v.get("min_cache_hit_rate").and_then(Json::as_f64),
        max_ci_rel_width: v.get("max_ci_rel_width").and_then(Json::as_f64),
    }
}

/// Loads a committed `mvasd-baseline/1` file.
pub fn load_baseline(path: &Path) -> Result<Baseline, DoctorError> {
    if !path.is_file() {
        return Err(DoctorError::MissingBaseline(path.to_path_buf()));
    }
    let doc = parse_file(path, "mvasd-baseline/1")?;
    Ok(Baseline {
        full: doc.get("full").map(section_from_json),
        quick: doc.get("quick").map(section_from_json),
        health: doc.get("health").map(floors_from_json),
    })
}

fn classify(metric: &str) -> Option<CheckKind> {
    if metric.contains("err") {
        Some(CheckKind::Accuracy)
    } else if metric.contains("speedup") {
        Some(CheckKind::Speedup)
    } else {
        None // descriptive fields (station counts, populations): not checked
    }
}

enum CheckKind {
    Accuracy,
    Speedup,
}

/// Compares bench files (each against the baseline section matching its own
/// mode) plus the optional live health report, producing a [`Verdict`].
///
/// Experiments with no baseline entry are reported as `skip` so a freshly
/// added bench doesn't break CI before the baseline ratchets; a wholly
/// missing mode section is an error because it means the baseline was never
/// generated for this configuration.
pub fn evaluate(
    benches: &[BenchFile],
    baseline_path: &Path,
    baseline: &Baseline,
    health: Option<&HealthReport>,
    th: &Thresholds,
) -> Result<Verdict, DoctorError> {
    let mut checks = Vec::new();
    for bench in benches {
        let (key, section) = if bench.quick {
            ("quick", baseline.quick.as_ref())
        } else {
            ("full", baseline.full.as_ref())
        };
        let section = section.ok_or(DoctorError::MissingBaselineKey {
            path: baseline_path.to_path_buf(),
            key,
        })?;
        for (name, &median) in &bench.timings {
            let check_name = format!("timing:{name}");
            match section.timings.get(name) {
                Some(&reference) => {
                    let limit = reference * th.median_max_ratio;
                    checks.push(Check {
                        name: check_name,
                        status: if median <= limit {
                            CheckStatus::Pass
                        } else {
                            CheckStatus::Fail
                        },
                        value: median,
                        reference,
                        limit,
                    });
                }
                None => checks.push(Check {
                    name: check_name,
                    status: CheckStatus::Skip,
                    value: median,
                    reference: f64::NAN,
                    limit: f64::NAN,
                }),
            }
        }
        for (name, &value) in &bench.metrics {
            let Some(kind) = classify(name) else {
                continue;
            };
            let (prefix, reference) = match kind {
                CheckKind::Accuracy => ("accuracy", section.metrics.get(name)),
                CheckKind::Speedup => ("speedup", section.metrics.get(name)),
            };
            let check_name = format!("{prefix}:{name}");
            match reference {
                Some(&reference) => {
                    let (limit, ok) = match kind {
                        CheckKind::Accuracy => {
                            let limit = (reference * th.rel_err_factor).max(th.rel_err_floor);
                            (limit, value <= limit)
                        }
                        CheckKind::Speedup => {
                            let limit = (reference / th.speedup_factor).max(th.speedup_floor);
                            (limit, value >= limit)
                        }
                    };
                    checks.push(Check {
                        name: check_name,
                        status: if ok {
                            CheckStatus::Pass
                        } else {
                            CheckStatus::Fail
                        },
                        value,
                        reference,
                        limit,
                    });
                }
                None => checks.push(Check {
                    name: check_name,
                    status: CheckStatus::Skip,
                    value,
                    reference: f64::NAN,
                    limit: f64::NAN,
                }),
            }
        }
    }
    checks.extend(health_checks(baseline.health.as_ref(), health));
    Ok(Verdict { checks })
}

/// The health sub-verdict: live report values held to the baseline floors.
/// Either side being absent degrades to `skip`, never to a panic.
fn health_checks(floors: Option<&HealthFloors>, report: Option<&HealthReport>) -> Vec<Check> {
    let mut out = Vec::new();
    let (Some(floors), Some(report)) = (floors, report) else {
        if floors.is_some() != report.is_some() {
            out.push(Check {
                name: "health:report".to_string(),
                status: CheckStatus::Skip,
                value: f64::NAN,
                reference: f64::NAN,
                limit: f64::NAN,
            });
        }
        return out;
    };
    let mut upper = |name: &str, value: f64, limit: f64| {
        out.push(Check {
            name: format!("health:{name}"),
            status: if value <= limit {
                CheckStatus::Pass
            } else {
                CheckStatus::Fail
            },
            value,
            reference: limit,
            limit,
        });
    };
    upper(
        "nan_poison_trips",
        report.nan_poison_trips as f64,
        floors.max_nan_poison as f64,
    );
    upper(
        "clamp_events",
        report.clamp_events as f64,
        floors.max_clamp_events as f64,
    );
    if let Some(max) = floors.max_ci_rel_width {
        let value = report.des_ci_rel_width.unwrap_or(f64::INFINITY);
        upper("des_ci_rel_width", value, max);
    }
    let mut lower = |name: &str, value: Option<f64>, limit: f64| {
        let value = value.unwrap_or(f64::NEG_INFINITY);
        out.push(Check {
            name: format!("health:{name}"),
            status: if value >= limit {
                CheckStatus::Pass
            } else {
                CheckStatus::Fail
            },
            value,
            reference: limit,
            limit,
        });
    };
    if let Some(min) = floors.min_lse_range {
        lower("lse_range", report.lse_range, min);
    }
    if let Some(min) = floors.min_cache_hit_rate {
        lower("cache_hit_rate", report.cache_hit_rate, min);
    }
    out
}

fn section_to_json(s: &BaselineSection) -> String {
    let map = |m: &BTreeMap<String, f64>| -> String {
        let fields: Vec<String> = m
            .iter()
            .map(|(k, v)| format!("\"{}\":{}", escape(k), number(*v)))
            .collect();
        format!("{{{}}}", fields.join(","))
    };
    format!(
        "{{\"timings\":{},\"metrics\":{}}}",
        map(&s.timings),
        map(&s.metrics)
    )
}

fn floors_to_json(h: &HealthFloors) -> String {
    let mut fields = vec![
        format!("\"max_nan_poison\":{}", h.max_nan_poison),
        format!("\"max_clamp_events\":{}", h.max_clamp_events),
    ];
    for (name, v) in [
        ("min_lse_range", h.min_lse_range),
        ("min_cache_hit_rate", h.min_cache_hit_rate),
        ("max_ci_rel_width", h.max_ci_rel_width),
    ] {
        if let Some(v) = v {
            fields.push(format!("\"{name}\":{}", number(v)));
        }
    }
    format!("{{{}}}", fields.join(","))
}

/// Serializes a [`Baseline`] as one `mvasd-baseline/1` JSON object.
pub fn baseline_to_json(b: &Baseline) -> String {
    let mut fields = vec!["\"schema\":\"mvasd-baseline/1\"".to_string()];
    if let Some(s) = &b.full {
        fields.push(format!("\"full\":{}", section_to_json(s)));
    }
    if let Some(s) = &b.quick {
        fields.push(format!("\"quick\":{}", section_to_json(s)));
    }
    if let Some(h) = &b.health {
        fields.push(format!("\"health\":{}", floors_to_json(h)));
    }
    format!("{{{}}}\n", fields.join(","))
}

/// Derives conservative health floors from an observed report: zero NaN
/// tolerance, observed clamps (the solver runs are seeded/deterministic),
/// halved range/hit-rate floors and a 4× CI-width ceiling so minor run-to-
/// run drift doesn't trip the sentinel.
pub fn floors_from_report(report: &HealthReport) -> HealthFloors {
    HealthFloors {
        max_nan_poison: 0,
        max_clamp_events: report.clamp_events,
        min_lse_range: report.lse_range.map(|r| r / 2.0),
        min_cache_hit_rate: report.cache_hit_rate.map(|r| r / 2.0),
        max_ci_rel_width: report.des_ci_rel_width.map(|w| w * 4.0),
    }
}

/// Folds fresh bench files (and an optional health report) into `existing`,
/// replacing the section(s) matching each file's mode and leaving the other
/// mode untouched — so a quick CI regen never clobbers the committed full
/// numbers.
pub fn merge_baseline(
    existing: Baseline,
    benches: &[BenchFile],
    health: Option<&HealthReport>,
) -> Baseline {
    let mut out = existing;
    let mut fresh_full = BaselineSection::default();
    let mut fresh_quick = BaselineSection::default();
    let (mut saw_full, mut saw_quick) = (false, false);
    for bench in benches {
        let (section, saw) = if bench.quick {
            (&mut fresh_quick, &mut saw_quick)
        } else {
            (&mut fresh_full, &mut saw_full)
        };
        *saw = true;
        section
            .timings
            .extend(bench.timings.iter().map(|(k, v)| (k.clone(), *v)));
        section
            .metrics
            .extend(bench.metrics.iter().map(|(k, v)| (k.clone(), *v)));
    }
    if saw_full {
        out.full = Some(fresh_full);
    }
    if saw_quick {
        out.quick = Some(fresh_quick);
    }
    if let Some(report) = health {
        out.health = Some(floors_from_report(report));
    }
    out
}

/// Regenerates the baseline file from the given results directory. Returns
/// the merged baseline that was written.
pub fn write_baseline(
    baseline_path: &Path,
    benches: &[BenchFile],
    health: Option<&HealthReport>,
) -> Result<Baseline, DoctorError> {
    let existing = match load_baseline(baseline_path) {
        Ok(b) => b,
        Err(DoctorError::MissingBaseline(_)) => Baseline::default(),
        Err(e) => return Err(e),
    };
    let merged = merge_baseline(existing, benches, health);
    if let Some(dir) = baseline_path.parent() {
        std::fs::create_dir_all(dir).map_err(|e| DoctorError::Io(dir.to_path_buf(), e))?;
    }
    std::fs::write(baseline_path, baseline_to_json(&merged))
        .map_err(|e| DoctorError::Io(baseline_path.to_path_buf(), e))?;
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench(quick: bool, timings: &[(&str, f64)], metrics: &[(&str, f64)]) -> BenchFile {
        BenchFile {
            path: PathBuf::from("BENCH_test.json"),
            quick,
            timings: timings.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
            metrics: metrics.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        }
    }

    fn baseline_for(bench: &BenchFile) -> Baseline {
        let section = BaselineSection {
            timings: bench.timings.clone(),
            metrics: bench.metrics.clone(),
        };
        if bench.quick {
            Baseline {
                quick: Some(section),
                ..Baseline::default()
            }
        } else {
            Baseline {
                full: Some(section),
                ..Baseline::default()
            }
        }
    }

    #[test]
    fn matching_baseline_passes() {
        let b = bench(
            false,
            &[("g/walk/300", 1e6)],
            &[
                ("hierarchy.max_rel_err_throughput", 1e-6),
                ("hierarchy.speedup", 25.0),
            ],
        );
        let base = baseline_for(&b);
        let v = evaluate(
            &[b],
            Path::new("BASELINE.json"),
            &base,
            None,
            &Thresholds::default(),
        )
        .expect("evaluation succeeds");
        assert!(v.passed());
        assert_eq!(v.checks.len(), 3);
        assert!(v.checks.iter().all(|c| c.status == CheckStatus::Pass));
    }

    #[test]
    fn degraded_median_fails() {
        let base = baseline_for(&bench(false, &[("g/walk/300", 1e6)], &[]));
        let degraded = bench(false, &[("g/walk/300", 2e7)], &[]); // 20×
        let v = evaluate(
            &[degraded],
            Path::new("BASELINE.json"),
            &base,
            None,
            &Thresholds::default(),
        )
        .expect("evaluation succeeds");
        assert!(!v.passed());
        let c = &v.checks[0];
        assert_eq!(c.status, CheckStatus::Fail);
        assert_eq!(c.limit, 8e6);
    }

    #[test]
    fn accuracy_and_speedup_directions() {
        let base = baseline_for(&bench(
            false,
            &[],
            &[("x.max_rel_err", 1e-6), ("x.speedup", 20.0)],
        ));
        // Error went *up* 100×, speedup *down* 10×: both fail.
        let worse = bench(false, &[], &[("x.max_rel_err", 1e-4), ("x.speedup", 2.0)]);
        let v = evaluate(
            &[worse],
            Path::new("B"),
            &base,
            None,
            &Thresholds::default(),
        )
        .expect("evaluation succeeds");
        assert_eq!(
            v.checks
                .iter()
                .filter(|c| c.status == CheckStatus::Fail)
                .count(),
            2
        );
        // Error shrinking and speedup growing both pass.
        let better = bench(false, &[], &[("x.max_rel_err", 1e-9), ("x.speedup", 200.0)]);
        let v = evaluate(
            &[better],
            Path::new("B"),
            &base,
            None,
            &Thresholds::default(),
        )
        .expect("evaluation succeeds");
        assert!(v.passed());
    }

    #[test]
    fn rel_err_floor_tolerates_exact_arithmetic_jitter() {
        let base = baseline_for(&bench(false, &[], &[("x.max_rel_err", 1e-13)]));
        // 50× worse than a 1e-13 baseline is still far under the 1e-8 floor.
        let jitter = bench(false, &[], &[("x.max_rel_err", 5e-12)]);
        let v = evaluate(
            &[jitter],
            Path::new("B"),
            &base,
            None,
            &Thresholds::default(),
        )
        .expect("evaluation succeeds");
        assert!(v.passed());
    }

    #[test]
    fn new_experiment_skips_instead_of_failing() {
        let base = baseline_for(&bench(false, &[("g/old", 1e6)], &[]));
        let b = bench(false, &[("g/old", 1e6), ("g/new", 5e6)], &[]);
        let v = evaluate(&[b], Path::new("B"), &base, None, &Thresholds::default())
            .expect("evaluation succeeds");
        assert!(v.passed());
        let skipped: Vec<_> = v
            .checks
            .iter()
            .filter(|c| c.status == CheckStatus::Skip)
            .collect();
        assert_eq!(skipped.len(), 1);
        assert_eq!(skipped[0].name, "timing:g/new");
    }

    #[test]
    fn quick_results_need_quick_section() {
        let base = baseline_for(&bench(false, &[("g/walk", 1e6)], &[]));
        let quick = bench(true, &[("g/walk", 1e6)], &[]);
        let err = evaluate(
            &[quick],
            Path::new("BASELINE.json"),
            &base,
            None,
            &Thresholds::default(),
        )
        .expect_err("quick results against a full-only baseline must error");
        let msg = err.to_string();
        assert!(
            msg.contains("\"quick\""),
            "message names the section: {msg}"
        );
        assert!(
            msg.contains("--write-baseline"),
            "message is actionable: {msg}"
        );
    }

    #[test]
    fn health_floors_enforced() {
        let floors = HealthFloors {
            max_nan_poison: 0,
            max_clamp_events: 5,
            min_lse_range: Some(10.0),
            min_cache_hit_rate: Some(0.25),
            max_ci_rel_width: Some(0.1),
        };
        let mut report = HealthReport {
            samples: 100,
            lse_range: Some(40.0),
            cache_hit_rate: Some(0.5),
            des_ci_rel_width: Some(0.02),
            ..HealthReport::default()
        };
        let checks = health_checks(Some(&floors), Some(&report));
        assert_eq!(checks.len(), 5);
        assert!(checks.iter().all(|c| c.status == CheckStatus::Pass));
        report.nan_poison_trips = 1;
        report.lse_range = Some(3.0);
        let checks = health_checks(Some(&floors), Some(&report));
        let failed: Vec<&str> = checks
            .iter()
            .filter(|c| c.status == CheckStatus::Fail)
            .map(|c| c.name.as_str())
            .collect();
        assert_eq!(failed, ["health:nan_poison_trips", "health:lse_range"]);
        // Missing report against present floors: one skip marker, no fail.
        let checks = health_checks(Some(&floors), None);
        assert_eq!(checks.len(), 1);
        assert_eq!(checks[0].status, CheckStatus::Skip);
    }

    #[test]
    fn verdict_json_parses_and_round_trips_status() {
        let v = Verdict {
            checks: vec![
                Check {
                    name: "timing:g/x".into(),
                    status: CheckStatus::Pass,
                    value: 2.0,
                    reference: 1.0,
                    limit: 8.0,
                },
                Check {
                    name: "accuracy:m".into(),
                    status: CheckStatus::Fail,
                    value: 1.0,
                    reference: 0.01,
                    limit: 0.1,
                },
            ],
        };
        assert!(!v.passed());
        let doc = json::parse(&v.to_json()).expect("verdict is valid JSON");
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("mvasd-doctor/1")
        );
        assert_eq!(doc.get("pass"), Some(&Json::Bool(false)));
        let checks = doc.get("checks").and_then(Json::as_array).expect("checks");
        assert_eq!(checks.len(), 2);
        assert_eq!(checks[1].get("status").and_then(Json::as_str), Some("fail"));
        assert!(v.summary().contains("REGRESSION"));
    }

    #[test]
    fn baseline_json_round_trips_through_files() {
        let dir = std::env::temp_dir().join("mvasd_doctor_baseline_rt");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("BASELINE.json");
        let full = bench(false, &[("g/walk/800", 3.4e7)], &[("h.speedup", 26.9)]);
        let report = HealthReport {
            samples: 10,
            clamp_events: 2,
            lse_range: Some(100.0),
            cache_hit_rate: Some(0.5),
            des_ci_rel_width: Some(0.01),
            ..HealthReport::default()
        };
        let written =
            write_baseline(&path, std::slice::from_ref(&full), Some(&report)).expect("write");
        let loaded = load_baseline(&path).expect("load");
        assert_eq!(written, loaded);
        assert_eq!(loaded.full.as_ref().map(|s| s.timings.len()), Some(1));
        assert_eq!(loaded.quick, None);
        let floors = loaded.health.clone().expect("health floors recorded");
        assert_eq!(floors.max_clamp_events, 2);
        assert_eq!(floors.min_lse_range, Some(50.0));
        assert_eq!(floors.max_ci_rel_width, Some(0.04));
        // A later quick regen adds the quick section without touching full.
        let quick = bench(true, &[("g/walk/150", 1.0e6)], &[]);
        let merged =
            write_baseline(&path, std::slice::from_ref(&quick), None).expect("quick merge");
        assert_eq!(merged.full, loaded.full);
        assert_eq!(merged.quick.as_ref().map(|s| s.timings.len()), Some(1));
        assert_eq!(merged.health, loaded.health, "health floors survive merge");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bench_parser_reads_committed_shape() {
        let text = concat!(
            "{\"schema\":\"mvasd-bench/1\",\"quick\":false,\"groups\":[",
            "{\"group\":\"hier\",\"experiments\":[{\"name\":\"sweep/800\",",
            "\"samples\":15,\"nanos\":{\"min\":1,\"p25\":2,\"median\":3,",
            "\"p75\":4,\"p90\":5,\"max\":6,\"mean\":4}}]}],",
            "\"hierarchy\":{\"stations\":122,\"max_rel_err_throughput\":8.1e-6,",
            "\"speedup\":26.95}}"
        );
        let doc = json::parse(text).expect("fixture parses");
        let b = bench_from_json(Path::new("BENCH_hierarchy.json"), &doc);
        assert!(!b.quick);
        assert_eq!(b.timings.get("hier/sweep/800"), Some(&3.0));
        assert_eq!(
            b.metrics.get("hierarchy.max_rel_err_throughput"),
            Some(&8.1e-6)
        );
        assert_eq!(b.metrics.get("hierarchy.speedup"), Some(&26.95));
        // "stations" is descriptive: carried as a metric but never checked.
        assert!(classify("hierarchy.stations").is_none());
        assert!(matches!(
            classify("hierarchy.max_rel_err_throughput"),
            Some(CheckKind::Accuracy)
        ));
        assert!(matches!(
            classify("multiclass.speedup_carried_vs_recompute"),
            Some(CheckKind::Speedup)
        ));
    }
}
