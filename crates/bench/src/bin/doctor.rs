//! `mvasd-doctor` — the perf/accuracy regression sentinel (CI gate).
//!
//! ```text
//! mvasd-doctor [--results DIR] [--baseline PATH] [--health PATH]
//!              [--out PATH] [--write-baseline]
//! ```
//!
//! Loads every `BENCH_*.json` under the results directory (default:
//! `results/`, or `MVASD_RESULTS_DIR`), compares each against the matching
//! mode section of the committed `BASELINE.json`, optionally holds a live
//! `mvasd-health/1` report (from `obsv_report --health`) to the baseline's
//! health floors, prints a summary, and writes/prints the `mvasd-doctor/1`
//! verdict. Exit codes: 0 = healthy, 1 = regression, 2 = cannot reach a
//! verdict (missing/truncated inputs — the message says how to fix it).
//!
//! `--write-baseline` instead (re)generates the baseline from the current
//! results, merging into the existing file so a quick-mode regen never
//! clobbers the committed full-run numbers.

use std::path::PathBuf;
use std::process::ExitCode;

use mvasd_bench::doctor::{evaluate, load_baseline, load_bench_dir, write_baseline, Thresholds};
use mvasd_bench::output::results_dir;
use mvasd_obsv::health::HealthReport;

const USAGE: &str = "usage: mvasd-doctor [--results DIR] [--baseline PATH] \
                     [--health PATH] [--out PATH] [--write-baseline]";

fn main() -> ExitCode {
    let mut results: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut health_path: Option<PathBuf> = None;
    let mut out_path: Option<PathBuf> = None;
    let mut write_mode = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut path_arg = |flag: &str| match args.next() {
            Some(v) => Ok(PathBuf::from(v)),
            None => Err(format!("{flag} needs a path argument\n{USAGE}")),
        };
        let parsed = match arg.as_str() {
            "--results" => path_arg("--results").map(|p| results = Some(p)),
            "--baseline" => path_arg("--baseline").map(|p| baseline_path = Some(p)),
            "--health" => path_arg("--health").map(|p| health_path = Some(p)),
            "--out" => path_arg("--out").map(|p| out_path = Some(p)),
            "--write-baseline" => {
                write_mode = true;
                Ok(())
            }
            other => Err(format!("unknown argument: {other}\n{USAGE}")),
        };
        if let Err(msg) = parsed {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    }
    let results = results.unwrap_or_else(results_dir);
    let baseline_path = baseline_path.unwrap_or_else(|| results.join("BASELINE.json"));

    let fail = |msg: String| {
        eprintln!("mvasd-doctor: {msg}");
        ExitCode::from(2)
    };

    let benches = match load_bench_dir(&results) {
        Ok(b) => b,
        Err(e) => return fail(e.to_string()),
    };
    let health = match &health_path {
        None => None,
        Some(p) => {
            let text = match std::fs::read_to_string(p) {
                Ok(t) => t,
                Err(e) => return fail(format!("cannot read {}: {e}", p.display())),
            };
            match HealthReport::from_json(&text) {
                Ok(r) => Some(r),
                Err(e) => return fail(format!("{}: {e}", p.display())),
            }
        }
    };

    if write_mode {
        return match write_baseline(&baseline_path, &benches, health.as_ref()) {
            Ok(merged) => {
                let sections: Vec<&str> = [
                    merged.full.as_ref().map(|_| "full"),
                    merged.quick.as_ref().map(|_| "quick"),
                    merged.health.as_ref().map(|_| "health"),
                ]
                .into_iter()
                .flatten()
                .collect();
                println!(
                    "wrote {} (sections: {})",
                    baseline_path.display(),
                    sections.join(", ")
                );
                ExitCode::SUCCESS
            }
            Err(e) => fail(e.to_string()),
        };
    }

    let baseline = match load_baseline(&baseline_path) {
        Ok(b) => b,
        Err(e) => return fail(e.to_string()),
    };
    let verdict = match evaluate(
        &benches,
        &baseline_path,
        &baseline,
        health.as_ref(),
        &Thresholds::default(),
    ) {
        Ok(v) => v,
        Err(e) => return fail(e.to_string()),
    };
    print!("{}", verdict.summary());
    let json = verdict.to_json();
    match &out_path {
        Some(p) => {
            if let Err(e) = std::fs::write(p, &json) {
                return fail(format!("cannot write {}: {e}", p.display()));
            }
            println!("wrote verdict to {}", p.display());
        }
        None => print!("{json}"),
    }
    if verdict.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
