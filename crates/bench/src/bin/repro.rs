//! `repro` — regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! repro list            # show available experiment ids
//! repro all             # regenerate everything into results/
//! repro fig7 table5     # regenerate a subset
//! ```
//!
//! Outputs land in `results/` (override with `MVASD_RESULTS_DIR`).

use mvasd_bench::experiments::{run, Ctx, ALL};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        eprintln!("usage: repro <list|all|ID...>");
        eprintln!("experiment ids: {}", ALL.join(", "));
        std::process::exit(if args.is_empty() { 2 } else { 0 });
    }
    if args[0] == "list" {
        for id in ALL {
            println!("{id}");
        }
        return;
    }

    let ids: Vec<&str> = if args[0] == "all" {
        ALL.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };

    let ctx = Ctx::new();
    let mut failures = 0;
    for id in ids {
        println!("=== {id} ===");
        let started = std::time::Instant::now();
        match run(id, &ctx) {
            Ok(paths) => {
                for p in paths {
                    println!("wrote {}", p.display());
                }
                println!("({:.1}s)", started.elapsed().as_secs_f64());
            }
            Err(e) => {
                eprintln!("ERROR: {e}");
                failures += 1;
            }
        }
        println!();
    }
    if failures > 0 {
        std::process::exit(1);
    }
}
