//! Collector-snapshot reporter: runs a representative VINS workload with a
//! live [`mvasd_obsv::Collector`] installed and prints the aggregated
//! counters, gauges, histograms, and span timings as a plain-text table.
//!
//! ```text
//! cargo run --bin obsv_report [-- --chrome trace.json] [-- --jsonl out.jsonl]
//!                             [-- --health health.json] [-- --diff base.jsonl]
//! ```
//!
//! `--chrome PATH` additionally writes a Chrome `trace_event` file loadable
//! in `chrome://tracing` / Perfetto; `--jsonl PATH` writes one JSON object
//! per metric/span; `--health PATH` writes the distilled `mvasd-health/1`
//! report (the input of `mvasd-doctor --health`); `--diff PATH` reads a
//! previously written JSONL snapshot and prints this run's counter/gauge/
//! histogram deltas against it instead of the absolute table.

use std::process::ExitCode;
use std::sync::Arc;

use mvasd_core::sweep::{Scenario, ScenarioSweep};
use mvasd_obsv as obsv;
use mvasd_queueing::hierarchy::{HierarchicalNetwork, HierarchicalSolver, ProfileCache, Subsystem};
use mvasd_queueing::mva::{run_until, ClosedSolver, MultiserverMvaSolver, StopCondition};
use mvasd_queueing::network::Station;
use mvasd_testbed::apps::vins;
use mvasd_testbed::campaign::{run_campaign, CampaignConfig};

fn main() -> ExitCode {
    let mut chrome_path = None;
    let mut jsonl_path = None;
    let mut health_path = None;
    let mut diff_path = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--chrome" => chrome_path = args.next(),
            "--jsonl" => jsonl_path = args.next(),
            "--health" => health_path = args.next(),
            "--diff" => diff_path = args.next(),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: obsv_report [--chrome PATH] [--jsonl PATH] \
                     [--health PATH] [--diff PATH]"
                );
                return ExitCode::FAILURE;
            }
        }
    }

    let collector = Arc::new(obsv::Collector::new());
    obsv::install(collector.clone());

    let app = vins::model();

    // A small measurement campaign (spans tagged per worker with queue-wait
    // and execute time).
    let campaign = run_campaign(
        &app,
        &[50, 200, 400],
        &CampaignConfig {
            test_duration: 120.0,
            ..CampaignConfig::default()
        },
    )
    .expect("campaign on the calibrated VINS model");

    // An analytic SLA query (per-step spans, early-exit accounting).
    let solver = MultiserverMvaSolver::new(
        app.closed_network_at(1500.0)
            .expect("calibrated VINS network"),
    );
    let mut iter = solver.start().expect("solver start on a validated network");
    run_until(
        iter.as_mut(),
        &[StopCondition::SlaResponseTime { max_response: 2.0 }],
        1500,
    )
    .expect("SLA run on a validated network");

    // A scenario sweep with a warm replay (cache hit/miss metrics).
    let mut sweep = ScenarioSweep::new(campaign.to_demand_samples()).default_cap(300);
    let scenarios = [
        Scenario::new("baseline"),
        Scenario::new("fast-db").scale_demands(0.9),
    ];
    sweep
        .run(&scenarios)
        .expect("cold sweep on valid scenarios");
    sweep
        .run(&scenarios)
        .expect("warm replay of the same scenarios");

    // A hierarchical solve (aggregation solve/cache-hit counters, profile
    // growth, per-subsystem isolation spans) — two identical app tiers so
    // the profile cache registers a hit.
    let tier = |name: &str, cpu: f64, disk: f64| {
        Subsystem::new(
            name,
            vec![
                Station::queueing(&format!("{name}-cpu"), 8, 1.0, cpu).into(),
                Station::queueing(&format!("{name}-disk"), 1, 1.0, disk).into(),
            ],
        )
        .into()
    };
    let estate = HierarchicalNetwork::new(
        vec![
            Station::queueing("lb", 1, 1.0, 0.002).into(),
            tier("app-1", 0.012, 0.0022),
            tier("app-2", 0.012, 0.0022),
            tier("db", 0.055, 0.0098),
        ],
        1.0,
    )
    .expect("valid hierarchical estate");
    HierarchicalSolver::new(estate)
        .with_cache(Arc::new(ProfileCache::new()))
        .solve(200)
        .expect("hierarchical solve on a validated estate");

    obsv::uninstall();
    let snapshot = collector.snapshot();
    match &diff_path {
        Some(path) => {
            let base_text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot read diff base {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let base = match obsv::Snapshot::from_jsonl(&base_text) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("diff base {path} is not a JSONL snapshot: {e}");
                    return ExitCode::FAILURE;
                }
            };
            println!("delta vs {path}:");
            print!("{}", snapshot.diff(&base).summary_table());
        }
        None => print!("{}", snapshot.summary_table()),
    }

    if let Some(path) = health_path {
        let report = obsv::HealthReport::from_snapshot(&snapshot);
        print!("{}", report.summary());
        std::fs::write(&path, report.to_json()).expect("health path is writable");
        println!("wrote health report to {path}");
    }
    if let Some(path) = chrome_path {
        std::fs::write(&path, snapshot.to_chrome_trace()).expect("trace path is writable");
        println!("wrote Chrome trace to {path}");
    }
    if let Some(path) = jsonl_path {
        std::fs::write(&path, snapshot.to_jsonl()).expect("jsonl path is writable");
        println!("wrote JSONL metrics to {path}");
    }
    ExitCode::SUCCESS
}
