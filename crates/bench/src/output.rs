//! Result output: CSV files plus human-readable summaries under a results
//! directory. Hand-rolled (no serde) to stay within the workspace's allowed
//! dependency set.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Where experiment outputs land (override with `MVASD_RESULTS_DIR`).
pub fn results_dir() -> PathBuf {
    std::env::var_os("MVASD_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// A simple rectangular CSV table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (each the same arity as `headers`).
    pub rows: Vec<Vec<f64>>,
}

impl Table {
    /// Creates a table with the given headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn push(&mut self, row: Vec<f64>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row arity must match headers"
        );
        self.rows.push(row);
    }

    /// Serializes to CSV text.
    pub fn to_csv(&self) -> String {
        let mut out = self.headers.join(",");
        out.push('\n');
        for row in &self.rows {
            let line: Vec<String> = row.iter().map(|v| format!("{v:.6}")).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        }
        out
    }

    /// Writes the CSV into `dir/name`.
    pub fn write(&self, dir: &Path, name: &str) -> std::io::Result<PathBuf> {
        fs::create_dir_all(dir)?;
        let path = dir.join(name);
        let mut f = fs::File::create(&path)?;
        f.write_all(self.to_csv().as_bytes())?;
        Ok(path)
    }
}

/// Writes a free-form text artifact (summaries, rendered tables).
pub fn write_text(dir: &Path, name: &str, content: &str) -> std::io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(name);
    fs::write(&path, content)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_roundtrip() {
        let mut t = Table::new(vec!["n", "x"]);
        t.push(vec![1.0, 2.5]);
        t.push(vec![2.0, 3.5]);
        let csv = t.to_csv();
        assert!(csv.starts_with("n,x\n"));
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.contains("2.500000"));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut t = Table::new(vec!["a", "b"]);
        t.push(vec![1.0]);
    }

    #[test]
    fn write_to_temp_dir() {
        let dir = std::env::temp_dir().join("mvasd_bench_test_out");
        let mut t = Table::new(vec!["a"]);
        t.push(vec![1.0]);
        let p = t.write(&dir, "t.csv").unwrap();
        assert!(p.exists());
        let p2 = write_text(&dir, "s.txt", "hello").unwrap();
        assert_eq!(std::fs::read_to_string(p2).unwrap(), "hello");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
