//! Chebyshev-node experiments — paper Section 8: Fig. 13 (error bounds on
//! exponentials), Fig. 14 (splines through Chebyshev sample sets), Fig. 15
//! (Chebyshev vs random sampling), Fig. 16 (MVASD accuracy from Chebyshev
//! designs).

use std::path::{Path, PathBuf};

use mvasd_core::accuracy::compare_solution;
use mvasd_core::algorithm::mvasd;
use mvasd_core::designer::{design_levels, SamplingStrategy};
use mvasd_core::profile::{DemandAxis, InterpolationKind, ServiceDemandProfile};
use mvasd_numerics::chebyshev::chebyshev_error_bound_exponential;
use mvasd_numerics::interp::{BoundaryCondition, CubicSpline, Extrapolation, Interpolant};
use mvasd_testbed::apps::jpetstore;

use super::Ctx;
use crate::measure;
use crate::output::{write_text, Table};

/// Fig. 13 — Chebyshev interpolation error bound (eq. 19) for `e^{µx}` on
/// `[-1, 1]`, µ ∈ {0.5, 1, 1.5, 2}, node counts 1–10, normalized by the
/// function scale `e^µ` (an error *rate*, as the paper plots).
pub fn fig13(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mus = [0.5, 1.0, 1.5, 2.0];
    let mut t = Table::new(vec!["nodes", "mu_0_5", "mu_1_0", "mu_1_5", "mu_2_0"]);
    for n in 1..=10usize {
        let mut row = vec![n as f64];
        for &mu in &mus {
            let b = chebyshev_error_bound_exponential(n, mu).expect("valid parameters");
            row.push(b / mu.exp() * 100.0); // percent error rate
        }
        t.push(row);
    }
    let p = t.write(dir, "fig13_chebyshev_error_bounds.csv")?;
    println!(
        "fig13: error rate at 7 nodes for mu=2: {:.4} % (paper: < 0.2 % beyond ~5 nodes)",
        chebyshev_error_bound_exponential(7, 2.0).expect("7 nodes, mu=2 is a valid design point")
            / 2f64.exp()
            * 100.0
    );
    Ok(vec![p])
}

/// Runs JPetStore campaigns at the Chebyshev 3/5/7 design points of
/// Section 8 and returns `(levels, campaign)` triples.
fn chebyshev_campaigns() -> Vec<(usize, Vec<u64>, mvasd_testbed::campaign::Campaign)> {
    let (a, b) = jpetstore::CHEBYSHEV_RANGE;
    [3usize, 5, 7]
        .into_iter()
        .map(|k| {
            let levels = design_levels(SamplingStrategy::Chebyshev, k, a, b).expect("design");
            let campaign = measure(&jpetstore::model(), &levels);
            (k, levels, campaign)
        })
        .collect()
}

/// Fig. 14 — spline-interpolated db-disk demands from the Chebyshev 3/5/7
/// sample sets (no Runge oscillation).
pub fn fig14(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let campaigns = chebyshev_campaigns();
    let mut t = Table::new(vec!["n", "cheb3", "cheb5", "cheb7"]);
    let mut splines = Vec::new();
    for (_, _, c) in &campaigns {
        let disk = c.station_index("db-disk").expect("db-disk");
        let levels: Vec<f64> = c.levels().iter().map(|&l| l as f64).collect();
        splines.push(
            CubicSpline::new(&levels, &c.demand_series(disk), BoundaryCondition::NotAKnot)
                .expect("spline")
                .with_extrapolation(Extrapolation::Clamp),
        );
    }
    for n in 1..=300usize {
        t.push(vec![
            n as f64,
            splines[0].eval(n as f64),
            splines[1].eval(n as f64),
            splines[2].eval(n as f64),
        ]);
    }
    let p = t.write(dir, "fig14_chebyshev_demand_splines.csv")?;
    Ok(vec![p])
}

/// Fig. 15 — Chebyshev vs random sample placement: interpolated db-disk
/// demand curves and their worst deviation from the ground-truth curve.
pub fn fig15(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let app = jpetstore::model();
    let (a, b) = jpetstore::CHEBYSHEV_RANGE;
    let k = 7;
    let strategies: Vec<(&str, Vec<u64>)> = vec![
        (
            "chebyshev",
            design_levels(SamplingStrategy::Chebyshev, k, a, b).expect("design"),
        ),
        (
            "random",
            design_levels(SamplingStrategy::Random { seed: 2016 }, k, a, b).expect("design"),
        ),
        (
            "equispaced",
            design_levels(SamplingStrategy::EquiSpaced, k, a, b).expect("design"),
        ),
    ];
    let disk_idx = 9; // db-disk in the 12-station layout
    let truth = &app.stations[disk_idx].curve;

    let mut t = Table::new(vec!["n", "truth", "chebyshev", "random", "equispaced"]);
    let mut splines = Vec::new();
    for (_, levels) in &strategies {
        let c = measure(&app, levels);
        let idx = c.station_index("db-disk").expect("db-disk");
        let lv: Vec<f64> = c.levels().iter().map(|&l| l as f64).collect();
        splines.push(
            CubicSpline::new(&lv, &c.demand_series(idx), BoundaryCondition::NotAKnot)
                .expect("spline")
                .with_extrapolation(Extrapolation::Clamp),
        );
    }
    let mut worst = vec![0.0f64; strategies.len()];
    for n in 1..=300usize {
        let tv = truth.at(n as f64);
        let mut row = vec![n as f64, tv];
        for (i, s) in splines.iter().enumerate() {
            let v = s.eval(n as f64);
            worst[i] = worst[i].max(((v - tv) / tv).abs());
            row.push(v);
        }
        t.push(row);
    }
    let p1 = t.write(dir, "fig15_sampling_strategies.csv")?;
    let summary = format!(
        "Fig. 15 — worst relative deviation of the interpolated db-disk demand\n\
         from the ground-truth curve over N = 1..300 ({k} samples each):\n\
         chebyshev:  {:.2} %\n\
         random:     {:.2} %\n\
         equispaced: {:.2} %\n",
        worst[0] * 100.0,
        worst[1] * 100.0,
        worst[2] * 100.0
    );
    let p2 = write_text(dir, "fig15_sampling_strategies.txt", &summary)?;
    println!("{summary}");
    Ok(vec![p1, p2])
}

/// Fig. 16 — MVASD fed the Chebyshev 3/5/7 demand designs, compared to the
/// measurements at the paper's standard levels.
pub fn fig16(dir: &Path, ctx: &Ctx) -> std::io::Result<Vec<PathBuf>> {
    let reference = ctx.jpetstore();
    let campaigns = chebyshev_campaigns();

    let mut t = Table::new(vec!["n", "x_cheb3", "x_cheb5", "x_cheb7"]);
    let mut sols = Vec::new();
    for (_, _, c) in &campaigns {
        let profile = ServiceDemandProfile::from_samples(
            &c.to_demand_samples(),
            InterpolationKind::CubicNotAKnot,
            DemandAxis::Concurrency,
        )
        .expect("profile");
        sols.push(mvasd(&profile, 300).expect("solver"));
    }
    for n in 1..=300usize {
        t.push(vec![
            n as f64,
            sols[0].at(n).expect("solution covers 1..=300").throughput,
            sols[1].at(n).expect("solution covers 1..=300").throughput,
            sols[2].at(n).expect("solution covers 1..=300").throughput,
        ]);
    }
    let p1 = t.write(dir, "fig16_chebyshev_mvasd_predictions.csv")?;

    let mut summary = String::from(
        "Fig. 16 — MVASD accuracy from Chebyshev designs (vs measured standard levels)\n",
    );
    for ((k, levels, _), sol) in campaigns.iter().zip(sols.iter()) {
        let rep = compare_solution(
            &format!("Chebyshev {k}"),
            sol,
            &reference.levels(),
            &reference.throughputs(),
            &reference.cycle_times(),
        )
        .expect("deviation");
        summary.push_str(&format!(
            "Chebyshev {k} {levels:?}: throughput dev {:.2} %, cycle dev {:.2} %\n",
            rep.throughput_mean_pct, rep.cycle_mean_pct
        ));
    }
    let p2 = write_text(dir, "fig16_chebyshev_mvasd_accuracy.txt", &summary)?;
    println!("{summary}");
    Ok(vec![p1, p2])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig13_is_cheap_and_correct() {
        let dir = std::env::temp_dir().join("mvasd_fig13_test");
        fig13(&dir).unwrap();
        let csv = std::fs::read_to_string(dir.join("fig13_chebyshev_error_bounds.csv")).unwrap();
        assert_eq!(csv.lines().count(), 11);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
