//! Fig. 1 — "The Grinder test output with respect to length of tests":
//! the ramp-up transient (worker processes starting on
//! `processIncrementInterval`, threads sleeping `initialSleepTime`)
//! followed by the steady state the paper averages over.

use std::path::{Path, PathBuf};

use mvasd_testbed::apps::jpetstore;
use mvasd_testbed::grinder::{load_test, GrinderConfig};

use crate::output::Table;

/// Regenerates Fig. 1: TPS and mean response time per time bucket across a
/// ramped JPetStore load test.
pub fn fig1(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let app = jpetstore::model();
    let cfg = GrinderConfig {
        processes: 10,
        threads: 12, // 120 virtual users
        agents: 1,
        duration: 600.0,
        process_increment_interval: 15.0, // 150 s ramp, like the paper's runs
        sleep_time_variation: 0.2,        // grinder.sleepTimeVariation
        warmup_fraction: 0.4,
        seed: 0xF161,
    };
    let res = load_test(&app, &cfg).expect("calibrated model load test");

    let mut t = Table::new(vec![
        "time_s",
        "tps",
        "mean_response_s",
        "db_cpu_util",
        "db_disk_util",
        "app_cpu_util",
    ]);
    // vmstat-style sampled utilization timelines (stations 8, 9, 4).
    let db_cpu = res.report.utilization_timeline(8);
    let db_disk = res.report.utilization_timeline(9);
    let app_cpu = res.report.utilization_timeline(4);
    for (i, b) in res.report.time_series.iter().enumerate() {
        t.push(vec![
            b.start,
            b.tps,
            b.mean_response,
            db_cpu.get(i).copied().unwrap_or(0.0),
            db_disk.get(i).copied().unwrap_or(0.0),
            app_cpu.get(i).copied().unwrap_or(0.0),
        ]);
    }
    let p = t.write(dir, "fig1_grinder_timeseries.csv")?;

    // Sanity echo for the console: transient vs steady-state means.
    let ts = &res.report.time_series;
    let early: f64 = ts[..12].iter().map(|b| b.tps).sum::<f64>() / 12.0;
    let mid = ts.len() / 2;
    let steady: f64 = ts[mid..mid + 12].iter().map(|b| b.tps).sum::<f64>() / 12.0;
    println!(
        "fig1: ramp-up mean {early:.1} tps vs steady-state {steady:.1} tps \
         (steady X = {:.1} pages/s, R = {:.3} s)",
        res.throughput(),
        res.response_time()
    );
    Ok(vec![p])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_writes_timeseries() {
        let dir = std::env::temp_dir().join("mvasd_fig1_test");
        let paths = fig1(&dir).unwrap();
        let content = std::fs::read_to_string(&paths[0]).unwrap();
        assert!(content.lines().count() > 50);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
