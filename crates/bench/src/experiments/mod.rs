//! One module per group of reproduced tables/figures. Every public
//! function regenerates the corresponding artifact(s) under the results
//! directory and returns the written paths. `DESIGN.md` §4 maps experiment
//! ids to paper tables/figures; `run()` dispatches on those ids.

pub mod ablations;
pub mod chebyshev_exp;
pub mod grinder_fig;
pub mod jpetstore_exp;
pub mod marginals_fig;
pub mod vins_exp;

use std::path::PathBuf;
use std::sync::OnceLock;

use mvasd_testbed::apps::{jpetstore, vins};
use mvasd_testbed::campaign::Campaign;

use crate::measure;

/// Shared lazily-measured campaign data, so `repro all` runs each
/// simulated load-test campaign exactly once.
#[derive(Default)]
pub struct Ctx {
    vins: OnceLock<Campaign>,
    jpetstore: OnceLock<Campaign>,
}

impl Ctx {
    /// Creates an empty context.
    pub fn new() -> Self {
        Self::default()
    }

    /// The VINS campaign at the paper's standard levels (1 → 1500).
    pub fn vins(&self) -> &Campaign {
        self.vins
            .get_or_init(|| measure(&vins::model(), &vins::STANDARD_LEVELS))
    }

    /// The JPetStore campaign at the paper's levels {1,14,28,70,140,168,210}.
    pub fn jpetstore(&self) -> &Campaign {
        self.jpetstore
            .get_or_init(|| measure(&jpetstore::model(), &jpetstore::STANDARD_LEVELS))
    }
}

/// All known experiment ids, in paper order.
pub const ALL: &[&str] = &[
    "fig1",
    "fig3",
    "table2",
    "fig4",
    "fig5",
    "fig6",
    "table3",
    "fig7",
    "fig8",
    "fig9",
    "table4",
    "table5",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "ablation-interp",
    "ablation-solvers",
    "ablation-sampling",
    "ablation-curvefit",
    "ablation-demandfit",
    "ablation-robustness",
];

/// Runs one experiment by id; returns the artifact paths it wrote.
pub fn run(id: &str, ctx: &Ctx) -> Result<Vec<PathBuf>, String> {
    let dir = crate::output::results_dir();
    let r = match id {
        "fig1" => grinder_fig::fig1(&dir),
        "fig3" => marginals_fig::fig3(&dir),
        "table2" => vins_exp::table2(&dir, ctx),
        "fig4" => vins_exp::fig4(&dir, ctx),
        "fig5" => vins_exp::fig5(&dir, ctx),
        "fig6" => vins_exp::fig6(&dir, ctx),
        "table4" => vins_exp::table4(&dir, ctx),
        "fig10" => vins_exp::fig10(&dir, ctx),
        "table3" => jpetstore_exp::table3(&dir, ctx),
        "fig7" => jpetstore_exp::fig7(&dir, ctx),
        "fig8" => jpetstore_exp::fig8(&dir, ctx),
        "fig9" => jpetstore_exp::fig9(&dir, ctx),
        "table5" => jpetstore_exp::table5(&dir, ctx),
        "fig11" => jpetstore_exp::fig11(&dir, ctx),
        "fig12" => jpetstore_exp::fig12(&dir, ctx),
        "fig13" => chebyshev_exp::fig13(&dir),
        "fig14" => chebyshev_exp::fig14(&dir),
        "fig15" => chebyshev_exp::fig15(&dir),
        "fig16" => chebyshev_exp::fig16(&dir, ctx),
        "ablation-interp" => ablations::interpolation(&dir, ctx),
        "ablation-solvers" => ablations::solvers(&dir),
        "ablation-sampling" => ablations::sampling(&dir, ctx),
        "ablation-curvefit" => ablations::curvefit(&dir, ctx),
        "ablation-demandfit" => ablations::demandfit(&dir, ctx),
        "ablation-robustness" => ablations::robustness(&dir, ctx),
        other => return Err(format!("unknown experiment id '{other}'")),
    };
    r.map_err(|e| format!("experiment {id} failed: {e}"))
}
