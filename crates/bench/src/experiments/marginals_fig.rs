//! Fig. 3 — "Marginal Probability of a CPU Core being busy with increasing
//! Concurrency": the `p_k(j)` values the multi-server correction of
//! Algorithm 2 tracks, for a 4-core CPU, as the population grows.

use std::path::{Path, PathBuf};

use mvasd_queueing::mva::multiserver_mva_with_marginals;
use mvasd_queueing::network::{ClosedNetwork, Station};

use crate::output::Table;

/// Regenerates Fig. 3 for a 4-core CPU station (`D = 0.1 s`, `Z = 1 s`).
///
/// Columns: the marginal probabilities `p(j)` of exactly `j` customers
/// (hence `j` busy cores, `j < 4`) plus the all-cores-busy probability.
/// The qualitative claim of the paper — the marginals converge as
/// concurrency saturates the CPU — shows as the `p(j)` mass draining into
/// `all_busy → 1`.
pub fn fig3(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let net = ClosedNetwork::new(vec![Station::queueing("cpu4", 4, 1.0, 0.1)], 1.0)
        .expect("static model");
    let (_, trace) = multiserver_mva_with_marginals(&net, 60, 0).expect("solver");

    let mut t = Table::new(vec!["n", "p0", "p1", "p2", "p3", "all_busy"]);
    let all_busy = trace.all_busy();
    for (i, snap) in trace.history.iter().enumerate() {
        t.push(vec![
            (i + 1) as f64,
            snap[0],
            snap[1],
            snap[2],
            snap[3],
            all_busy[i],
        ]);
    }
    let p = t.write(dir, "fig3_core_busy_marginals.csv")?;
    println!(
        "fig3: at N=60 all-busy probability {:.3} (p(j<4) mass {:.3})",
        all_busy[59],
        1.0 - all_busy[59]
    );
    Ok(vec![p])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_probabilities_drain_into_all_busy() {
        let dir = std::env::temp_dir().join("mvasd_fig3_test");
        fig3(&dir).unwrap();
        let content = std::fs::read_to_string(dir.join("fig3_core_busy_marginals.csv")).unwrap();
        assert_eq!(content.lines().count(), 61);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
