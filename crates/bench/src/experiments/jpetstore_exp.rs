//! JPetStore experiments — paper Table 3 (utilizations), Fig. 7 (MVASD vs
//! MVA·i, including the 140–168 throughput dip), Fig. 8 (multi-server vs
//! single-server MVASD), Fig. 9 (predicted vs measured DB utilization),
//! Table 5 (deviation summary), Fig. 11 (demand vs throughput), Fig. 12
//! (sample-count sensitivity).

use std::path::{Path, PathBuf};

use mvasd_core::accuracy::{compare_solution, compare_solver, render_table};
use mvasd_core::algorithm::{mvasd, mvasd_single_server};
use mvasd_core::profile::{DemandAxis, InterpolationKind, ServiceDemandProfile};
use mvasd_core::solver::{MvasdSingleServerSolver, MvasdSolver};
use mvasd_numerics::interp::{BoundaryCondition, CubicSpline, Extrapolation, Interpolant};
use mvasd_queueing::mva::{ClosedSolver, MvaSolution};

use super::vins_exp::{mva_i, mva_i_solver, mvasd_from};
use super::Ctx;
use crate::output::{write_text, Table};

/// Max population of the JPetStore prediction curves (the paper's
/// Chebyshev design interval tops out at 300).
const N_MAX: usize = 300;

/// MVA·i baseline levels (the paper plots MVA 28/70/140/210).
const MVA_I_LEVELS: [usize; 4] = [28, 70, 140, 210];

/// Table 3 — JPetStore utilization percentages.
pub fn table3(dir: &Path, ctx: &Ctx) -> std::io::Result<Vec<PathBuf>> {
    let c = ctx.jpetstore();
    let table = c.utilization_table();
    let mut csv = Table::new(
        std::iter::once("users".to_string())
            .chain(c.stations.iter().cloned())
            .collect::<Vec<_>>(),
    );
    for row in &table.rows {
        let mut r = vec![row.users as f64];
        r.extend(row.utilization.iter().map(|u| u * 100.0));
        csv.push(r);
    }
    let p1 = csv.write(dir, "table3_jpetstore_utilization.csv")?;
    let p2 = write_text(dir, "table3_jpetstore_utilization.txt", &table.render())?;
    let b = table.measured_bottleneck().expect("non-empty");
    println!(
        "table3: measured bottleneck = {} ({:.1}% at N={})",
        c.stations[b],
        table.rows.last().expect("table has rows").utilization[b] * 100.0,
        table.rows.last().expect("table has rows").users
    );
    Ok(vec![p1, p2])
}

/// Fig. 7 — MVASD vs MVA·{28,70,140,210} vs measured.
pub fn fig7(dir: &Path, ctx: &Ctx) -> std::io::Result<Vec<PathBuf>> {
    let c = ctx.jpetstore();
    let mut sols: Vec<(String, MvaSolution)> = vec![("mvasd".into(), mvasd_from(c, N_MAX))];
    for &i in &MVA_I_LEVELS {
        sols.push((format!("mva{i}"), mva_i(c, i, N_MAX)));
    }

    let mut paths = Vec::new();
    let mut measured = Table::new(vec!["n", "throughput_measured", "cycle_measured"]);
    for p in &c.points {
        measured.push(vec![p.users as f64, p.throughput, p.cycle_time]);
    }
    paths.push(measured.write(dir, "fig7_jpetstore_measured.csv")?);

    let mut headers = vec!["n".to_string()];
    for (name, _) in &sols {
        headers.push(format!("x_{name}"));
        headers.push(format!("cycle_{name}"));
    }
    let mut t = Table {
        headers,
        rows: Vec::new(),
    };
    for n in 1..=N_MAX {
        let mut row = vec![n as f64];
        for (_, sol) in &sols {
            let p = sol.at(n).expect("solved range");
            row.push(p.throughput);
            row.push(p.cycle_time);
        }
        t.push(row);
    }
    paths.push(t.write(dir, "fig7_jpetstore_predicted.csv")?);

    // The dip: measured throughput peaks between 140 and 168 then falls by
    // 210 (contention); MVASD follows it while static MVA·i cannot bend.
    let sd = &sols[0].1;
    let (peak_n, peak_x) = sd
        .points
        .iter()
        .map(|p| (p.n, p.throughput))
        .fold((0, 0.0), |acc, v| if v.1 > acc.1 { v } else { acc });
    let x210 = sd.at(210).expect("solution covers 1..=300").throughput;
    println!(
        "fig7: MVASD picks up the saturation dip: peak X({peak_n}) = {peak_x:.1}, \
         X(210) = {x210:.1} (measured peak {:.1} at 168 -> {:.1} at 210); \
         static MVA curves are monotone by construction",
        c.at(168).expect("campaign measured N=168").throughput,
        c.at(210).expect("campaign measured N=210").throughput
    );
    Ok(paths)
}

/// Fig. 8 — multi-server MVASD vs the single-server-normalized variant.
pub fn fig8(dir: &Path, ctx: &Ctx) -> std::io::Result<Vec<PathBuf>> {
    let c = ctx.jpetstore();
    let profile = ServiceDemandProfile::from_samples(
        &c.to_demand_samples(),
        InterpolationKind::CubicNotAKnot,
        DemandAxis::Concurrency,
    )
    .expect("profile");
    let multi = mvasd(&profile, N_MAX).expect("solver");
    let single = mvasd_single_server(&profile, N_MAX).expect("solver");

    let mut t = Table::new(vec![
        "n",
        "x_mvasd",
        "cycle_mvasd",
        "x_mvasd_single_server",
        "cycle_mvasd_single_server",
    ]);
    for n in 1..=N_MAX {
        let pm = multi.at(n).expect("solution covers 1..=N_MAX");
        let ps = single.at(n).expect("solution covers 1..=N_MAX");
        t.push(vec![
            n as f64,
            pm.throughput,
            pm.cycle_time,
            ps.throughput,
            ps.cycle_time,
        ]);
    }
    let p = t.write(dir, "fig8_jpetstore_single_vs_multi.csv")?;
    Ok(vec![p])
}

/// Fig. 9 — DB-server utilization predicted by MVASD vs measured.
pub fn fig9(dir: &Path, ctx: &Ctx) -> std::io::Result<Vec<PathBuf>> {
    let c = ctx.jpetstore();
    let sd = mvasd_from(c, N_MAX);
    let cpu = c.station_index("db-cpu").expect("db-cpu");
    let disk = c.station_index("db-disk").expect("db-disk");

    let mut predicted = Table::new(vec!["n", "db_cpu_util_pred", "db_disk_util_pred"]);
    for p in &sd.points {
        predicted.push(vec![
            p.n as f64,
            p.stations[cpu].utilization * 100.0,
            p.stations[disk].utilization * 100.0,
        ]);
    }
    let p1 = predicted.write(dir, "fig9_jpetstore_db_util_predicted.csv")?;

    let mut measured = Table::new(vec!["n", "db_cpu_util_meas", "db_disk_util_meas"]);
    for p in &c.points {
        measured.push(vec![
            p.users as f64,
            p.utilization[cpu] * 100.0,
            p.utilization[disk] * 100.0,
        ]);
    }
    let p2 = measured.write(dir, "fig9_jpetstore_db_util_measured.csv")?;
    Ok(vec![p1, p2])
}

/// Table 5 — mean deviation in modeling JPetStore, including the
/// single-server-normalized MVASD baseline.
pub fn table5(dir: &Path, ctx: &Ctx) -> std::io::Result<Vec<PathBuf>> {
    let c = ctx.jpetstore();
    let levels = c.levels();
    let mx = c.throughputs();
    let mc = c.cycle_times();

    let profile = ServiceDemandProfile::from_samples(
        &c.to_demand_samples(),
        InterpolationKind::CubicNotAKnot,
        DemandAxis::Concurrency,
    )
    .expect("profile");
    // Every model is a ClosedSolver, so the comparison is a single sweep.
    let mut models: Vec<(String, Box<dyn ClosedSolver>)> = vec![
        (
            "MVASD: Single-Server".to_string(),
            Box::new(MvasdSingleServerSolver::new(profile.clone())),
        ),
        ("MVASD".to_string(), Box::new(MvasdSolver::new(profile))),
    ];
    for &i in &MVA_I_LEVELS {
        models.push((format!("MVA {i}"), Box::new(mva_i_solver(c, i))));
    }
    let reports: Vec<_> = models
        .iter()
        .map(|(name, solver)| {
            compare_solver(name, solver.as_ref(), &levels, &mx, &mc).expect("deviation")
        })
        .collect();
    let rendered = render_table(
        "Table 5 — Mean Deviation in Modeling the JPetStore application",
        &reports,
    );
    let p1 = write_text(dir, "table5_jpetstore_deviation.txt", &rendered)?;
    let mut csv = Table::new(vec!["model_index", "throughput_dev_pct", "cycle_dev_pct"]);
    for (i, r) in reports.iter().enumerate() {
        csv.push(vec![i as f64, r.throughput_mean_pct, r.cycle_mean_pct]);
    }
    let p2 = csv.write(dir, "table5_jpetstore_deviation.csv")?;
    println!("{rendered}");
    Ok(vec![p1, p2])
}

/// Fig. 11 — service demands interpolated against **throughput**, and the
/// resulting MVASD prediction accuracy (the paper reports 6.68 % / 6.9 %,
/// worse than the concurrency-indexed 1–2 %).
pub fn fig11(dir: &Path, ctx: &Ctx) -> std::io::Result<Vec<PathBuf>> {
    let c = ctx.jpetstore();
    let samples = c.to_demand_samples_by_throughput();
    let cpu = c.station_index("db-cpu").expect("db-cpu");
    let disk = c.station_index("db-disk").expect("db-disk");

    // Demand-vs-throughput spline curves.
    let mut t = Table::new(vec!["throughput", "db_cpu_demand", "db_disk_demand"]);
    let spline = |k: usize| {
        CubicSpline::new(
            &samples.levels,
            &samples.demands[k],
            BoundaryCondition::NotAKnot,
        )
        .expect("spline")
        .with_extrapolation(Extrapolation::Clamp)
    };
    let (s_cpu, s_disk) = (spline(cpu), spline(disk));
    let (lo, hi) = (
        samples.levels[0],
        *samples.levels.last().expect("samples are non-empty"),
    );
    let steps = 200;
    for i in 0..=steps {
        let x = lo + (hi - lo) * i as f64 / steps as f64;
        t.push(vec![x, s_cpu.eval(x), s_disk.eval(x)]);
    }
    let p1 = t.write(dir, "fig11_jpetstore_demand_vs_throughput.csv")?;

    // Prediction with the throughput-indexed profile.
    let profile = ServiceDemandProfile::from_samples(
        &samples,
        InterpolationKind::CubicNotAKnot,
        DemandAxis::Throughput,
    )
    .expect("profile");
    let sol = mvasd(&profile, N_MAX).expect("solver");
    let report = compare_solution(
        "MVASD (demand vs throughput)",
        &sol,
        &c.levels(),
        &c.throughputs(),
        &c.cycle_times(),
    )
    .expect("deviation");
    let summary = format!(
        "Fig. 11 — demand interpolated against throughput (JPetStore)\n\
         throughput deviation: {:.2} % (paper: 6.68 %)\n\
         cycle-time deviation: {:.2} % (paper: 6.9 %)\n\
         For comparison the concurrency-indexed MVASD deviations are in table5.\n",
        report.throughput_mean_pct, report.cycle_mean_pct
    );
    let p2 = write_text(dir, "fig11_jpetstore_throughput_axis.txt", &summary)?;
    println!("{summary}");
    Ok(vec![p1, p2])
}

/// Fig. 12 — spline quality with 3 / 5 / 7 demand samples
/// ({1,14,28} ⊂ {…,70,140} ⊂ {…,168,210}).
pub fn fig12(dir: &Path, ctx: &Ctx) -> std::io::Result<Vec<PathBuf>> {
    let c = ctx.jpetstore();
    let samples = c.to_demand_samples();
    let disk = c.station_index("db-disk").expect("db-disk");

    let subsets: [(&str, &[usize]); 3] = [
        ("3_samples", &[0, 1, 2]),
        ("5_samples", &[0, 1, 2, 3, 4]),
        ("7_samples", &[0, 1, 2, 3, 4, 5, 6]),
    ];
    let mut t = Table::new(vec!["n", "spline_3", "spline_5", "spline_7"]);
    let mut splines = Vec::new();
    for (_, keep) in &subsets {
        let sub = samples.subset(keep).expect("valid subset");
        splines.push(
            CubicSpline::new(&sub.levels, &sub.demands[disk], BoundaryCondition::NotAKnot)
                .expect("spline")
                .with_extrapolation(Extrapolation::Clamp),
        );
    }
    for n in (1..=210).step_by(1) {
        t.push(vec![
            n as f64,
            splines[0].eval(n as f64),
            splines[1].eval(n as f64),
            splines[2].eval(n as f64),
        ]);
    }
    let p = t.write(dir, "fig12_jpetstore_sample_counts.csv")?;

    // Quantify: deviation of each subset spline from the 7-sample one.
    let dev = |a: &CubicSpline, b: &CubicSpline| {
        let mut worst: f64 = 0.0;
        for n in 1..=210 {
            let (x, y) = (a.eval(n as f64), b.eval(n as f64));
            worst = worst.max(((x - y) / y).abs());
        }
        worst * 100.0
    };
    println!(
        "fig12: max deviation from 7-sample spline: 3 samples {:.1} %, 5 samples {:.1} %",
        dev(&splines[0], &splines[2]),
        dev(&splines[1], &splines[2])
    );
    Ok(vec![p])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure;
    use mvasd_testbed::apps::jpetstore;

    #[test]
    fn throughput_axis_profile_predicts() {
        let c = measure(&jpetstore::model(), &[1, 40, 100]);
        let samples = c.to_demand_samples_by_throughput();
        let profile = ServiceDemandProfile::from_samples(
            &samples,
            InterpolationKind::CubicNotAKnot,
            DemandAxis::Throughput,
        )
        .unwrap();
        let sol = mvasd(&profile, 120).unwrap();
        assert_eq!(sol.points.len(), 120);
        assert!(sol.last().throughput > 0.0);
    }
}
