//! Ablations over the design choices DESIGN.md calls out: interpolation
//! family, solver family (exact multi-server vs Schweitzer/Seidmann vs
//! single-server normalization), and sample placement.

use std::path::{Path, PathBuf};

use mvasd_core::accuracy::{compare, compare_solution};
use mvasd_core::algorithm::mvasd;
use mvasd_core::demand_fit::fit_profile;
use mvasd_core::designer::{design_levels, SamplingStrategy};
use mvasd_core::extrapolation::CurveFitPredictor;
use mvasd_core::profile::{DemandAxis, InterpolationKind, ServiceDemandProfile};
use mvasd_queueing::mva::{
    ClosedSolver, ExactMvaSolver, LoadDependentSolver, MultiserverMvaSolver, SchweitzerSolver,
};
use mvasd_queueing::network::{ClosedNetwork, Station};
use mvasd_testbed::apps::jpetstore;

use super::Ctx;
use crate::measure;
use crate::output::write_text;

/// Interpolation-family ablation: fit each interpolant on a *different*
/// sample set (the Chebyshev-4 design) and evaluate MVASD against the
/// measurements at the paper's standard levels — so the comparison probes
/// the interpolants' behaviour *between* knots, where they actually differ
/// (evaluating at the knot set itself makes every interpolant identical by
/// construction).
pub fn interpolation(dir: &Path, ctx: &Ctx) -> std::io::Result<Vec<PathBuf>> {
    let reference = ctx.jpetstore();
    let (a, b) = jpetstore::CHEBYSHEV_RANGE;
    let fit_levels = design_levels(SamplingStrategy::Chebyshev, 4, a, b).expect("design");
    let fit = measure(&jpetstore::model(), &fit_levels);
    let samples = fit.to_demand_samples();

    let kinds: [(&str, InterpolationKind); 5] = [
        ("linear", InterpolationKind::Linear),
        ("cubic-natural", InterpolationKind::CubicNatural),
        ("cubic-not-a-knot", InterpolationKind::CubicNotAKnot),
        ("pchip", InterpolationKind::Pchip),
        (
            "smoothing(l=1e-4)",
            InterpolationKind::Smoothing { lambda: 1e-4 },
        ),
    ];
    let mut summary = format!(
        "Ablation — interpolation family (JPetStore, MVASD)\n\
         fitted on Chebyshev-4 levels {fit_levels:?}, evaluated at the\n\
         standard levels {:?}\n",
        reference.levels()
    );
    for (name, kind) in kinds {
        let profile = ServiceDemandProfile::from_samples(&samples, kind, DemandAxis::Concurrency)
            .expect("profile");
        let sol = mvasd(&profile, 300).expect("solver");
        let rep = compare_solution(
            name,
            &sol,
            &reference.levels(),
            &reference.throughputs(),
            &reference.cycle_times(),
        )
        .expect("deviation");
        summary.push_str(&format!(
            "{name:<20} throughput dev {:.2} %, cycle dev {:.2} %\n",
            rep.throughput_mean_pct, rep.cycle_mean_pct
        ));
    }
    let p = write_text(dir, "ablation_interpolation.txt", &summary)?;
    println!("{summary}");
    Ok(vec![p])
}

/// Solver-family ablation on a 16-core CPU + disk network: exact
/// multi-server (convolution) vs Schweitzer/Seidmann vs single-server
/// normalization vs the load-dependent reference. Every contender runs
/// through the shared [`ClosedSolver`] interface.
pub fn solvers(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let net = ClosedNetwork::new(
        vec![
            Station::queueing("cpu16", 16, 1.0, 0.12),
            Station::queueing("disk", 1, 1.0, 0.006),
        ],
        1.0,
    )
    .expect("static model");
    // Single-server normalization: D/C on the CPU.
    let norm = ClosedNetwork::new(
        vec![
            Station::queueing("cpu16", 1, 1.0, 0.12 / 16.0),
            Station::queueing("disk", 1, 1.0, 0.006),
        ],
        1.0,
    )
    .expect("static model");
    let n_max = 300;

    let reference = LoadDependentSolver::from_network(&net)
        .solve(n_max)
        .expect("reference");

    let contenders: Vec<(&str, Box<dyn ClosedSolver>)> = vec![
        (
            "exact multi-server (Algorithm 2)",
            Box::new(MultiserverMvaSolver::new(net.clone())),
        ),
        (
            "Schweitzer + Seidmann",
            Box::new(SchweitzerSolver::new(net)),
        ),
        (
            "single-server normalization (D/C)",
            Box::new(ExactMvaSolver::new(norm)),
        ),
    ];

    let mut summary = format!(
        "Ablation — multi-server solver family vs load-dependent reference\n\
         (16-core CPU D=0.12 + disk D=0.006, Z=1, N=1..{n_max})\n"
    );
    for (label, solver) in &contenders {
        let sol = solver.solve(n_max).expect("solver");
        let mut mean = 0.0;
        let mut worst: f64 = 0.0;
        for n in 1..=n_max {
            let a = sol.at(n).expect("solution covers 1..=n_max").throughput;
            let b = reference
                .at(n)
                .expect("solution covers 1..=n_max")
                .throughput;
            let d = ((a - b) / b).abs();
            mean += d;
            worst = worst.max(d);
        }
        summary.push_str(&format!(
            "{label:<36} [{}]: mean {:.4} %, worst {:.4} %\n",
            solver.name(),
            mean / n_max as f64 * 100.0,
            worst * 100.0
        ));
    }
    let p = write_text(dir, "ablation_solvers.txt", &summary)?;
    println!("{summary}");
    Ok(vec![p])
}

/// Sample-placement ablation: MVASD accuracy from Chebyshev, equispaced,
/// and random 5-point designs on JPetStore.
pub fn sampling(dir: &Path, ctx: &Ctx) -> std::io::Result<Vec<PathBuf>> {
    let reference = ctx.jpetstore();
    let (a, b) = jpetstore::CHEBYSHEV_RANGE;
    let app = jpetstore::model();
    let strategies: Vec<(&str, SamplingStrategy)> = vec![
        ("chebyshev", SamplingStrategy::Chebyshev),
        ("equispaced", SamplingStrategy::EquiSpaced),
        ("random", SamplingStrategy::Random { seed: 7 }),
    ];
    let mut summary =
        String::from("Ablation — sample placement (5 load tests, JPetStore, MVASD)\n");
    for (name, strat) in strategies {
        let levels = design_levels(strat, 5, a, b).expect("design");
        let c = measure(&app, &levels);
        let profile = ServiceDemandProfile::from_samples(
            &c.to_demand_samples(),
            InterpolationKind::CubicNotAKnot,
            DemandAxis::Concurrency,
        )
        .expect("profile");
        let sol = mvasd(&profile, 300).expect("solver");
        let rep = compare_solution(
            name,
            &sol,
            &reference.levels(),
            &reference.throughputs(),
            &reference.cycle_times(),
        )
        .expect("deviation");
        summary.push_str(&format!(
            "{name:<11} {levels:?}: throughput dev {:.2} %, cycle dev {:.2} %\n",
            rep.throughput_mean_pct, rep.cycle_mean_pct
        ));
    }
    let p = write_text(dir, "ablation_sampling.txt", &summary)?;
    println!("{summary}");
    Ok(vec![p])
}

/// Curve-fitting-extrapolation baseline (the paper's ref. \[4]) vs MVASD:
/// both fitted from the same 5 Chebyshev load tests, both scored against
/// the measurements at the paper's standard levels. Also probes the one
/// capability gap curve fitting cannot close: per-resource utilization.
pub fn curvefit(dir: &Path, ctx: &Ctx) -> std::io::Result<Vec<PathBuf>> {
    let reference = ctx.jpetstore();
    let (a, b) = jpetstore::CHEBYSHEV_RANGE;
    let app = jpetstore::model();
    let fit_levels = design_levels(SamplingStrategy::Chebyshev, 5, a, b).expect("design");
    let fit = measure(&app, &fit_levels);

    // MVASD path.
    let profile = ServiceDemandProfile::from_samples(
        &fit.to_demand_samples(),
        InterpolationKind::CubicNotAKnot,
        DemandAxis::Concurrency,
    )
    .expect("profile");
    let sd = mvasd(&profile, 300).expect("solver");
    let sd_rep = compare_solution(
        "MVASD",
        &sd,
        &reference.levels(),
        &reference.throughputs(),
        &reference.cycle_times(),
    )
    .expect("deviation");

    // Curve-fit path: same measured points, throughput-only model.
    let lv: Vec<f64> = fit.levels().iter().map(|&l| l as f64).collect();
    let cf = CurveFitPredictor::fit(&lv, &fit.throughputs(), app.think_time).expect("fit");
    let cf_x: Vec<f64> = reference
        .levels()
        .iter()
        .map(|&n| cf.throughput(n as f64))
        .collect();
    let cf_c: Vec<f64> = reference
        .levels()
        .iter()
        .map(|&n| cf.cycle_time(n as f64))
        .collect();
    let cf_rep = compare(
        "CurveFit [4]",
        &cf_x,
        &cf_c,
        &reference.throughputs(),
        &reference.cycle_times(),
    )
    .expect("deviation");

    let summary = format!(
        "Ablation — curve-fitting extrapolation (paper ref. [4]) vs MVASD\n\
         (both fitted on the Chebyshev-5 levels {fit_levels:?}, JPetStore)\n\
         MVASD:         throughput dev {:.2} %, cycle dev {:.2} %\n\
         CurveFit [4]:  throughput dev {:.2} %, cycle dev {:.2} % ({:?} shape)\n\
         \n\
         Capability gap: the curve fit has no resource model — it cannot\n\
         report utilizations, locate the bottleneck, or answer what-if\n\
         questions (MVASD predicts db-cpu utilization {:.0} % at N = 210;\n\
         the curve fit predicts nothing).\n",
        sd_rep.throughput_mean_pct,
        sd_rep.cycle_mean_pct,
        cf_rep.throughput_mean_pct,
        cf_rep.cycle_mean_pct,
        cf.shape(),
        sd.at(210)
            .map(|p| p.stations[8].utilization * 100.0)
            .unwrap_or(0.0),
    );
    let p = write_text(dir, "ablation_curvefit.txt", &summary)?;
    println!("{summary}");
    Ok(vec![p])
}

/// Parametric demand laws vs spline interpolation — the paper's Section 7
/// future work ("finding a general representation of this with a few
/// samples"): fit `D(n) = d_∞(1 + α·e^{−n/τ})` per station from only 3
/// equispaced samples (the configuration that distorts splines in the
/// paper's Fig. 12) and compare MVASD accuracy.
pub fn demandfit(dir: &Path, ctx: &Ctx) -> std::io::Result<Vec<PathBuf>> {
    let reference = ctx.jpetstore();
    // The paper's Fig. 12 "bad case": only {1, 14, 28} equispaced-ish
    // samples, all far below the knee.
    let sparse = measure(&jpetstore::model(), &[1, 14, 28]);
    let samples = sparse.to_demand_samples();

    let spline_profile = ServiceDemandProfile::from_samples(
        &samples,
        InterpolationKind::CubicNotAKnot,
        DemandAxis::Concurrency,
    )
    .expect("profile");
    let spline_sol = mvasd(&spline_profile, 300).expect("solver");
    let spline_rep = compare_solution(
        "spline (3 samples)",
        &spline_sol,
        &reference.levels(),
        &reference.throughputs(),
        &reference.cycle_times(),
    )
    .expect("deviation");

    let (laws, law_profile) = fit_profile(&samples).expect("fit");
    let law_sol = mvasd(&law_profile, 300).expect("solver");
    let law_rep = compare_solution(
        "warm-up law (3 samples)",
        &law_sol,
        &reference.levels(),
        &reference.throughputs(),
        &reference.cycle_times(),
    )
    .expect("deviation");

    let db_cpu = sparse.station_index("db-cpu").expect("db-cpu");
    let summary = format!(
        "Ablation — parametric demand law vs spline (paper Section 7 future work)\n\
         (3 low-concurrency samples {{1, 14, 28}}, JPetStore, scored at the standard levels)\n\
         spline (clamped beyond N=28):  throughput dev {:.2} %, cycle dev {:.2} %\n\
         warm-up law d_inf(1+a*e^(-n/tau)): throughput dev {:.2} %, cycle dev {:.2} %\n\
         fitted db-cpu law: d_inf = {:.4} s, alpha = {:.3}, tau = {:.1}\n\
         (true curve: d_inf = 0.1350 s, alpha = 0.25, tau = 40)\n\
         \n\
         The parametric law extrapolates the demand *decline* beyond the last\n\
         sample, where the clamped spline freezes at the N=28 value.\n",
        spline_rep.throughput_mean_pct,
        spline_rep.cycle_mean_pct,
        law_rep.throughput_mean_pct,
        law_rep.cycle_mean_pct,
        laws[db_cpu].d_inf,
        laws[db_cpu].alpha,
        laws[db_cpu].tau,
    );
    let p = write_text(dir, "ablation_demandfit.txt", &summary)?;
    println!("{summary}");
    Ok(vec![p])
}

/// Robustness: how badly does MVASD degrade when the real system violates
/// its assumptions? The paper assumes software bottlenecks (locks, pools)
/// are "tuned prior to performance analysis"; here the simulated JPetStore
/// DB CPU gets an in-run lock-contention model (service inflating with the
/// local queue), the campaign is re-measured, and the same MVASD pipeline
/// is scored against it.
pub fn robustness(dir: &Path, ctx: &Ctx) -> std::io::Result<Vec<PathBuf>> {
    let clean_reference = ctx.jpetstore();
    // Clean-system MVASD accuracy for comparison.
    let clean_profile = ServiceDemandProfile::from_samples(
        &clean_reference.to_demand_samples(),
        InterpolationKind::CubicNotAKnot,
        DemandAxis::Concurrency,
    )
    .expect("profile");
    let clean_sol = mvasd(&clean_profile, 300).expect("solver");
    let clean_rep = compare_solution(
        "clean",
        &clean_sol,
        &clean_reference.levels(),
        &clean_reference.throughputs(),
        &clean_reference.cycle_times(),
    )
    .expect("deviation");

    // Contended system: a lock convoy on the DB CPU.
    let mut app = jpetstore::model();
    app.stations[8] =
        app.stations[8]
            .clone()
            .with_contention(mvasd_simnet::ContentionModel::LinearBeyond {
                threshold: 16,
                slope: 0.015,
                max_factor: 2.0,
            });
    let contended = measure(&app, &jpetstore::STANDARD_LEVELS);
    let profile = ServiceDemandProfile::from_samples(
        &contended.to_demand_samples(),
        InterpolationKind::CubicNotAKnot,
        DemandAxis::Concurrency,
    )
    .expect("profile");
    let sol = mvasd(&profile, 300).expect("solver");
    let rep = compare_solution(
        "contended",
        &sol,
        &contended.levels(),
        &contended.throughputs(),
        &contended.cycle_times(),
    )
    .expect("deviation");

    let summary = format!(
        "Ablation — robustness to software contention (JPetStore)\n\
         The paper assumes software bottlenecks are tuned away; here the DB\n\
         CPU gets an in-run lock-convoy model (service +1.5 %/queued customer\n\
         beyond 16, capped at 2x) that no product-form model can represent.\n\
         \n\
         MVASD vs clean system:      throughput dev {:.2} %, cycle dev {:.2} %\n\
         MVASD vs contended system:  throughput dev {:.2} %, cycle dev {:.2} %\n\
         measured ceiling:           {:.1} -> {:.1} pages/s\n\
         \n\
         Interestingly MVASD partially absorbs the violation: the Service\n\
         Demand Law folds the inflated service times into the extracted\n\
         demands, so the interpolated demand curve *rises* past the lock\n\
         onset and the prediction bends with it — the mechanism behind the\n\
         paper's Fig. 7 dip working in MVASD's favour here too.\n",
        clean_rep.throughput_mean_pct,
        clean_rep.cycle_mean_pct,
        rep.throughput_mean_pct,
        rep.cycle_mean_pct,
        clean_reference
            .throughputs()
            .iter()
            .cloned()
            .fold(0.0f64, f64::max),
        contended
            .throughputs()
            .iter()
            .cloned()
            .fold(0.0f64, f64::max),
    );
    let p = write_text(dir, "ablation_robustness.txt", &summary)?;
    println!("{summary}");
    Ok(vec![p])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solver_ablation_ranks_families() {
        let dir = std::env::temp_dir().join("mvasd_ablation_test");
        solvers(&dir).unwrap();
        let txt = std::fs::read_to_string(dir.join("ablation_solvers.txt")).unwrap();
        assert!(txt.contains("exact multi-server"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
