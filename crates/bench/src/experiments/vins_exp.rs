//! VINS experiments — paper Table 2 (utilizations), Fig. 4 (MVA·i
//! deviations), Fig. 5 (measured demands), Fig. 6 (MVASD vs MVA·i),
//! Table 4 (deviation summary), Fig. 10 (spline-interpolated demands).

use std::path::{Path, PathBuf};

use mvasd_core::accuracy::{compare_solver, render_table, DeviationReport};
use mvasd_core::profile::{DemandAxis, InterpolationKind, ServiceDemandProfile};
use mvasd_core::solver::MvasdSolver;
use mvasd_numerics::interp::{BoundaryCondition, CubicSpline, Extrapolation, Interpolant};
use mvasd_queueing::mva::{ClosedSolver, MultiserverMvaSolver, MvaSolution};
use mvasd_queueing::network::{ClosedNetwork, Station};
use mvasd_testbed::campaign::Campaign;

use super::Ctx;
use crate::output::{write_text, Table};

/// Max population of the VINS prediction curves.
const N_MAX: usize = 1500;

/// The concurrency levels whose measured demands feed the MVA·i baselines
/// (the paper plots MVA·i for several i, naming `MVA 203` explicitly).
const MVA_I_LEVELS: [usize; 4] = [1, 103, 203, 1500];

/// Builds the static closed network from demands measured at one level.
pub(crate) fn network_from_demands(c: &Campaign, demands: &[f64]) -> ClosedNetwork {
    let stations = c
        .stations
        .iter()
        .zip(c.server_counts.iter())
        .zip(demands.iter())
        .map(|((name, &servers), &d)| Station::queueing(name, servers, 1.0, d))
        .collect();
    ClosedNetwork::new(stations, c.think_time).expect("measured demands form a valid network")
}

/// The MVA·i baseline (Algorithm 2 with demands sampled at level `i`) as a
/// [`ClosedSolver`].
pub(crate) fn mva_i_solver(c: &Campaign, i: usize) -> MultiserverMvaSolver {
    let point = c
        .at(i)
        .expect("requested level was measured by the campaign");
    MultiserverMvaSolver::new(network_from_demands(c, &point.demands))
}

/// MVASD over the campaign's full demand array as a [`ClosedSolver`].
pub(crate) fn mvasd_solver(c: &Campaign) -> MvasdSolver {
    let profile = ServiceDemandProfile::from_samples(
        &c.to_demand_samples(),
        InterpolationKind::CubicNotAKnot,
        DemandAxis::Concurrency,
    )
    .expect("campaign demands form a valid profile");
    MvasdSolver::new(profile)
}

/// All models the paper compares on a campaign: MVASD plus the MVA·i
/// baselines at whichever of `levels` were measured.
pub(crate) fn model_solvers(
    c: &Campaign,
    levels: &[usize],
) -> Vec<(String, Box<dyn ClosedSolver>)> {
    let mut models: Vec<(String, Box<dyn ClosedSolver>)> =
        vec![("MVASD".to_string(), Box::new(mvasd_solver(c)))];
    for &i in levels {
        if c.at(i).is_some() {
            models.push((format!("MVA {i}"), Box::new(mva_i_solver(c, i))));
        }
    }
    models
}

/// Solves MVA·i (Algorithm 2 with demands sampled at level `i`).
pub(crate) fn mva_i(c: &Campaign, i: usize, n_max: usize) -> MvaSolution {
    mva_i_solver(c, i).solve(n_max).expect("solver")
}

/// Solves MVASD from the campaign's full demand array.
pub(crate) fn mvasd_from(c: &Campaign, n_max: usize) -> MvaSolution {
    mvasd_solver(c).solve(n_max).expect("solver")
}

/// Writes measured (levels) + predicted (full curves) throughput/cycle-time
/// tables for a set of named models.
fn write_prediction_tables(
    dir: &Path,
    stem: &str,
    c: &Campaign,
    models: &[(&str, &MvaSolution)],
) -> std::io::Result<Vec<PathBuf>> {
    let mut paths = Vec::new();

    let mut measured = Table::new(vec!["n", "throughput_measured", "cycle_measured"]);
    for p in &c.points {
        measured.push(vec![p.users as f64, p.throughput, p.cycle_time]);
    }
    paths.push(measured.write(dir, &format!("{stem}_measured.csv"))?);

    let mut headers = vec!["n".to_string()];
    for (name, _) in models {
        headers.push(format!("x_{name}"));
        headers.push(format!("cycle_{name}"));
    }
    let mut t = Table {
        headers,
        rows: Vec::new(),
    };
    let n_max = models[0].1.points.len();
    for n in 1..=n_max {
        let mut row = vec![n as f64];
        for (_, sol) in models {
            let p = sol.at(n).expect("uniform n_max");
            row.push(p.throughput);
            row.push(p.cycle_time);
        }
        t.push(row);
    }
    paths.push(t.write(dir, &format!("{stem}_predicted.csv"))?);
    Ok(paths)
}

/// Table 2 — VINS utilization percentages per station and level.
pub fn table2(dir: &Path, ctx: &Ctx) -> std::io::Result<Vec<PathBuf>> {
    let c = ctx.vins();
    let table = c.utilization_table();
    let mut csv = Table::new(
        std::iter::once("users".to_string())
            .chain(c.stations.iter().cloned())
            .collect::<Vec<_>>(),
    );
    for row in &table.rows {
        let mut r = vec![row.users as f64];
        r.extend(row.utilization.iter().map(|u| u * 100.0));
        csv.push(r);
    }
    let p1 = csv.write(dir, "table2_vins_utilization.csv")?;
    let p2 = write_text(dir, "table2_vins_utilization.txt", &table.render())?;
    let bottleneck = table.measured_bottleneck().expect("non-empty table");
    println!(
        "table2: measured bottleneck = {} ({:.1}% at N={})",
        c.stations[bottleneck],
        table.rows.last().expect("table has rows").utilization[bottleneck] * 100.0,
        table.rows.last().expect("table has rows").users
    );
    Ok(vec![p1, p2])
}

/// Fig. 4 — MVA·i predictions vs measurements (no MVASD yet).
pub fn fig4(dir: &Path, ctx: &Ctx) -> std::io::Result<Vec<PathBuf>> {
    let c = ctx.vins();
    let sols: Vec<(String, MvaSolution)> = MVA_I_LEVELS
        .iter()
        .map(|&i| (format!("mva{i}"), mva_i(c, i, N_MAX)))
        .collect();
    let model_refs: Vec<(&str, &MvaSolution)> = sols.iter().map(|(n, s)| (n.as_str(), s)).collect();
    write_prediction_tables(dir, "fig4_vins_mva_i", c, &model_refs)
}

/// Fig. 5 — measured service demands of the database server vs concurrency.
pub fn fig5(dir: &Path, ctx: &Ctx) -> std::io::Result<Vec<PathBuf>> {
    let c = ctx.vins();
    let mut t = Table::new(vec!["n", "db_cpu", "db_disk", "db_net_tx", "db_net_rx"]);
    let idx: Vec<usize> = ["db-cpu", "db-disk", "db-net-tx", "db-net-rx"]
        .iter()
        .map(|s| c.station_index(s).expect("db stations present"))
        .collect();
    for p in &c.points {
        t.push(vec![
            p.users as f64,
            p.demands[idx[0]],
            p.demands[idx[1]],
            p.demands[idx[2]],
            p.demands[idx[3]],
        ]);
    }
    let path = t.write(dir, "fig5_vins_db_demands.csv")?;
    let d = &c.points;
    println!(
        "fig5: db-disk demand falls {:.2} ms -> {:.2} ms over N = {}..{}",
        d.first().expect("campaign has points").demands[idx[1]] * 1e3,
        d.last().expect("campaign has points").demands[idx[1]] * 1e3,
        d.first().expect("campaign has points").users,
        d.last().expect("campaign has points").users
    );
    Ok(vec![path])
}

/// Fig. 6 — MVASD vs MVA·i vs measured.
pub fn fig6(dir: &Path, ctx: &Ctx) -> std::io::Result<Vec<PathBuf>> {
    let c = ctx.vins();
    let sd = mvasd_from(c, N_MAX);
    let mut sols: Vec<(String, MvaSolution)> = vec![("mvasd".to_string(), sd)];
    for &i in &MVA_I_LEVELS {
        sols.push((format!("mva{i}"), mva_i(c, i, N_MAX)));
    }
    let model_refs: Vec<(&str, &MvaSolution)> = sols.iter().map(|(n, s)| (n.as_str(), s)).collect();
    write_prediction_tables(dir, "fig6_vins_mvasd", c, &model_refs)
}

/// Builds the deviation reports (eq. 15) of MVASD and the MVA·i baselines
/// against the measured campaign. Every model runs through the shared
/// [`ClosedSolver`] interface, so adding one is a one-line change to
/// [`model_solvers`].
pub(crate) fn deviation_reports(c: &Campaign, mva_i_levels: &[usize]) -> Vec<DeviationReport> {
    let levels = c.levels();
    let mx = c.throughputs();
    let mc = c.cycle_times();
    model_solvers(c, mva_i_levels)
        .iter()
        .map(|(name, solver)| {
            compare_solver(name, solver.as_ref(), &levels, &mx, &mc).expect("deviation")
        })
        .collect()
}

/// Table 4 — mean deviation in modeling VINS.
pub fn table4(dir: &Path, ctx: &Ctx) -> std::io::Result<Vec<PathBuf>> {
    let c = ctx.vins();
    let reports = deviation_reports(c, &MVA_I_LEVELS);
    let rendered = render_table(
        "Table 4 — Mean Deviation in Modeling the VINS application",
        &reports,
    );
    let p1 = write_text(dir, "table4_vins_deviation.txt", &rendered)?;
    let mut csv = Table::new(vec!["model_index", "throughput_dev_pct", "cycle_dev_pct"]);
    for (i, r) in reports.iter().enumerate() {
        csv.push(vec![i as f64, r.throughput_mean_pct, r.cycle_mean_pct]);
    }
    let p2 = csv.write(dir, "table4_vins_deviation.csv")?;
    println!("{rendered}");
    Ok(vec![p1, p2])
}

/// Fig. 10 — spline-interpolated demand curves for the VINS DB server.
pub fn fig10(dir: &Path, ctx: &Ctx) -> std::io::Result<Vec<PathBuf>> {
    let c = ctx.vins();
    let levels: Vec<f64> = c.levels().iter().map(|&l| l as f64).collect();
    let mut t = Table::new(vec!["n", "db_cpu_spline", "db_disk_spline"]);
    let splines: Vec<CubicSpline> = ["db-cpu", "db-disk"]
        .iter()
        .map(|name| {
            let k = c.station_index(name).expect("db station");
            CubicSpline::new(&levels, &c.demand_series(k), BoundaryCondition::NotAKnot)
                .expect("spline over measured demands")
                .with_extrapolation(Extrapolation::Clamp)
        })
        .collect();
    let mut n = 1.0f64;
    while n <= N_MAX as f64 {
        t.push(vec![n, splines[0].eval(n), splines[1].eval(n)]);
        n += 5.0;
    }
    let p = t.write(dir, "fig10_vins_demand_splines.csv")?;
    Ok(vec![p])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure;
    use mvasd_testbed::apps::vins;

    #[test]
    fn mva_i_and_mvasd_build_from_small_campaign() {
        let c = measure(&vins::model(), &[1, 30, 90]);
        let sol = mva_i(&c, 30, 120);
        assert_eq!(sol.points.len(), 120);
        let sd = mvasd_from(&c, 120);
        assert_eq!(sd.points.len(), 120);
        // MVASD tracks the measured point at an intermediate level better
        // than MVA·1 (cold demands overestimate everywhere).
        let measured_x = c.at(90).unwrap().throughput;
        let sd_x = sd.at(90).unwrap().throughput;
        let mva1_x = mva_i(&c, 1, 120).at(90).unwrap().throughput;
        assert!(
            (sd_x - measured_x).abs() <= (mva1_x - measured_x).abs() + 1e-9,
            "mvasd {sd_x}, mva1 {mva1_x}, measured {measured_x}"
        );
    }

    #[test]
    fn network_from_demands_preserves_structure() {
        let c = measure(&vins::model(), &[1, 20]);
        let net = network_from_demands(&c, &c.points[0].demands);
        assert_eq!(net.stations().len(), 12);
        assert_eq!(net.think_time(), 1.0);
    }
}
