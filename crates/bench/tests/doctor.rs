//! End-to-end tests of the `mvasd-doctor` binary: healthy and regressed
//! verdicts, plus the empty-history ergonomics — every broken-input path
//! must exit 2 with an actionable message, never panic.

use std::path::{Path, PathBuf};
use std::process::Output;

use mvasd_bench::doctor::{load_baseline, write_baseline, BenchFile};
use mvasd_obsv::json::{self, Json};

fn doctor(args: &[&str]) -> Output {
    std::process::Command::new(env!("CARGO_BIN_EXE_mvasd-doctor"))
        .args(args)
        .output()
        .expect("mvasd-doctor binary runs")
}

fn fixture_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mvasd_doctor_it_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("fixture dir is creatable");
    dir
}

/// A minimal `mvasd-bench/1` document with one timed experiment and one
/// accuracy + one speedup metric.
fn bench_json(quick: bool, median_ns: u64, rel_err: f64, speedup: f64) -> String {
    format!(
        concat!(
            "{{\"schema\":\"mvasd-bench/1\",\"quick\":{},\"groups\":[",
            "{{\"group\":\"fix\",\"experiments\":[{{\"name\":\"sweep/10\",",
            "\"samples\":5,\"nanos\":{{\"min\":{m},\"p25\":{m},\"median\":{m},",
            "\"p75\":{m},\"p90\":{m},\"max\":{m},\"mean\":{m}}}}}]}}],",
            "\"fix\":{{\"max_rel_err\":{},\"speedup\":{}}}}}"
        ),
        quick,
        rel_err,
        speedup,
        m = median_ns
    )
}

fn write_fixture(dir: &Path, quick: bool, median_ns: u64, rel_err: f64, speedup: f64) {
    std::fs::write(
        dir.join("BENCH_fix.json"),
        bench_json(quick, median_ns, rel_err, speedup),
    )
    .expect("fixture write");
}

fn seed_baseline(dir: &Path) -> PathBuf {
    let baseline = dir.join("BASELINE.json");
    write_fixture(dir, false, 1_000_000, 1e-6, 20.0);
    let out = doctor(&[
        "--results",
        dir.to_str().expect("utf8 path"),
        "--baseline",
        baseline.to_str().expect("utf8 path"),
        "--write-baseline",
    ]);
    assert!(out.status.success(), "write-baseline: {out:?}");
    baseline
}

fn exit_code(out: &Output) -> i32 {
    out.status.code().expect("doctor exits, not killed")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn healthy_results_exit_zero_with_verdict_json() {
    let dir = fixture_dir("healthy");
    let baseline = seed_baseline(&dir);
    let verdict_path = dir.join("verdict.json");
    let out = doctor(&[
        "--results",
        dir.to_str().unwrap(),
        "--baseline",
        baseline.to_str().unwrap(),
        "--out",
        verdict_path.to_str().unwrap(),
    ]);
    assert_eq!(exit_code(&out), 0, "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(stdout.contains("HEALTHY"), "summary in stdout: {stdout}");
    let verdict = std::fs::read_to_string(&verdict_path).expect("verdict written");
    let doc = json::parse(&verdict).expect("verdict is valid JSON");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("mvasd-doctor/1")
    );
    assert_eq!(doc.get("pass"), Some(&Json::Bool(true)));
    let checks = doc.get("checks").and_then(Json::as_array).expect("checks");
    assert_eq!(checks.len(), 3, "timing + accuracy + speedup");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn degraded_fixture_exits_one_and_names_the_regression() {
    let dir = fixture_dir("degraded");
    let baseline = seed_baseline(&dir);
    // 20× slower than the 8× allowance.
    write_fixture(&dir, false, 20_000_000, 1e-6, 20.0);
    let out = doctor(&[
        "--results",
        dir.to_str().unwrap(),
        "--baseline",
        baseline.to_str().unwrap(),
    ]);
    assert_eq!(exit_code(&out), 1, "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(stdout.contains("REGRESSION"), "{stdout}");
    assert!(stdout.contains("FAIL timing:fix/sweep/10"), "{stdout}");
    assert!(
        stdout.contains("\"pass\":false"),
        "verdict on stdout without --out: {stdout}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn accuracy_regression_exits_one() {
    let dir = fixture_dir("accuracy");
    let baseline = seed_baseline(&dir);
    write_fixture(&dir, false, 1_000_000, 1e-3, 20.0); // 1000× worse error
    let out = doctor(&[
        "--results",
        dir.to_str().unwrap(),
        "--baseline",
        baseline.to_str().unwrap(),
    ]);
    assert_eq!(exit_code(&out), 1, "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("FAIL accuracy:fix.max_rel_err"),
        "{out:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn missing_results_dir_exits_two_with_advice() {
    let dir = fixture_dir("missing_dir");
    let gone = dir.join("never_generated");
    let out = doctor(&["--results", gone.to_str().unwrap()]);
    assert_eq!(exit_code(&out), 2, "{out:?}");
    let err = stderr(&out);
    assert!(err.contains("does not exist"), "{err}");
    assert!(err.contains("cargo bench"), "advice present: {err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn empty_results_dir_exits_two_with_advice() {
    let dir = fixture_dir("empty_dir");
    let out = doctor(&["--results", dir.to_str().unwrap()]);
    assert_eq!(exit_code(&out), 2, "{out:?}");
    assert!(stderr(&out).contains("no BENCH_*.json"), "{out:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_bench_json_exits_two_and_names_the_file() {
    let dir = fixture_dir("truncated");
    let baseline = seed_baseline(&dir);
    let full = bench_json(false, 1_000_000, 1e-6, 20.0);
    std::fs::write(dir.join("BENCH_fix.json"), &full[..full.len() / 2])
        .expect("truncated fixture write");
    let out = doctor(&[
        "--results",
        dir.to_str().unwrap(),
        "--baseline",
        baseline.to_str().unwrap(),
    ]);
    assert_eq!(exit_code(&out), 2, "{out:?}");
    let err = stderr(&out);
    assert!(err.contains("BENCH_fix.json"), "{err}");
    assert!(err.contains("truncated"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn missing_baseline_exits_two_and_suggests_write_baseline() {
    let dir = fixture_dir("no_baseline");
    write_fixture(&dir, false, 1_000_000, 1e-6, 20.0);
    let out = doctor(&[
        "--results",
        dir.to_str().unwrap(),
        "--baseline",
        dir.join("BASELINE.json").to_str().unwrap(),
    ]);
    assert_eq!(exit_code(&out), 2, "{out:?}");
    assert!(stderr(&out).contains("--write-baseline"), "{out:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn absent_baseline_section_exits_two_and_names_the_mode() {
    let dir = fixture_dir("no_section");
    let baseline = seed_baseline(&dir); // full-mode baseline only
    write_fixture(&dir, true, 1_000_000, 1e-6, 20.0); // quick-mode results
    let out = doctor(&[
        "--results",
        dir.to_str().unwrap(),
        "--baseline",
        baseline.to_str().unwrap(),
    ]);
    assert_eq!(exit_code(&out), 2, "{out:?}");
    let err = stderr(&out);
    assert!(err.contains("\"quick\""), "{err}");
    assert!(err.contains("--write-baseline"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unhealthy_health_report_fails_against_baseline_floors() {
    let dir = fixture_dir("health");
    // Baseline with floors derived from a clean report.
    let clean = mvasd_obsv::HealthReport {
        samples: 100,
        lse_range: Some(1000.0),
        cache_hit_rate: Some(0.5),
        ..mvasd_obsv::HealthReport::default()
    };
    let baseline = dir.join("BASELINE.json");
    let benches = vec![BenchFile {
        path: dir.join("BENCH_fix.json"),
        quick: false,
        timings: [("fix/sweep/10".to_string(), 1e6)].into_iter().collect(),
        metrics: Default::default(),
    }];
    write_baseline(&baseline, &benches, Some(&clean)).expect("seed baseline");
    assert!(
        load_baseline(&baseline)
            .expect("baseline re-loads")
            .health
            .is_some(),
        "floors recorded"
    );
    write_fixture(&dir, false, 1_000_000, 1e-6, 20.0);
    // A poisoned report: one NaN trip and a collapsed LSE range.
    let sick = mvasd_obsv::HealthReport {
        samples: 100,
        nan_poison_trips: 1,
        lse_range: Some(1.0),
        cache_hit_rate: Some(0.5),
        ..mvasd_obsv::HealthReport::default()
    };
    let health_path = dir.join("health.json");
    std::fs::write(&health_path, sick.to_json()).expect("health fixture write");
    let out = doctor(&[
        "--results",
        dir.to_str().unwrap(),
        "--baseline",
        baseline.to_str().unwrap(),
        "--health",
        health_path.to_str().unwrap(),
    ]);
    assert_eq!(exit_code(&out), 1, "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(stdout.contains("FAIL health:nan_poison_trips"), "{stdout}");
    assert!(stdout.contains("FAIL health:lse_range"), "{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn garbage_health_report_exits_two() {
    let dir = fixture_dir("bad_health");
    let baseline = seed_baseline(&dir);
    let health_path = dir.join("health.json");
    std::fs::write(&health_path, "{\"schema\":\"wrong/9\"}").expect("fixture write");
    let out = doctor(&[
        "--results",
        dir.to_str().unwrap(),
        "--baseline",
        baseline.to_str().unwrap(),
        "--health",
        health_path.to_str().unwrap(),
    ]);
    assert_eq!(exit_code(&out), 2, "{out:?}");
    assert!(stderr(&out).contains("schema"), "{out:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unknown_flag_exits_two_with_usage() {
    let out = doctor(&["--frobnicate"]);
    assert_eq!(exit_code(&out), 2, "{out:?}");
    assert!(stderr(&out).contains("usage:"), "{out:?}");
}
