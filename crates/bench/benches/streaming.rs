//! Streaming-solver benchmarks: incremental stepping, SLA early exit, and
//! warm-restart scenario sweeps. Beyond the usual text table, this bench
//! emits the machine-readable `results/BENCH_streaming.json` (schema
//! `mvasd-bench/1`, documented in `EXPERIMENTS.md`) so CI and regression
//! tooling can diff timing quantiles without scraping stdout.

use mvasd_bench::output::{results_dir, write_text};
use mvasd_bench::timing::{bench_json, quick_mode, Bench, Plan};
use mvasd_core::profile::DemandSamples;
use mvasd_core::sweep::{Scenario, ScenarioSweep};
use mvasd_queueing::mva::{run_until, ClosedSolver, MultiserverMvaSolver, StopCondition};
use mvasd_testbed::apps::{vins, AppModel};

/// Spline-ready demand samples read straight off the app model's curves.
fn samples_of(app: &AppModel, levels: &[u64]) -> DemandSamples {
    let levels: Vec<f64> = levels.iter().map(|&l| l as f64).collect();
    DemandSamples {
        station_names: app.station_names(),
        server_counts: app.server_counts(),
        think_time: app.think_time,
        levels: levels.clone(),
        demands: (0..app.stations.len())
            .map(|k| {
                levels
                    .iter()
                    .map(|&l| app.stations[k].curve.at(l))
                    .collect()
            })
            .collect(),
    }
}

fn main() {
    let app = vins::model();
    let n_cap = if quick_mode() { 200 } else { 1500 };

    // Early exit: an SLA query answers as soon as its stop condition fires
    // instead of sweeping the full population range.
    let mut early = Bench::new("streaming_early_exit_vins");
    let solver = MultiserverMvaSolver::new(app.closed_network_at(n_cap as f64).unwrap());
    early.measure(&format!("full_sweep/{n_cap}"), Plan::default(), || {
        solver.solve(n_cap).unwrap().points.len()
    });
    let sla = [StopCondition::SlaResponseTime { max_response: 2.0 }];
    early.measure("sla_early_exit", Plan::default(), || {
        let mut iter = solver.start().unwrap();
        run_until(iter.as_mut(), &sla, n_cap).unwrap().steps
    });
    let saturation = [StopCondition::BottleneckSaturation { utilization: 0.9 }];
    early.measure("saturation_early_exit", Plan::default(), || {
        let mut iter = solver.start().unwrap();
        run_until(iter.as_mut(), &saturation, n_cap).unwrap().steps
    });
    println!("{}", early.report());

    // Warm restarts: re-running scenarios against a live sweep is pure cache
    // replay; a cold sweep pays the full solve each time.
    let mut sweeps = Bench::new("scenario_sweep_vins");
    let scenarios = [
        Scenario::new("baseline").cap(n_cap / 2),
        Scenario::new("fast-db").scale_demands(0.9).cap(n_cap / 2),
    ];
    let samples = samples_of(&app, &vins::STANDARD_LEVELS);
    sweeps.measure("cold_sweep", Plan::heavy(), || {
        let mut sweep = ScenarioSweep::new(samples.clone());
        sweep.run(&scenarios).unwrap().steps_computed
    });
    let mut warm = ScenarioSweep::new(samples.clone());
    warm.run(&scenarios).unwrap();
    sweeps.measure("warm_replay", Plan::default(), || {
        warm.run(&scenarios).unwrap().steps_computed
    });
    let stats = warm.stats();
    println!("{}", sweeps.report());
    println!(
        "sweep stats: computed {} of {} demanded steps (saved {}), {} hits / {} misses\n",
        stats.steps_computed,
        stats.steps_demanded,
        stats.steps_saved(),
        stats.cache_hits,
        stats.cache_misses
    );

    let json = bench_json(&[&early, &sweeps]);
    let path = write_text(&results_dir(), "BENCH_streaming.json", &json)
        .expect("results directory is writable");
    println!("wrote {}", path.display());
}
