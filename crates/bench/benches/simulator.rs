//! Discrete-event simulator throughput: simulated load tests per second of
//! wall clock at the paper's scales.

use mvasd_bench::timing::{Bench, Plan};
use mvasd_queueing::mva::{run_until, ClosedSolver, StopCondition};
use mvasd_simnet::{SimConfig, Simulation};
use mvasd_testbed::apps::{jpetstore, vins};
use mvasd_testbed::solver::SimSolver;

fn main() {
    let mut g = Bench::new("simulated_load_test_60s");
    for (name, app, users) in [
        ("vins_50_users", vins::model(), 50usize),
        ("vins_1500_users", vins::model(), 1500),
        ("jpetstore_210_users", jpetstore::model(), 210),
    ] {
        let net = app.sim_network(users).unwrap();
        g.measure(name, Plan::heavy(), || {
            Simulation::new(
                net.clone(),
                SimConfig {
                    customers: users,
                    horizon: 60.0,
                    warmup: 10.0,
                    seed: 42,
                    ..SimConfig::default()
                },
            )
            .unwrap()
            .run()
            .unwrap()
        });
    }
    println!("{}", g.report());

    // Streaming sweep with a plateau cut-off: the DES solver stops the
    // population sweep once throughput flattens, instead of simulating
    // every population up to the cap.
    let mut g = Bench::new("des_population_sweep_early_exit");
    let app = vins::model();
    let sim = SimSolver::new(
        app.sim_network(200).unwrap(),
        SimConfig {
            horizon: 60.0,
            warmup: 10.0,
            seed: 42,
            ..SimConfig::default()
        },
    );
    let plateau = [StopCondition::ThroughputPlateau { epsilon: 1e-3 }];
    g.measure("plateau_early_exit_cap_200", Plan::light(3), || {
        let mut iter = sim.start().unwrap();
        run_until(iter.as_mut(), &plateau, 200).unwrap().steps
    });
    let mut iter = sim.start().unwrap();
    let steps = run_until(iter.as_mut(), &plateau, 200).unwrap().steps;
    println!("{}", g.report());
    println!("plateau reached after {steps} of 200 populations\n");
}
