//! Discrete-event simulator throughput: simulated load tests per second of
//! wall clock at the paper's scales.

use mvasd_bench::timing::{Bench, Plan};
use mvasd_simnet::{SimConfig, Simulation};
use mvasd_testbed::apps::{jpetstore, vins};

fn main() {
    let mut g = Bench::new("simulated_load_test_60s");
    for (name, app, users) in [
        ("vins_50_users", vins::model(), 50usize),
        ("vins_1500_users", vins::model(), 1500),
        ("jpetstore_210_users", jpetstore::model(), 210),
    ] {
        let net = app.sim_network(users).unwrap();
        g.measure(name, Plan::heavy(), || {
            Simulation::new(
                net.clone(),
                SimConfig {
                    customers: users,
                    horizon: 60.0,
                    warmup: 10.0,
                    seed: 42,
                    ..SimConfig::default()
                },
            )
            .unwrap()
            .run()
            .unwrap()
        });
    }
    println!("{}", g.report());
}
