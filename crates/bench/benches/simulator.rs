//! Discrete-event simulator throughput: simulated load tests per second of
//! wall clock at the paper's scales.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mvasd_simnet::{SimConfig, Simulation};
use mvasd_testbed::apps::{jpetstore, vins};

fn bench_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulated_load_test_60s");
    g.sample_size(10);
    for (name, app, users) in [
        ("vins_50_users", vins::model(), 50usize),
        ("vins_1500_users", vins::model(), 1500),
        ("jpetstore_210_users", jpetstore::model(), 210),
    ] {
        let net = app.sim_network(users).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(name), &users, |b, &users| {
            b.iter(|| {
                Simulation::new(net.clone(), SimConfig {
                    customers: users,
                    horizon: 60.0,
                    warmup: 10.0,
                    seed: 42,
                    ..SimConfig::default()
                })
                .unwrap()
                .run()
                .unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
