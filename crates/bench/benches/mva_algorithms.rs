//! Solver benchmarks: the MVA family on paper-scale (12-station, 3-tier,
//! 16-core) networks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mvasd_core::algorithm::{mvasd, mvasd_single_server};
use mvasd_core::profile::{DemandAxis, DemandSamples, InterpolationKind, ServiceDemandProfile};
use mvasd_queueing::mva::{exact_mva, multiserver_mva, schweitzer_mva, SchweitzerOptions};
use mvasd_queueing::network::ClosedNetwork;
use mvasd_testbed::apps::{jpetstore, vins};

fn vins_network(n: f64) -> ClosedNetwork {
    vins::model().closed_network_at(n).unwrap()
}

fn vins_profile() -> ServiceDemandProfile {
    let app = vins::model();
    let levels: Vec<f64> = vins::STANDARD_LEVELS.iter().map(|&l| l as f64).collect();
    let samples = DemandSamples {
        station_names: app.station_names(),
        server_counts: app.server_counts(),
        think_time: app.think_time,
        levels: levels.clone(),
        demands: (0..app.stations.len())
            .map(|k| levels.iter().map(|&l| app.stations[k].curve.at(l)).collect())
            .collect(),
    };
    ServiceDemandProfile::from_samples(
        &samples,
        InterpolationKind::CubicNotAKnot,
        DemandAxis::Concurrency,
    )
    .unwrap()
}

fn bench_solvers(c: &mut Criterion) {
    let mut g = c.benchmark_group("solvers_vins_12_stations");
    // The convolution solver at N = 1500 costs ~1 s per solve; keep the
    // bench wall-clock sane.
    g.sample_size(10);
    for n in [100usize, 400, 1500] {
        let net = vins_network(n as f64);
        g.bench_with_input(BenchmarkId::new("exact_mva", n), &n, |b, &n| {
            b.iter(|| exact_mva(&net, n).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("multiserver_mva", n), &n, |b, &n| {
            b.iter(|| multiserver_mva(&net, n).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("schweitzer", n), &n, |b, &n| {
            b.iter(|| schweitzer_mva(&net, n, SchweitzerOptions::default()).unwrap())
        });
    }
    g.finish();
}

fn bench_mvasd(c: &mut Criterion) {
    let mut g = c.benchmark_group("mvasd");
    let profile = vins_profile();
    // VINS: CPUs stay below the quasi-static switch => pure carried
    // double-double recursion.
    for n in [400usize, 1500] {
        g.bench_with_input(BenchmarkId::new("vins_carried", n), &n, |b, &n| {
            b.iter(|| mvasd(&profile, n).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("vins_single_server", n), &n, |b, &n| {
            b.iter(|| mvasd_single_server(&profile, n).unwrap())
        });
    }
    // JPetStore: the DB CPU saturates => quasi-static convolution phase.
    let app = jpetstore::model();
    let levels: Vec<f64> = jpetstore::STANDARD_LEVELS.iter().map(|&l| l as f64).collect();
    let samples = DemandSamples {
        station_names: app.station_names(),
        server_counts: app.server_counts(),
        think_time: app.think_time,
        levels: levels.clone(),
        demands: (0..app.stations.len())
            .map(|k| levels.iter().map(|&l| app.stations[k].curve.at(l)).collect())
            .collect(),
    };
    let jp = ServiceDemandProfile::from_samples(
        &samples,
        InterpolationKind::CubicNotAKnot,
        DemandAxis::Concurrency,
    )
    .unwrap();
    g.sample_size(10);
    g.bench_function("jpetstore_quasi_static_210", |b| {
        b.iter(|| mvasd(&jp, 210).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_solvers, bench_mvasd);
criterion_main!(benches);
