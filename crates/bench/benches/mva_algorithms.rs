//! Solver benchmarks: the MVA family on paper-scale (12-station, 3-tier,
//! 16-core) networks, all driven through the `ClosedSolver` trait.

use mvasd_bench::timing::{Bench, Plan};
use mvasd_core::profile::{DemandAxis, DemandSamples, InterpolationKind, ServiceDemandProfile};
use mvasd_core::solver::{MvasdSingleServerSolver, MvasdSolver};
use mvasd_queueing::mva::{
    run_until, ClosedSolver, ExactMvaSolver, MultiserverMvaSolver, SchweitzerSolver, StopCondition,
};
use mvasd_queueing::network::ClosedNetwork;
use mvasd_testbed::apps::{jpetstore, vins, AppModel};

fn vins_network(n: f64) -> ClosedNetwork {
    vins::model().closed_network_at(n).unwrap()
}

fn profile_of(app: &AppModel, levels: &[u64]) -> ServiceDemandProfile {
    let levels: Vec<f64> = levels.iter().map(|&l| l as f64).collect();
    let samples = DemandSamples {
        station_names: app.station_names(),
        server_counts: app.server_counts(),
        think_time: app.think_time,
        levels: levels.clone(),
        demands: (0..app.stations.len())
            .map(|k| {
                levels
                    .iter()
                    .map(|&l| app.stations[k].curve.at(l))
                    .collect()
            })
            .collect(),
    };
    ServiceDemandProfile::from_samples(
        &samples,
        InterpolationKind::CubicNotAKnot,
        DemandAxis::Concurrency,
    )
    .unwrap()
}

fn main() {
    let mut g = Bench::new("solvers_vins_12_stations");
    // The convolution path at N = 1500 costs ~1 s per solve; keep the
    // bench wall-clock sane with the heavy plan.
    for n in [100usize, 400, 1500] {
        let solvers: Vec<Box<dyn ClosedSolver>> = vec![
            Box::new(ExactMvaSolver::new(vins_network(n as f64))),
            Box::new(MultiserverMvaSolver::new(vins_network(n as f64))),
            Box::new(SchweitzerSolver::new(vins_network(n as f64))),
        ];
        for s in &solvers {
            g.measure(&format!("{}/{n}", s.name()), Plan::heavy(), || {
                s.solve(n).unwrap()
            });
        }
    }
    println!("{}", g.report());

    let mut g = Bench::new("mvasd");
    // VINS: CPUs stay below the quasi-static switch => pure carried
    // double-double recursion.
    let vp = profile_of(&vins::model(), &vins::STANDARD_LEVELS);
    for n in [400usize, 1500] {
        let carried = MvasdSolver::new(vp.clone());
        g.measure(&format!("vins_carried/{n}"), Plan::heavy(), || {
            carried.solve(n).unwrap()
        });
        let single = MvasdSingleServerSolver::new(vp.clone());
        g.measure(&format!("vins_single_server/{n}"), Plan::heavy(), || {
            single.solve(n).unwrap()
        });
    }
    // JPetStore: the DB CPU saturates => quasi-static convolution phase.
    let jp = MvasdSolver::new(profile_of(&jpetstore::model(), &jpetstore::STANDARD_LEVELS));
    g.measure("jpetstore_quasi_static_210", Plan::heavy(), || {
        jp.solve(210).unwrap()
    });
    // A deep saturating sweep with per-step demand changes: every
    // post-switch population rebuilds the carried convolution workspace in
    // O(K·n) (the pre-workspace path re-solved from scratch at O(K·n²)).
    let sat_samples = DemandSamples {
        station_names: vec!["db-cpu16".into(), "disk".into()],
        server_counts: vec![16, 1],
        think_time: 1.0,
        levels: vec![1.0, 750.0, 1500.0],
        demands: vec![vec![0.165, 0.160, 0.158], vec![0.004, 0.004, 0.004]],
    };
    let sat_profile = ServiceDemandProfile::from_samples(
        &sat_samples,
        InterpolationKind::CubicNotAKnot,
        DemandAxis::Concurrency,
    )
    .unwrap();
    let sat = MvasdSolver::new(sat_profile);
    // Seconds per call even with the carried workspace (the interpolated
    // demands force an O(K·n) rebuild every step), so sample it sparsely.
    g.measure(
        "saturating_quasi_static_1500",
        Plan {
            warmup: 0,
            samples: 3,
            iters: 1,
        },
        || sat.solve(1500).unwrap(),
    );
    println!("{}", g.report());

    // Streaming early exit: an SLA query against the same model answers as
    // soon as the response-time ceiling is crossed, instead of sweeping the
    // full population range. The step counts make the saving concrete.
    let mut g = Bench::new("streaming_early_exit_vins_1500");
    let solver = MultiserverMvaSolver::new(vins_network(1500.0));
    let sla = [StopCondition::SlaResponseTime { max_response: 2.0 }];
    g.measure("full_sweep_1500", Plan::light(20), || {
        solver.solve(1500).unwrap().points.len()
    });
    g.measure("sla_early_exit", Plan::light(20), || {
        let mut iter = solver.start().unwrap();
        run_until(iter.as_mut(), &sla, 1500).unwrap().steps
    });
    let full = solver.solve(1500).unwrap().points.len();
    let mut iter = solver.start().unwrap();
    let early = run_until(iter.as_mut(), &sla, 1500).unwrap().steps;
    println!("{}", g.report());
    println!(
        "steps: full sweep {full}, SLA early exit {early} (saved {})\n",
        full - early
    );
}
