//! Batched log-sum-exp convolution kernel vs the scalar running-maximum
//! oracle, on real VINS-shaped log-domain columns.
//!
//! The workload is the Buzen normalization-constant fold of the paper-scale
//! VINS network: 12 log-domain factor columns (three 16-core CPUs with
//! their multi-server service-rate products, nine single-server ramps),
//! convolved pairwise up to N = 1500. Because the running G column is
//! log-concave and the factor ramps are steep (`ln 0.055 ≈ −2.9` nats per
//! step at the db CPU), every convolution cell is sharply peaked — the
//! shape [`conv_cell`]'s block pruning is built for. Two cost models:
//!
//! - `batched_fold/N` / `batched_cell/N` — [`kernel::conv_cell`] with one
//!   warm [`CellScratch`]: reversed-stride add, blocked 4-lane max, pruned
//!   4-lane exp-accumulate.
//! - `scalar_fold/N` / `scalar_cell/N` — [`kernel::scalar_reference`], the
//!   historical fused single pass: one serial libm `exp` per element.
//!
//! Beyond the text table the bench emits `results/BENCH_lse_kernel.json`
//! (schema `mvasd-bench/1` plus an `lse_kernel` metrics block, documented
//! in `EXPERIMENTS.md`): both speedups and the worst absolute deviation of
//! the batched fold from the scalar fold, which doubles as a standing
//! equivalence check on realistic columns.

use mvasd_bench::output::{results_dir, write_text};
use mvasd_bench::timing::{bench_json, quick_mode, Bench, Plan};
use mvasd_obsv as obsv;
use mvasd_queueing::mva::kernel::{self, CellScratch};

/// The 12-station VINS demand sheet (same shape and numbers as the
/// convolution bench): `(servers, demand)` per station.
const VINS: [(usize, f64); 12] = [
    (16, 0.004),
    (1, 0.0085),
    (1, 0.0012),
    (1, 0.0018),
    (16, 0.012),
    (1, 0.0022),
    (1, 0.0015),
    (1, 0.0015),
    (16, 0.055),
    (1, 0.0098),
    (1, 0.0014),
    (1, 0.0012),
];

/// Log-domain Buzen factor columns for the VINS stations:
/// `f(j) = j·ln D − Σ_{k=1..j} ln min(k, c)` — a descending ramp for a
/// single server, ramp-plus-factorial-correction for a multi-server.
fn factor_columns(len: usize) -> Vec<Vec<f64>> {
    VINS.iter()
        .map(|&(servers, demand)| {
            let ln_d = demand.ln();
            let mut col = Vec::with_capacity(len);
            let mut acc = 0.0;
            for j in 0..len {
                if j > 0 {
                    acc += ln_d - (j.min(servers) as f64).ln();
                }
                col.push(acc);
            }
            col
        })
        .collect()
}

/// Folds all factor columns into the running G column with the batched
/// kernel: `g'(n) = conv_cell(g, f, n)` for every population, every
/// station — the exact cell population the workspace solver issues.
fn batched_fold(
    cols: &[Vec<f64>],
    n_max: usize,
    g: &mut Vec<f64>,
    next: &mut Vec<f64>,
    scratch: &mut CellScratch,
) -> f64 {
    g.clear();
    g.extend_from_slice(&cols[0][..=n_max]);
    for col in &cols[1..] {
        next.clear();
        for n in 0..=n_max {
            next.push(kernel::conv_cell(g, col, n, scratch));
        }
        std::mem::swap(g, next);
    }
    g[n_max]
}

/// The same fold through the scalar running-maximum oracle.
fn scalar_fold(cols: &[Vec<f64>], n_max: usize, g: &mut Vec<f64>, next: &mut Vec<f64>) -> f64 {
    g.clear();
    g.extend_from_slice(&cols[0][..=n_max]);
    for col in &cols[1..] {
        next.clear();
        for n in 0..=n_max {
            next.push(kernel::scalar_reference(g, col, n));
        }
        std::mem::swap(g, next);
    }
    g[n_max]
}

fn main() {
    let n_cap = if quick_mode() { 200 } else { 1500 };
    let cols = factor_columns(n_cap + 1);
    let mut g = Vec::with_capacity(n_cap + 1);
    let mut next = Vec::with_capacity(n_cap + 1);
    let mut scratch = CellScratch::new();
    scratch.ensure(n_cap + 1);

    let mut b = Bench::new("lse_kernel_vins");
    b.measure(&format!("batched_fold/{n_cap}"), Plan::default(), || {
        batched_fold(&cols, n_cap, &mut g, &mut next, &mut scratch)
    });
    b.measure(&format!("scalar_fold/{n_cap}"), Plan::default(), || {
        scalar_fold(&cols, n_cap, &mut g, &mut next)
    });

    // Single-cell timing at the deepest population: the penultimate G
    // column (11 stations folded) convolved with the db-disk ramp, the
    // largest cell the fold ever issues.
    let penultimate = &cols[..cols.len() - 1];
    batched_fold(penultimate, n_cap, &mut g, &mut next, &mut scratch);
    let g_col = g.clone();
    let last = cols.last().expect("12 columns");
    b.measure(&format!("batched_cell/{n_cap}"), Plan::light(64), || {
        kernel::conv_cell(&g_col, last, n_cap, &mut scratch)
    });
    b.measure(&format!("scalar_cell/{n_cap}"), Plan::light(64), || {
        kernel::scalar_reference(&g_col, last, n_cap)
    });
    println!("{}", b.report());

    let results = b.results();
    let find = |name: &str| {
        results
            .iter()
            .find(|m| m.name == name)
            .expect("measured above")
    };
    let fold_speedup = find(&format!("scalar_fold/{n_cap}")).median().as_secs_f64()
        / find(&format!("batched_fold/{n_cap}"))
            .median()
            .as_secs_f64()
            .max(1e-12);
    let cell_speedup = find(&format!("scalar_cell/{n_cap}")).median().as_secs_f64()
        / find(&format!("batched_cell/{n_cap}"))
            .median()
            .as_secs_f64()
            .max(1e-12);
    println!("batched kernel speedup over scalar at n={n_cap}: fold {fold_speedup:.1}x, cell {cell_speedup:.1}x");

    // Standing equivalence check on the realistic columns: the two folds
    // must agree everywhere to far better than the documented ulp budget
    // (the scale here is |ln G| ≈ a few thousand nats at N=1500).
    let batched_g = {
        batched_fold(&cols, n_cap, &mut g, &mut next, &mut scratch);
        g.clone()
    };
    scalar_fold(&cols, n_cap, &mut g, &mut next);
    let max_abs_dev = batched_g
        .iter()
        .zip(g.iter())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    assert!(
        max_abs_dev < 1e-9,
        "batched fold deviates from scalar by {max_abs_dev:.3e} nats"
    );
    println!("max |ln G| deviation batched vs scalar: {max_abs_dev:.2e} nats");

    // Splice the kernel metrics block into the standard schema and check
    // the result still parses before committing it to disk.
    let json = bench_json(&[&b]);
    let trimmed = json.trim_end().trim_end_matches('}');
    let json = format!(
        "{trimmed},\"lse_kernel\":{{\"stations\":{},\"n\":{n_cap},\
         \"max_abs_dev_nats\":{max_abs_dev:.3e},\
         \"speedup_batched_vs_scalar\":{fold_speedup:.2},\
         \"cell_speedup_batched_vs_scalar\":{cell_speedup:.2}}}}}\n",
        VINS.len()
    );
    obsv::json::parse(&json).expect("spliced report is valid JSON");
    let path =
        write_text(&results_dir(), "BENCH_lse_kernel.json", &json).expect("results dir writable");
    println!("wrote {}", path.display());
}
