//! Multiclass streaming core vs per-step lattice recompute, and the
//! Arrival-Theorem lattice vs the Method of Moments backend.
//!
//! The workload is the calibrated three-class VINS mix (renew / browse /
//! api; see `mvasd_testbed::apps::vins::workload_mix`). Three cost models
//! are compared:
//!
//! - `carried_walk/N` — [`MulticlassIter`]: the carried per-class
//!   workspace advances one customer per step, filling only the new
//!   lattice slab, so the whole path costs one full-lattice fill total.
//! - `full_lattice_per_step/N` — the naive streaming emulation: at every
//!   population prefix along the same path, re-run the full-lattice
//!   recursion ([`multiclass_mva`]) from scratch.
//! - `mom_solve/N` — [`MomSolver`]: normalizing-constant recurrences in
//!   the log domain, an arithmetically independent exact backend.
//!
//! Beyond the text table the bench emits `results/BENCH_multiclass.json`
//! (schema `mvasd-bench/1` plus a `multiclass` block, documented in
//! `EXPERIMENTS.md`): the carried-vs-recompute speedup and the max
//! relative per-step deviation between the two exact backends.

use mvasd_bench::output::{results_dir, write_text};
use mvasd_bench::timing::{bench_json, quick_mode, Bench, Plan};
use mvasd_obsv as obsv;
use mvasd_queueing::mva::{
    multiclass_mva, ClassSpec, MomIter, MomSolver, MulticlassIter, MulticlassStepper, Workload,
};
use mvasd_testbed::apps::vins;

/// Walks the carried workspace over the full path; returns the final
/// aggregate throughput.
fn carried_walk(workload: &Workload) -> f64 {
    let mut iter = MulticlassIter::new(workload).expect("iterator");
    let mut last = 0.0;
    while iter.steps_done() < iter.steps_total() {
        last = iter.step_classes().expect("step").total_throughput();
    }
    last
}

/// The recompute baseline: a fresh full-lattice solve at every population
/// prefix of `path` (each entry is the per-class population vector of one
/// streamed step).
fn full_lattice_per_step(workload: &Workload, path: &[Vec<usize>]) -> f64 {
    let kinds = workload.station_kinds().to_vec();
    let mut last = 0.0;
    for pops in path {
        let classes: Vec<ClassSpec> = workload
            .classes()
            .iter()
            .zip(pops)
            .map(|(c, &population)| ClassSpec {
                population,
                ..c.clone()
            })
            .collect();
        let sol = multiclass_mva(&classes, &kinds).expect("lattice solve");
        last = sol.classes.iter().map(|c| c.throughput).sum();
    }
    last
}

/// Max relative per-step deviation between the carried lattice walk and
/// the Method of Moments walk, over every class throughput and response.
fn mom_vs_lattice_max_rel_err(workload: &Workload) -> f64 {
    let mut lat = MulticlassIter::new(workload).expect("lattice iterator");
    let mut mom = MomIter::new(workload).expect("mom iterator");
    let mut worst = 0.0f64;
    while lat.steps_done() < lat.steps_total() {
        let a = lat.step_classes().expect("lattice step");
        let b = mom.step_classes().expect("mom step");
        for (ca, cb) in a.classes.iter().zip(&b.classes) {
            if ca.population > 0 {
                worst = worst
                    .max((ca.throughput - cb.throughput).abs() / ca.throughput.abs().max(1e-300));
                worst =
                    worst.max((ca.response - cb.response).abs() / ca.response.abs().max(1e-300));
            }
        }
    }
    worst
}

fn main() {
    let total = if quick_mode() { 30 } else { 54 };
    let workload = vins::workload_mix(total).expect("VINS mix");
    let nclasses = workload.classes().len();

    // Record the population path once so the recompute baseline solves
    // exactly the prefixes the streamed walk visits.
    let mut iter = MulticlassIter::new(&workload).expect("iterator");
    let mut path = Vec::with_capacity(total);
    while iter.steps_done() < iter.steps_total() {
        path.push(iter.step_classes().expect("step").populations.clone());
    }

    let mut b = Bench::new("multiclass_vins_mix");
    b.measure(&format!("carried_walk/{total}"), Plan::default(), || {
        carried_walk(&workload)
    });
    b.measure(
        &format!("full_lattice_per_step/{total}"),
        Plan {
            warmup: 0,
            samples: 3,
            iters: 1,
        },
        || full_lattice_per_step(&workload, &path),
    );
    b.measure(&format!("mom_solve/{total}"), Plan::default(), || {
        MomSolver::new(workload.clone())
            .solve_classes()
            .expect("mom solve")
            .classes
            .len()
    });
    println!("{}", b.report());

    let results = b.results();
    let find = |name: &str| {
        results
            .iter()
            .find(|m| m.name == name)
            .expect("measured above")
    };
    let carried = find(&format!("carried_walk/{total}")).median();
    let recompute = find(&format!("full_lattice_per_step/{total}")).median();
    let speedup = recompute.as_secs_f64() / carried.as_secs_f64().max(1e-12);
    println!("carried-workspace speedup over per-step recompute at n={total}: {speedup:.1}x");

    let err = mom_vs_lattice_max_rel_err(&workload);
    println!(
        "max per-step relative deviation, MoM vs lattice oracle: {err:.2e} \
         ({nclasses} classes, {total} customers)"
    );

    // Splice the accuracy block into the standard schema and check the
    // result still parses before committing it to disk.
    let json = bench_json(&[&b]);
    let trimmed = json.trim_end().trim_end_matches('}');
    let json = format!(
        "{trimmed},\"multiclass\":{{\"classes\":{nclasses},\"total\":{total},\
         \"speedup_carried_vs_recompute\":{speedup:.2},\
         \"mom_vs_lattice_max_rel_err\":{err:.3e}}}}}\n"
    );
    obsv::json::parse(&json).expect("spliced report is valid JSON");
    let path =
        write_text(&results_dir(), "BENCH_multiclass.json", &json).expect("results dir writable");
    println!("wrote {}", path.display());
}
