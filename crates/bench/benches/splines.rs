//! Interpolation benchmarks: construction and evaluation cost per family.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mvasd_numerics::interp::{
    BoundaryCondition, CubicSpline, Interpolant, LinearInterp, NewtonPolynomial, PchipInterp,
    SmoothingSpline,
};

fn knots(n: usize) -> (Vec<f64>, Vec<f64>) {
    let xs: Vec<f64> = (0..n).map(|i| 1.0 + i as f64 * (1500.0 / n as f64)).collect();
    let ys: Vec<f64> = xs.iter().map(|&x| 0.01 * (1.0 + 0.25 * (-x / 80.0f64).exp())).collect();
    (xs, ys)
}

fn bench_construction(c: &mut Criterion) {
    let mut g = c.benchmark_group("interpolant_construction");
    for n in [7usize, 50, 500] {
        let (xs, ys) = knots(n);
        g.bench_with_input(BenchmarkId::new("cubic_not_a_knot", n), &n, |b, _| {
            b.iter(|| CubicSpline::new(&xs, &ys, BoundaryCondition::NotAKnot).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("pchip", n), &n, |b, _| {
            b.iter(|| PchipInterp::new(&xs, &ys).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("linear", n), &n, |b, _| {
            b.iter(|| LinearInterp::new(&xs, &ys).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("smoothing", n), &n, |b, _| {
            b.iter(|| SmoothingSpline::fit(&xs, &ys, 1e-4).unwrap())
        });
        if n <= 50 {
            g.bench_with_input(BenchmarkId::new("newton_poly", n), &n, |b, _| {
                b.iter(|| NewtonPolynomial::new(&xs, &ys).unwrap())
            });
        }
    }
    g.finish();
}

fn bench_evaluation(c: &mut Criterion) {
    let mut g = c.benchmark_group("interpolant_eval_1500_points");
    let (xs, ys) = knots(9);
    let spline = CubicSpline::new(&xs, &ys, BoundaryCondition::NotAKnot).unwrap();
    let pchip = PchipInterp::new(&xs, &ys).unwrap();
    let linear = LinearInterp::new(&xs, &ys).unwrap();
    g.bench_function("cubic", |b| {
        b.iter(|| (1..=1500).map(|n| spline.eval(n as f64)).sum::<f64>())
    });
    g.bench_function("pchip", |b| {
        b.iter(|| (1..=1500).map(|n| pchip.eval(n as f64)).sum::<f64>())
    });
    g.bench_function("linear", |b| {
        b.iter(|| (1..=1500).map(|n| linear.eval(n as f64)).sum::<f64>())
    });
    g.finish();
}

criterion_group!(benches, bench_construction, bench_evaluation);
criterion_main!(benches);
