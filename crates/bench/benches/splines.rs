//! Interpolation benchmarks: construction and evaluation cost per family,
//! plus the end-to-end profile-rebuild cost of scenario sweeps.

use mvasd_bench::timing::{Bench, Plan};
use mvasd_core::profile::DemandSamples;
use mvasd_core::sweep::{Scenario, ScenarioSweep};
use mvasd_numerics::interp::{
    BoundaryCondition, CubicSpline, Interpolant, LinearInterp, NewtonPolynomial, PchipInterp,
    SmoothingSpline,
};

fn knots(n: usize) -> (Vec<f64>, Vec<f64>) {
    let xs: Vec<f64> = (0..n)
        .map(|i| 1.0 + i as f64 * (1500.0 / n as f64))
        .collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|&x| 0.01 * (1.0 + 0.25 * (-x / 80.0f64).exp()))
        .collect();
    (xs, ys)
}

fn main() {
    let mut g = Bench::new("interpolant_construction");
    for n in [7usize, 50, 500] {
        let (xs, ys) = knots(n);
        let plan = Plan::light(if n <= 50 { 100 } else { 10 });
        g.measure(&format!("cubic_not_a_knot/{n}"), plan, || {
            CubicSpline::new(&xs, &ys, BoundaryCondition::NotAKnot).unwrap()
        });
        g.measure(&format!("pchip/{n}"), plan, || {
            PchipInterp::new(&xs, &ys).unwrap()
        });
        g.measure(&format!("linear/{n}"), plan, || {
            LinearInterp::new(&xs, &ys).unwrap()
        });
        g.measure(&format!("smoothing/{n}"), plan, || {
            SmoothingSpline::fit(&xs, &ys, 1e-4).unwrap()
        });
        if n <= 50 {
            g.measure(&format!("newton_poly/{n}"), plan, || {
                NewtonPolynomial::new(&xs, &ys).unwrap()
            });
        }
    }
    println!("{}", g.report());

    let mut g = Bench::new("interpolant_eval_1500_points");
    let (xs, ys) = knots(9);
    let spline = CubicSpline::new(&xs, &ys, BoundaryCondition::NotAKnot).unwrap();
    let pchip = PchipInterp::new(&xs, &ys).unwrap();
    let linear = LinearInterp::new(&xs, &ys).unwrap();
    let plan = Plan::light(20);
    g.measure("cubic", plan, || {
        (1..=1500).map(|n| spline.eval(n as f64)).sum::<f64>()
    });
    g.measure("pchip", plan, || {
        (1..=1500).map(|n| pchip.eval(n as f64)).sum::<f64>()
    });
    g.measure("linear", plan, || {
        (1..=1500).map(|n| linear.eval(n as f64)).sum::<f64>()
    });
    println!("{}", g.report());

    // Each *distinct* scenario rebuilds its interpolants once and then the
    // engine memoizes the sweep; repeat scenarios are pure cache hits.
    let mut g = Bench::new("scenario_sweep_6_demand_scalings");
    let (xs, ys) = knots(7);
    let base = DemandSamples {
        station_names: vec!["db".into()],
        server_counts: vec![1],
        think_time: 1.0,
        levels: xs,
        demands: vec![ys],
    };
    let scenarios: Vec<Scenario> = (0..6)
        .map(|i| Scenario::new(&format!("x{i}")).scale_demands(0.8 + 0.08 * i as f64))
        .collect();
    g.measure("cold_cache_cap_300", Plan::light(10), || {
        let mut sweep = ScenarioSweep::new(base.clone()).default_cap(300);
        sweep.run(&scenarios).unwrap().steps_computed
    });
    let mut warm = ScenarioSweep::new(base.clone()).default_cap(300);
    warm.run(&scenarios).unwrap();
    g.measure("warm_cache_cap_300", Plan::light(10), || {
        warm.run(&scenarios).unwrap().steps_computed
    });
    println!("{}", g.report());
}
