//! Incremental convolution workspace vs the from-scratch reference path.
//!
//! The workload is the paper-scale VINS network: 12 stations across three
//! tiers, each tier fronted by a 16-core CPU, swept to N = 1500 (the
//! paper's deepest concurrency). Two cost models are compared:
//!
//! - `workspace_sweep/N` — one [`ConvWorkspace`] carried across the whole
//!   sweep: `O(K·n)` per step, zero steady-state allocation.
//! - `per_step_scratch_sweep/N` — the pre-workspace quasi-static path:
//!   every population rebuilt from scratch (`O(K·n²)` per step), exactly
//!   what `PopulationRecursion::quasi_static_step` used to do.
//!
//! Beyond the text table the bench emits
//! `results/BENCH_convolution.json` (schema `mvasd-bench/1`, documented in
//! `EXPERIMENTS.md`) so CI can diff the quantiles and the recorded speedup
//! stays auditable.

use mvasd_bench::output::{results_dir, write_text};
use mvasd_bench::timing::{bench_json, quick_mode, Bench, Plan};
use mvasd_queueing::mva::{reference_solve_at, ConvWorkspace, LdStation, RateFunction};

/// The 12-station, three-tier, 16-core VINS-scale network (same shape and
/// demands as the `paper_scale_network_respects_bottleneck_law` test).
fn vins_stations() -> Vec<LdStation> {
    let spec: [(&str, usize, f64); 12] = [
        ("load-cpu", 16, 0.004),
        ("load-disk", 1, 0.0085),
        ("load-tx", 1, 0.0012),
        ("load-rx", 1, 0.0018),
        ("app-cpu", 16, 0.012),
        ("app-disk", 1, 0.0022),
        ("app-tx", 1, 0.0015),
        ("app-rx", 1, 0.0015),
        ("db-cpu", 16, 0.055),
        ("db-disk", 1, 0.0098),
        ("db-tx", 1, 0.0014),
        ("db-rx", 1, 0.0012),
    ];
    spec.iter()
        .map(|&(name, c, d)| {
            let rate = if c > 1 {
                RateFunction::MultiServer(c)
            } else {
                RateFunction::SingleServer
            };
            LdStation::new(name, d, rate)
        })
        .collect()
}

/// Marginal limits: track the full `p(0..C−1)` snapshot of every 16-core
/// CPU (what the eq. 10 correction consumes), nothing else.
fn marginal_limits() -> Vec<usize> {
    vins_stations()
        .iter()
        .map(|s| match s.rate {
            RateFunction::MultiServer(c) if c > 1 => c,
            _ => 0,
        })
        .collect()
}

fn workspace_sweep(stations: &[LdStation], limits: &[usize], n_max: usize) -> f64 {
    let mut ws = ConvWorkspace::new(stations, 1.0, limits).expect("valid VINS network");
    ws.reserve(n_max);
    for _ in 0..n_max {
        ws.advance().expect("sweep within capacity");
    }
    ws.throughput()
}

fn per_step_scratch_sweep(stations: &[LdStation], limits: &[usize], n_max: usize) -> f64 {
    let mut x = 0.0;
    for n in 1..=n_max {
        let (xn, _, _) = reference_solve_at(stations, 1.0, n, limits).expect("valid VINS network");
        x = xn;
    }
    x
}

fn main() {
    let stations = vins_stations();
    let limits = marginal_limits();
    let n_cap = if quick_mode() { 200 } else { 1500 };
    let n_mid = if quick_mode() { 120 } else { 300 };

    let mut b = Bench::new("convolution_workspace_vins");
    b.measure(&format!("workspace_sweep/{n_mid}"), Plan::default(), || {
        workspace_sweep(&stations, &limits, n_mid)
    });
    b.measure(&format!("workspace_sweep/{n_cap}"), Plan::default(), || {
        workspace_sweep(&stations, &limits, n_cap)
    });
    b.measure(&format!("scratch_solve_at/{n_cap}"), Plan::heavy(), || {
        let (x, _, _) =
            reference_solve_at(&stations, 1.0, n_cap, &limits).expect("valid VINS network");
        x
    });
    b.measure(
        &format!("per_step_scratch_sweep/{n_mid}"),
        Plan::heavy(),
        || per_step_scratch_sweep(&stations, &limits, n_mid),
    );
    // The full-depth from-scratch sweep is the honest pre-workspace cost
    // model at paper scale; it is seconds-per-call, so sample it sparsely.
    b.measure(
        &format!("per_step_scratch_sweep/{n_cap}"),
        Plan {
            warmup: 0,
            samples: 3,
            iters: 1,
        },
        || per_step_scratch_sweep(&stations, &limits, n_cap),
    );
    println!("{}", b.report());

    let results = b.results();
    let find = |name: &str| {
        results
            .iter()
            .find(|m| m.name == name)
            .expect("measured above")
    };
    let ws_cap = find(&format!("workspace_sweep/{n_cap}")).median();
    let scratch_cap = find(&format!("per_step_scratch_sweep/{n_cap}")).median();
    let speedup = scratch_cap.as_secs_f64() / ws_cap.as_secs_f64().max(1e-12);
    println!("workspace speedup over per-step scratch at n={n_cap}: {speedup:.1}x");

    let json = bench_json(&[&b]);
    let path = write_text(&results_dir(), "BENCH_convolution.json", &json)
        .expect("results directory is writable");
    println!("wrote {}", path.display());
}
