//! Ablation benchmarks: the cost of the numerically robust choices —
//! double-double carried recursion vs per-step quasi-static convolution,
//! and the full-series convolution solver across population scales.

use mvasd_bench::timing::{Bench, Plan};
use mvasd_queueing::mva::{
    multiserver_mva, ClosedSolver, MultiserverMvaSolver, PopulationRecursion,
};
use mvasd_queueing::network::{ClosedNetwork, Station};

fn net(cpu_demand: f64) -> ClosedNetwork {
    ClosedNetwork::new(
        vec![
            Station::queueing("cpu16", 16, 1.0, cpu_demand),
            Station::queueing("disk", 1, 1.0, 0.004),
        ],
        1.0,
    )
    .unwrap()
}

fn main() {
    let mut g = Bench::new("population_recursion_300_steps");
    // Low-utilization CPU: carried double-double recursion throughout.
    g.measure("carried_dd", Plan::light(10), || {
        let mut rec = PopulationRecursion::new(vec![16, 1], 1.0);
        let demands = [0.01, 0.004];
        for n in 1..=300usize {
            rec.step(n, &demands);
        }
        rec.is_quasi_static()
    });
    // Saturating CPU: switches to per-step quasi-static convolution.
    g.measure("quasi_static_switch", Plan::heavy(), || {
        let mut rec = PopulationRecursion::new(vec![16, 1], 1.0);
        let demands = [0.16, 0.004];
        for n in 1..=300usize {
            rec.step(n, &demands);
        }
        rec.is_quasi_static()
    });
    println!("{}", g.report());

    let mut g = Bench::new("convolution_full_series");
    for n in [200usize, 800, 1500] {
        let network = net(0.16);
        g.measure(&format!("n={n}"), Plan::heavy(), || {
            multiserver_mva(&network, n).unwrap()
        });
    }
    println!("{}", g.report());

    // Warm restart vs cold solve: extending a memoized sweep by 100
    // populations should cost a fraction of re-solving from population 1.
    let mut g = Bench::new("warm_restart_extension");
    let solver = MultiserverMvaSolver::new(net(0.16));
    let mut warm = solver.start().unwrap();
    warm.drain(1400).unwrap();
    let warm = warm.snapshot();
    g.measure("cold_solve_1500", Plan::light(10), || {
        solver.solve(1500).unwrap().points.len()
    });
    g.measure("resume_1400_to_1500", Plan::light(10), || {
        warm.resume().drain(1500).unwrap().points.len()
    });
    println!("{}", g.report());
}
