//! Ablation benchmarks: the cost of the numerically robust choices —
//! double-double carried recursion vs per-step quasi-static convolution,
//! and the full-series convolution solver across population scales.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mvasd_queueing::mva::{multiserver_mva, PopulationRecursion};
use mvasd_queueing::network::{ClosedNetwork, Station};

fn net(cpu_demand: f64) -> ClosedNetwork {
    ClosedNetwork::new(
        vec![
            Station::queueing("cpu16", 16, 1.0, cpu_demand),
            Station::queueing("disk", 1, 1.0, 0.004),
        ],
        1.0,
    )
    .unwrap()
}

fn bench_recursion_modes(c: &mut Criterion) {
    let mut g = c.benchmark_group("population_recursion_300_steps");
    // Low-utilization CPU: carried double-double recursion throughout.
    g.bench_function("carried_dd", |b| {
        b.iter(|| {
            let mut rec = PopulationRecursion::new(vec![16, 1], 1.0);
            let demands = [0.01, 0.004];
            for n in 1..=300usize {
                rec.step(n, &demands);
            }
            rec.is_quasi_static()
        })
    });
    // Saturating CPU: switches to per-step quasi-static convolution.
    g.sample_size(10);
    g.bench_function("quasi_static_switch", |b| {
        b.iter(|| {
            let mut rec = PopulationRecursion::new(vec![16, 1], 1.0);
            let demands = [0.16, 0.004];
            for n in 1..=300usize {
                rec.step(n, &demands);
            }
            rec.is_quasi_static()
        })
    });
    g.finish();
}

fn bench_convolution_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("convolution_full_series");
    g.sample_size(10);
    for n in [200usize, 800, 1500] {
        let network = net(0.16);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| multiserver_mva(&network, n).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_recursion_modes, bench_convolution_scaling);
criterion_main!(benches);
