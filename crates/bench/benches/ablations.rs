//! Ablation benchmarks: the cost of the numerically robust choices —
//! double-double carried recursion vs per-step quasi-static convolution,
//! and the full-series convolution solver across population scales.

use mvasd_bench::timing::{Bench, Plan};
use mvasd_queueing::mva::{multiserver_mva, PopulationRecursion};
use mvasd_queueing::network::{ClosedNetwork, Station};

fn net(cpu_demand: f64) -> ClosedNetwork {
    ClosedNetwork::new(
        vec![
            Station::queueing("cpu16", 16, 1.0, cpu_demand),
            Station::queueing("disk", 1, 1.0, 0.004),
        ],
        1.0,
    )
    .unwrap()
}

fn main() {
    let mut g = Bench::new("population_recursion_300_steps");
    // Low-utilization CPU: carried double-double recursion throughout.
    g.measure("carried_dd", Plan::light(10), || {
        let mut rec = PopulationRecursion::new(vec![16, 1], 1.0);
        let demands = [0.01, 0.004];
        for n in 1..=300usize {
            rec.step(n, &demands);
        }
        rec.is_quasi_static()
    });
    // Saturating CPU: switches to per-step quasi-static convolution.
    g.measure("quasi_static_switch", Plan::heavy(), || {
        let mut rec = PopulationRecursion::new(vec![16, 1], 1.0);
        let demands = [0.16, 0.004];
        for n in 1..=300usize {
            rec.step(n, &demands);
        }
        rec.is_quasi_static()
    });
    println!("{}", g.report());

    let mut g = Bench::new("convolution_full_series");
    for n in [200usize, 800, 1500] {
        let network = net(0.16);
        g.measure(&format!("n={n}"), Plan::heavy(), || {
            multiserver_mva(&network, n).unwrap()
        });
    }
    println!("{}", g.report());
}
