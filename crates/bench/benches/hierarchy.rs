//! Norton flow-equivalent aggregation vs the flat exact solve on a
//! microservice-scale estate.
//!
//! The workload is a synthetic 122-station estate: three tiers (web / app /
//! db) of ten services each, every service a four-station subsystem
//! (contention-scaled 8-way CPU, RAID-pair disk, LAN delay, bonded NIC),
//! plus two load-balancer stations at the root. The CPUs are genuinely
//! load-dependent (sublinear core scaling), so the flat exact reference is
//! the log-domain convolution solver — Algorithm 2 multi-server MVA cannot
//! express these stations at all. Two cost models are compared:
//!
//! - `flat_exact_sweep/N` — [`ConvolutionSolver`] over all 122 flattened
//!   stations: ~90 load-dependent factor columns, each O(n) per step.
//! - `aggregated_sweep/N` — [`HierarchicalSolver`] with plateau truncation:
//!   every service and tier collapses into a flow-equivalent server whose
//!   throughput profile saturates geometrically, so the root model carries
//!   three short-table FES stations plus the balancers.
//! - `aggregated_sweep_cached/N` — the same solve with a warm
//!   [`ProfileCache`], the scenario-sweep steady state where only the root
//!   model is re-advanced.
//! - `aggregated_sweep_parallel4/N` — the cold aggregated solve with
//!   [`AggregationOptions::parallelism`]`(4)`: independent subsystem
//!   profile extensions fan out across a scoped worker pool at every
//!   level of the tree. The bench asserts the parallel solution is
//!   bit-identical to the serial one before reporting the gain. The gain
//!   is recorded descriptively (`parallel_gain_vs_serial`, not a checked
//!   `speedup`) because it is pure hardware: on a single-core runner the
//!   scoped threads time-slice and the ratio sits at ~1.0, which the
//!   doctor's break-even speedup floor would misread as a regression.
//!
//! Beyond the text table the bench emits `results/BENCH_hierarchy.json`
//! (schema `mvasd-bench/1` plus a `hierarchy` error-metrics block,
//! documented in `EXPERIMENTS.md`): flat vs aggregated medians, the
//! end-to-end and parallel speedups, and the max relative throughput /
//! response-time error of the aggregated solve against the flat exact
//! reference.

use std::sync::Arc;

use mvasd_bench::output::{results_dir, write_text};
use mvasd_bench::timing::{bench_json, quick_mode, Bench, Plan};
use mvasd_obsv as obsv;
use mvasd_queueing::hierarchy::{
    AggregationOptions, HierarchicalNetwork, HierarchicalSolver, NetworkNode, ProfileCache,
    Subsystem,
};
use mvasd_queueing::mva::{ClosedSolver, ConvolutionSolver, MvaSolution};
use mvasd_queueing::network::Station;

/// Truncation threshold for the aggregated solve: subsystem profiles stop
/// growing once the relative throughput increment falls below this, which
/// keeps every FES table geometrically short.
const PLATEAU_EPS: f64 = 1e-6;

/// Effective-core curve of an 8-way CPU under contention: sublinear
/// scaling that tops out at ~5.2 cores' worth of service rate.
fn cpu_rates() -> Vec<f64> {
    vec![1.0, 1.9, 2.7, 3.4, 4.0, 4.5, 4.9, 5.2]
}

/// One microservice: CPU + disk + LAN hop + NIC. Service demands grow
/// geometrically across the tier (`1.12^idx`) so each tier has a distinct
/// internal bottleneck and its throughput profile plateaus fast.
fn service(tier: &str, idx: usize, tier_mult: f64) -> NetworkNode {
    let mult = tier_mult * 1.12f64.powi(idx as i32);
    let name = format!("{tier}-svc{idx}");
    Subsystem::new(
        &name,
        vec![
            Station::load_dependent(&format!("{name}-cpu"), 1.0, 0.032 * mult, cpu_rates()).into(),
            Station::queueing(&format!("{name}-disk"), 2, 1.0, 0.004 * mult).into(),
            Station::delay(&format!("{name}-lan"), 1.0, 0.010).into(),
            Station::queueing(&format!("{name}-net"), 2, 1.0, 0.002 * mult).into(),
        ],
    )
    .into()
}

fn tier(name: &str, tier_mult: f64) -> NetworkNode {
    Subsystem::new(name, (0..10).map(|i| service(name, i, tier_mult)).collect()).into()
}

/// The 122-station estate: web and app share one hardware profile (their
/// aggregation profiles are structurally identical, exercising the
/// profile cache), db runs 1.3× heavier demands and is the bottleneck.
fn estate() -> HierarchicalNetwork {
    HierarchicalNetwork::new(
        vec![
            Station::queueing("ingress-lb", 1, 1.0, 0.001).into(),
            Station::queueing("egress-lb", 1, 1.0, 0.001).into(),
            tier("web", 1.0),
            tier("app", 1.0),
            tier("db", 1.3),
        ],
        1.0,
    )
    .expect("estate parameters are valid")
}

/// Worker-pool width for the parallel aggregated solve.
const PARALLEL_WORKERS: usize = 4;

fn aggregated_sweep(net: &HierarchicalNetwork, cache: Option<Arc<ProfileCache>>, n: usize) -> f64 {
    aggregated_sweep_with(net, cache, n, 1)
}

fn aggregated_sweep_with(
    net: &HierarchicalNetwork,
    cache: Option<Arc<ProfileCache>>,
    n: usize,
    workers: usize,
) -> f64 {
    let opts = AggregationOptions::truncated(PLATEAU_EPS).parallelism(workers);
    let mut solver = HierarchicalSolver::with_options(net.clone(), opts);
    if let Some(cache) = cache {
        solver = solver.with_cache(cache);
    }
    let sol = solver.solve(n).expect("aggregated sweep");
    sol.points.last().expect("n >= 1").throughput
}

fn flat_exact_sweep(net: &HierarchicalNetwork, n: usize) -> MvaSolution {
    ConvolutionSolver::new(net.flatten())
        .solve(n)
        .expect("flat exact sweep")
}

/// Max relative error of the aggregated solve against the flat exact
/// reference, over every shared population: `(throughput, response)`.
fn max_rel_errors(flat: &MvaSolution, agg: &MvaSolution) -> (f64, f64) {
    let mut ex = 0.0f64;
    let mut er = 0.0f64;
    for (pf, pa) in flat.points.iter().zip(agg.points.iter()) {
        ex = ex.max((pf.throughput - pa.throughput).abs() / pf.throughput.abs().max(1e-300));
        er = er.max((pf.response - pa.response).abs() / pf.response.abs().max(1e-300));
    }
    (ex, er)
}

fn main() {
    let net = estate();
    let station_count = net.flatten().stations().len();
    let n_cap = if quick_mode() { 150 } else { 800 };

    let mut b = Bench::new("hierarchy_norton_estate");
    b.measure(
        &format!("aggregated_sweep/{n_cap}"),
        Plan::default(),
        || aggregated_sweep(&net, None, n_cap),
    );
    let warm = Arc::new(ProfileCache::new());
    aggregated_sweep(&net, Some(warm.clone()), n_cap); // pre-warm the cache
    b.measure(
        &format!("aggregated_sweep_cached/{n_cap}"),
        Plan::default(),
        || aggregated_sweep(&net, Some(warm.clone()), n_cap),
    );
    let mut bp = Bench::new("hierarchy_parallel");
    bp.measure(
        &format!("aggregated_sweep_serial/{n_cap}"),
        Plan::default(),
        || aggregated_sweep(&net, None, n_cap),
    );
    bp.measure(
        &format!("aggregated_sweep_parallel{PARALLEL_WORKERS}/{n_cap}"),
        Plan::default(),
        || aggregated_sweep_with(&net, None, n_cap, PARALLEL_WORKERS),
    );
    // The flat exact reference drags ~90 load-dependent factor columns
    // through every population: seconds per call at full depth, so sample
    // it sparsely.
    b.measure(
        &format!("flat_exact_sweep/{n_cap}"),
        Plan {
            warmup: 0,
            samples: 3,
            iters: 1,
        },
        || flat_exact_sweep(&net, n_cap).points.len(),
    );
    println!("{}", b.report());
    println!("{}", bp.report());

    let find = |results: &[mvasd_bench::timing::Measurement], name: &str| {
        results
            .iter()
            .find(|m| m.name == name)
            .expect("measured above")
            .median()
    };
    let agg = find(b.results(), &format!("aggregated_sweep/{n_cap}"));
    let flat = find(b.results(), &format!("flat_exact_sweep/{n_cap}"));
    let speedup = flat.as_secs_f64() / agg.as_secs_f64().max(1e-12);
    println!("aggregated speedup over flat exact at n={n_cap}: {speedup:.1}x");
    let serial = find(bp.results(), &format!("aggregated_sweep_serial/{n_cap}"));
    let par = find(
        bp.results(),
        &format!("aggregated_sweep_parallel{PARALLEL_WORKERS}/{n_cap}"),
    );
    let parallel_speedup = serial.as_secs_f64() / par.as_secs_f64().max(1e-12);
    println!(
        "parallel ({PARALLEL_WORKERS} workers) speedup over serial cold solve: \
         {parallel_speedup:.1}x"
    );

    let flat_sol = flat_exact_sweep(&net, n_cap);
    let agg_sol =
        HierarchicalSolver::with_options(net.clone(), AggregationOptions::truncated(PLATEAU_EPS))
            .solve(n_cap)
            .expect("aggregated solve for error metrics");
    let (err_x, err_r) = max_rel_errors(&flat_sol, &agg_sol);
    println!(
        "max relative error vs flat exact: throughput {err_x:.2e}, response {err_r:.2e} \
         ({station_count} stations)"
    );

    // The parallel schedule must be a pure wall-clock optimization: every
    // point of the parallel solution is bit-identical to the serial one.
    let par_sol = HierarchicalSolver::with_options(
        net.clone(),
        AggregationOptions::truncated(PLATEAU_EPS).parallelism(PARALLEL_WORKERS),
    )
    .solve(n_cap)
    .expect("parallel solve for bit-identity check");
    for (ps, pp) in agg_sol.points.iter().zip(par_sol.points.iter()) {
        assert_eq!(
            ps.throughput.to_bits(),
            pp.throughput.to_bits(),
            "parallel throughput diverges at n={}",
            ps.n
        );
        assert_eq!(
            ps.response.to_bits(),
            pp.response.to_bits(),
            "parallel response diverges at n={}",
            ps.n
        );
    }
    println!("parallel solution is bit-identical to serial over all {n_cap} populations");

    // Splice the accuracy block into the standard schema and check the
    // result still parses before committing it to disk.
    let json = bench_json(&[&b, &bp]);
    let trimmed = json.trim_end().trim_end_matches('}');
    let json = format!(
        "{trimmed},\"hierarchy\":{{\"stations\":{station_count},\"n\":{n_cap},\
         \"max_rel_err_throughput\":{err_x:.3e},\"max_rel_err_response\":{err_r:.3e},\
         \"speedup\":{speedup:.2},\"workers\":{PARALLEL_WORKERS},\
         \"parallel_gain_vs_serial\":{parallel_speedup:.2}}}}}\n"
    );
    obsv::json::parse(&json).expect("spliced report is valid JSON");
    let path =
        write_text(&results_dir(), "BENCH_hierarchy.json", &json).expect("results dir writable");
    println!("wrote {}", path.display());
}
