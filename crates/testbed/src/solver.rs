//! The discrete-event simulator as a [`ClosedSolver`].
//!
//! [`SimSolver`] sweeps a [`SimNetwork`] over populations `1..=n_max`
//! (one independent seeded run per population) and reshapes the reports
//! into the same [`MvaSolution`] the analytic solvers return, so simulation
//! ground truth drops into every comparison pipeline unchanged.
//!
//! The streaming face ([`SimIter`]) runs one simulation per `step()`;
//! because each population's seed is a pure function of the base seed,
//! streaming, batch, and resumed-from-snapshot sweeps are bit-identical.
//!
//! Being a stochastic estimator, it matches the analytic solvers only
//! statistically: expect a few percent of Monte-Carlo error at moderate
//! horizons, not the 1e-9 agreement of the exact MVA family.

use mvasd_numerics::rng::splitmix64;
use mvasd_obsv as obsv;
use mvasd_queueing::mva::{ClosedSolver, MvaPoint, SolverIter, StationPoint};
use mvasd_queueing::QueueingError;
use mvasd_simnet::{SimConfig, SimNetwork, Simulation};

/// Closed-network solver backed by the `mvasd-simnet` discrete-event
/// engine. Deterministic for a fixed config: run `n`'s seed is derived
/// from `config.seed` with SplitMix64, independent of sweep order.
#[derive(Debug, Clone)]
pub struct SimSolver {
    network: SimNetwork,
    config: SimConfig,
}

impl SimSolver {
    /// Binds the solver to a simulated network. `config.customers` is
    /// ignored — the sweep sets it per population.
    pub fn new(network: SimNetwork, config: SimConfig) -> Self {
        Self { network, config }
    }
}

impl ClosedSolver for SimSolver {
    fn name(&self) -> &str {
        "simnet-des"
    }

    fn start(&self) -> Result<Box<dyn SolverIter>, QueueingError> {
        Ok(Box::new(SimIter::new(
            self.network.clone(),
            self.config.clone(),
        )))
    }
}

/// The simulator's population iterator: each `step()` is one independent
/// seeded run at the next population. The carried state is just the
/// population counter, so snapshots are trivially cheap.
#[derive(Debug, Clone)]
pub struct SimIter {
    network: SimNetwork,
    config: SimConfig,
    names: std::sync::Arc<[String]>,
    n: usize,
}

impl SimIter {
    /// Starts a fresh sweep at population 0.
    pub fn new(network: SimNetwork, config: SimConfig) -> Self {
        let names = network
            .stations()
            .iter()
            .map(|s| s.name.clone())
            .collect::<Vec<_>>()
            .into();
        Self {
            network,
            config,
            names,
            n: 0,
        }
    }

    /// The per-population seed: decorrelated from neighbouring populations
    /// but a pure function of the base seed.
    fn seed_for(&self, n: usize) -> u64 {
        let mut state = self.config.seed ^ (n as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        splitmix64(&mut state)
    }
}

impl SolverIter for SimIter {
    fn station_names(&self) -> &[String] {
        &self.names
    }

    fn shared_names(&self) -> std::sync::Arc<[String]> {
        self.names.clone()
    }

    fn population(&self) -> usize {
        self.n
    }

    fn step(&mut self) -> Result<MvaPoint, QueueingError> {
        let _span = obsv::span_with("simnet-des.step", || format!("n={}", self.n + 1));
        obsv::counter("solver.steps", 1);
        obsv::counter("des.runs", 1);
        let n = self.n + 1;
        let cfg = SimConfig {
            customers: n,
            seed: self.seed_for(n),
            ..self.config.clone()
        };
        let report = Simulation::new(self.network.clone(), cfg)
            .map_err(|e| QueueingError::InvalidParameter {
                what: sim_error_what(&e),
            })?
            .run()
            .map_err(|e| QueueingError::InvalidParameter {
                what: sim_error_what(&e),
            })?;
        let x = report.system.throughput;
        let stations = report
            .stations
            .iter()
            .map(|s| StationPoint {
                queue: s.mean_queue,
                residence: if x > 0.0 { s.mean_queue / x } else { 0.0 },
                utilization: s.utilization,
            })
            .collect();
        self.n = n;
        Ok(MvaPoint {
            n,
            throughput: x,
            response: report.system.mean_response,
            // Little's law over the closed loop: C = N / X.
            cycle_time: if x > 0.0 { n as f64 / x } else { f64::INFINITY },
            stations,
        })
    }

    fn boxed_clone(&self) -> Box<dyn SolverIter> {
        Box::new(self.clone())
    }
}

/// Flattens a simulator error into the queueing layer's static-str error
/// vocabulary (the trait's error type has no simulator variant).
fn sim_error_what(e: &mvasd_simnet::SimError) -> &'static str {
    match e {
        mvasd_simnet::SimError::EmptyNetwork => "simulated network is empty",
        mvasd_simnet::SimError::InvalidParameter { what } => what,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvasd_queueing::mva::ExactMvaSolver;
    use mvasd_queueing::network::{ClosedNetwork, Station};
    use mvasd_simnet::{Distribution, SimStation};

    fn sim_net(demand: f64, z: f64) -> SimNetwork {
        SimNetwork::new(
            vec![SimStation::queueing("s0", 1, demand)],
            Distribution::Exponential { mean: z },
        )
        .unwrap()
    }

    fn cfg() -> SimConfig {
        SimConfig {
            horizon: 8000.0,
            warmup: 800.0,
            seed: 42,
            ..SimConfig::default()
        }
    }

    #[test]
    fn sim_solver_tracks_exact_mva_statistically() {
        let (d, z) = (0.02, 1.0);
        let sim = SimSolver::new(sim_net(d, z), cfg());
        let net = ClosedNetwork::new(vec![Station::queueing("s0", 1, 1.0, d)], z).unwrap();
        let exact = ExactMvaSolver::new(net).solve(30).unwrap();
        let sol = sim.solve(30).unwrap();
        assert_eq!(sol.points.len(), 30);
        for n in [1usize, 10, 30] {
            let xs = sol.at(n).unwrap().throughput;
            let xe = exact.at(n).unwrap().throughput;
            assert!((xs - xe).abs() / xe < 0.06, "n={n}: sim {xs} vs exact {xe}");
        }
    }

    #[test]
    fn sim_solver_is_deterministic_and_named() {
        let sim = SimSolver::new(sim_net(0.05, 0.5), cfg());
        assert_eq!(sim.name(), "simnet-des");
        let a = sim.solve(5).unwrap();
        let b = sim.solve(5).unwrap();
        assert_eq!(a.points, b.points);
        assert!(sim.solve(0).unwrap().points.is_empty());
    }

    #[test]
    fn streaming_resumes_bit_identically() {
        let sim = SimSolver::new(sim_net(0.05, 0.5), cfg());
        let batch = sim.solve(6).unwrap();
        let mut iter = sim.start().unwrap();
        for _ in 0..3 {
            iter.step().unwrap();
        }
        let tail = iter.snapshot().resume().drain(6).unwrap();
        assert_eq!(tail.points, batch.points[3..]);
    }

    #[test]
    fn works_as_trait_object() {
        let boxed: Box<dyn ClosedSolver> = Box::new(SimSolver::new(sim_net(0.05, 0.5), cfg()));
        let sol = boxed.solve(3).unwrap();
        assert_eq!(&sol.station_names[..], &["s0".to_string()][..]);
    }
}
