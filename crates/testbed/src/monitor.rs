//! Monitoring observables — the vmstat/iostat/netstat layer of paper
//! Section 4.2.
//!
//! In the real lab, CPU utilization comes from `vmstat`, disk from
//! `iostat`, and network from `netstat` packet counters via eq. 7. Here the
//! same observables are read off the simulator, and eq. 7 is implemented
//! directly for the packet-counter path so network demands can be derived
//! the way the paper derives them.

use crate::apps::AppModel;
use crate::grinder::LoadTestResult;
use crate::TestbedError;

/// Network utilization from packet counters — paper eq. 7:
///
/// ```text
/// Util% = (#packets · packet_size) / (t · bandwidth) · 100
/// ```
///
/// `packet_size` and `bandwidth` in consistent units (bytes and bytes/s).
pub fn network_utilization_pct(
    packets: u64,
    packet_size_bytes: f64,
    window_seconds: f64,
    bandwidth_bytes_per_sec: f64,
) -> Result<f64, TestbedError> {
    if !(packet_size_bytes.is_finite() && packet_size_bytes > 0.0) {
        return Err(TestbedError::InvalidParameter {
            what: "packet size must be finite and > 0",
        });
    }
    if !(window_seconds.is_finite() && window_seconds > 0.0) {
        return Err(TestbedError::InvalidParameter {
            what: "window must be finite and > 0",
        });
    }
    if !(bandwidth_bytes_per_sec.is_finite() && bandwidth_bytes_per_sec > 0.0) {
        return Err(TestbedError::InvalidParameter {
            what: "bandwidth must be finite and > 0",
        });
    }
    Ok(packets as f64 * packet_size_bytes / (window_seconds * bandwidth_bytes_per_sec) * 100.0)
}

/// One row of a Table 2/3-style utilization table.
#[derive(Debug, Clone, PartialEq)]
pub struct UtilizationRow {
    /// Concurrency level of the load test.
    pub users: usize,
    /// Measured page throughput.
    pub throughput: f64,
    /// Measured mean response time.
    pub response: f64,
    /// Per-station utilization (fraction of capacity), network order.
    pub utilization: Vec<f64>,
}

/// A full utilization table across concurrency levels, with station names.
#[derive(Debug, Clone, PartialEq)]
pub struct UtilizationTable {
    /// Station names (column headers).
    pub stations: Vec<String>,
    /// One row per tested concurrency level, ascending.
    pub rows: Vec<UtilizationRow>,
}

impl UtilizationTable {
    /// Builds a row from a load-test result.
    pub fn row_from(result: &LoadTestResult) -> UtilizationRow {
        UtilizationRow {
            users: result.users,
            throughput: result.throughput(),
            response: result.response_time(),
            utilization: result.utilizations(),
        }
    }

    /// The index of the station with the highest utilization in the last
    /// (highest-concurrency) row — the measured bottleneck.
    pub fn measured_bottleneck(&self) -> Option<usize> {
        let last = self.rows.last()?;
        last.utilization
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("utilizations are finite"))
            .map(|(i, _)| i)
    }

    /// Renders the table in the layout of paper Tables 2–3 (percent, one
    /// row per concurrency).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{:>6} ", "Users"));
        for s in &self.stations {
            out.push_str(&format!("{s:>12} "));
        }
        out.push('\n');
        for r in &self.rows {
            out.push_str(&format!("{:>6} ", r.users));
            for u in &r.utilization {
                out.push_str(&format!("{:>11.1}% ", u * 100.0));
            }
            out.push('\n');
        }
        out
    }
}

/// An `iostat`-style per-device report of one load test: each station's
/// visit rate, mean concurrency, per-visit latency, and utilization — the
/// columns a performance engineer reads off `iostat -x` (r/s+w/s, avgqu-sz,
/// await, %util).
pub fn render_iostat(result: &LoadTestResult, station_names: &[String]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<14} {:>10} {:>10} {:>12} {:>8}\n",
        "Device", "visits/s", "avgqu-sz", "await(ms)", "%util"
    ));
    for (k, name) in station_names.iter().enumerate() {
        let st = &result.report.stations[k];
        out.push_str(&format!(
            "{:<14} {:>10.2} {:>10.3} {:>12.3} {:>7.1}%\n",
            name,
            st.throughput,
            st.mean_queue,
            st.mean_visit_time * 1e3,
            st.utilization * 100.0
        ));
    }
    out
}

/// Extracts per-station service demands from a measured row via the
/// Service Demand Law (paper eq. 3): `D_k = U_k · C_k / X`.
///
/// The monitored utilization of a multi-server station is per-server
/// (fraction of total capacity), so the server count multiplies back in.
/// Returns `None` when the row saw no throughput.
pub fn demands_from_row(row: &UtilizationRow, server_counts: &[usize]) -> Option<Vec<f64>> {
    if row.throughput <= 0.0 || row.utilization.len() != server_counts.len() {
        return None;
    }
    Some(
        row.utilization
            .iter()
            .zip(server_counts.iter())
            .map(|(u, &c)| u * c as f64 / row.throughput)
            .collect(),
    )
}

/// Convenience: demands extracted from a load-test result against its app.
pub fn extract_demands(app: &AppModel, result: &LoadTestResult) -> Option<Vec<f64>> {
    demands_from_row(&UtilizationTable::row_from(result), &app.server_counts())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::vins;
    use crate::grinder::{load_test, GrinderConfig};

    #[test]
    fn eq7_network_utilization() {
        // 1e9 bytes/s link, 1 s window, 500-byte packets, 1M packets:
        // 5e8 / 1e9 = 50 %.
        let u = network_utilization_pct(1_000_000, 500.0, 1.0, 1e9).unwrap();
        assert!((u - 50.0).abs() < 1e-9);
        assert!(network_utilization_pct(1, 0.0, 1.0, 1e9).is_err());
        assert!(network_utilization_pct(1, 1.0, 0.0, 1e9).is_err());
        assert!(network_utilization_pct(1, 1.0, 1.0, f64::NAN).is_err());
    }

    /// The `what` string of an eq. 7 parameter rejection.
    fn eq7_err_what(packets: u64, size: f64, window: f64, bandwidth: f64) -> &'static str {
        match network_utilization_pct(packets, size, window, bandwidth) {
            Err(TestbedError::InvalidParameter { what }) => what,
            other => panic!("expected InvalidParameter, got {other:?}"),
        }
    }

    #[test]
    fn eq7_rejects_each_parameter_with_its_own_message() {
        // Each of the three error paths, tripped by zero, negative,
        // infinite, and NaN values alike.
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(
                eq7_err_what(1, bad, 1.0, 1e9),
                "packet size must be finite and > 0"
            );
            assert_eq!(
                eq7_err_what(1, 1.0, bad, 1e9),
                "window must be finite and > 0"
            );
            assert_eq!(
                eq7_err_what(1, 1.0, 1.0, bad),
                "bandwidth must be finite and > 0"
            );
        }
        // Checks run in parameter order: a bad packet size wins even when
        // later parameters are also invalid.
        assert_eq!(
            eq7_err_what(1, 0.0, 0.0, 0.0),
            "packet size must be finite and > 0"
        );
        // Zero packets with valid parameters is a valid idle window.
        assert_eq!(network_utilization_pct(0, 1.0, 1.0, 1e9).unwrap(), 0.0);
    }

    #[test]
    fn propcheck_eq7_round_trips_synthetic_packet_counts() {
        use mvasd_numerics::propcheck::{check, Config};
        let cfg = Config::default().cases(500);
        check("eq7-round-trip", &cfg, |g| {
            let packets = g.raw() % 1_000_000_000;
            let size = g.f64_in(1.0, 65_536.0);
            let window = g.f64_in(0.001, 3_600.0);
            let bandwidth = g.f64_in(1e3, 1e12);
            let u = network_utilization_pct(packets, size, window, bandwidth).unwrap();
            assert!(u.is_finite() && u >= 0.0);
            // Round-trip: recover the packet count from the utilization.
            let recovered = u / 100.0 * window * bandwidth / size;
            let tol = 1e-9 * (packets as f64).max(1.0);
            assert!(
                (recovered - packets as f64).abs() <= tol,
                "packets={packets} recovered={recovered}"
            );
            // Linearity in the packet count (eq. 7 is a pure ratio).
            let doubled = network_utilization_pct(packets * 2, size, window, bandwidth).unwrap();
            assert!((doubled - 2.0 * u).abs() <= 1e-9 * u.max(1.0));
        });
    }

    #[test]
    fn demand_extraction_inverts_utilization_law() {
        // Synthetic row where U = X·D/C exactly.
        let demands = [0.004, 0.010];
        let servers = [16usize, 1];
        let x = 50.0;
        let row = UtilizationRow {
            users: 100,
            throughput: x,
            response: 0.1,
            utilization: demands
                .iter()
                .zip(servers.iter())
                .map(|(d, &c)| x * d / c as f64)
                .collect(),
        };
        let d = demands_from_row(&row, &servers).unwrap();
        assert!((d[0] - 0.004).abs() < 1e-12);
        assert!((d[1] - 0.010).abs() < 1e-12);
    }

    #[test]
    fn demand_extraction_rejects_degenerate_rows() {
        let row = UtilizationRow {
            users: 1,
            throughput: 0.0,
            response: 0.0,
            utilization: vec![0.1],
        };
        assert!(demands_from_row(&row, &[1]).is_none());
        let row = UtilizationRow {
            users: 1,
            throughput: 1.0,
            response: 0.0,
            utilization: vec![0.1],
        };
        assert!(demands_from_row(&row, &[1, 2]).is_none());
    }

    #[test]
    fn iostat_render_lists_every_station() {
        let app = vins::model();
        let res = load_test(&app, &GrinderConfig::for_users(10, 200.0)).unwrap();
        let txt = render_iostat(&res, &app.station_names());
        assert_eq!(txt.lines().count(), 13); // header + 12 stations
        assert!(txt.contains("db-disk"));
        assert!(txt.contains("%util"));
    }

    #[test]
    fn extracted_demands_close_to_ground_truth() {
        let app = vins::model();
        let res = load_test(&app, &GrinderConfig::for_users(50, 600.0)).unwrap();
        let measured = extract_demands(&app, &res).unwrap();
        let truth = app.demands_at(50.0);
        for (k, (m, t)) in measured.iter().zip(truth.iter()).enumerate() {
            let rel = (m - t).abs() / t;
            assert!(rel < 0.15, "station {k}: measured {m} vs truth {t}");
        }
    }

    #[test]
    fn table_render_and_bottleneck() {
        let table = UtilizationTable {
            stations: vec!["cpu".into(), "disk".into()],
            rows: vec![
                UtilizationRow {
                    users: 1,
                    throughput: 1.0,
                    response: 0.01,
                    utilization: vec![0.01, 0.02],
                },
                UtilizationRow {
                    users: 100,
                    throughput: 50.0,
                    response: 0.5,
                    utilization: vec![0.40, 0.93],
                },
            ],
        };
        assert_eq!(table.measured_bottleneck(), Some(1));
        let txt = table.render();
        assert!(txt.contains("Users"));
        assert!(txt.contains("93.0%"));
        assert!(txt.lines().count() == 3);
    }

    #[test]
    fn empty_table_has_no_bottleneck() {
        let table = UtilizationTable {
            stations: vec![],
            rows: vec![],
        };
        assert_eq!(table.measured_bottleneck(), None);
    }
}
