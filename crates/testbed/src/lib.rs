//! # mvasd-testbed
//!
//! The simulated load-testing laboratory: everything the paper's physical
//! testbed provided, rebuilt on top of the `mvasd-simnet` discrete-event
//! simulator.
//!
//! * [`demand`] — concurrency-varying service-demand curves `D_k(n)`: the
//!   *mechanism* under study. The paper observes demands falling with
//!   concurrency ("caching of resources at CPU Disk …, batch processing …,
//!   superior branch prediction") and, for JPetStore, a contention-driven
//!   throughput dip past saturation; both effects are modelled explicitly.
//! * [`apps`] — the two applications under test: VINS (vehicle-insurance,
//!   disk-heavy; paper Section 4.3 & Table 2) and JPetStore (e-commerce,
//!   CPU-heavy; Table 3), as 12-station three-tier models (load injector,
//!   web/application, database; each CPU/Disk/Net-Tx/Net-Rx).
//! * [`grinder`] — a load driver with The Grinder's knobs (worker processes,
//!   threads, ramp-up intervals, sleep-time variation) that turns an
//!   application model plus a concurrency level into a simulation run.
//! * [`monitor`] — vmstat/iostat/netstat-style observables: per-station
//!   utilization rows (Tables 2–3) and the eq. 7 network-utilization
//!   formula.
//! * [`campaign`] — multi-level load-test campaigns (one simulated load
//!   test per concurrency level, optionally parallel across levels) and
//!   Service-Demand-Law extraction of the measured demand arrays that feed
//!   MVASD.
//! * [`solver`] — [`mvasd_queueing::mva::ClosedSolver`] adapter that sweeps
//!   the discrete-event simulator over populations, so simulation ground
//!   truth plugs into the same comparisons as the analytic solvers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
pub mod campaign;
pub mod demand;
pub mod grinder;
pub mod monitor;
pub mod solver;

/// Errors from testbed configuration and execution.
#[derive(Debug, Clone, PartialEq)]
pub enum TestbedError {
    /// A configuration value was outside its legal domain.
    InvalidParameter {
        /// Description of the violated constraint.
        what: &'static str,
    },
    /// Error propagated from the simulator.
    Sim(mvasd_simnet::SimError),
    /// Error propagated from the queueing layer.
    Queueing(mvasd_queueing::QueueingError),
    /// A campaign worker thread panicked while measuring one level; the
    /// panic was contained to that level instead of aborting the campaign.
    WorkerPanic {
        /// The concurrency level being measured when the worker panicked.
        level: usize,
        /// The panic payload, rendered as text.
        message: String,
    },
}

impl core::fmt::Display for TestbedError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TestbedError::InvalidParameter { what } => write!(f, "invalid parameter: {what}"),
            TestbedError::Sim(e) => write!(f, "simulation error: {e}"),
            TestbedError::Queueing(e) => write!(f, "queueing error: {e}"),
            TestbedError::WorkerPanic { level, message } => {
                write!(f, "load-test worker panicked at level {level}: {message}")
            }
        }
    }
}

impl std::error::Error for TestbedError {}

impl From<mvasd_simnet::SimError> for TestbedError {
    fn from(e: mvasd_simnet::SimError) -> Self {
        TestbedError::Sim(e)
    }
}

impl From<mvasd_queueing::QueueingError> for TestbedError {
    fn from(e: mvasd_queueing::QueueingError) -> Self {
        TestbedError::Queueing(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_from() {
        let e: TestbedError = mvasd_simnet::SimError::EmptyNetwork.into();
        assert!(!e.to_string().is_empty());
        let e: TestbedError = mvasd_queueing::QueueingError::EmptyNetwork.into();
        assert!(!e.to_string().is_empty());
        assert!(!TestbedError::InvalidParameter { what: "x" }
            .to_string()
            .is_empty());
    }
}
