//! Application models under test.
//!
//! An [`AppModel`] is the testbed's description of a deployed multi-tier
//! application: the 12 hardware stations of paper Fig. 2 (3 servers × CPU /
//! Disk / Net-Tx / Net-Rx), each with a concurrency-varying demand curve,
//! plus the workload's think time. From it the testbed derives
//!
//! * a [`mvasd_simnet::SimNetwork`] at a given concurrency (demand curves
//!   evaluated at that level — the "measured system"), and
//! * a [`mvasd_queueing::network::ClosedNetwork`] (the analytic model fed to
//!   MVA/MVASD).

pub mod jpetstore;
pub mod vins;

use crate::demand::DemandCurve;
use crate::TestbedError;
use mvasd_queueing::network::{ClosedNetwork, Station};
use mvasd_simnet::{ContentionModel, Distribution, SimNetwork, SimStation};

/// One hardware resource of one server tier.
#[derive(Debug, Clone, PartialEq)]
pub struct AppStation {
    /// Station label, e.g. `"db-disk"`.
    pub name: String,
    /// Parallel servers (16 for the paper's multi-core CPUs, 1 otherwise).
    pub servers: usize,
    /// Concurrency-varying demand curve.
    pub curve: DemandCurve,
    /// Optional in-run software contention (locks, pools) — the effect the
    /// paper assumes "tuned prior to performance analysis". `None` (the
    /// default for the calibrated apps) keeps the system product-form;
    /// setting it lets robustness experiments violate the MVA assumptions
    /// on purpose.
    pub contention: Option<ContentionModel>,
}

impl AppStation {
    /// Convenience constructor.
    pub fn new(name: &str, servers: usize, curve: DemandCurve) -> Self {
        Self {
            name: name.to_string(),
            servers,
            curve,
            contention: None,
        }
    }

    /// Attaches in-run software contention (builder style).
    #[must_use]
    pub fn with_contention(mut self, c: ContentionModel) -> Self {
        self.contention = Some(c);
        self
    }
}

/// A deployed multi-tier application, ready to be load-tested.
#[derive(Debug, Clone, PartialEq)]
pub struct AppModel {
    /// Application name.
    pub name: String,
    /// Pages in the exercised workflow (documentation; throughput is
    /// reported per page, matching The Grinder's pages/second).
    pub pages: u32,
    /// Mean think time between page requests (seconds).
    pub think_time: f64,
    /// The hardware stations, in visiting order.
    pub stations: Vec<AppStation>,
}

impl AppModel {
    /// Validates all curves and basic parameters.
    pub fn validate(&self) -> Result<(), TestbedError> {
        if self.stations.is_empty() {
            return Err(TestbedError::InvalidParameter {
                what: "application must have stations",
            });
        }
        if !(self.think_time.is_finite() && self.think_time >= 0.0) {
            return Err(TestbedError::InvalidParameter {
                what: "think time must be finite and >= 0",
            });
        }
        for s in &self.stations {
            if s.servers == 0 {
                return Err(TestbedError::InvalidParameter {
                    what: "station needs at least one server",
                });
            }
            s.curve.validate()?;
        }
        Ok(())
    }

    /// Station names in order.
    pub fn station_names(&self) -> Vec<String> {
        self.stations.iter().map(|s| s.name.clone()).collect()
    }

    /// Server counts in order.
    pub fn server_counts(&self) -> Vec<usize> {
        self.stations.iter().map(|s| s.servers).collect()
    }

    /// Ground-truth demands at concurrency `n` (what the lab would measure
    /// with infinite precision).
    pub fn demands_at(&self, n: f64) -> Vec<f64> {
        self.stations.iter().map(|s| s.curve.at(n)).collect()
    }

    /// The simulated system at concurrency `n`: demand curves evaluated at
    /// `n`, exponential service, exponential think.
    pub fn sim_network(&self, n: usize) -> Result<SimNetwork, TestbedError> {
        self.validate()?;
        let stations = self
            .stations
            .iter()
            .map(|s| {
                let mut st = SimStation::queueing(&s.name, s.servers, s.curve.at(n as f64));
                if let Some(c) = &s.contention {
                    st = st.with_contention(c.clone());
                }
                st
            })
            .collect();
        Ok(SimNetwork::new(
            stations,
            Distribution::Exponential {
                mean: self.think_time,
            },
        )?)
    }

    /// The analytic closed network with demands evaluated at concurrency
    /// `n` (what MVA·i uses when its input demands were collected at level
    /// `i = n`).
    pub fn closed_network_at(&self, n: f64) -> Result<ClosedNetwork, TestbedError> {
        self.validate()?;
        let stations = self
            .stations
            .iter()
            .map(|s| Station::queueing(&s.name, s.servers, 1.0, s.curve.at(n)))
            .collect();
        Ok(ClosedNetwork::new(stations, self.think_time)?)
    }

    /// The analytic closed network with explicitly supplied demands (e.g.
    /// demands extracted from a measured campaign).
    pub fn closed_network_with(&self, demands: &[f64]) -> Result<ClosedNetwork, TestbedError> {
        self.closed_network_at(1.0)?
            .with_demands(demands)
            .map_err(Into::into)
    }

    /// Index and name of the asymptotic bottleneck (largest effective
    /// demand `D_k(∞)/C_k`).
    pub fn bottleneck(&self) -> (usize, &str) {
        let mut best = (0usize, 0.0f64);
        for (i, s) in self.stations.iter().enumerate() {
            let eff = s.curve.base / s.servers as f64;
            if eff > best.1 {
                best = (i, eff);
            }
        }
        (best.0, &self.stations[best.0].name)
    }

    /// Asymptotic maximum page throughput `1 / max_k(D_k(∞)/C_k)`,
    /// ignoring any contention rise.
    pub fn max_throughput(&self) -> f64 {
        let (i, _) = self.bottleneck();
        let s = &self.stations[i];
        s.servers as f64 / s.curve.base
    }
}

/// Builds the canonical 12-station, 3-tier station list of paper Fig. 2.
/// `specs` supplies, per tier (load, web/app, database), the CPU core count
/// and the four demand curves in CPU/Disk/Net-Tx/Net-Rx order.
pub(crate) fn three_tier_stations(specs: [(&str, usize, [DemandCurve; 4]); 3]) -> Vec<AppStation> {
    let mut out = Vec::with_capacity(12);
    for (tier, cores, [cpu, disk, tx, rx]) in specs {
        out.push(AppStation::new(&format!("{tier}-cpu"), cores, cpu));
        out.push(AppStation::new(&format!("{tier}-disk"), 1, disk));
        out.push(AppStation::new(&format!("{tier}-net-tx"), 1, tx));
        out.push(AppStation::new(&format!("{tier}-net-rx"), 1, rx));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_app() -> AppModel {
        AppModel {
            name: "tiny".into(),
            pages: 1,
            think_time: 1.0,
            stations: vec![
                AppStation::new("cpu", 4, DemandCurve::warming(0.01, 0.2, 20.0)),
                AppStation::new("disk", 1, DemandCurve::constant(0.02)),
            ],
        }
    }

    #[test]
    fn demands_follow_curves() {
        let app = tiny_app();
        let d1 = app.demands_at(1.0);
        let d100 = app.demands_at(100.0);
        assert!(d1[0] > d100[0]); // warming curve falls
        assert_eq!(d1[1], d100[1]); // constant stays
    }

    #[test]
    fn conversions_share_demands() {
        let app = tiny_app();
        let sim = app.sim_network(50).unwrap();
        let net = app.closed_network_at(50.0).unwrap();
        for (ss, qs) in sim.stations().iter().zip(net.stations().iter()) {
            assert!((ss.demand() - qs.demand()).abs() < 1e-15);
        }
        assert_eq!(net.think_time(), 1.0);
    }

    #[test]
    fn bottleneck_and_ceiling() {
        let app = tiny_app();
        let (i, name) = app.bottleneck();
        assert_eq!(i, 1);
        assert_eq!(name, "disk");
        assert!((app.max_throughput() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn closed_network_with_overrides() {
        let app = tiny_app();
        let net = app.closed_network_with(&[0.005, 0.004]).unwrap();
        assert!((net.demands()[0] - 0.005).abs() < 1e-15);
        assert!(app.closed_network_with(&[0.1]).is_err());
    }

    #[test]
    fn three_tier_builder_names() {
        let c = DemandCurve::constant(0.001);
        let st = three_tier_stations([
            ("load", 16, [c; 4]),
            ("app", 16, [c; 4]),
            ("db", 16, [c; 4]),
        ]);
        assert_eq!(st.len(), 12);
        assert_eq!(st[0].name, "load-cpu");
        assert_eq!(st[5].name, "app-disk");
        assert_eq!(st[11].name, "db-net-rx");
        assert_eq!(st[4].servers, 16);
        assert_eq!(st[5].servers, 1);
    }

    #[test]
    fn validation_rejects_broken_models() {
        let mut app = tiny_app();
        app.stations[0].servers = 0;
        assert!(app.validate().is_err());
        let mut app = tiny_app();
        app.think_time = -1.0;
        assert!(app.validate().is_err());
        let mut app = tiny_app();
        app.stations.clear();
        assert!(app.validate().is_err());
    }
}
