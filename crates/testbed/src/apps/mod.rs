//! Application models under test.
//!
//! An [`AppModel`] is the testbed's description of a deployed multi-tier
//! application: the 12 hardware stations of paper Fig. 2 (3 servers × CPU /
//! Disk / Net-Tx / Net-Rx), each with a concurrency-varying demand curve,
//! plus the workload's think time. From it the testbed derives
//!
//! * a [`mvasd_simnet::SimNetwork`] at a given concurrency (demand curves
//!   evaluated at that level — the "measured system"), and
//! * a [`mvasd_queueing::network::ClosedNetwork`] (the analytic model fed to
//!   MVA/MVASD).

pub mod jpetstore;
pub mod vins;

use crate::demand::DemandCurve;
use crate::TestbedError;
use mvasd_queueing::mva::{ClassSpec, Workload};
use mvasd_queueing::network::{ClosedNetwork, Station, StationKind};
use mvasd_simnet::{ContentionModel, Distribution, SimNetwork, SimStation};

/// One hardware resource of one server tier.
#[derive(Debug, Clone, PartialEq)]
pub struct AppStation {
    /// Station label, e.g. `"db-disk"`.
    pub name: String,
    /// Parallel servers (16 for the paper's multi-core CPUs, 1 otherwise).
    pub servers: usize,
    /// Concurrency-varying demand curve.
    pub curve: DemandCurve,
    /// Optional in-run software contention (locks, pools) — the effect the
    /// paper assumes "tuned prior to performance analysis". `None` (the
    /// default for the calibrated apps) keeps the system product-form;
    /// setting it lets robustness experiments violate the MVA assumptions
    /// on purpose.
    pub contention: Option<ContentionModel>,
}

impl AppStation {
    /// Convenience constructor.
    pub fn new(name: &str, servers: usize, curve: DemandCurve) -> Self {
        Self {
            name: name.to_string(),
            servers,
            curve,
            contention: None,
        }
    }

    /// Attaches in-run software contention (builder style).
    #[must_use]
    pub fn with_contention(mut self, c: ContentionModel) -> Self {
        self.contention = Some(c);
        self
    }
}

/// One customer class of a multiclass traffic mix over an [`AppModel`]: a
/// share of the total population, its own think time, and per-station
/// demand multipliers applied to the app's demand curves (1.0 = "visits
/// this resource exactly like the calibrated workflow").
#[derive(Debug, Clone, PartialEq)]
pub struct ClassMix {
    /// Class label, e.g. `"browse"`.
    pub name: String,
    /// Share of the total population (normalized across the mix).
    pub fraction: f64,
    /// Class think time (seconds).
    pub think_time: f64,
    /// Per-station demand multipliers, app station order.
    pub station_factors: Vec<f64>,
}

/// A deployed multi-tier application, ready to be load-tested.
#[derive(Debug, Clone, PartialEq)]
pub struct AppModel {
    /// Application name.
    pub name: String,
    /// Pages in the exercised workflow (documentation; throughput is
    /// reported per page, matching The Grinder's pages/second).
    pub pages: u32,
    /// Mean think time between page requests (seconds).
    pub think_time: f64,
    /// The hardware stations, in visiting order.
    pub stations: Vec<AppStation>,
}

impl AppModel {
    /// Validates all curves and basic parameters.
    pub fn validate(&self) -> Result<(), TestbedError> {
        if self.stations.is_empty() {
            return Err(TestbedError::InvalidParameter {
                what: "application must have stations",
            });
        }
        if !(self.think_time.is_finite() && self.think_time >= 0.0) {
            return Err(TestbedError::InvalidParameter {
                what: "think time must be finite and >= 0",
            });
        }
        for s in &self.stations {
            if s.servers == 0 {
                return Err(TestbedError::InvalidParameter {
                    what: "station needs at least one server",
                });
            }
            s.curve.validate()?;
        }
        Ok(())
    }

    /// Station names in order.
    pub fn station_names(&self) -> Vec<String> {
        self.stations.iter().map(|s| s.name.clone()).collect()
    }

    /// Server counts in order.
    pub fn server_counts(&self) -> Vec<usize> {
        self.stations.iter().map(|s| s.servers).collect()
    }

    /// Ground-truth demands at concurrency `n` (what the lab would measure
    /// with infinite precision).
    pub fn demands_at(&self, n: f64) -> Vec<f64> {
        self.stations.iter().map(|s| s.curve.at(n)).collect()
    }

    /// The simulated system at concurrency `n`: demand curves evaluated at
    /// `n`, exponential service, exponential think.
    pub fn sim_network(&self, n: usize) -> Result<SimNetwork, TestbedError> {
        self.validate()?;
        let stations = self
            .stations
            .iter()
            .map(|s| {
                let mut st = SimStation::queueing(&s.name, s.servers, s.curve.at(n as f64));
                if let Some(c) = &s.contention {
                    st = st.with_contention(c.clone());
                }
                st
            })
            .collect();
        Ok(SimNetwork::new(
            stations,
            Distribution::Exponential {
                mean: self.think_time,
            },
        )?)
    }

    /// The analytic closed network with demands evaluated at concurrency
    /// `n` (what MVA·i uses when its input demands were collected at level
    /// `i = n`).
    pub fn closed_network_at(&self, n: f64) -> Result<ClosedNetwork, TestbedError> {
        self.validate()?;
        let stations = self
            .stations
            .iter()
            .map(|s| Station::queueing(&s.name, s.servers, 1.0, s.curve.at(n)))
            .collect();
        Ok(ClosedNetwork::new(stations, self.think_time)?)
    }

    /// The analytic closed network with explicitly supplied demands (e.g.
    /// demands extracted from a measured campaign).
    pub fn closed_network_with(&self, demands: &[f64]) -> Result<ClosedNetwork, TestbedError> {
        self.closed_network_at(1.0)?
            .with_demands(demands)
            .map_err(Into::into)
    }

    /// Index and name of the asymptotic bottleneck (largest effective
    /// demand `D_k(∞)/C_k`).
    pub fn bottleneck(&self) -> (usize, &str) {
        let mut best = (0usize, 0.0f64);
        for (i, s) in self.stations.iter().enumerate() {
            let eff = s.curve.base / s.servers as f64;
            if eff > best.1 {
                best = (i, eff);
            }
        }
        (best.0, &self.stations[best.0].name)
    }

    /// Asymptotic maximum page throughput `1 / max_k(D_k(∞)/C_k)`,
    /// ignoring any contention rise.
    pub fn max_throughput(&self) -> f64 {
        let (i, _) = self.bottleneck();
        let s = &self.stations[i];
        s.servers as f64 / s.curve.base
    }

    /// A multiclass [`Workload`] over this app's stations: `total` customers
    /// split across the `mix` classes by largest-remainder apportionment of
    /// the (normalized) fractions, with each class demand being the app's
    /// demand curve evaluated at concurrency `n` times the class's
    /// per-station factor.
    ///
    /// Ties in the apportionment remainders go to the lowest class index, so
    /// the split is deterministic. Classes may end up with population 0 for
    /// small `total`; they still shape the model (they simply contribute no
    /// customers).
    pub fn workload_at(
        &self,
        total: usize,
        n: f64,
        mix: &[ClassMix],
    ) -> Result<Workload, TestbedError> {
        self.validate()?;
        if mix.is_empty() {
            return Err(TestbedError::InvalidParameter {
                what: "workload mix must have at least one class",
            });
        }
        let mut fraction_sum = 0.0;
        for class in mix {
            if !(class.fraction.is_finite() && class.fraction >= 0.0) {
                return Err(TestbedError::InvalidParameter {
                    what: "class fraction must be finite and >= 0",
                });
            }
            if !(class.think_time.is_finite() && class.think_time >= 0.0) {
                return Err(TestbedError::InvalidParameter {
                    what: "class think time must be finite and >= 0",
                });
            }
            if class.station_factors.len() != self.stations.len() {
                return Err(TestbedError::InvalidParameter {
                    what: "class station factors must match the station count",
                });
            }
            if class
                .station_factors
                .iter()
                .any(|f| !(f.is_finite() && *f >= 0.0))
            {
                return Err(TestbedError::InvalidParameter {
                    what: "class station factors must be finite and >= 0",
                });
            }
            fraction_sum += class.fraction;
        }
        // Each fraction is already finite and >= 0, so the sum is finite.
        if fraction_sum <= 0.0 {
            return Err(TestbedError::InvalidParameter {
                what: "class fractions must sum to a positive value",
            });
        }

        // Largest-remainder apportionment: floors first, then hand out the
        // leftover customers to the largest fractional parts (ties to the
        // lowest index for determinism).
        let quotas: Vec<f64> = mix
            .iter()
            .map(|c| total as f64 * c.fraction / fraction_sum)
            .collect();
        let mut pops: Vec<usize> = quotas.iter().map(|q| q.floor() as usize).collect();
        let assigned: usize = pops.iter().sum();
        let mut order: Vec<usize> = (0..mix.len()).collect();
        order.sort_by(|&a, &b| {
            let ra = quotas[a] - quotas[a].floor();
            let rb = quotas[b] - quotas[b].floor();
            rb.partial_cmp(&ra)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        for &i in order.iter().take(total.saturating_sub(assigned)) {
            pops[i] += 1;
        }

        let base = self.demands_at(n);
        let kinds: Vec<StationKind> = self
            .stations
            .iter()
            .map(|s| StationKind::Queueing { servers: s.servers })
            .collect();
        let classes: Vec<ClassSpec> = mix
            .iter()
            .zip(pops)
            .map(|(c, population)| ClassSpec {
                name: c.name.clone(),
                population,
                think_time: c.think_time,
                demands: base
                    .iter()
                    .zip(&c.station_factors)
                    .map(|(d, f)| d * f)
                    .collect(),
            })
            .collect();
        Ok(Workload::new(self.station_names(), kinds, classes)?)
    }
}

/// Builds the canonical 12-station, 3-tier station list of paper Fig. 2.
/// `specs` supplies, per tier (load, web/app, database), the CPU core count
/// and the four demand curves in CPU/Disk/Net-Tx/Net-Rx order.
pub(crate) fn three_tier_stations(specs: [(&str, usize, [DemandCurve; 4]); 3]) -> Vec<AppStation> {
    let mut out = Vec::with_capacity(12);
    for (tier, cores, [cpu, disk, tx, rx]) in specs {
        out.push(AppStation::new(&format!("{tier}-cpu"), cores, cpu));
        out.push(AppStation::new(&format!("{tier}-disk"), 1, disk));
        out.push(AppStation::new(&format!("{tier}-net-tx"), 1, tx));
        out.push(AppStation::new(&format!("{tier}-net-rx"), 1, rx));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_app() -> AppModel {
        AppModel {
            name: "tiny".into(),
            pages: 1,
            think_time: 1.0,
            stations: vec![
                AppStation::new("cpu", 4, DemandCurve::warming(0.01, 0.2, 20.0)),
                AppStation::new("disk", 1, DemandCurve::constant(0.02)),
            ],
        }
    }

    #[test]
    fn demands_follow_curves() {
        let app = tiny_app();
        let d1 = app.demands_at(1.0);
        let d100 = app.demands_at(100.0);
        assert!(d1[0] > d100[0]); // warming curve falls
        assert_eq!(d1[1], d100[1]); // constant stays
    }

    #[test]
    fn conversions_share_demands() {
        let app = tiny_app();
        let sim = app.sim_network(50).unwrap();
        let net = app.closed_network_at(50.0).unwrap();
        for (ss, qs) in sim.stations().iter().zip(net.stations().iter()) {
            assert!((ss.demand() - qs.demand()).abs() < 1e-15);
        }
        assert_eq!(net.think_time(), 1.0);
    }

    #[test]
    fn bottleneck_and_ceiling() {
        let app = tiny_app();
        let (i, name) = app.bottleneck();
        assert_eq!(i, 1);
        assert_eq!(name, "disk");
        assert!((app.max_throughput() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn closed_network_with_overrides() {
        let app = tiny_app();
        let net = app.closed_network_with(&[0.005, 0.004]).unwrap();
        assert!((net.demands()[0] - 0.005).abs() < 1e-15);
        assert!(app.closed_network_with(&[0.1]).is_err());
    }

    #[test]
    fn three_tier_builder_names() {
        let c = DemandCurve::constant(0.001);
        let st = three_tier_stations([
            ("load", 16, [c; 4]),
            ("app", 16, [c; 4]),
            ("db", 16, [c; 4]),
        ]);
        assert_eq!(st.len(), 12);
        assert_eq!(st[0].name, "load-cpu");
        assert_eq!(st[5].name, "app-disk");
        assert_eq!(st[11].name, "db-net-rx");
        assert_eq!(st[4].servers, 16);
        assert_eq!(st[5].servers, 1);
    }

    fn tiny_mix() -> Vec<ClassMix> {
        vec![
            ClassMix {
                name: "a".into(),
                fraction: 2.0,
                think_time: 1.0,
                station_factors: vec![1.0, 1.0],
            },
            ClassMix {
                name: "b".into(),
                fraction: 1.0,
                think_time: 0.5,
                station_factors: vec![0.5, 2.0],
            },
        ]
    }

    #[test]
    fn workload_at_apportions_by_largest_remainder() {
        let app = tiny_app();
        // 2:1 split of 10 → quotas 6.67/3.33 → floors 6/3 → leftover goes
        // to the largest remainder (class 0).
        let w = app.workload_at(10, 50.0, &tiny_mix()).unwrap();
        let pops: Vec<usize> = w.classes().iter().map(|c| c.population).collect();
        assert_eq!(pops, vec![7, 3]);
        assert_eq!(w.total_population(), 10);
        // Demands = curve(50) × factor, stations keep their server counts.
        let base = app.demands_at(50.0);
        assert!((w.classes()[1].demands[0] - 0.5 * base[0]).abs() < 1e-15);
        assert!((w.classes()[1].demands[1] - 2.0 * base[1]).abs() < 1e-15);
        assert_eq!(
            w.station_kinds()[0],
            mvasd_queueing::network::StationKind::Queueing { servers: 4 }
        );
    }

    #[test]
    fn workload_at_remainder_ties_go_to_the_lowest_index() {
        let app = tiny_app();
        let mut mix = tiny_mix();
        mix[0].fraction = 1.0; // equal shares, odd total → tie at 0.5
        let w = app.workload_at(5, 10.0, &mix).unwrap();
        let pops: Vec<usize> = w.classes().iter().map(|c| c.population).collect();
        assert_eq!(pops, vec![3, 2]);
    }

    #[test]
    fn workload_at_rejects_bad_mixes() {
        let app = tiny_app();
        assert!(app.workload_at(10, 10.0, &[]).is_err());
        let mut mix = tiny_mix();
        mix[0].fraction = -0.1;
        assert!(app.workload_at(10, 10.0, &mix).is_err());
        let mut mix = tiny_mix();
        mix[0].fraction = 0.0;
        mix[1].fraction = 0.0;
        assert!(app.workload_at(10, 10.0, &mix).is_err());
        let mut mix = tiny_mix();
        mix[1].station_factors.pop();
        assert!(app.workload_at(10, 10.0, &mix).is_err());
        let mut mix = tiny_mix();
        mix[1].station_factors[0] = f64::NAN;
        assert!(app.workload_at(10, 10.0, &mix).is_err());
        let mut mix = tiny_mix();
        mix[0].think_time = -1.0;
        assert!(app.workload_at(10, 10.0, &mix).is_err());
    }

    #[test]
    fn validation_rejects_broken_models() {
        let mut app = tiny_app();
        app.stations[0].servers = 0;
        assert!(app.validate().is_err());
        let mut app = tiny_app();
        app.think_time = -1.0;
        assert!(app.validate().is_err());
        let mut app = tiny_app();
        app.stations.clear();
        assert!(app.validate().is_err());
    }
}
