//! JPetStore — the open-source Pet Store e-commerce benchmark (paper
//! Section 4.3, Tables 3 & 5, Figs. 7–9, 11–12, 14–16).
//!
//! The paper's deployment: 16-core CPU machines, 1 GB initial data with
//! 2,000,000 items, 125,000-user datapool, think time 1 s, 14-page
//! workflow, concurrency tested at {1, 14, 28, 70, 140, 168, 210}.
//! Narrative facts encoded by the calibration:
//!
//! * "Typically this is a CPU heavy application" and "we notice saturation
//!   of CPU and disk with 140 users" — the 16-core DB CPU is the
//!   bottleneck with the DB disk close behind; the knee sits just above
//!   140 users;
//! * Fig. 7: "MVASD … is even able to pick up the deviation in throughput
//!   between 140 and 168 users" — a mild contention-driven demand rise on
//!   the DB CPU past ≈ 155 users makes measured throughput dip after its
//!   peak;
//! * Section 8 uses Chebyshev Nodes over `[a, b] = [1, 300]`.

use super::{three_tier_stations, AppModel, ClassMix};
use crate::demand::DemandCurve;
use crate::TestbedError;
use mvasd_queueing::mva::Workload;

/// Concurrency levels of the paper's JPetStore campaign.
pub const STANDARD_LEVELS: [u64; 7] = [1, 14, 28, 70, 140, 168, 210];

/// Chebyshev design interval of paper Section 8.
pub const CHEBYSHEV_RANGE: (f64, f64) = (1.0, 300.0);

/// Think time used in the paper's JPetStore tests.
pub const THINK_TIME: f64 = 1.0;

/// Pages in the shopping workflow.
pub const PAGES: u32 = 14;

/// Builds the calibrated JPetStore application model.
pub fn model() -> AppModel {
    let stations = three_tier_stations([
        (
            "load",
            16,
            [
                DemandCurve::warming(0.0060, 0.15, 40.0),
                DemandCurve::warming(0.0030, 0.15, 40.0),
                DemandCurve::warming(0.0015, 0.10, 30.0),
                DemandCurve::warming(0.0020, 0.10, 30.0),
            ],
        ),
        (
            "app",
            16,
            [
                DemandCurve::warming(0.0350, 0.20, 40.0),
                DemandCurve::warming(0.0025, 0.15, 40.0),
                DemandCurve::warming(0.0020, 0.10, 30.0),
                DemandCurve::warming(0.0020, 0.10, 30.0),
            ],
        ),
        (
            "db",
            16,
            [
                // THE bottleneck: 16-core CPU chewing through 2 M-item
                // catalogue queries; the knee lands at ≈ 140 users, and a
                // contention rise past ≈ 155 lowers the ceiling so measured
                // throughput peaks just past 140 and dips by ~3 % at 210 —
                // the feature MVASD "picks up" in the paper's Fig. 7.
                DemandCurve::warming(0.1350, 0.25, 40.0).with_contention(0.08, 155.0, 8.0),
                // DB disk saturates almost together with the CPU (~92 %).
                DemandCurve::warming(0.0080, 0.20, 40.0),
                DemandCurve::warming(0.0018, 0.10, 30.0),
                DemandCurve::warming(0.0015, 0.10, 30.0),
            ],
        ),
    ]);
    AppModel {
        name: "JPetStore".into(),
        pages: PAGES,
        think_time: THINK_TIME,
        stations,
    }
}

/// The three-class JPetStore traffic mix: catalogue browsing, checkout,
/// and a storefront API class.
///
/// * `browse` — catalogue searches over the 2 M-item inventory: DB-CPU
///   heavy like the calibrated workflow but nearly write-free on the DB
///   disk; human pacing (think 2 s);
/// * `checkout` — cart + order placement: order writes push the DB disk
///   *above* the calibrated workflow while query CPU drops a little;
///   think 1 s;
/// * `api` — lightweight stock/price lookups with minimal think time.
///
/// Demands are the app curves evaluated at concurrency `total`, so the
/// contention rise on `db-cpu` past ≈ 155 users is felt by every class.
pub fn workload_mix(total: usize) -> Result<Workload, TestbedError> {
    let app = model();
    let mix = [
        ClassMix {
            name: "browse".into(),
            fraction: 0.6,
            think_time: 2.0,
            station_factors: vec![
                0.90, 0.70, 0.90, 0.90, // load
                1.00, 0.60, 1.00, 1.00, // app: full page rendering
                1.00, 0.20, 0.90, 0.90, // db: query CPU, no order writes
            ],
        },
        ClassMix {
            name: "checkout".into(),
            fraction: 0.25,
            think_time: THINK_TIME,
            station_factors: vec![
                1.00, 1.00, 1.00, 1.00, // load
                1.10, 1.00, 1.00, 1.00, // app: cart/session logic
                0.80, 1.60, 1.00, 1.00, // db: order writes hit the disk
            ],
        },
        ClassMix {
            name: "api".into(),
            fraction: 0.15,
            think_time: 0.1,
            station_factors: vec![
                0.20, 0.15, 0.25, 0.25, // load
                0.25, 0.15, 0.30, 0.30, // app
                0.30, 0.10, 0.25, 0.25, // db
            ],
        },
    ];
    app.workload_at(total, total as f64, &mix)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn db_cpu_is_the_bottleneck() {
        let app = model();
        let (_, name) = app.bottleneck();
        assert_eq!(name, "db-cpu");
        // Pre-contention ceiling ≈ 16 / 0.135 ≈ 118.5 pages/s.
        assert!((app.max_throughput() - 16.0 / 0.135).abs() < 1e-9);
    }

    #[test]
    fn db_disk_close_behind_cpu() {
        let app = model();
        let x_star = app.max_throughput();
        let u_disk = x_star * app.stations[9].curve.base;
        assert!((0.85..1.0).contains(&u_disk), "got {u_disk}");
    }

    #[test]
    fn knee_just_above_140_users() {
        let app = model();
        let net = app.closed_network_at(140.0).unwrap();
        let knee = net.knee_population();
        assert!((130.0..180.0).contains(&knee), "knee {knee}");
    }

    #[test]
    fn contention_creates_throughput_dip_potential() {
        // The bottleneck demand rises by ~8 % across the contention zone,
        // so the asymptotic ceiling falls between N = 140 and N = 210.
        let app = model();
        let d140 = app.stations[8].curve.at(140.0);
        let d210 = app.stations[8].curve.at(210.0);
        assert!(d210 > d140 * 1.03, "d140 {d140}, d210 {d210}");
    }

    #[test]
    fn workload_mix_encodes_class_asymmetry() {
        let w = workload_mix(140).unwrap();
        assert_eq!(w.total_population(), 140);
        let pops: Vec<usize> = w.classes().iter().map(|c| c.population).collect();
        assert_eq!(pops.iter().sum::<usize>(), 140);
        assert_eq!(pops, vec![84, 35, 21]); // 0.6 / 0.25 / 0.15 of 140
        let base = model().demands_at(140.0);
        let browse = &w.classes()[0];
        let checkout = &w.classes()[1];
        // Checkout writes push the DB disk past the calibrated demand;
        // browse barely touches it.
        assert!(checkout.demands[9] > base[9]);
        assert!(browse.demands[9] < 0.3 * base[9]);
        assert_eq!(browse.think_time, 2.0);
    }

    #[test]
    fn model_is_valid() {
        let app = model();
        app.validate().unwrap();
        assert_eq!(app.stations.len(), 12);
        assert_eq!(app.pages, 14);
    }

    #[test]
    fn standard_levels_match_paper() {
        assert_eq!(STANDARD_LEVELS, [1, 14, 28, 70, 140, 168, 210]);
    }

    #[test]
    fn chebyshev_levels_match_paper_section8() {
        let (a, b) = CHEBYSHEV_RANGE;
        assert_eq!(
            mvasd_numerics::chebyshev::chebyshev_levels(3, a, b),
            vec![22, 151, 280]
        );
        assert_eq!(
            mvasd_numerics::chebyshev::chebyshev_levels(5, a, b),
            vec![9, 63, 151, 239, 293]
        );
        assert_eq!(
            mvasd_numerics::chebyshev::chebyshev_levels(7, a, b),
            vec![5, 34, 86, 151, 216, 268, 297]
        );
    }
}
