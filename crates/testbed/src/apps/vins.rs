//! VINS — the Vehicle INSurance registration application (paper Section
//! 4.3, Tables 2 & 4, Figs. 4–6, 10).
//!
//! The paper's deployment: 16-core CPU machines, 10 GB database
//! (13,000,000 customers), 200,000-user datapool, think time 1 s, Renew
//! Policy workflow of 7 pages, concurrency swept 1 → 1500. Narrative facts
//! the calibration below encodes (the numeric cells of Table 2 are corrupt
//! in the only available text, so constants are fit to the prose):
//!
//! * "the load injecting server disk and the database server disk reach
//!   near-saturation" — `load-disk` and `db-disk` carry the largest
//!   single-server demands;
//! * "The database server disk utilization value is 93 % compared to CPU
//!   utilization of about 35 %" — at the saturated throughput
//!   `X* = 1/D_db-disk ≈ 102 pages/s`, the 16-core DB CPU demand gives
//!   `X*·D/16 ≈ 0.35`;
//! * "Typically, this is a Disk heavy application" — the bottleneck is
//!   `db-disk`;
//! * Fig. 5/10: demands fall noticeably over the first couple hundred
//!   users (α = 10–25 %, τ ≈ 50–80).

use super::{three_tier_stations, AppModel, ClassMix};
use crate::demand::DemandCurve;
use crate::TestbedError;
use mvasd_queueing::mva::Workload;

/// Concurrency levels of the paper's VINS campaign (1 → 1500; the paper's
/// MVA·i labels include `MVA 203`, so 203 is one of the sampled levels).
pub const STANDARD_LEVELS: [u64; 9] = [1, 10, 52, 103, 203, 406, 812, 1218, 1500];

/// Think time used in the paper's VINS tests.
pub const THINK_TIME: f64 = 1.0;

/// Pages in the Renew Policy workflow.
pub const PAGES: u32 = 7;

/// Builds the calibrated VINS application model.
pub fn model() -> AppModel {
    let stations = three_tier_stations([
        (
            "load",
            16,
            [
                // Script execution / protocol handling on the injector.
                DemandCurve::warming(0.0040, 0.15, 60.0),
                // Logging + datapool reads: the injector disk runs hot
                // (≈ 87 % at saturation).
                DemandCurve::warming(0.0085, 0.20, 70.0),
                DemandCurve::warming(0.0012, 0.10, 50.0),
                DemandCurve::warming(0.0018, 0.10, 50.0),
            ],
        ),
        (
            "app",
            16,
            [
                DemandCurve::warming(0.0120, 0.20, 60.0),
                DemandCurve::warming(0.0022, 0.15, 60.0),
                DemandCurve::warming(0.0015, 0.10, 50.0),
                DemandCurve::warming(0.0015, 0.10, 50.0),
            ],
        ),
        (
            "db",
            16,
            [
                // 16-core DB CPU: ≈ 35 % busy at disk saturation.
                DemandCurve::warming(0.0550, 0.25, 80.0),
                // THE bottleneck: 9.8 ms/page ⇒ X* ≈ 102 pages/s.
                DemandCurve::warming(0.0098, 0.25, 80.0),
                DemandCurve::warming(0.0014, 0.10, 50.0),
                DemandCurve::warming(0.0012, 0.10, 50.0),
            ],
        ),
    ]);
    AppModel {
        name: "VINS".into(),
        pages: PAGES,
        think_time: THINK_TIME,
        stations,
    }
}

/// The three-class VINS traffic mix: the calibrated Renew Policy workflow
/// plus a read-mostly browse class and a lightweight API/status class.
///
/// * `renew` — the paper's workflow unchanged (factors all 1.0), half the
///   population, think 1 s;
/// * `browse` — policy lookups: read-mostly, so the write-heavy disks
///   (`load-disk` logging, `db-disk` policy writes) shrink hardest while
///   CPU work stays closer to baseline; slower human pacing (think 2 s);
/// * `api` — machine-to-machine status checks: tiny per-request demands
///   everywhere but nearly no think time (0.1 s), so the class still
///   pushes load.
///
/// Demands are the app curves evaluated at concurrency `total` (the mix is
/// a fixed-population model, so the curve level and the population agree).
pub fn workload_mix(total: usize) -> Result<Workload, TestbedError> {
    let app = model();
    let mix = [
        ClassMix {
            name: "renew".into(),
            fraction: 0.5,
            think_time: THINK_TIME,
            station_factors: vec![1.0; 12],
        },
        ClassMix {
            name: "browse".into(),
            fraction: 0.3,
            think_time: 2.0,
            station_factors: vec![
                0.80, 0.40, 0.70, 0.70, // load: less logging
                0.85, 0.60, 0.90, 0.90, // app: mostly render work
                0.75, 0.35, 0.80, 0.80, // db: reads, few policy writes
            ],
        },
        ClassMix {
            name: "api".into(),
            fraction: 0.2,
            think_time: 0.1,
            station_factors: vec![
                0.25, 0.15, 0.30, 0.30, // load
                0.30, 0.20, 0.35, 0.35, // app
                0.30, 0.20, 0.30, 0.30, // db
            ],
        },
    ];
    app.workload_at(total, total as f64, &mix)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn db_disk_is_the_bottleneck() {
        let app = model();
        let (_, name) = app.bottleneck();
        assert_eq!(name, "db-disk");
        // X* ≈ 102 pages/s.
        assert!((app.max_throughput() - 1.0 / 0.0098).abs() < 1e-9);
    }

    #[test]
    fn db_cpu_util_approx_35_pct_at_saturation() {
        let app = model();
        let x_star = app.max_throughput();
        let d_dbcpu = app.stations[8].curve.base;
        let u = x_star * d_dbcpu / 16.0;
        assert!((0.30..0.40).contains(&u), "got {u}");
    }

    #[test]
    fn load_disk_near_saturation() {
        let app = model();
        let x_star = app.max_throughput();
        let u = x_star * app.stations[1].curve.base;
        assert!((0.80..0.95).contains(&u), "got {u}");
    }

    #[test]
    fn model_is_valid_and_12_stations() {
        let app = model();
        app.validate().unwrap();
        assert_eq!(app.stations.len(), 12);
        assert_eq!(app.think_time, 1.0);
        assert_eq!(app.pages, 7);
    }

    #[test]
    fn demands_fall_with_concurrency() {
        let app = model();
        let d1 = app.demands_at(1.0);
        let d1500 = app.demands_at(1500.0);
        for (k, (a, b)) in d1.iter().zip(d1500.iter()).enumerate() {
            assert!(a > b, "station {k} demand should fall");
        }
    }

    #[test]
    fn standard_levels_ascending_with_203() {
        assert!(STANDARD_LEVELS.windows(2).all(|w| w[0] < w[1]));
        assert!(STANDARD_LEVELS.contains(&203));
        assert_eq!(*STANDARD_LEVELS.last().unwrap(), 1500);
    }

    #[test]
    fn workload_mix_splits_the_population_deterministically() {
        let w = workload_mix(54).unwrap();
        assert_eq!(w.classes().len(), 3);
        assert_eq!(w.total_population(), 54);
        let pops: Vec<usize> = w.classes().iter().map(|c| c.population).collect();
        assert_eq!(pops, vec![27, 16, 11]); // 0.5 / 0.3 / 0.2 of 54
        assert_eq!(w.classes()[0].name, "renew");
        // The renew class carries the unscaled calibrated demands.
        let base = model().demands_at(54.0);
        for (a, b) in w.classes()[0].demands.iter().zip(&base) {
            assert!((a - b).abs() < 1e-15);
        }
        // Browse is read-mostly: its db-disk demand shrinks hardest there.
        assert!(w.classes()[1].demands[9] < 0.5 * base[9]);
    }

    #[test]
    fn knee_population_in_low_hundreds() {
        // Saturation should begin well before the 1500-user sweep end, as
        // in the paper's Fig. 4 (throughput flat long before 1500).
        let app = model();
        let net = app.closed_network_at(1500.0).unwrap();
        let knee = net.knee_population();
        assert!((90.0..200.0).contains(&knee), "knee {knee}");
    }
}
