//! Load-test campaigns: one simulated load test per concurrency level.
//!
//! This is the measurement loop of the paper's evaluation: run The
//! Grinder at a set of concurrency levels (Step 2 of the Fig. 17 workflow),
//! monitor utilizations, and extract per-level service demands with the
//! Service Demand Law. Levels are independent, so the campaign fans out
//! across the workspace-wide scoped work queue
//! ([`mvasd_core::sweep::scoped_indexed`]). A panic inside one level's
//! load test is caught and surfaced as [`TestbedError::WorkerPanic`]
//! instead of aborting the whole campaign.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use mvasd_core::sweep::scoped_indexed;
use mvasd_obsv as obsv;

use crate::apps::AppModel;
use crate::grinder::{load_test, GrinderConfig, LoadTestResult};
use crate::monitor::{demands_from_row, UtilizationRow, UtilizationTable};
use crate::TestbedError;

/// Everything measured at one concurrency level.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasuredPoint {
    /// Concurrency level `N`.
    pub users: usize,
    /// Measured page throughput `X` (pages/s).
    pub throughput: f64,
    /// Measured mean page response time `R` (s).
    pub response: f64,
    /// Measured cycle time `R + Z` (s).
    pub cycle_time: f64,
    /// Per-station utilizations (fraction), network order.
    pub utilization: Vec<f64>,
    /// Service demands extracted via the Service Demand Law (s).
    pub demands: Vec<f64>,
}

/// A completed measurement campaign over several concurrency levels.
#[derive(Debug, Clone, PartialEq)]
pub struct Campaign {
    /// Application name.
    pub app_name: String,
    /// Station names, network order.
    pub stations: Vec<String>,
    /// Station server counts, network order.
    pub server_counts: Vec<usize>,
    /// Workload think time.
    pub think_time: f64,
    /// Measured points, ascending by `users`.
    pub points: Vec<MeasuredPoint>,
}

impl Campaign {
    /// The tested concurrency levels.
    pub fn levels(&self) -> Vec<u64> {
        self.points.iter().map(|p| p.users as u64).collect()
    }

    /// Measured throughput series.
    pub fn throughputs(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.throughput).collect()
    }

    /// Measured cycle-time series.
    pub fn cycle_times(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.cycle_time).collect()
    }

    /// Measured demand series of station `k` across levels.
    pub fn demand_series(&self, k: usize) -> Vec<f64> {
        self.points.iter().map(|p| p.demands[k]).collect()
    }

    /// Utilization series of station `k` across levels.
    pub fn utilization_series(&self, k: usize) -> Vec<f64> {
        self.points.iter().map(|p| p.utilization[k]).collect()
    }

    /// The measured point at concurrency `n`, if tested.
    pub fn at(&self, n: usize) -> Option<&MeasuredPoint> {
        self.points.iter().find(|p| p.users == n)
    }

    /// The campaign as a paper-style utilization table.
    pub fn utilization_table(&self) -> UtilizationTable {
        UtilizationTable {
            stations: self.stations.clone(),
            rows: self
                .points
                .iter()
                .map(|p| UtilizationRow {
                    users: p.users,
                    throughput: p.throughput,
                    response: p.response,
                    utilization: p.utilization.clone(),
                })
                .collect(),
        }
    }

    /// Station index by name.
    pub fn station_index(&self, name: &str) -> Option<usize> {
        self.stations.iter().position(|s| s == name)
    }

    /// Exports the measured demands as MVASD input samples, indexed by
    /// concurrency (the paper's main model: `D_k` as a function of `N`).
    pub fn to_demand_samples(&self) -> mvasd_core::profile::DemandSamples {
        mvasd_core::profile::DemandSamples {
            station_names: self.stations.clone(),
            server_counts: self.server_counts.clone(),
            think_time: self.think_time,
            levels: self.points.iter().map(|p| p.users as f64).collect(),
            demands: (0..self.stations.len())
                .map(|k| self.demand_series(k))
                .collect(),
        }
    }

    /// Exports the measured demands indexed by measured **throughput**
    /// (paper Section 7 / Fig. 11: "service demand vs. throughput …
    /// more tractable models when using open systems"). Points are
    /// reordered by ascending throughput, as interpolation requires.
    pub fn to_demand_samples_by_throughput(&self) -> mvasd_core::profile::DemandSamples {
        let mut order: Vec<usize> = (0..self.points.len()).collect();
        order.sort_by(|&a, &b| {
            self.points[a]
                .throughput
                .partial_cmp(&self.points[b].throughput)
                .expect("throughputs are finite")
        });
        mvasd_core::profile::DemandSamples {
            station_names: self.stations.clone(),
            server_counts: self.server_counts.clone(),
            think_time: self.think_time,
            levels: order.iter().map(|&i| self.points[i].throughput).collect(),
            demands: (0..self.stations.len())
                .map(|k| order.iter().map(|&i| self.points[i].demands[k]).collect())
                .collect(),
        }
    }
}

/// Campaign-wide controls.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignConfig {
    /// Duration of each load test (seconds of simulated time).
    pub test_duration: f64,
    /// Run levels concurrently on this many worker threads (1 = serial).
    pub parallelism: usize,
    /// Base RNG seed; each level derives its own stream from it.
    pub base_seed: u64,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        Self {
            test_duration: 600.0,
            parallelism: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            base_seed: 0x5eed,
        }
    }
}

/// Runs a measurement campaign for `app` at the given concurrency levels.
///
/// Each level is one independent simulated load test; levels run on a
/// scoped thread pool. Results come back sorted ascending by level.
pub fn run_campaign(
    app: &AppModel,
    levels: &[u64],
    cfg: &CampaignConfig,
) -> Result<Campaign, TestbedError> {
    if levels.is_empty() {
        return Err(TestbedError::InvalidParameter {
            what: "campaign needs at least one level",
        });
    }
    if levels.contains(&0) {
        return Err(TestbedError::InvalidParameter {
            what: "levels must be >= 1",
        });
    }
    if cfg.parallelism == 0 {
        return Err(TestbedError::InvalidParameter {
            what: "parallelism must be >= 1",
        });
    }
    app.validate()?;
    run_campaign_with(app, levels, cfg, |n| {
        let mut gcfg = GrinderConfig::for_users(n, cfg.test_duration);
        gcfg.seed ^= cfg.base_seed;
        load_test(app, &gcfg)
    })
}

/// Renders a worker panic payload as text for [`TestbedError::WorkerPanic`].
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// The campaign engine, generic over the per-level measurement job so the
/// panic-containment path is testable without a panicking simulator.
fn run_campaign_with<F>(
    app: &AppModel,
    levels: &[u64],
    cfg: &CampaignConfig,
    run_level: F,
) -> Result<Campaign, TestbedError>
where
    F: Fn(usize) -> Result<LoadTestResult, TestbedError> + Sync,
{
    let server_counts = app.server_counts();
    let _campaign_span = obsv::span_with("campaign.run", || {
        format!("app={} levels={}", app.name, levels.len())
    });
    obsv::counter("campaign.levels", levels.len() as u64);
    // Fan-out start, for the queue-wait vs execute split below. Clock reads
    // happen only with a recorder installed.
    let fanout_start = if obsv::enabled() {
        Some(Instant::now())
    } else {
        None
    };
    let mut collected: Vec<(usize, Result<LoadTestResult, TestbedError>)> =
        scoped_indexed(levels.len(), cfg.parallelism, |i| {
            let n = levels[i] as usize;
            // The span's thread id tags which worker served the level.
            let _level_span = obsv::span_with("campaign.level", || format!("n={n}"));
            // Queue wait: fan-out start to worker pickup. Execute: the
            // level's own measurement time.
            let exec_start = fanout_start.map(|t0| {
                obsv::observe_duration("campaign.queue_wait", t0.elapsed());
                Instant::now()
            });
            // Contain panics to the level that raised them: the other
            // levels keep running and the caller gets a typed error.
            let res = catch_unwind(AssertUnwindSafe(|| run_level(n))).unwrap_or_else(|payload| {
                Err(TestbedError::WorkerPanic {
                    level: n,
                    message: panic_message(payload),
                })
            });
            if let Some(start) = exec_start {
                obsv::observe_duration("campaign.execute", start.elapsed());
            }
            (n, res)
        });
    collected.sort_by_key(|(n, _)| *n);

    let mut points = Vec::with_capacity(collected.len());
    for (n, res) in collected {
        let res = res?;
        let row = UtilizationRow {
            users: n,
            throughput: res.throughput(),
            response: res.response_time(),
            utilization: res.utilizations(),
        };
        let demands =
            demands_from_row(&row, &server_counts).ok_or(TestbedError::InvalidParameter {
                what: "load test produced no completions; demands undefined",
            })?;
        points.push(MeasuredPoint {
            users: n,
            throughput: row.throughput,
            response: row.response,
            cycle_time: row.response + app.think_time,
            utilization: row.utilization,
            demands,
        });
    }

    Ok(Campaign {
        app_name: app.name.clone(),
        stations: app.station_names(),
        server_counts,
        think_time: app.think_time,
        points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::vins;

    fn quick_cfg() -> CampaignConfig {
        CampaignConfig {
            test_duration: 300.0,
            parallelism: 4,
            base_seed: 7,
        }
    }

    #[test]
    fn campaign_measures_ascending_levels() {
        let app = vins::model();
        let c = run_campaign(&app, &[25, 5, 1], &quick_cfg()).unwrap();
        assert_eq!(c.levels(), vec![1, 5, 25]);
        assert_eq!(c.points.len(), 3);
        // Throughput grows with concurrency pre-saturation.
        let xs = c.throughputs();
        assert!(xs[0] < xs[1] && xs[1] < xs[2], "{xs:?}");
    }

    #[test]
    fn demands_fall_with_level_like_the_paper() {
        let app = vins::model();
        let c = run_campaign(&app, &[1, 50, 200], &quick_cfg()).unwrap();
        let k = c.station_index("db-disk").unwrap();
        let d = c.demand_series(k);
        assert!(d[0] > d[2], "db-disk demand should fall: {d:?}");
    }

    #[test]
    fn campaign_table_finds_bottleneck() {
        let app = vins::model();
        let c = run_campaign(&app, &[150], &quick_cfg()).unwrap();
        let table = c.utilization_table();
        let b = table.measured_bottleneck().unwrap();
        assert_eq!(c.stations[b], "db-disk");
    }

    #[test]
    fn accessors() {
        let app = vins::model();
        let c = run_campaign(&app, &[1, 10], &quick_cfg()).unwrap();
        assert!(c.at(10).is_some());
        assert!(c.at(99).is_none());
        assert_eq!(c.cycle_times().len(), 2);
        assert_eq!(c.utilization_series(0).len(), 2);
        assert_eq!(c.station_index("nope"), None);
        assert_eq!(c.think_time, 1.0);
    }

    #[test]
    fn rejects_bad_configs() {
        let app = vins::model();
        assert!(run_campaign(&app, &[], &quick_cfg()).is_err());
        assert!(run_campaign(&app, &[0], &quick_cfg()).is_err());
        let bad = CampaignConfig {
            parallelism: 0,
            ..quick_cfg()
        };
        assert!(run_campaign(&app, &[1], &bad).is_err());
    }

    #[test]
    fn demand_samples_export_roundtrips() {
        let app = vins::model();
        let c = run_campaign(&app, &[1, 20, 60], &quick_cfg()).unwrap();
        let s = c.to_demand_samples();
        assert_eq!(s.levels, vec![1.0, 20.0, 60.0]);
        assert_eq!(s.demands.len(), 12);
        assert_eq!(s.demands[0].len(), 3);
        assert_eq!(s.think_time, 1.0);
        assert_eq!(s.server_counts[0], 16);

        let t = c.to_demand_samples_by_throughput();
        // Throughput-ordered levels must ascend.
        assert!(t.levels.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(t.demands[0].len(), 3);
    }

    #[test]
    fn worker_panic_surfaces_as_typed_error() {
        let app = vins::model();
        let cfg = quick_cfg();
        let err = run_campaign_with(&app, &[1, 5, 25], &cfg, |n| {
            if n == 5 {
                panic!("injected failure at level {n}");
            }
            let mut gcfg = GrinderConfig::for_users(n, cfg.test_duration);
            gcfg.seed ^= cfg.base_seed;
            load_test(&app, &gcfg)
        })
        .unwrap_err();
        match err {
            TestbedError::WorkerPanic { level, message } => {
                assert_eq!(level, 5);
                assert!(message.contains("injected failure"), "{message}");
            }
            other => panic!("expected WorkerPanic, got {other:?}"),
        }
    }

    #[test]
    fn worker_panic_does_not_abort_other_levels() {
        // With parallelism 1 the panicking level runs first; the remaining
        // levels must still be measured (the campaign fails *after* the
        // sweep, with the typed error, not by unwinding mid-sweep).
        let app = vins::model();
        let cfg = CampaignConfig {
            parallelism: 1,
            ..quick_cfg()
        };
        let measured = std::sync::Mutex::new(Vec::new());
        let err = run_campaign_with(&app, &[1, 5, 25], &cfg, |n| {
            if n == 1 {
                panic!("boom");
            }
            measured.lock().unwrap().push(n);
            let mut gcfg = GrinderConfig::for_users(n, cfg.test_duration);
            gcfg.seed ^= cfg.base_seed;
            load_test(&app, &gcfg)
        })
        .unwrap_err();
        assert!(matches!(err, TestbedError::WorkerPanic { level: 1, .. }));
        let mut seen = measured.into_inner().unwrap();
        seen.sort();
        assert_eq!(seen, vec![5, 25]);
    }

    #[test]
    fn serial_and_parallel_agree() {
        // Seeds are per-level, so parallelism must not change results.
        let app = vins::model();
        let serial = run_campaign(
            &app,
            &[1, 20],
            &CampaignConfig {
                parallelism: 1,
                ..quick_cfg()
            },
        )
        .unwrap();
        let parallel = run_campaign(&app, &[1, 20], &quick_cfg()).unwrap();
        assert_eq!(serial.points, parallel.points);
    }
}
