//! A load driver with The Grinder's configuration surface (paper Section
//! 4.1).
//!
//! The Grinder composes virtual users as `threads × processes × agents`,
//! ramps worker processes up every `processIncrementInterval`, staggers
//! thread starts with `initialSleepTime`, and runs either for a duration or
//! a number of runs. [`GrinderConfig`] carries the same knobs; `load_test`
//! maps them onto a `mvasd-simnet` run against an [`AppModel`] and returns
//! the simulated Grinder report (TPS, mean page time, per-resource
//! utilizations).

use crate::apps::AppModel;
use crate::TestbedError;
use mvasd_simnet::{SimConfig, SimReport, Simulation};

/// The Grinder-style test configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct GrinderConfig {
    /// `grinder.processes` — worker processes per agent.
    pub processes: u32,
    /// `grinder.threads` — worker threads per process.
    pub threads: u32,
    /// Number of agent (injector) machines.
    pub agents: u32,
    /// `grinder.duration` — test length in seconds.
    pub duration: f64,
    /// `grinder.processIncrementInterval` — seconds between starting
    /// successive worker processes (ramp-up); 0 starts everything at once.
    pub process_increment_interval: f64,
    /// `grinder.sleepTimeVariation` — if positive, think times are drawn
    /// from a Normal distribution (clamped at zero) with this relative
    /// standard deviation instead of the exponential default: "Varies the
    /// sleep times according to a Normal distribution with specified
    /// variance" (paper Section 4.1).
    pub sleep_time_variation: f64,
    /// Fraction of the run discarded as transient before steady-state
    /// statistics are taken (the paper runs tests "long enough … to remove
    /// such transient behavior").
    pub warmup_fraction: f64,
    /// RNG seed for the simulated run.
    pub seed: u64,
}

impl Default for GrinderConfig {
    fn default() -> Self {
        Self {
            processes: 1,
            threads: 1,
            agents: 1,
            duration: 600.0,
            process_increment_interval: 0.0,
            sleep_time_variation: 0.0,
            warmup_fraction: 0.3,
            seed: 0,
        }
    }
}

impl GrinderConfig {
    /// Total simulated virtual users:
    /// `threads × processes × agents` (paper Section 4.1).
    pub fn virtual_users(&self) -> usize {
        (self.threads as usize) * (self.processes as usize) * (self.agents as usize)
    }

    /// A config that drives exactly `n` users with sane defaults, seeding
    /// deterministically per level so campaign runs are reproducible but
    /// not correlated across levels.
    pub fn for_users(n: usize, duration: f64) -> Self {
        Self {
            processes: 1,
            threads: n as u32,
            agents: 1,
            duration,
            seed: 0x5eed ^ (n as u64).wrapping_mul(0x9e3779b97f4a7c15),
            ..Self::default()
        }
    }

    fn validate(&self) -> Result<(), TestbedError> {
        if self.virtual_users() == 0 {
            return Err(TestbedError::InvalidParameter {
                what: "processes, threads and agents must all be >= 1",
            });
        }
        if !(self.duration.is_finite() && self.duration > 0.0) {
            return Err(TestbedError::InvalidParameter {
                what: "duration must be finite and > 0",
            });
        }
        if !(self.process_increment_interval.is_finite() && self.process_increment_interval >= 0.0)
        {
            return Err(TestbedError::InvalidParameter {
                what: "process increment interval must be finite and >= 0",
            });
        }
        if !(0.0..0.9).contains(&self.warmup_fraction) {
            return Err(TestbedError::InvalidParameter {
                what: "warmup fraction must be in [0, 0.9)",
            });
        }
        if !(self.sleep_time_variation.is_finite() && self.sleep_time_variation >= 0.0) {
            return Err(TestbedError::InvalidParameter {
                what: "sleep time variation must be finite and >= 0",
            });
        }
        Ok(())
    }
}

/// Result of one simulated load test.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadTestResult {
    /// Number of virtual users driven.
    pub users: usize,
    /// The underlying simulation report.
    pub report: SimReport,
}

impl LoadTestResult {
    /// Pages per second (The Grinder's TPS column).
    pub fn throughput(&self) -> f64 {
        self.report.system.throughput
    }

    /// Mean page response time (seconds).
    pub fn response_time(&self) -> f64 {
        self.report.system.mean_response
    }

    /// Mean cycle time `R + Z` given the workload think time.
    pub fn cycle_time(&self, think_time: f64) -> f64 {
        self.response_time() + think_time
    }

    /// Per-station utilizations (network order) — the monitoring data of
    /// paper Tables 2–3.
    pub fn utilizations(&self) -> Vec<f64> {
        self.report.stations.iter().map(|s| s.utilization).collect()
    }
}

/// Runs one simulated load test of `app` under `cfg`.
///
/// The ramp-up schedule staggers users evenly across
/// `processes × process_increment_interval` seconds, approximating The
/// Grinder's per-process increments.
pub fn load_test(app: &AppModel, cfg: &GrinderConfig) -> Result<LoadTestResult, TestbedError> {
    cfg.validate()?;
    let users = cfg.virtual_users();
    let ramp_total = cfg.process_increment_interval * cfg.processes.saturating_sub(1) as f64;
    let stagger = if users > 1 {
        ramp_total / (users - 1) as f64
    } else {
        0.0
    };
    let warmup = (cfg.duration * cfg.warmup_fraction).max(ramp_total.min(cfg.duration * 0.8));

    let mut net = app.sim_network(users)?;
    if cfg.sleep_time_variation > 0.0 {
        net = net.with_think(mvasd_simnet::Distribution::NormalClamped {
            mean: app.think_time,
            std_dev: cfg.sleep_time_variation * app.think_time,
        })?;
    }
    let report = Simulation::new(
        net,
        SimConfig {
            customers: users,
            horizon: cfg.duration,
            warmup,
            seed: cfg.seed,
            stagger,
            bucket_width: (cfg.duration / 120.0).max(1.0),
        },
    )?
    .run()?;

    Ok(LoadTestResult { users, report })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::vins;

    #[test]
    fn virtual_user_arithmetic() {
        let cfg = GrinderConfig {
            processes: 4,
            threads: 25,
            agents: 2,
            ..GrinderConfig::default()
        };
        assert_eq!(cfg.virtual_users(), 200);
    }

    #[test]
    fn for_users_sets_population_and_unique_seeds() {
        let a = GrinderConfig::for_users(10, 100.0);
        let b = GrinderConfig::for_users(20, 100.0);
        assert_eq!(a.virtual_users(), 10);
        assert_eq!(b.virtual_users(), 20);
        assert_ne!(a.seed, b.seed);
    }

    #[test]
    fn single_user_load_test_measures_raw_demand() {
        let app = vins::model();
        let cfg = GrinderConfig::for_users(1, 400.0);
        let res = load_test(&app, &cfg).unwrap();
        // One user: R ≈ Σ D_k(1); X ≈ 1/(R + Z).
        let d_total: f64 = app.demands_at(1.0).iter().sum();
        let rel = (res.response_time() - d_total).abs() / d_total;
        assert!(rel < 0.10, "R {} vs ΣD {}", res.response_time(), d_total);
        let x_expect = 1.0 / (d_total + 1.0);
        let rel_x = (res.throughput() - x_expect).abs() / x_expect;
        assert!(rel_x < 0.05, "X {} vs {}", res.throughput(), x_expect);
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let app = vins::model();
        let bad = GrinderConfig {
            threads: 0,
            ..GrinderConfig::default()
        };
        assert!(load_test(&app, &bad).is_err());
        let bad = GrinderConfig {
            duration: 0.0,
            ..GrinderConfig::default()
        };
        assert!(load_test(&app, &bad).is_err());
        let bad = GrinderConfig {
            warmup_fraction: 0.95,
            ..GrinderConfig::default()
        };
        assert!(load_test(&app, &bad).is_err());
        let bad = GrinderConfig {
            process_increment_interval: -1.0,
            ..GrinderConfig::default()
        };
        assert!(load_test(&app, &bad).is_err());
    }

    #[test]
    fn sleep_time_variation_runs_and_preserves_mean_think() {
        // Normal-clamped think with the same mean: throughput should stay
        // within a few percent of the exponential-think run (think-time
        // distribution is a second-order effect on mean throughput).
        let app = vins::model();
        let base = load_test(&app, &GrinderConfig::for_users(30, 400.0)).unwrap();
        let varied = load_test(
            &app,
            &GrinderConfig {
                sleep_time_variation: 0.3,
                ..GrinderConfig::for_users(30, 400.0)
            },
        )
        .unwrap();
        let rel = (base.throughput() - varied.throughput()).abs() / base.throughput();
        assert!(
            rel < 0.05,
            "base {} varied {}",
            base.throughput(),
            varied.throughput()
        );
        // Negative variation rejected.
        let bad = GrinderConfig {
            sleep_time_variation: -0.1,
            ..GrinderConfig::default()
        };
        assert!(load_test(&app, &bad).is_err());
    }

    #[test]
    fn cycle_time_adds_think() {
        let app = vins::model();
        let res = load_test(&app, &GrinderConfig::for_users(1, 200.0)).unwrap();
        assert!((res.cycle_time(1.0) - res.response_time() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ramped_test_runs() {
        let app = vins::model();
        let cfg = GrinderConfig {
            processes: 5,
            threads: 4,
            agents: 1,
            duration: 300.0,
            process_increment_interval: 10.0,
            ..GrinderConfig::default()
        };
        let res = load_test(&app, &cfg).unwrap();
        assert_eq!(res.users, 20);
        assert!(res.throughput() > 0.0);
        // Early buckets must show the ramp (fewer completions).
        let ts = &res.report.time_series;
        let early: f64 = ts[0..3].iter().map(|b| b.tps).sum();
        let mid = ts.len() / 2;
        let late: f64 = ts[mid..mid + 3].iter().map(|b| b.tps).sum();
        assert!(early < late, "early {early} late {late}");
    }
}
