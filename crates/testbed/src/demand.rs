//! Concurrency-varying service-demand curves.
//!
//! The central empirical observation of the paper (Figs. 5, 10, 12): the
//! per-interaction service demand of a resource is *not* constant but falls
//! as concurrency rises — "caching of resources at CPU Disk to improve
//! efficient processing, batch processing at CPU Disk and superior branch
//! prediction at CPU" — and can rise again past saturation from contention
//! (the JPetStore throughput dip between 140 and 168 users that MVASD "is
//! even able to pick up", Fig. 7).
//!
//! [`DemandCurve`] models both effects:
//!
//! ```text
//! D(n) = base · (1 + α·e^{−(n−1)/τ}) · (1 + γ·σ((n − n₀)/w))
//! ```
//!
//! where the first factor is the warm-up/caching benefit (`α` = relative
//! extra cost of a cold, low-concurrency system; `τ` = concurrency scale on
//! which caches/batches become effective) and the second a logistic
//! contention penalty (`γ` = relative demand growth past the contention
//! point `n₀`). With `α = γ = 0` the curve is the constant demand classic
//! MVA assumes.

use crate::TestbedError;

/// A parametric concurrency-varying service demand `D(n)` (seconds per
/// interaction).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DemandCurve {
    /// Asymptotic (fully warmed, pre-contention) demand `base` in seconds.
    pub base: f64,
    /// Relative extra demand at `n = 1` (e.g. `0.25` = 25 % slower cold).
    pub warm_alpha: f64,
    /// Concurrency scale of the warm-up effect.
    pub warm_tau: f64,
    /// Relative demand growth at full contention (0 disables the effect).
    pub contention_gamma: f64,
    /// Concurrency at which contention is half-developed.
    pub contention_center: f64,
    /// Width of the contention transition.
    pub contention_width: f64,
}

impl DemandCurve {
    /// A constant demand (no variation) — what classic MVA assumes.
    pub fn constant(base: f64) -> Self {
        Self {
            base,
            warm_alpha: 0.0,
            warm_tau: 1.0,
            contention_gamma: 0.0,
            contention_center: 0.0,
            contention_width: 1.0,
        }
    }

    /// A falling curve with warm-up benefit only.
    pub fn warming(base: f64, alpha: f64, tau: f64) -> Self {
        Self {
            base,
            warm_alpha: alpha,
            warm_tau: tau,
            contention_gamma: 0.0,
            contention_center: 0.0,
            contention_width: 1.0,
        }
    }

    /// Adds a contention rise past `center` (builder style).
    #[must_use]
    pub fn with_contention(mut self, gamma: f64, center: f64, width: f64) -> Self {
        self.contention_gamma = gamma;
        self.contention_center = center;
        self.contention_width = width;
        self
    }

    /// Validates the parameters.
    pub fn validate(&self) -> Result<(), TestbedError> {
        let ok = self.base.is_finite()
            && self.base >= 0.0
            && self.warm_alpha.is_finite()
            && self.warm_alpha >= 0.0
            && self.warm_tau.is_finite()
            && self.warm_tau > 0.0
            && self.contention_gamma.is_finite()
            && self.contention_gamma >= 0.0
            && self.contention_center.is_finite()
            && self.contention_width.is_finite()
            && self.contention_width > 0.0;
        if ok {
            Ok(())
        } else {
            Err(TestbedError::InvalidParameter {
                what: "demand curve parameters out of domain",
            })
        }
    }

    /// Evaluates `D(n)` at (possibly fractional) concurrency `n ≥ 1`.
    pub fn at(&self, n: f64) -> f64 {
        let n = n.max(1.0);
        let warm = 1.0 + self.warm_alpha * (-(n - 1.0) / self.warm_tau).exp();
        let contention = if self.contention_gamma > 0.0 {
            let t = (n - self.contention_center) / self.contention_width;
            1.0 + self.contention_gamma / (1.0 + (-t).exp())
        } else {
            1.0
        };
        self.base * warm * contention
    }

    /// The cold (single-user) demand `D(1)`.
    pub fn cold(&self) -> f64 {
        self.at(1.0)
    }

    /// Samples the curve at a list of concurrency levels (the abscissa/
    /// ordinate arrays `a_k`, `b_k` of the paper's Algorithm 3).
    pub fn sample_at(&self, levels: &[u64]) -> Vec<f64> {
        levels.iter().map(|&n| self.at(n as f64)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn constant_curve_is_flat() {
        let c = DemandCurve::constant(0.01);
        for n in [1.0, 10.0, 100.0, 1000.0] {
            assert_eq!(c.at(n), 0.01);
        }
    }

    #[test]
    fn warming_curve_falls_monotonically_to_base() {
        let c = DemandCurve::warming(0.010, 0.3, 50.0);
        assert!(close(c.cold(), 0.013, 1e-12));
        let mut prev = f64::INFINITY;
        for i in 0..100 {
            let n = 1.0 + i as f64 * 10.0;
            let d = c.at(n);
            assert!(d <= prev + 1e-15, "must fall at n={n}");
            assert!(d >= 0.010 - 1e-15);
            prev = d;
        }
        assert!(close(c.at(5000.0), 0.010, 1e-6));
    }

    #[test]
    fn contention_raises_demand_past_center() {
        let c = DemandCurve::warming(0.010, 0.2, 30.0).with_contention(0.06, 150.0, 10.0);
        // Well before the center: essentially no contention.
        assert!(c.at(50.0) < 0.0105 * 1.01);
        // Well past: ~6 % above base.
        assert!(close(c.at(400.0), 0.010 * 1.06, 1e-5));
    }

    #[test]
    fn below_one_clamps_to_one() {
        let c = DemandCurve::warming(0.01, 0.5, 10.0);
        assert_eq!(c.at(0.0), c.at(1.0));
        assert_eq!(c.at(-5.0), c.at(1.0));
    }

    #[test]
    fn sample_at_matches_pointwise() {
        let c = DemandCurve::warming(0.02, 0.25, 40.0);
        let levels = [1u64, 14, 28, 70, 140];
        let s = c.sample_at(&levels);
        for (l, v) in levels.iter().zip(s.iter()) {
            assert_eq!(c.at(*l as f64), *v);
        }
    }

    #[test]
    fn validation() {
        assert!(DemandCurve::constant(0.01).validate().is_ok());
        assert!(DemandCurve::constant(-0.01).validate().is_err());
        assert!(DemandCurve::warming(0.01, -0.1, 10.0).validate().is_err());
        assert!(DemandCurve::warming(0.01, 0.1, 0.0).validate().is_err());
        assert!(DemandCurve::warming(0.01, 0.1, 10.0)
            .with_contention(0.1, 100.0, 0.0)
            .validate()
            .is_err());
        assert!(DemandCurve::constant(f64::NAN).validate().is_err());
    }

    #[test]
    fn paper_shape_fig5_like() {
        // The paper's Fig. 5: demands fall steeply at low concurrency then
        // flatten. Ratio of initial slope to late slope should be large.
        let c = DemandCurve::warming(0.0098, 0.25, 80.0);
        let slope_early = c.at(1.0) - c.at(51.0);
        let slope_late = c.at(801.0) - c.at(851.0);
        assert!(slope_early > 20.0 * slope_late);
    }
}
