//! [`ClosedSolver`] implementations for the MVASD family.
//!
//! These adapters put the paper's Algorithm 3 (and its single-server and
//! Schweitzer variants) behind the same interface as the static MVA
//! solvers in `mvasd-queueing`, so "MVA·i vs MVASD" comparisons — and any
//! pipeline stage that consumes a solver — are one-line swaps.
//!
//! The model bound at construction is a [`ServiceDemandProfile`] rather
//! than a static network: the defining feature of MVASD is that demands
//! are re-interpolated at every population step.
//!
//! The hierarchical Norton-aggregation family ([`HierarchicalSolver`] and
//! its model types) is re-exported here from `mvasd-queueing`, so
//! microservice-scale topologies slot into the same comparison pipelines
//! and [`crate::sweep::ScenarioSweep`] campaigns as every other backend.
//!
//! Likewise the first-class multiclass model: a [`Workload`] is a set of
//! [`ClassSpec`]s over a shared station list, and the class-aware solvers
//! ([`MulticlassMvaSolver`] streaming the carried lattice workspace,
//! [`MomSolver`] on normalizing-constant recurrences) stream per-class
//! [`MulticlassPoint`]s along a population *path* through the class
//! lattice — single-class is literally the 1-class special case (bit-for-bit
//! against the exact backend; see `tests/properties.rs`).

use mvasd_queueing::mva::{ClosedSolver, MvaSolution, SolverIter};
use mvasd_queueing::QueueingError;

pub use mvasd_queueing::hierarchy::{
    workload_fes_station, AggregationOptions, AggregationStats, HierarchicalNetwork,
    HierarchicalSolver, NetworkNode, ProfileCache, Subsystem,
};
pub use mvasd_queueing::mva::{
    multiclass_mva, run_until_classes, ClassMetrics, ClassPoint, ClassRunOutcome, ClassSpec,
    ClassStopReason, MomIter, MomSolver, MulticlassIter, MulticlassMvaSolver, MulticlassPoint,
    MulticlassSolution, MulticlassStepper, MulticlassWorkspace, Workload,
};

use crate::algorithm::{
    mvasd, mvasd_schweitzer, mvasd_single_server, MvasdIter, MvasdSchweitzerIter,
    MvasdSingleServerIter,
};
use crate::profile::ServiceDemandProfile;
use crate::CoreError;

impl From<CoreError> for QueueingError {
    fn from(e: CoreError) -> Self {
        match e {
            CoreError::InvalidParameter { what } => QueueingError::InvalidParameter { what },
            CoreError::Numerics(n) => QueueingError::Numerics(n),
            CoreError::Queueing(q) => q,
        }
    }
}

/// MVASD (paper Algorithm 3): exact multi-server MVA with per-population
/// interpolated service demands.
#[derive(Debug, Clone)]
pub struct MvasdSolver {
    profile: ServiceDemandProfile,
}

impl MvasdSolver {
    /// Binds the solver to an interpolated demand profile.
    pub fn new(profile: ServiceDemandProfile) -> Self {
        Self { profile }
    }

    /// The underlying profile.
    pub fn profile(&self) -> &ServiceDemandProfile {
        &self.profile
    }
}

impl ClosedSolver for MvasdSolver {
    fn name(&self) -> &str {
        "mvasd"
    }

    fn start(&self) -> Result<Box<dyn SolverIter>, QueueingError> {
        Ok(Box::new(MvasdIter::new(&self.profile)))
    }

    fn solve(&self, n_max: usize) -> Result<MvaSolution, QueueingError> {
        mvasd(&self.profile, n_max).map_err(QueueingError::from)
    }
}

/// The paper's "MVASD: Single-Server" baseline: interpolated demands
/// normalized by core count, Algorithm-1 recursion.
#[derive(Debug, Clone)]
pub struct MvasdSingleServerSolver {
    profile: ServiceDemandProfile,
}

impl MvasdSingleServerSolver {
    /// Binds the solver to an interpolated demand profile.
    pub fn new(profile: ServiceDemandProfile) -> Self {
        Self { profile }
    }
}

impl ClosedSolver for MvasdSingleServerSolver {
    fn name(&self) -> &str {
        "mvasd-single-server"
    }

    fn start(&self) -> Result<Box<dyn SolverIter>, QueueingError> {
        Ok(Box::new(MvasdSingleServerIter::new(&self.profile)))
    }

    fn solve(&self, n_max: usize) -> Result<MvaSolution, QueueingError> {
        mvasd_single_server(&self.profile, n_max).map_err(QueueingError::from)
    }
}

/// Approximate MVASD: Schweitzer fixed point with the Seidmann transform
/// over per-population interpolated demands. Expect the documented ~2–20 %
/// knee-region deviation of the Schweitzer family.
#[derive(Debug, Clone)]
pub struct MvasdSchweitzerSolver {
    profile: ServiceDemandProfile,
}

impl MvasdSchweitzerSolver {
    /// Binds the solver to an interpolated demand profile.
    pub fn new(profile: ServiceDemandProfile) -> Self {
        Self { profile }
    }
}

impl ClosedSolver for MvasdSchweitzerSolver {
    fn name(&self) -> &str {
        "mvasd-schweitzer"
    }

    fn start(&self) -> Result<Box<dyn SolverIter>, QueueingError> {
        Ok(Box::new(MvasdSchweitzerIter::new(&self.profile)))
    }

    fn solve(&self, n_max: usize) -> Result<MvaSolution, QueueingError> {
        mvasd_schweitzer(&self.profile, n_max).map_err(QueueingError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{DemandAxis, DemandSamples, InterpolationKind};
    use mvasd_queueing::mva::{ExactMvaSolver, MultiserverMvaSolver};
    use mvasd_queueing::network::{ClosedNetwork, Station};

    fn flat_profile(demand: f64, servers: usize) -> ServiceDemandProfile {
        let samples = DemandSamples {
            station_names: vec!["s0".into()],
            server_counts: vec![servers],
            think_time: 1.0,
            levels: vec![1.0, 100.0],
            demands: vec![vec![demand, demand]],
        };
        ServiceDemandProfile::from_samples(
            &samples,
            InterpolationKind::Linear,
            DemandAxis::Concurrency,
        )
        .unwrap()
    }

    #[test]
    fn mvasd_solvers_implement_the_trait() {
        let p = flat_profile(0.01, 1);
        let solvers: Vec<Box<dyn ClosedSolver>> = vec![
            Box::new(MvasdSolver::new(p.clone())),
            Box::new(MvasdSingleServerSolver::new(p.clone())),
            Box::new(MvasdSchweitzerSolver::new(p)),
        ];
        for s in &solvers {
            let sol = s.solve(30).unwrap();
            assert_eq!(sol.points.len(), 30, "{}", s.name());
        }
        assert_eq!(solvers[0].name(), "mvasd");
        assert_eq!(solvers[1].name(), "mvasd-single-server");
        assert_eq!(solvers[2].name(), "mvasd-schweitzer");
    }

    #[test]
    fn flat_profile_matches_static_solvers_through_trait() {
        // On a constant single-server profile the whole family is exact and
        // must agree with Algorithm 1 to machine precision.
        let p = flat_profile(0.016, 1);
        let net = ClosedNetwork::new(vec![Station::queueing("s0", 1, 1.0, 0.016)], 1.0).unwrap();
        let reference = ExactMvaSolver::new(net.clone()).solve(50).unwrap();
        let family: Vec<Box<dyn ClosedSolver>> = vec![
            Box::new(MvasdSolver::new(p.clone())),
            Box::new(MvasdSingleServerSolver::new(p)),
            Box::new(MultiserverMvaSolver::new(net)),
        ];
        for s in &family {
            let sol = s.solve(50).unwrap();
            for (a, b) in sol.points.iter().zip(reference.points.iter()) {
                assert!(
                    (a.throughput - b.throughput).abs() < 1e-9,
                    "{} n={}",
                    s.name(),
                    a.n
                );
            }
        }
    }

    #[test]
    fn zero_population_is_empty_across_the_family() {
        let p = flat_profile(0.01, 2);
        let family: Vec<Box<dyn ClosedSolver>> = vec![
            Box::new(MvasdSolver::new(p.clone())),
            Box::new(MvasdSingleServerSolver::new(p.clone())),
            Box::new(MvasdSchweitzerSolver::new(p)),
        ];
        for s in &family {
            let sol = s.solve(0).unwrap();
            assert!(sol.points.is_empty(), "{}", s.name());
            assert_eq!(
                &sol.station_names[..],
                &["s0".to_string()][..],
                "{}",
                s.name()
            );
        }
    }

    #[test]
    fn streaming_matches_batch_for_the_mvasd_family() {
        let p = flat_profile(0.012, 4);
        let family: Vec<Box<dyn ClosedSolver>> = vec![
            Box::new(MvasdSolver::new(p.clone())),
            Box::new(MvasdSingleServerSolver::new(p.clone())),
            Box::new(MvasdSchweitzerSolver::new(p)),
        ];
        for s in &family {
            let batch = s.solve(40).unwrap();
            let streamed = s.start().unwrap().drain(40).unwrap();
            assert_eq!(batch, streamed, "{}", s.name());

            // Snapshot mid-sweep and resume: the tail must be bit-identical.
            let mut iter = s.start().unwrap();
            for _ in 0..15 {
                iter.step().unwrap();
            }
            let snap = iter.snapshot();
            let tail = snap.resume().drain(40).unwrap();
            assert_eq!(tail.points, batch.points[15..], "{}", s.name());
        }
    }

    #[test]
    fn multiclass_backends_agree_through_the_trait() {
        use mvasd_queueing::network::StationKind;
        let w = Workload::new(
            vec!["cpu".into(), "disk".into()],
            vec![
                StationKind::Queueing { servers: 2 },
                StationKind::Queueing { servers: 1 },
            ],
            vec![
                ClassSpec {
                    name: "browse".into(),
                    population: 6,
                    think_time: 1.0,
                    demands: vec![0.02, 0.01],
                },
                ClassSpec {
                    name: "checkout".into(),
                    population: 4,
                    think_time: 0.5,
                    demands: vec![0.008, 0.03],
                },
            ],
        )
        .unwrap();
        let total = w.total_population();
        let family: Vec<Box<dyn ClosedSolver>> = vec![
            Box::new(MulticlassMvaSolver::new(w.clone())),
            Box::new(MomSolver::new(w)),
        ];
        let mut finals = Vec::new();
        for s in &family {
            let sol = s.solve(total).unwrap();
            assert_eq!(sol.points.len(), total, "{}", s.name());
            finals.push(sol.points.last().unwrap().throughput);
        }
        assert!((finals[0] - finals[1]).abs() <= 1e-8 * finals[0]);
    }

    #[test]
    fn core_error_converts_to_queueing_error() {
        let e: QueueingError = CoreError::InvalidParameter { what: "x" }.into();
        assert!(matches!(e, QueueingError::InvalidParameter { what: "x" }));
        let e: QueueingError = CoreError::Queueing(QueueingError::EmptyNetwork).into();
        assert_eq!(e, QueueingError::EmptyNetwork);
        let e: QueueingError =
            CoreError::Numerics(mvasd_numerics::NumericsError::SingularSystem).into();
        assert!(matches!(e, QueueingError::Numerics(_)));
    }
}
