//! Prediction-accuracy reports — the mean percentage deviations of paper
//! eq. 15 and the model-comparison layout of Tables 4–5.

use mvasd_numerics::stats::{max_pct_deviation, mean_pct_deviation};
use mvasd_queueing::mva::{ClosedSolver, MvaSolution};

use crate::CoreError;

/// Deviation of one model's predictions from measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviationReport {
    /// Model label (e.g. `"MVASD"`, `"MVA 203"`).
    pub model: String,
    /// Mean % deviation of throughput (paper eq. 15).
    pub throughput_mean_pct: f64,
    /// Max % deviation of throughput.
    pub throughput_max_pct: f64,
    /// Mean % deviation of cycle time `R + Z`.
    pub cycle_mean_pct: f64,
    /// Max % deviation of cycle time.
    pub cycle_max_pct: f64,
}

/// Extracts a model's predicted `(throughput, cycle time)` at the given
/// populations from a solved series. Errors if a level exceeds the solved
/// range or is zero.
pub fn predictions_at(
    solution: &MvaSolution,
    levels: &[u64],
) -> Result<(Vec<f64>, Vec<f64>), CoreError> {
    let mut xs = Vec::with_capacity(levels.len());
    let mut cs = Vec::with_capacity(levels.len());
    for &n in levels {
        let p = solution.at(n as usize).ok_or(CoreError::InvalidParameter {
            what: "level outside the solved population range",
        })?;
        xs.push(p.throughput);
        cs.push(p.cycle_time);
    }
    Ok((xs, cs))
}

/// Builds a deviation report from prediction and measurement series
/// (same levels, same order).
pub fn compare(
    model: &str,
    predicted_throughput: &[f64],
    predicted_cycle: &[f64],
    measured_throughput: &[f64],
    measured_cycle: &[f64],
) -> Result<DeviationReport, CoreError> {
    Ok(DeviationReport {
        model: model.to_string(),
        throughput_mean_pct: mean_pct_deviation(predicted_throughput, measured_throughput)?,
        throughput_max_pct: max_pct_deviation(predicted_throughput, measured_throughput)?,
        cycle_mean_pct: mean_pct_deviation(predicted_cycle, measured_cycle)?,
        cycle_max_pct: max_pct_deviation(predicted_cycle, measured_cycle)?,
    })
}

/// Convenience: deviation of a solved model against measured series at the
/// measured levels.
pub fn compare_solution(
    model: &str,
    solution: &MvaSolution,
    levels: &[u64],
    measured_throughput: &[f64],
    measured_cycle: &[f64],
) -> Result<DeviationReport, CoreError> {
    let (xs, cs) = predictions_at(solution, levels)?;
    compare(model, &xs, &cs, measured_throughput, measured_cycle)
}

/// Convenience: solves any [`ClosedSolver`] up to the largest measured
/// level and reports its deviation. The Tables 4–5 comparisons reduce to
/// one call per solver:
///
/// ```no_run
/// # use mvasd_core::accuracy::compare_solver;
/// # use mvasd_queueing::mva::ClosedSolver;
/// # fn demo(solvers: &[Box<dyn ClosedSolver>], levels: &[u64],
/// #         x_meas: &[f64], c_meas: &[f64]) {
/// for s in solvers {
///     let report = compare_solver(s.name(), s, levels, x_meas, c_meas).unwrap();
///     println!("{}: {:.2}%", report.model, report.throughput_mean_pct);
/// }
/// # }
/// ```
pub fn compare_solver<S: ClosedSolver + ?Sized>(
    model: &str,
    solver: &S,
    levels: &[u64],
    measured_throughput: &[f64],
    measured_cycle: &[f64],
) -> Result<DeviationReport, CoreError> {
    let n_max = levels.iter().copied().max().unwrap_or(0) as usize;
    if n_max == 0 || levels.contains(&0) {
        return Err(CoreError::InvalidParameter {
            what: "level outside the solved population range",
        });
    }
    // Stream the population sweep and keep only the measured levels: the
    // comparison never materializes the full series, so huge `n_max`
    // campaigns with a handful of levels stay O(levels) in memory.
    let mut iter = solver.start().map_err(CoreError::from)?;
    let mut xs = vec![0.0; levels.len()];
    let mut cs = vec![0.0; levels.len()];
    while iter.population() < n_max {
        let point = iter.step().map_err(CoreError::from)?;
        for (i, &level) in levels.iter().enumerate() {
            if level as usize == point.n {
                xs[i] = point.throughput;
                cs[i] = point.cycle_time;
            }
        }
    }
    compare(model, &xs, &cs, measured_throughput, measured_cycle)
}

/// Renders reports in the layout of paper Tables 4–5 (two metric blocks,
/// one row per model).
pub fn render_table(title: &str, reports: &[DeviationReport]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    out.push_str(&format!(
        "{:<28} {:>12} {:>12}\n",
        "Metric / Model", "Mean Dev(%)", "Max Dev(%)"
    ));
    out.push_str("Throughput (Pages/second)\n");
    for r in reports {
        out.push_str(&format!(
            "  {:<26} {:>12.2} {:>12.2}\n",
            r.model, r.throughput_mean_pct, r.throughput_max_pct
        ));
    }
    out.push_str("Response Time (Cycle Time R+Z)\n");
    for r in reports {
        out.push_str(&format!(
            "  {:<26} {:>12.2} {:>12.2}\n",
            r.model, r.cycle_mean_pct, r.cycle_max_pct
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvasd_queueing::mva::{PopulationPoint, StationPoint};

    fn solution() -> MvaSolution {
        MvaSolution {
            station_names: vec!["s".into()].into(),
            points: (1..=10)
                .map(|n| PopulationPoint {
                    n,
                    throughput: 10.0 * n as f64,
                    response: 0.01 * n as f64,
                    cycle_time: 0.01 * n as f64 + 1.0,
                    stations: vec![StationPoint {
                        queue: 0.0,
                        residence: 0.0,
                        utilization: 0.0,
                    }],
                })
                .collect(),
        }
    }

    #[test]
    fn predictions_extract_correct_levels() {
        let sol = solution();
        let (xs, cs) = predictions_at(&sol, &[1, 5, 10]).unwrap();
        assert_eq!(xs, vec![10.0, 50.0, 100.0]);
        assert_eq!(cs, vec![1.01, 1.05, 1.10]);
        assert!(predictions_at(&sol, &[11]).is_err());
        assert!(predictions_at(&sol, &[0]).is_err());
    }

    #[test]
    fn compare_computes_eq15() {
        let r = compare(
            "m",
            &[110.0, 90.0],
            &[1.0, 1.0],
            &[100.0, 100.0],
            &[1.0, 1.0],
        )
        .unwrap();
        assert!((r.throughput_mean_pct - 10.0).abs() < 1e-12);
        assert!((r.throughput_max_pct - 10.0).abs() < 1e-12);
        assert!((r.cycle_mean_pct - 0.0).abs() < 1e-12);
    }

    #[test]
    fn compare_solution_end_to_end() {
        let sol = solution();
        // Measurements exactly equal the model at levels 2 and 4.
        let r = compare_solution("exact", &sol, &[2, 4], &[20.0, 40.0], &[1.02, 1.04]).unwrap();
        assert!(r.throughput_mean_pct < 1e-12);
        assert!(r.cycle_mean_pct < 1e-12);
    }

    #[test]
    fn render_table_lists_models() {
        let r1 = compare("MVASD", &[1.0], &[1.0], &[1.0], &[1.0]).unwrap();
        let r2 = compare("MVA 203", &[1.2], &[1.2], &[1.0], &[1.0]).unwrap();
        let txt = render_table("Mean Deviation (VINS)", &[r1, r2]);
        assert!(txt.contains("MVASD"));
        assert!(txt.contains("MVA 203"));
        assert!(txt.contains("Throughput"));
        assert!(txt.contains("Cycle Time"));
        assert!(txt.contains("20.00")); // r2 deviation
    }

    #[test]
    fn compare_solver_solves_to_max_level() {
        use mvasd_queueing::mva::ExactMvaSolver;
        use mvasd_queueing::network::{ClosedNetwork, Station};
        let net = ClosedNetwork::new(vec![Station::queueing("s", 1, 1.0, 0.02)], 1.0).unwrap();
        let solver = ExactMvaSolver::new(net);
        // Measurements are the solver's own predictions: zero deviation.
        let sol = solver.solve(20).unwrap();
        let (xs, cs) = predictions_at(&sol, &[5, 20]).unwrap();
        let r = compare_solver("exact-mva", &solver, &[5, 20], &xs, &cs).unwrap();
        assert!(r.throughput_mean_pct < 1e-12);
        assert!(r.cycle_max_pct < 1e-12);
        assert!(compare_solver("exact-mva", &solver, &[], &[], &[]).is_err());
    }

    #[test]
    fn compare_rejects_mismatch() {
        assert!(compare("m", &[1.0, 2.0], &[1.0], &[1.0], &[1.0]).is_err());
        assert!(compare("m", &[1.0], &[1.0], &[1.0], &[1.0, 2.0]).is_err());
    }
}
