//! The three-step prediction workflow of paper Fig. 17.
//!
//! > "Depending on the range of concurrences and values, Step 1 should
//! > generate the load testing points using Chebyshev Nodes. This is
//! > followed by actual load tests in Step 2 to generate service demand
//! > samples. The final Step 3 integrates this input with spline
//! > interpolation to generate an array of service demands; the MVASD
//! > algorithm then predicts the throughput and cycle times of the
//! > application under test."
//!
//! Step 2 (driving the load) belongs to the testbed layer, so the workflow
//! type here is deliberately split around it: [`PredictionWorkflow::design`]
//! is Step 1, the caller runs the tests however their lab works, and
//! [`PredictionWorkflow::predict`] is Step 3. This keeps `mvasd-core` pure
//! math while still encoding the full recipe.

use mvasd_queueing::mva::{run_until, ClosedSolver, MvaSolution, RunOutcome, StopCondition};

use crate::designer::{design_levels, SamplingStrategy};
use crate::profile::{DemandAxis, DemandSamples, InterpolationKind, ServiceDemandProfile};
use crate::solver::{MvasdSchweitzerSolver, MvasdSingleServerSolver, MvasdSolver};
use crate::sweep::ScenarioSweep;
use crate::CoreError;

/// Which member of the MVASD family backs Step 3 of the workflow.
///
/// All variants implement [`ClosedSolver`], so switching backend — or
/// comparing against an external solver via
/// [`PredictionWorkflow::predict_with_solver`] — never changes the
/// surrounding pipeline code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverBackend {
    /// Exact multi-server MVASD (paper Algorithm 3) — the default.
    #[default]
    Mvasd,
    /// The paper's single-server baseline (demands normalized by cores).
    MvasdSingleServer,
    /// Approximate Schweitzer fixed point (fast for huge populations).
    MvasdSchweitzer,
}

/// The Fig. 17 workflow configuration.
///
/// ```
/// use mvasd_core::pipeline::PredictionWorkflow;
/// use mvasd_core::profile::DemandSamples;
///
/// let wf = PredictionWorkflow { test_points: 3, range: (1.0, 300.0),
///                               ..PredictionWorkflow::default() };
/// // Step 1: where to load test.
/// let levels = wf.design().unwrap();
/// assert_eq!(levels, vec![22, 151, 280]);
/// // Step 2 happens in your lab; suppose it measured these demands:
/// let samples = DemandSamples {
///     station_names: vec!["db".into()],
///     server_counts: vec![1],
///     think_time: 1.0,
///     levels: levels.iter().map(|&l| l as f64).collect(),
///     demands: vec![vec![0.0115, 0.0101, 0.0100]],
/// };
/// // Step 3: interpolate + MVASD.
/// let prediction = wf.predict(&samples, 300).unwrap();
/// assert!(prediction.last().throughput <= 100.0 + 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PredictionWorkflow {
    /// Step 1 point-placement strategy (the paper recommends Chebyshev).
    pub strategy: SamplingStrategy,
    /// Number of load tests to run.
    pub test_points: usize,
    /// Concurrency range `[a, b]` of interest.
    pub range: (f64, f64),
    /// Step 3 interpolation family (the paper uses cubic splines).
    pub interpolation: InterpolationKind,
    /// Demand abscissa (concurrency in the paper's main model).
    pub axis: DemandAxis,
    /// Step 3 solver backend (exact MVASD in the paper's workflow).
    pub backend: SolverBackend,
}

impl Default for PredictionWorkflow {
    fn default() -> Self {
        Self {
            strategy: SamplingStrategy::Chebyshev,
            test_points: 5,
            range: (1.0, 300.0),
            interpolation: InterpolationKind::CubicNotAKnot,
            axis: DemandAxis::Concurrency,
            backend: SolverBackend::default(),
        }
    }
}

impl PredictionWorkflow {
    /// **Step 1** — the concurrency levels at which to run load tests.
    pub fn design(&self) -> Result<Vec<u64>, CoreError> {
        design_levels(self.strategy, self.test_points, self.range.0, self.range.1)
    }

    /// **Step 3** — interpolate the measured demand samples and solve up
    /// to `n_max` with the configured [`SolverBackend`]. `samples.levels`
    /// need not equal the designed levels (labs sometimes can't hit exact
    /// user counts), but should cover a similar range.
    pub fn predict(&self, samples: &DemandSamples, n_max: usize) -> Result<MvaSolution, CoreError> {
        let solver = self.solver(samples)?;
        self.predict_with_solver(&solver, n_max)
    }

    /// Step 3 with the profile exposed (for utilization inspection, Fig. 9).
    pub fn predict_with_profile(
        &self,
        samples: &DemandSamples,
        n_max: usize,
    ) -> Result<(ServiceDemandProfile, MvaSolution), CoreError> {
        let profile = ServiceDemandProfile::from_samples(samples, self.interpolation, self.axis)?;
        let sol = self
            .solver_for_profile(profile.clone())
            .solve(n_max)
            .map_err(CoreError::from)?;
        Ok((profile, sol))
    }

    /// Builds the Step 3 solver for measured samples under this workflow's
    /// interpolation settings and backend.
    pub fn solver(&self, samples: &DemandSamples) -> Result<Box<dyn ClosedSolver>, CoreError> {
        let profile = ServiceDemandProfile::from_samples(samples, self.interpolation, self.axis)?;
        Ok(self.solver_for_profile(profile))
    }

    /// Wraps an already-built profile in the configured backend.
    pub fn solver_for_profile(&self, profile: ServiceDemandProfile) -> Box<dyn ClosedSolver> {
        match self.backend {
            SolverBackend::Mvasd => Box::new(MvasdSolver::new(profile)),
            SolverBackend::MvasdSingleServer => Box::new(MvasdSingleServerSolver::new(profile)),
            SolverBackend::MvasdSchweitzer => Box::new(MvasdSchweitzerSolver::new(profile)),
        }
    }

    /// Runs **any** [`ClosedSolver`] as the workflow's Step 3 — the hook
    /// that makes external backends (static MVA·i baselines, the testbed's
    /// simulation estimator) one-line swaps in comparison code.
    pub fn predict_with_solver<S: ClosedSolver + ?Sized>(
        &self,
        solver: &S,
        n_max: usize,
    ) -> Result<MvaSolution, CoreError> {
        solver.solve(n_max).map_err(CoreError::from)
    }

    /// Step 3 with early exit: streams the population sweep and stops at
    /// the first condition met (SLA ceiling, bottleneck saturation,
    /// throughput plateau, …) instead of always solving to `n_cap`. The
    /// outcome reports both the truncated series and *why* it stopped.
    pub fn predict_until(
        &self,
        samples: &DemandSamples,
        conditions: &[StopCondition],
        n_cap: usize,
    ) -> Result<RunOutcome, CoreError> {
        let solver = self.solver(samples)?;
        let mut iter = solver.start().map_err(CoreError::from)?;
        run_until(iter.as_mut(), conditions, n_cap).map_err(CoreError::from)
    }

    /// A [`ScenarioSweep`] seeded with this workflow's interpolation,
    /// axis, and backend: the entry point for what-if families over one
    /// set of measured samples.
    pub fn scenario_sweep(&self, samples: DemandSamples) -> ScenarioSweep {
        ScenarioSweep::new(samples)
            .interpolation(self.interpolation)
            .axis(self.axis)
            .backend(self.backend)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_lab_measure(levels: &[u64]) -> DemandSamples {
        // A "lab" whose true demand curve is D(n) = 0.010 + 0.002·e^{-n/50}.
        let truth = |n: f64| 0.010 + 0.002 * (-n / 50.0).exp();
        DemandSamples {
            station_names: vec!["db".into()],
            server_counts: vec![1],
            think_time: 1.0,
            levels: levels.iter().map(|&l| l as f64).collect(),
            demands: vec![levels.iter().map(|&l| truth(l as f64)).collect()],
        }
    }

    #[test]
    fn full_workflow_predicts_the_true_system() {
        let wf = PredictionWorkflow {
            test_points: 5,
            range: (1.0, 300.0),
            ..PredictionWorkflow::default()
        };
        let levels = wf.design().unwrap();
        assert_eq!(levels, vec![9, 63, 151, 239, 293]);
        let samples = fake_lab_measure(&levels);
        let sol = wf.predict(&samples, 300).unwrap();
        // The true system saturates at 1/D(n→∞) ≈ 1/0.010 ≈ 100 (asymptote
        // ~0.010 + tiny); MVASD should land within a percent or two.
        let x = sol.last().throughput;
        assert!((97.0..=100.5).contains(&x), "got {x}");
    }

    #[test]
    fn three_chebyshev_points_already_accurate() {
        // Paper Fig. 16: "even with just 3 Chebyshev Nodes, the predicted
        // throughput and cycle times are quite accurate."
        let wf7 = PredictionWorkflow {
            test_points: 7,
            ..PredictionWorkflow::default()
        };
        let wf3 = PredictionWorkflow {
            test_points: 3,
            ..PredictionWorkflow::default()
        };
        let sol7 = wf7
            .predict(&fake_lab_measure(&wf7.design().unwrap()), 300)
            .unwrap();
        let sol3 = wf3
            .predict(&fake_lab_measure(&wf3.design().unwrap()), 300)
            .unwrap();
        for n in [10usize, 50, 150, 300] {
            let x7 = sol7.at(n).unwrap().throughput;
            let x3 = sol3.at(n).unwrap().throughput;
            assert!((x7 - x3).abs() / x7 < 0.02, "n={n}: {x3} vs {x7}");
        }
    }

    #[test]
    fn predict_with_profile_exposes_interpolant() {
        let wf = PredictionWorkflow::default();
        let samples = fake_lab_measure(&[1, 100, 300]);
        let (profile, sol) = wf.predict_with_profile(&samples, 100).unwrap();
        assert_eq!(profile.stations().len(), 1);
        assert_eq!(sol.points.len(), 100);
    }

    #[test]
    fn default_matches_paper_recommendation() {
        let wf = PredictionWorkflow::default();
        assert_eq!(wf.strategy, SamplingStrategy::Chebyshev);
        assert_eq!(wf.interpolation, InterpolationKind::CubicNotAKnot);
        assert_eq!(wf.axis, DemandAxis::Concurrency);
    }

    #[test]
    fn predict_until_stops_at_the_sla_ceiling() {
        use mvasd_queueing::mva::StopReason;
        let wf = PredictionWorkflow::default();
        let samples = fake_lab_measure(&[1, 100, 300]);
        let full = wf.predict(&samples, 300).unwrap();
        let outcome = wf
            .predict_until(
                &samples,
                &[StopCondition::SlaResponseTime { max_response: 1.0 }],
                300,
            )
            .unwrap();
        assert!(matches!(outcome.reason, StopReason::Met(_)));
        assert!(outcome.solution.points.len() < 300);
        // The streamed prefix is bit-identical to the batch solve.
        assert_eq!(
            outcome.solution.points,
            full.points[..outcome.solution.points.len()]
        );
        assert!(outcome.solution.last().response > 1.0);
    }

    #[test]
    fn scenario_sweep_inherits_workflow_settings() {
        let wf = PredictionWorkflow::default();
        let samples = fake_lab_measure(&[1, 100, 300]);
        let full = wf.predict(&samples, 60).unwrap();
        let mut sweep = wf.scenario_sweep(samples);
        let report = sweep
            .run(&[crate::sweep::Scenario::new("baseline").cap(60)])
            .unwrap();
        assert_eq!(report.results[0].solution, full);
    }

    #[test]
    fn design_errors_propagate() {
        let wf = PredictionWorkflow {
            test_points: 0,
            ..PredictionWorkflow::default()
        };
        assert!(wf.design().is_err());
    }
}
