//! Load-test sample placement — paper Section 8.
//!
//! "Typically, performance testing experts pick arbitrary points to
//! generate load tests." The paper instead derives the tested concurrency
//! levels from Chebyshev Nodes (eq. 16–17), which avoid the Runge
//! oscillation that equi-spaced or random placements suffer when the
//! demand samples are spline-interpolated (Fig. 15). This module provides
//! all three strategies so the benches can reproduce the comparison.

use mvasd_numerics::chebyshev::chebyshev_levels;
use mvasd_numerics::rng::Xoshiro256pp;

use crate::CoreError;

/// How to place the `k` load-test concurrency levels on `[a, b]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SamplingStrategy {
    /// Chebyshev Nodes (paper eq. 17) — the paper's recommendation.
    Chebyshev,
    /// Equi-spaced points including both endpoints.
    EquiSpaced,
    /// Uniform random points (what "arbitrary" testing in practice does).
    Random {
        /// RNG seed for reproducibility.
        seed: u64,
    },
}

/// Designs `points` integer concurrency levels in `[a, b]` under the given
/// strategy. Levels come back ascending and deduplicated (so fewer than
/// `points` levels can be returned if the interval is narrow).
pub fn design_levels(
    strategy: SamplingStrategy,
    points: usize,
    a: f64,
    b: f64,
) -> Result<Vec<u64>, CoreError> {
    if points == 0 {
        return Err(CoreError::InvalidParameter {
            what: "need at least one design point",
        });
    }
    if !(a.is_finite() && b.is_finite() && a >= 1.0 && b > a) {
        return Err(CoreError::InvalidParameter {
            what: "need finite 1 <= a < b",
        });
    }
    let mut levels: Vec<u64> = match strategy {
        SamplingStrategy::Chebyshev => chebyshev_levels(points, a, b),
        SamplingStrategy::EquiSpaced => {
            if points == 1 {
                vec![(0.5 * (a + b)).round() as u64]
            } else {
                (0..points)
                    .map(|i| {
                        let t = i as f64 / (points - 1) as f64;
                        (a + t * (b - a)).round().max(1.0) as u64
                    })
                    .collect()
            }
        }
        SamplingStrategy::Random { seed } => {
            let mut rng = Xoshiro256pp::seed_from_u64(seed);
            (0..points)
                .map(|_| rng.uniform_inclusive(a, b).round().max(1.0) as u64)
                .collect()
        }
    };
    levels.sort_unstable();
    levels.dedup();
    Ok(levels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chebyshev_matches_paper_section_8() {
        assert_eq!(
            design_levels(SamplingStrategy::Chebyshev, 3, 1.0, 300.0).unwrap(),
            vec![22, 151, 280]
        );
        assert_eq!(
            design_levels(SamplingStrategy::Chebyshev, 5, 1.0, 300.0).unwrap(),
            vec![9, 63, 151, 239, 293]
        );
        assert_eq!(
            design_levels(SamplingStrategy::Chebyshev, 7, 1.0, 300.0).unwrap(),
            vec![5, 34, 86, 151, 216, 268, 297]
        );
    }

    #[test]
    fn equispaced_includes_endpoints() {
        let l = design_levels(SamplingStrategy::EquiSpaced, 5, 1.0, 301.0).unwrap();
        assert_eq!(l, vec![1, 76, 151, 226, 301]);
        let single = design_levels(SamplingStrategy::EquiSpaced, 1, 1.0, 99.0).unwrap();
        assert_eq!(single, vec![50]);
    }

    #[test]
    fn random_is_reproducible_and_in_range() {
        let a = design_levels(SamplingStrategy::Random { seed: 4 }, 10, 1.0, 300.0).unwrap();
        let b = design_levels(SamplingStrategy::Random { seed: 4 }, 10, 1.0, 300.0).unwrap();
        assert_eq!(a, b);
        for &l in &a {
            assert!((1..=300).contains(&l));
        }
        let c = design_levels(SamplingStrategy::Random { seed: 5 }, 10, 1.0, 300.0).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn levels_ascending_unique() {
        for strat in [
            SamplingStrategy::Chebyshev,
            SamplingStrategy::EquiSpaced,
            SamplingStrategy::Random { seed: 1 },
        ] {
            let l = design_levels(strat, 12, 1.0, 50.0).unwrap();
            assert!(l.windows(2).all(|w| w[0] < w[1]), "{strat:?}: {l:?}");
        }
    }

    #[test]
    fn rejects_bad_arguments() {
        assert!(design_levels(SamplingStrategy::Chebyshev, 0, 1.0, 300.0).is_err());
        assert!(design_levels(SamplingStrategy::Chebyshev, 3, 0.0, 300.0).is_err());
        assert!(design_levels(SamplingStrategy::Chebyshev, 3, 10.0, 10.0).is_err());
        assert!(design_levels(SamplingStrategy::Chebyshev, 3, f64::NAN, 10.0).is_err());
    }
}
