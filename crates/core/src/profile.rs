//! Service-demand profiles: the interpolated demand arrays of Algorithm 3.
//!
//! A profile owns, per station, the continuous function `h_k` built from the
//! measured `(level, demand)` samples — the paper's
//! `SSⁿ_k ← h(a_k, b_k, n)`. The interpolation family is pluggable (the
//! paper uses cubic splines; linear/PCHIP/smoothing exist for the
//! ablations), and the abscissa can be either **concurrency** (the paper's
//! main model) or **throughput** (Section 7 / Fig. 11, "more tractable …
//! when using open systems"). Outside the sampled range the profile clamps
//! to the boundary demand (paper eq. 14).

use mvasd_numerics::interp::{
    BoundaryCondition, CubicSpline, Extrapolation, Interpolant, LinearInterp, PchipInterp,
    SmoothingSpline,
};
use std::sync::Arc;

use crate::CoreError;

/// Which interpolant family builds `h_k`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InterpolationKind {
    /// Piecewise linear (the paper's cheap baseline).
    Linear,
    /// Natural cubic spline.
    CubicNatural,
    /// Not-a-knot cubic spline (Scilab `interp()`-like; the paper's choice).
    CubicNotAKnot,
    /// Monotone cubic (never overshoots the samples).
    Pchip,
    /// Smoothing spline with parameter `lambda` (paper eq. 12).
    Smoothing {
        /// Roughness-penalty weight λ ≥ 0.
        lambda: f64,
    },
}

/// What the demand samples are indexed by.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DemandAxis {
    /// Demand as a function of concurrency `n` (paper Algorithm 3).
    Concurrency,
    /// Demand as a function of system throughput `X` (paper Fig. 11); the
    /// solver then feeds back the previous iteration's throughput.
    Throughput,
}

/// Raw measured demand samples, decoupled from any testbed type so the
/// algorithm layer stays pure math.
#[derive(Debug, Clone, PartialEq)]
pub struct DemandSamples {
    /// Station names, network order.
    pub station_names: Vec<String>,
    /// Servers per station (`C_k`).
    pub server_counts: Vec<usize>,
    /// Workload think time `Z`.
    pub think_time: f64,
    /// Sampled abscissae (concurrency levels or throughputs), ascending.
    pub levels: Vec<f64>,
    /// `demands[k][i]` = demand of station `k` at `levels[i]` (seconds).
    pub demands: Vec<Vec<f64>>,
}

impl DemandSamples {
    /// Restricts the samples to the subset of levels at positions `keep`
    /// (used by the sample-count ablation of paper Fig. 12).
    pub fn subset(&self, keep: &[usize]) -> Result<DemandSamples, CoreError> {
        if keep.is_empty() || keep.iter().any(|&i| i >= self.levels.len()) {
            return Err(CoreError::InvalidParameter {
                what: "subset indices out of range or empty",
            });
        }
        Ok(DemandSamples {
            station_names: self.station_names.clone(),
            server_counts: self.server_counts.clone(),
            think_time: self.think_time,
            levels: keep.iter().map(|&i| self.levels[i]).collect(),
            demands: self
                .demands
                .iter()
                .map(|row| keep.iter().map(|&i| row[i]).collect())
                .collect(),
        })
    }

    fn validate(&self) -> Result<(), CoreError> {
        let k = self.station_names.len();
        if k == 0 {
            return Err(CoreError::InvalidParameter {
                what: "need at least one station",
            });
        }
        if self.server_counts.len() != k || self.demands.len() != k {
            return Err(CoreError::InvalidParameter {
                what: "station_names, server_counts and demands must have equal length",
            });
        }
        if self.server_counts.contains(&0) {
            return Err(CoreError::InvalidParameter {
                what: "server counts must be >= 1",
            });
        }
        if !(self.think_time.is_finite() && self.think_time >= 0.0) {
            return Err(CoreError::InvalidParameter {
                what: "think time must be finite and >= 0",
            });
        }
        if self.levels.is_empty() {
            return Err(CoreError::InvalidParameter {
                what: "need at least one sampled level",
            });
        }
        for row in &self.demands {
            if row.len() != self.levels.len() {
                return Err(CoreError::InvalidParameter {
                    what: "each station needs one demand per level",
                });
            }
            if row.iter().any(|d| !(d.is_finite() && *d >= 0.0)) {
                return Err(CoreError::InvalidParameter {
                    what: "demands must be finite and >= 0",
                });
            }
        }
        Ok(())
    }
}

/// One station's interpolated demand function.
#[derive(Clone)]
pub struct StationProfile {
    /// Station name.
    pub name: String,
    /// Server count `C_k`.
    pub servers: usize,
    interp: Arc<dyn Interpolant>,
}

impl std::fmt::Debug for StationProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StationProfile")
            .field("name", &self.name)
            .field("servers", &self.servers)
            .field("domain", &self.interp.domain())
            .finish()
    }
}

impl StationProfile {
    /// Interpolated demand at abscissa `x` (clamped outside the sampled
    /// range per paper eq. 14). Negative interpolation artifacts are
    /// floored at zero — a demand cannot be negative.
    pub fn demand_at(&self, x: f64) -> f64 {
        self.interp.eval(x).max(0.0)
    }

    /// Slope of the interpolated demand (the paper updates "the slope of
    /// estimated throughput … as a function of the service demand slope").
    pub fn demand_slope_at(&self, x: f64) -> f64 {
        self.interp.deriv(x)
    }
}

/// The full interpolated demand model handed to the MVASD solver.
///
/// Cloning is cheap: the per-station interpolants are shared behind `Arc`.
#[derive(Debug, Clone)]
pub struct ServiceDemandProfile {
    stations: Vec<StationProfile>,
    think_time: f64,
    axis: DemandAxis,
    levels: Vec<f64>,
}

impl ServiceDemandProfile {
    /// Builds the profile from measured samples.
    ///
    /// With a single sampled level the profile degenerates to constant
    /// demands (MVASD then coincides with Algorithm 2, which is exactly the
    /// paper's MVA·i given demands sampled at level i).
    pub fn from_samples(
        samples: &DemandSamples,
        kind: InterpolationKind,
        axis: DemandAxis,
    ) -> Result<Self, CoreError> {
        samples.validate()?;
        let mut stations = Vec::with_capacity(samples.station_names.len());
        for (k, name) in samples.station_names.iter().enumerate() {
            let interp = build_interpolant(&samples.levels, &samples.demands[k], kind)?;
            stations.push(StationProfile {
                name: name.clone(),
                servers: samples.server_counts[k],
                interp,
            });
        }
        Ok(Self {
            stations,
            think_time: samples.think_time,
            axis,
            levels: samples.levels.clone(),
        })
    }

    /// The per-station profiles.
    pub fn stations(&self) -> &[StationProfile] {
        &self.stations
    }

    /// Workload think time `Z`.
    pub fn think_time(&self) -> f64 {
        self.think_time
    }

    /// Interpolation abscissa semantics.
    pub fn axis(&self) -> DemandAxis {
        self.axis
    }

    /// The sampled abscissae this profile was built from.
    pub fn sampled_levels(&self) -> &[f64] {
        &self.levels
    }

    /// All station demands at abscissa `x` — the array `SSⁿ` of Algorithm 3.
    pub fn demands_at(&self, x: f64) -> Vec<f64> {
        self.stations.iter().map(|s| s.demand_at(x)).collect()
    }

    /// Station index by name.
    pub fn station_index(&self, name: &str) -> Option<usize> {
        self.stations.iter().position(|s| s.name == name)
    }
}

fn build_interpolant(
    levels: &[f64],
    demands: &[f64],
    kind: InterpolationKind,
) -> Result<Arc<dyn Interpolant>, CoreError> {
    // Single sample: constant function via the clamped 2-point degenerate
    // (duplicate the point with a tiny offset is ugly; use a dedicated
    // constant wrapper instead).
    if levels.len() == 1 {
        return Ok(Arc::new(ConstantDemand {
            level: levels[0],
            value: demands[0],
        }));
    }
    let interp: Arc<dyn Interpolant> = match kind {
        InterpolationKind::Linear => {
            Arc::new(LinearInterp::new(levels, demands)?.with_extrapolation(Extrapolation::Clamp))
        }
        InterpolationKind::CubicNatural => Arc::new(
            CubicSpline::new(levels, demands, BoundaryCondition::Natural)?
                .with_extrapolation(Extrapolation::Clamp),
        ),
        InterpolationKind::CubicNotAKnot => Arc::new(
            CubicSpline::new(levels, demands, BoundaryCondition::NotAKnot)?
                .with_extrapolation(Extrapolation::Clamp),
        ),
        InterpolationKind::Pchip => {
            Arc::new(PchipInterp::new(levels, demands)?.with_extrapolation(Extrapolation::Clamp))
        }
        InterpolationKind::Smoothing { lambda } => {
            if levels.len() < 3 {
                // Smoothing needs >= 3 knots; degrade to linear.
                Arc::new(
                    LinearInterp::new(levels, demands)?.with_extrapolation(Extrapolation::Clamp),
                )
            } else {
                Arc::new(
                    SmoothingSpline::fit(levels, demands, lambda)?
                        .with_extrapolation(Extrapolation::Clamp),
                )
            }
        }
    };
    Ok(interp)
}

/// Constant-demand interpolant for single-sample profiles.
#[derive(Debug, Clone, Copy)]
struct ConstantDemand {
    level: f64,
    value: f64,
}

impl Interpolant for ConstantDemand {
    fn eval(&self, _x: f64) -> f64 {
        self.value
    }
    fn deriv(&self, _x: f64) -> f64 {
        0.0
    }
    fn domain(&self) -> (f64, f64) {
        (self.level, self.level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> DemandSamples {
        DemandSamples {
            station_names: vec!["cpu".into(), "disk".into()],
            server_counts: vec![4, 1],
            think_time: 1.0,
            levels: vec![1.0, 50.0, 100.0, 200.0],
            demands: vec![
                vec![0.030, 0.026, 0.024, 0.023],
                vec![0.012, 0.011, 0.0108, 0.0105],
            ],
        }
    }

    #[test]
    fn profile_interpolates_and_clamps() {
        let p = ServiceDemandProfile::from_samples(
            &samples(),
            InterpolationKind::CubicNotAKnot,
            DemandAxis::Concurrency,
        )
        .unwrap();
        // Passes through samples.
        let d = p.demands_at(50.0);
        assert!((d[0] - 0.026).abs() < 1e-10);
        assert!((d[1] - 0.011).abs() < 1e-10);
        // Clamps beyond the range (paper eq. 14).
        let d = p.demands_at(5000.0);
        assert!((d[0] - 0.023).abs() < 1e-12);
        let d = p.demands_at(0.5);
        assert!((d[0] - 0.030).abs() < 1e-12);
    }

    #[test]
    fn all_interpolation_kinds_pass_through_knots() {
        for kind in [
            InterpolationKind::Linear,
            InterpolationKind::CubicNatural,
            InterpolationKind::CubicNotAKnot,
            InterpolationKind::Pchip,
            InterpolationKind::Smoothing { lambda: 0.0 },
        ] {
            let p = ServiceDemandProfile::from_samples(&samples(), kind, DemandAxis::Concurrency)
                .unwrap();
            let d = p.demands_at(100.0);
            assert!((d[0] - 0.024).abs() < 1e-8, "{kind:?}");
        }
    }

    #[test]
    fn single_sample_profile_is_constant() {
        let s = DemandSamples {
            station_names: vec!["s".into()],
            server_counts: vec![1],
            think_time: 0.5,
            levels: vec![28.0],
            demands: vec![vec![0.02]],
        };
        let p = ServiceDemandProfile::from_samples(
            &s,
            InterpolationKind::CubicNotAKnot,
            DemandAxis::Concurrency,
        )
        .unwrap();
        assert_eq!(p.demands_at(1.0), vec![0.02]);
        assert_eq!(p.demands_at(999.0), vec![0.02]);
        assert_eq!(p.stations()[0].demand_slope_at(10.0), 0.0);
    }

    #[test]
    fn two_sample_smoothing_degrades_to_linear() {
        let s = DemandSamples {
            station_names: vec!["s".into()],
            server_counts: vec![1],
            think_time: 0.5,
            levels: vec![1.0, 100.0],
            demands: vec![vec![0.02, 0.01]],
        };
        let p = ServiceDemandProfile::from_samples(
            &s,
            InterpolationKind::Smoothing { lambda: 1.0 },
            DemandAxis::Concurrency,
        )
        .unwrap();
        assert!((p.demands_at(50.5)[0] - 0.015).abs() < 1e-12);
    }

    #[test]
    fn negative_artifacts_floored() {
        // A wiggly spline could dip below zero on extreme data; the profile
        // must never return a negative demand.
        let s = DemandSamples {
            station_names: vec!["s".into()],
            server_counts: vec![1],
            think_time: 0.0,
            levels: vec![1.0, 2.0, 3.0, 4.0],
            demands: vec![vec![1.0, 0.001, 1.0, 0.001]],
        };
        let p = ServiceDemandProfile::from_samples(
            &s,
            InterpolationKind::CubicNotAKnot,
            DemandAxis::Concurrency,
        )
        .unwrap();
        for i in 0..=60 {
            let x = 1.0 + i as f64 * 0.05;
            assert!(p.demands_at(x)[0] >= 0.0, "x={x}");
        }
    }

    #[test]
    fn subset_selects_levels() {
        let s = samples();
        let sub = s.subset(&[0, 2]).unwrap();
        assert_eq!(sub.levels, vec![1.0, 100.0]);
        assert_eq!(sub.demands[0], vec![0.030, 0.024]);
        assert!(s.subset(&[]).is_err());
        assert!(s.subset(&[9]).is_err());
    }

    #[test]
    fn validation_rejects_malformed_samples() {
        let mut s = samples();
        s.server_counts = vec![4];
        assert!(ServiceDemandProfile::from_samples(
            &s,
            InterpolationKind::Linear,
            DemandAxis::Concurrency
        )
        .is_err());

        let mut s = samples();
        s.demands[1].pop();
        assert!(ServiceDemandProfile::from_samples(
            &s,
            InterpolationKind::Linear,
            DemandAxis::Concurrency
        )
        .is_err());

        let mut s = samples();
        s.demands[0][0] = -1.0;
        assert!(ServiceDemandProfile::from_samples(
            &s,
            InterpolationKind::Linear,
            DemandAxis::Concurrency
        )
        .is_err());

        let mut s = samples();
        s.think_time = f64::NAN;
        assert!(ServiceDemandProfile::from_samples(
            &s,
            InterpolationKind::Linear,
            DemandAxis::Concurrency
        )
        .is_err());

        let mut s = samples();
        s.server_counts[0] = 0;
        assert!(ServiceDemandProfile::from_samples(
            &s,
            InterpolationKind::Linear,
            DemandAxis::Concurrency
        )
        .is_err());
    }

    #[test]
    fn axis_and_accessors() {
        let p = ServiceDemandProfile::from_samples(
            &samples(),
            InterpolationKind::Pchip,
            DemandAxis::Throughput,
        )
        .unwrap();
        assert_eq!(p.axis(), DemandAxis::Throughput);
        assert_eq!(p.think_time(), 1.0);
        assert_eq!(p.station_index("disk"), Some(1));
        assert_eq!(p.station_index("nope"), None);
        assert_eq!(p.sampled_levels().len(), 4);
        assert_eq!(p.stations()[0].servers, 4);
        // Debug impl smoke test.
        assert!(format!("{:?}", p.stations()[0]).contains("cpu"));
    }

    #[test]
    fn demand_slope_negative_on_falling_curve() {
        let p = ServiceDemandProfile::from_samples(
            &samples(),
            InterpolationKind::CubicNotAKnot,
            DemandAxis::Concurrency,
        )
        .unwrap();
        assert!(p.stations()[0].demand_slope_at(25.0) < 0.0);
    }
}
