//! Warm-restart scenario sweeps over families of related MVASD models.
//!
//! Capacity-planning sessions rarely solve one model: they solve a *family*
//! — "what if demands drop 10 %?", "what if we double the cores?", "where
//! does the SLA break?" — and many of those questions share a model or need
//! only a prefix of the population sweep. Because every solver in the
//! workspace now exposes a resumable population iterator
//! ([`SolverIter`](mvasd_queueing::mva::SolverIter)), a sweep engine can
//! answer each question from the *longest already-computed prefix* instead
//! of recomputing from population 1.
//!
//! [`ScenarioSweep`] groups scenarios by a fingerprint of the resolved
//! model; scenarios that share a model share one iterator and its memoized
//! point prefix, both within a `run` call and across calls (warm restarts).
//! Stop conditions ([`StopCondition`]) cut sweeps short the moment the
//! question is answered, and [`SweepReport`] records how many population
//! steps the engine actually computed versus how many a naive
//! one-batch-solve-per-scenario run would have, so the saving is visible
//! rather than folklore.
//!
//! Independent model groups run concurrently on [`scoped_indexed`], the
//! same scoped-thread work-queue pattern the testbed uses for load-test
//! campaigns.

use std::collections::HashMap;
use std::sync::Mutex;

use std::sync::Arc;

use mvasd_obsv as obsv;
use mvasd_queueing::hierarchy::{
    AggregationOptions, HierarchicalNetwork, HierarchicalSolver, ProfileCache,
};
use mvasd_queueing::mva::{
    ClassSpec, ClosedSolver, MulticlassMvaSolver, MvaPoint, MvaSolution, SolverIter, StopCondition,
    StopReason, Workload,
};
use mvasd_queueing::QueueingError;

use crate::pipeline::SolverBackend;
use crate::profile::{DemandAxis, DemandSamples, InterpolationKind, ServiceDemandProfile};
use crate::solver::{MvasdSchweitzerSolver, MvasdSingleServerSolver, MvasdSolver};
use crate::CoreError;

// The scoped pool itself lives in `mvasd_numerics::pool` so the queueing
// layer (which `core` depends on) can fan out hierarchical sub-solves on
// the same primitive. Re-exported here because this module is its
// historical home and the testbed reaches it through this path.
pub use mvasd_numerics::pool::{effective_workers, scoped_indexed, scoped_indexed_min_chunk};

/// One what-if question over a base demand model: a model transform plus
/// the conditions under which its sweep may stop early.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Human-readable scenario label (reported back in results).
    pub label: String,
    /// Uniform multiplier applied to every station's demand samples.
    pub demand_scale: f64,
    /// Optional per-station multipliers (composed with `demand_scale`);
    /// must match the base model's station count.
    pub station_scales: Option<Vec<f64>>,
    /// Overrides the base think time when set.
    pub think_time: Option<f64>,
    /// Overrides the base per-station server counts when set.
    pub server_counts: Option<Vec<usize>>,
    /// Per-class demand multipliers (workload bases only); must match the
    /// base workload's class count.
    pub class_scales: Option<Vec<f64>>,
    /// Early-exit conditions; the sweep stops at the first population
    /// where any holds. Empty = run to the population cap.
    pub stop: Vec<StopCondition>,
    /// Population cap for this scenario; `None` uses the sweep default.
    pub n_cap: Option<usize>,
}

impl Scenario {
    /// A baseline scenario: the unmodified model, swept to the cap.
    pub fn new(label: &str) -> Self {
        Self {
            label: label.to_string(),
            demand_scale: 1.0,
            station_scales: None,
            think_time: None,
            server_counts: None,
            class_scales: None,
            stop: Vec::new(),
            n_cap: None,
        }
    }

    /// Scales every station's demands uniformly (e.g. `0.9` = 10 % faster).
    pub fn scale_demands(mut self, factor: f64) -> Self {
        self.demand_scale = factor;
        self
    }

    /// Sets per-station demand multipliers, network order.
    pub fn scale_stations(mut self, factors: Vec<f64>) -> Self {
        self.station_scales = Some(factors);
        self
    }

    /// Overrides the workload think time.
    pub fn with_think_time(mut self, z: f64) -> Self {
        self.think_time = Some(z);
        self
    }

    /// Overrides the per-station server counts.
    pub fn with_server_counts(mut self, counts: Vec<usize>) -> Self {
        self.server_counts = Some(counts);
        self
    }

    /// Sets per-class demand multipliers (workload bases only) — e.g.
    /// "checkout traffic runs 30 % heavier" without touching the other
    /// classes.
    pub fn scale_classes(mut self, factors: Vec<f64>) -> Self {
        self.class_scales = Some(factors);
        self
    }

    /// Adds an early-exit condition.
    pub fn until(mut self, condition: StopCondition) -> Self {
        self.stop.push(condition);
        self
    }

    /// Caps this scenario's population sweep.
    pub fn cap(mut self, n_cap: usize) -> Self {
        self.n_cap = Some(n_cap);
        self
    }

    /// Applies the transform to a hierarchical base model. Demand scales
    /// apply per flat leaf (depth-first order, as in
    /// [`HierarchicalNetwork::flatten`]); server-count overrides are not
    /// supported — a hierarchical node's server counts are part of its
    /// structure, so change the tree instead.
    fn resolve_hierarchy(
        &self,
        base: &HierarchicalNetwork,
    ) -> Result<HierarchicalNetwork, CoreError> {
        if !(self.demand_scale.is_finite() && self.demand_scale > 0.0) {
            return Err(CoreError::InvalidParameter {
                what: "demand scale must be finite and > 0",
            });
        }
        if self.server_counts.is_some() {
            return Err(CoreError::InvalidParameter {
                what: "server count overrides are not supported for hierarchical sweeps",
            });
        }
        if self.class_scales.is_some() {
            return Err(CoreError::InvalidParameter {
                what: "class scales need a workload base (ScenarioSweep::over_workload)",
            });
        }
        let k_count = base.leaf_count();
        let mut factors = vec![self.demand_scale; k_count];
        if let Some(scales) = &self.station_scales {
            if scales.len() != k_count {
                return Err(CoreError::InvalidParameter {
                    what: "station scale count must match the flat leaf count",
                });
            }
            if scales.iter().any(|s| !(s.is_finite() && *s > 0.0)) {
                return Err(CoreError::InvalidParameter {
                    what: "station scales must be finite and > 0",
                });
            }
            for (f, s) in factors.iter_mut().zip(scales) {
                *f *= s;
            }
        }
        let mut net = base
            .with_leaf_scales(&factors)
            .map_err(CoreError::Queueing)?;
        if let Some(z) = self.think_time {
            net = net.with_think_time(z).map_err(CoreError::Queueing)?;
        }
        Ok(net)
    }

    /// Applies the transform to a multiclass workload base. Demand and
    /// station scales multiply every class's demand row; class scales
    /// multiply one class's whole row; a think-time override applies to
    /// every class. Server counts are part of the workload's station kinds,
    /// so overrides are rejected (change the base instead).
    fn resolve_workload(&self, base: &Workload) -> Result<Workload, CoreError> {
        if !(self.demand_scale.is_finite() && self.demand_scale > 0.0) {
            return Err(CoreError::InvalidParameter {
                what: "demand scale must be finite and > 0",
            });
        }
        if self.server_counts.is_some() {
            return Err(CoreError::InvalidParameter {
                what: "server count overrides are not supported for workload sweeps",
            });
        }
        let k_count = base.station_count();
        if let Some(scales) = &self.station_scales {
            if scales.len() != k_count {
                return Err(CoreError::InvalidParameter {
                    what: "station scale count must match the station count",
                });
            }
            if scales.iter().any(|s| !(s.is_finite() && *s > 0.0)) {
                return Err(CoreError::InvalidParameter {
                    what: "station scales must be finite and > 0",
                });
            }
        }
        if let Some(scales) = &self.class_scales {
            if scales.len() != base.class_count() {
                return Err(CoreError::InvalidParameter {
                    what: "class scale count must match the class count",
                });
            }
            if scales.iter().any(|s| !(s.is_finite() && *s > 0.0)) {
                return Err(CoreError::InvalidParameter {
                    what: "class scales must be finite and > 0",
                });
            }
        }
        let classes: Vec<ClassSpec> = base
            .classes()
            .iter()
            .enumerate()
            .map(|(ci, spec)| {
                let class_factor =
                    self.demand_scale * self.class_scales.as_ref().map_or(1.0, |scales| scales[ci]);
                ClassSpec {
                    name: spec.name.clone(),
                    population: spec.population,
                    think_time: self.think_time.unwrap_or(spec.think_time),
                    demands: spec
                        .demands
                        .iter()
                        .enumerate()
                        .map(|(k, d)| {
                            d * class_factor
                                * self.station_scales.as_ref().map_or(1.0, |scales| scales[k])
                        })
                        .collect(),
                }
            })
            .collect();
        Workload::new(
            base.station_names().to_vec(),
            base.station_kinds().to_vec(),
            classes,
        )
        .map_err(CoreError::Queueing)
    }

    /// Applies the transform to the base samples.
    fn resolve(&self, base: &DemandSamples) -> Result<DemandSamples, CoreError> {
        if !(self.demand_scale.is_finite() && self.demand_scale > 0.0) {
            return Err(CoreError::InvalidParameter {
                what: "demand scale must be finite and > 0",
            });
        }
        if self.class_scales.is_some() {
            return Err(CoreError::InvalidParameter {
                what: "class scales need a workload base (ScenarioSweep::over_workload)",
            });
        }
        let k_count = base.station_names.len();
        if let Some(scales) = &self.station_scales {
            if scales.len() != k_count {
                return Err(CoreError::InvalidParameter {
                    what: "station scale count must match the station count",
                });
            }
            if scales.iter().any(|s| !(s.is_finite() && *s > 0.0)) {
                return Err(CoreError::InvalidParameter {
                    what: "station scales must be finite and > 0",
                });
            }
        }
        if let Some(counts) = &self.server_counts {
            if counts.len() != k_count {
                return Err(CoreError::InvalidParameter {
                    what: "server count override must match the station count",
                });
            }
        }
        let mut out = base.clone();
        for (k, series) in out.demands.iter_mut().enumerate() {
            let factor =
                self.demand_scale * self.station_scales.as_ref().map_or(1.0, |scales| scales[k]);
            for d in series.iter_mut() {
                *d *= factor;
            }
        }
        if let Some(z) = self.think_time {
            out.think_time = z;
        }
        if let Some(counts) = &self.server_counts {
            out.server_counts = counts.clone();
        }
        Ok(out)
    }
}

/// One scenario's answer.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioResult {
    /// The scenario's label.
    pub label: String,
    /// The population series up to the stopping point.
    pub solution: MvaSolution,
    /// Why the sweep stopped.
    pub reason: StopReason,
}

impl ScenarioResult {
    /// Populations this scenario's answer covers.
    pub fn steps(&self) -> usize {
        self.solution.points.len()
    }
}

/// What a [`ScenarioSweep::run`] call produced, with the work accounting
/// that makes warm restarts auditable.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// Per-scenario answers, in input order.
    pub results: Vec<ScenarioResult>,
    /// Fresh population steps the engine actually computed this call.
    pub steps_computed: usize,
    /// Steps a naive batch-solve-per-scenario run would have computed
    /// (the sum of every scenario's answer length).
    pub steps_demanded: usize,
}

impl SweepReport {
    /// Steps avoided through prefix sharing and warm restarts.
    pub fn steps_saved(&self) -> usize {
        self.steps_demanded.saturating_sub(self.steps_computed)
    }

    /// The answer for a scenario label, if present.
    pub fn result(&self, label: &str) -> Option<&ScenarioResult> {
        self.results.iter().find(|r| r.label == label)
    }
}

/// Lifetime work accounting for a [`ScenarioSweep`], accumulated over every
/// successful [`run`](ScenarioSweep::run) call. The read-only face of the
/// warm-restart machinery: callers can assert cache behaviour and step
/// savings without the bench harness (and without observability installed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SweepStats {
    /// Fresh population steps computed across all runs.
    pub steps_computed: usize,
    /// Steps a naive batch-solve-per-scenario strategy would have computed.
    pub steps_demanded: usize,
    /// Model groups served from a previously cached iterator.
    pub cache_hits: usize,
    /// Model groups that had to build a fresh iterator.
    pub cache_misses: usize,
    /// Subsystem profiles solved from scratch (hierarchical sweeps only:
    /// the sub-model misses of the shared aggregation cache).
    pub sub_solves: usize,
    /// Subsystem profiles reused from the shared aggregation cache —
    /// across scenarios *and* across identically-shaped subsystems within
    /// one model.
    pub sub_cache_hits: usize,
    /// Subsystem profile extensions executed on parallel workers
    /// (hierarchical sweeps with
    /// [`AggregationOptions::parallelism`] > 1 only; serial sweeps leave
    /// this at zero).
    pub parallel_sub_solves: usize,
    /// Worker threads the most recent [`run`](ScenarioSweep::run) used for
    /// its model-group fan-out (a snapshot, not a running total: 1 means
    /// the last run was effectively serial).
    pub pool_occupancy: usize,
}

impl SweepStats {
    /// Steps avoided through prefix sharing and warm restarts.
    pub fn steps_saved(&self) -> usize {
        self.steps_demanded.saturating_sub(self.steps_computed)
    }
}

/// A solver iterator plus its memoized population prefix — the unit the
/// cache retains per distinct model.
struct GroupState {
    iter: Box<dyn SolverIter>,
    points: Vec<MvaPoint>,
    /// Hard ceiling on servable steps: `Some` for population-path models
    /// (a workload's path exhausts at its total population), `None` for
    /// unbounded scalar-population sweeps.
    max_steps: Option<usize>,
}

impl GroupState {
    /// Answers one scenario from the memoized prefix, stepping the
    /// iterator only past its end. Returns the answer and how many fresh
    /// steps it cost. Mirrors
    /// [`run_until`](mvasd_queueing::mva::run_until): the point that
    /// satisfies a condition is included in the answer.
    fn serve(
        &mut self,
        conditions: &[StopCondition],
        n_cap: usize,
    ) -> Result<(Vec<MvaPoint>, StopReason, usize), QueueingError> {
        let n_cap = match self.max_steps {
            Some(max) => n_cap.min(max),
            None => n_cap,
        };
        let mut out: Vec<MvaPoint> = Vec::new();
        let mut fresh = 0usize;
        let reason = loop {
            if out.len() >= n_cap {
                break StopReason::PopulationCap;
            }
            let idx = out.len();
            if idx >= self.points.len() {
                self.points.push(self.iter.step()?);
                fresh += 1;
            }
            let point = &self.points[idx];
            let prev = idx.checked_sub(1).map(|i| &self.points[i]);
            let met = conditions.iter().find(|c| c.is_met(point, prev)).cloned();
            out.push(point.clone());
            if let Some(c) = met {
                break StopReason::Met(c);
            }
        };
        Ok((out, reason, fresh))
    }
}

/// What a sweep's scenarios are resolved against: a varying-service-demand
/// sample set (the MVASD backends) or a hierarchical topology (the Norton
/// aggregation backend, with its shared subsystem-profile cache).
#[derive(Debug)]
enum BaseModel {
    Samples(DemandSamples),
    Hierarchy {
        net: HierarchicalNetwork,
        opts: AggregationOptions,
        profiles: Arc<ProfileCache>,
    },
    Workload(Workload),
}

/// A scenario resolved against the base: concrete demand samples, a
/// ready-to-start hierarchical solver (model plus shared profile cache), or
/// a resolved multiclass workload.
enum ResolvedModel {
    Samples(DemandSamples),
    Hierarchy(HierarchicalSolver),
    Workload(Workload),
}

/// The scenario-sweep engine: resolves what-if scenarios against a base
/// demand model, deduplicates identical resolved models, and serves every
/// scenario from shared, memoized solver iterators. The cache survives
/// across [`run`](ScenarioSweep::run) calls, so a follow-up question about
/// a previously swept model is a warm restart.
///
/// Hierarchical sweeps ([`over_hierarchy`](Self::over_hierarchy)) memoize
/// at a second level too: all scenarios share one
/// [`ProfileCache`], so a scenario that rescales only the root stations
/// reuses every already-aggregated subsystem profile instead of re-solving
/// the subtrees. The saving is visible in [`SweepStats::sub_solves`] /
/// [`SweepStats::sub_cache_hits`].
pub struct ScenarioSweep {
    base: BaseModel,
    interpolation: InterpolationKind,
    axis: DemandAxis,
    backend: SolverBackend,
    default_cap: usize,
    parallelism: usize,
    cache: HashMap<Vec<u64>, GroupState>,
    stats: SweepStats,
}

impl std::fmt::Debug for ScenarioSweep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScenarioSweep")
            .field("base", &self.base)
            .field("interpolation", &self.interpolation)
            .field("axis", &self.axis)
            .field("backend", &self.backend)
            .field("default_cap", &self.default_cap)
            .field("parallelism", &self.parallelism)
            .field("cached_models", &self.cache.len())
            .finish()
    }
}

impl ScenarioSweep {
    /// A sweep over `base` with the paper's defaults (not-a-knot cubic
    /// interpolation over concurrency, exact MVASD, population cap 300).
    pub fn new(base: DemandSamples) -> Self {
        Self::with_base(BaseModel::Samples(base))
    }

    /// A sweep over a hierarchical topology, answered by the Norton
    /// flow-equivalent-server solver. All scenarios share one subsystem
    /// [`ProfileCache`], so sub-models untouched by a scenario's transform
    /// are aggregated once and reused. The `backend`, `interpolation` and
    /// `axis` settings are ignored for hierarchical sweeps.
    pub fn over_hierarchy(net: HierarchicalNetwork, opts: AggregationOptions) -> Self {
        Self::with_base(BaseModel::Hierarchy {
            net,
            opts,
            profiles: Arc::new(ProfileCache::new()),
        })
    }

    /// A sweep over a multiclass [`Workload`], answered by the streaming
    /// lattice-workspace solver
    /// ([`MulticlassMvaSolver`]). Scenarios may rescale whole classes
    /// ([`Scenario::scale_classes`]) as well as stations; the population
    /// axis is the workload's proportional path through the class lattice,
    /// so caps and memoized prefixes count admitted customers (the path
    /// exhausts at the workload's total population). The `backend`,
    /// `interpolation` and `axis` settings are ignored.
    pub fn over_workload(workload: Workload) -> Self {
        Self::with_base(BaseModel::Workload(workload))
    }

    /// The shared subsystem-profile cache, for hierarchical sweeps
    /// (`None` otherwise). Handle for inspection —
    /// [`ProfileCache::stats`], [`ProfileCache::profiles`] — the sweep
    /// keeps using the same cache afterwards.
    pub fn profile_cache(&self) -> Option<Arc<ProfileCache>> {
        match &self.base {
            BaseModel::Hierarchy { profiles, .. } => Some(profiles.clone()),
            _ => None,
        }
    }

    fn with_base(base: BaseModel) -> Self {
        Self {
            base,
            interpolation: InterpolationKind::CubicNotAKnot,
            axis: DemandAxis::Concurrency,
            backend: SolverBackend::Mvasd,
            default_cap: 300,
            parallelism: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            cache: HashMap::new(),
            stats: SweepStats::default(),
        }
    }

    /// Sets the interpolation family.
    pub fn interpolation(mut self, kind: InterpolationKind) -> Self {
        self.interpolation = kind;
        self
    }

    /// Sets the demand abscissa.
    pub fn axis(mut self, axis: DemandAxis) -> Self {
        self.axis = axis;
        self
    }

    /// Sets the solver backend.
    pub fn backend(mut self, backend: SolverBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Sets the default population cap for scenarios without their own.
    pub fn default_cap(mut self, n_cap: usize) -> Self {
        self.default_cap = n_cap;
        self
    }

    /// Sets the number of worker threads for independent model groups.
    pub fn parallelism(mut self, workers: usize) -> Self {
        self.parallelism = workers.max(1);
        self
    }

    /// Population steps currently memoized across all cached models.
    pub fn cached_steps(&self) -> usize {
        self.cache.values().map(|g| g.points.len()).sum()
    }

    /// Lifetime work accounting, accumulated over every successful
    /// [`run`](ScenarioSweep::run) call.
    pub fn stats(&self) -> SweepStats {
        self.stats
    }

    /// Answers every scenario. Scenarios resolving to the same model share
    /// one iterator (and its memoized prefix); distinct models run
    /// concurrently. Results come back in input order.
    pub fn run(&mut self, scenarios: &[Scenario]) -> Result<SweepReport, CoreError> {
        let _span = obsv::span_with("sweep.run", || format!("scenarios={}", scenarios.len()));
        if scenarios.is_empty() {
            return Err(CoreError::InvalidParameter {
                what: "sweep needs at least one scenario",
            });
        }
        // Snapshot the shared aggregation cache so sub-model work done by
        // this run can be committed as a delta on success.
        let sub_before = match &self.base {
            BaseModel::Hierarchy { profiles, .. } => {
                Some((profiles.stats(), profiles.parallel_solves()))
            }
            BaseModel::Samples(_) | BaseModel::Workload(_) => None,
        };
        // Resolve every scenario and group by model fingerprint, keeping
        // first-seen group order (results are reassembled by index anyway).
        let mut groups: Vec<(Vec<u64>, Vec<usize>)> = Vec::new();
        let mut resolved: Vec<ResolvedModel> = Vec::with_capacity(scenarios.len());
        for (i, scenario) in scenarios.iter().enumerate() {
            let (key, model) = match &self.base {
                BaseModel::Samples(base) => {
                    let samples = scenario.resolve(base)?;
                    (self.fingerprint(&samples), ResolvedModel::Samples(samples))
                }
                BaseModel::Hierarchy {
                    net,
                    opts,
                    profiles,
                } => {
                    let resolved_net = scenario.resolve_hierarchy(net)?;
                    let key = hierarchy_key(&resolved_net, *opts);
                    let solver = HierarchicalSolver::with_options(resolved_net, *opts)
                        .with_cache(profiles.clone());
                    (key, ResolvedModel::Hierarchy(solver))
                }
                BaseModel::Workload(base) => {
                    let workload = scenario.resolve_workload(base)?;
                    (workload_key(&workload), ResolvedModel::Workload(workload))
                }
            };
            match groups.iter_mut().find(|(k, _)| *k == key) {
                Some((_, members)) => members.push(i),
                None => groups.push((key, vec![i])),
            }
            resolved.push(model);
        }

        // Check out (or build) one GroupState per distinct model.
        let mut cache_hits = 0usize;
        let mut cache_misses = 0usize;
        let mut jobs: Vec<Mutex<Option<GroupState>>> = Vec::with_capacity(groups.len());
        for (key, members) in &groups {
            let state = match self.cache.remove(key) {
                Some(state) => {
                    cache_hits += 1;
                    state
                }
                None => {
                    cache_misses += 1;
                    let (solver, max_steps): (Box<dyn ClosedSolver>, Option<usize>) =
                        match &resolved[members[0]] {
                            ResolvedModel::Samples(samples) => {
                                let profile = ServiceDemandProfile::from_samples(
                                    samples,
                                    self.interpolation,
                                    self.axis,
                                )?;
                                let solver: Box<dyn ClosedSolver> = match self.backend {
                                    SolverBackend::Mvasd => Box::new(MvasdSolver::new(profile)),
                                    SolverBackend::MvasdSingleServer => {
                                        Box::new(MvasdSingleServerSolver::new(profile))
                                    }
                                    SolverBackend::MvasdSchweitzer => {
                                        Box::new(MvasdSchweitzerSolver::new(profile))
                                    }
                                };
                                (solver, None)
                            }
                            ResolvedModel::Hierarchy(solver) => (Box::new(solver.clone()), None),
                            ResolvedModel::Workload(workload) => (
                                Box::new(MulticlassMvaSolver::new(workload.clone())),
                                Some(workload.total_population()),
                            ),
                        };
                    GroupState {
                        iter: solver.start().map_err(CoreError::Queueing)?,
                        points: Vec::new(),
                        max_steps,
                    }
                }
            };
            jobs.push(Mutex::new(Some(state)));
        }

        // Serve each group's scenarios; groups are independent models, so
        // they fan out across the scoped pool.
        type GroupOutcome = (
            GroupState,
            Result<Vec<(usize, Vec<MvaPoint>, StopReason, usize)>, QueueingError>,
        );
        let outcomes: Vec<GroupOutcome> = scoped_indexed(groups.len(), self.parallelism, |gi| {
            // lint: interference-ok per-group job slot, each index taken exactly once
            let mut state = jobs[gi]
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .take()
                .expect("each group is taken exactly once");
            let mut served = Vec::with_capacity(groups[gi].1.len());
            let mut failure = None;
            for &si in &groups[gi].1 {
                let scenario = &scenarios[si];
                let cap = scenario.n_cap.unwrap_or(self.default_cap);
                match state.serve(&scenario.stop, cap) {
                    Ok((points, reason, fresh)) => served.push((si, points, reason, fresh)),
                    Err(e) => {
                        failure = Some(e);
                        break;
                    }
                }
            }
            match failure {
                Some(e) => (state, Err(e)),
                None => (state, Ok(served)),
            }
        });

        let mut slots: Vec<Option<ScenarioResult>> = (0..scenarios.len()).map(|_| None).collect();
        let mut steps_computed = 0usize;
        let mut steps_demanded = 0usize;
        let mut first_error: Option<QueueingError> = None;
        for ((key, _), (state, outcome)) in groups.iter().zip(outcomes) {
            match outcome {
                Ok(served) => {
                    // Return the (possibly extended) state to the cache for
                    // warm restarts on later calls.
                    let names = state.iter.shared_names();
                    for (si, points, reason, fresh) in served {
                        steps_computed += fresh;
                        steps_demanded += points.len();
                        slots[si] = Some(ScenarioResult {
                            label: scenarios[si].label.clone(),
                            solution: MvaSolution {
                                station_names: names.clone(),
                                points,
                            },
                            reason,
                        });
                    }
                    // lint: commit-phase
                    self.cache.insert(key.clone(), state);
                }
                // A failed group's iterator may hold poisoned state, so it
                // is dropped rather than cached.
                Err(e) => first_error = first_error.or(Some(e)),
            }
        }
        if let Some(e) = first_error {
            return Err(CoreError::Queueing(e));
        }

        // Commit the lifetime accounting only for successful runs, so
        // `stats()` always describes answers that were actually delivered.
        self.stats.steps_computed += steps_computed;
        self.stats.steps_demanded += steps_demanded;
        self.stats.cache_hits += cache_hits;
        self.stats.cache_misses += cache_misses;
        self.stats.pool_occupancy = effective_workers(groups.len(), self.parallelism, 1);
        let mut sub_solves = 0usize;
        let mut sub_cache_hits = 0usize;
        let mut parallel_sub_solves = 0usize;
        if let (Some((before, par_before)), BaseModel::Hierarchy { profiles, .. }) =
            (sub_before, &self.base)
        {
            let after = profiles.stats();
            sub_solves = (after.solves - before.solves) as usize;
            sub_cache_hits = (after.hits - before.hits) as usize;
            parallel_sub_solves = (profiles.parallel_solves() - par_before) as usize;
            self.stats.sub_solves += sub_solves;
            self.stats.sub_cache_hits += sub_cache_hits;
            self.stats.parallel_sub_solves += parallel_sub_solves;
        }
        // lint: commit-phase
        if obsv::enabled() {
            obsv::counter("sweep.cache_hits", cache_hits as u64);
            obsv::counter("sweep.cache_misses", cache_misses as u64);
            obsv::counter("sweep.steps_computed", steps_computed as u64);
            obsv::counter("sweep.steps_demanded", steps_demanded as u64);
            obsv::counter(
                "sweep.steps_saved",
                steps_demanded.saturating_sub(steps_computed) as u64,
            );
            obsv::gauge("sweep.cached_steps", self.cached_steps() as f64);
            if sub_solves > 0 || sub_cache_hits > 0 {
                obsv::counter("sweep.sub_solves", sub_solves as u64);
                obsv::counter("sweep.sub_cache_hits", sub_cache_hits as u64);
            }
            if parallel_sub_solves > 0 {
                obsv::counter("sweep.parallel_sub_solves", parallel_sub_solves as u64);
            }
        }

        Ok(SweepReport {
            results: slots
                .into_iter()
                .map(|s| s.expect("every scenario was served by its group"))
                .collect(),
            steps_computed,
            steps_demanded,
        })
    }

    /// A structural fingerprint of the resolved model plus the solver
    /// configuration: two scenarios share an iterator iff their
    /// fingerprints match bit-for-bit.
    fn fingerprint(&self, samples: &DemandSamples) -> Vec<u64> {
        let mut key = Vec::with_capacity(
            8 + samples.station_names.len() * 2
                + samples.levels.len()
                + samples.demands.iter().map(Vec::len).sum::<usize>(),
        );
        key.push(match self.backend {
            SolverBackend::Mvasd => 0,
            SolverBackend::MvasdSingleServer => 1,
            SolverBackend::MvasdSchweitzer => 2,
        });
        match self.interpolation {
            InterpolationKind::Linear => key.push(10),
            InterpolationKind::CubicNatural => key.push(11),
            InterpolationKind::CubicNotAKnot => key.push(12),
            InterpolationKind::Pchip => key.push(13),
            InterpolationKind::Smoothing { lambda } => {
                key.push(14);
                key.push(lambda.to_bits());
            }
        }
        key.push(match self.axis {
            DemandAxis::Concurrency => 20,
            DemandAxis::Throughput => 21,
        });
        key.push(samples.think_time.to_bits());
        key.push(samples.station_names.len() as u64);
        for name in &samples.station_names {
            key.push(fnv1a64(name.as_bytes()));
        }
        key.extend(samples.server_counts.iter().map(|&c| c as u64));
        key.push(samples.levels.len() as u64);
        key.extend(samples.levels.iter().map(|l| l.to_bits()));
        for series in &samples.demands {
            key.extend(series.iter().map(|d| d.to_bits()));
        }
        key
    }
}

/// Fingerprint of a resolved hierarchical model: a discriminator word (so
/// hierarchical keys can never collide with sample-model keys), the
/// truncation setting, and the tree's structural words.
fn hierarchy_key(net: &HierarchicalNetwork, opts: AggregationOptions) -> Vec<u64> {
    let mut key = Vec::with_capacity(2 + 4 * net.leaf_count());
    key.push(30);
    key.push(match opts.truncation {
        Some(eps) => eps.to_bits(),
        None => u64::MAX,
    });
    key.extend(net.fingerprint_words());
    key
}

/// Fingerprint of a resolved multiclass workload: its own discriminator
/// word plus the workload's structural words (station kinds, per-class
/// populations, think times, demand bits).
fn workload_key(workload: &Workload) -> Vec<u64> {
    let mut key = Vec::with_capacity(1 + 4 * workload.station_count());
    key.push(40);
    key.extend(workload.fingerprint_words());
    key
}

/// FNV-1a over bytes: a stable, dependency-free string fingerprint.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_samples() -> DemandSamples {
        DemandSamples {
            station_names: vec!["cpu".into(), "disk".into()],
            server_counts: vec![4, 1],
            think_time: 1.0,
            levels: vec![1.0, 100.0, 300.0],
            demands: vec![vec![0.024, 0.021, 0.020], vec![0.012, 0.011, 0.0105]],
        }
    }

    #[test]
    fn scoped_indexed_preserves_order() {
        let out = scoped_indexed(16, 4, |i| i * i);
        assert_eq!(out, (0..16).map(|i| i * i).collect::<Vec<_>>());
        // Serial fast path.
        assert_eq!(scoped_indexed(3, 1, |i| i + 1), vec![1, 2, 3]);
        assert_eq!(scoped_indexed(0, 4, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn identical_scenarios_share_all_steps() {
        let mut sweep = ScenarioSweep::new(base_samples()).default_cap(50);
        let report = sweep
            .run(&[Scenario::new("a"), Scenario::new("b")])
            .unwrap();
        assert_eq!(report.results.len(), 2);
        assert_eq!(
            report.results[0].solution.points,
            report.results[1].solution.points
        );
        // Scenario "b" reuses every step "a" computed.
        assert_eq!(report.steps_computed, 50);
        assert_eq!(report.steps_demanded, 100);
        assert_eq!(report.steps_saved(), 50);
    }

    #[test]
    fn warm_restart_extends_across_run_calls() {
        let mut sweep = ScenarioSweep::new(base_samples());
        let first = sweep.run(&[Scenario::new("short").cap(40)]).unwrap();
        assert_eq!(first.steps_computed, 40);
        // Same model, deeper question: only the unseen tail is computed.
        let second = sweep.run(&[Scenario::new("deep").cap(120)]).unwrap();
        assert_eq!(second.steps_computed, 80);
        assert_eq!(second.steps_demanded, 120);
        assert_eq!(second.results[0].solution.points.len(), 120);
        assert_eq!(sweep.cached_steps(), 120);
    }

    #[test]
    fn early_exit_computes_fewer_steps_than_a_full_sweep() {
        let mut sweep = ScenarioSweep::new(base_samples()).default_cap(300);
        let sla = Scenario::new("sla").until(StopCondition::SlaResponseTime { max_response: 0.5 });
        let report = sweep.run(&[sla]).unwrap();
        let r = &report.results[0];
        assert!(matches!(
            r.reason,
            StopReason::Met(StopCondition::SlaResponseTime { .. })
        ));
        assert!(
            r.steps() < 300,
            "SLA query should stop early, took {} steps",
            r.steps()
        );
        // The answering point is included and is the first violation.
        assert!(r.solution.last().response > 0.5);
        let prior = &r.solution.points[r.steps() - 2];
        assert!(prior.response <= 0.5);
    }

    #[test]
    fn distinct_models_get_distinct_iterators() {
        let mut sweep = ScenarioSweep::new(base_samples()).default_cap(30);
        let report = sweep
            .run(&[
                Scenario::new("base"),
                Scenario::new("fast-disk").scale_stations(vec![1.0, 0.5]),
            ])
            .unwrap();
        // No sharing possible: every step is fresh.
        assert_eq!(report.steps_computed, 60);
        assert_eq!(report.steps_saved(), 0);
        let base_x = report.result("base").unwrap().solution.last().throughput;
        let fast_x = report
            .result("fast-disk")
            .unwrap()
            .solution
            .last()
            .throughput;
        assert!(fast_x > base_x);
    }

    #[test]
    fn overrides_change_the_model() {
        let mut sweep = ScenarioSweep::new(base_samples()).default_cap(200);
        let report = sweep
            .run(&[
                Scenario::new("base"),
                Scenario::new("no-think").with_think_time(0.1),
                Scenario::new("more-cores").with_server_counts(vec![8, 1]),
            ])
            .unwrap();
        let base = report.result("base").unwrap();
        let nt = report.result("no-think").unwrap();
        // Lower think time -> higher response at the same population
        // (more pressure on the queues).
        assert!(nt.solution.at(50).unwrap().response > base.solution.at(50).unwrap().response);
        assert_eq!(report.steps_computed, 600);
    }

    #[test]
    fn stats_accumulate_across_runs() {
        let mut sweep = ScenarioSweep::new(base_samples());
        assert_eq!(sweep.stats(), SweepStats::default());
        sweep.run(&[Scenario::new("a").cap(40)]).unwrap();
        let s1 = sweep.stats();
        assert_eq!(s1.steps_computed, 40);
        assert_eq!(s1.steps_demanded, 40);
        assert_eq!(s1.cache_hits, 0);
        assert_eq!(s1.cache_misses, 1);
        // Warm restart: the same model is a cache hit; only the tail is new.
        sweep.run(&[Scenario::new("b").cap(100)]).unwrap();
        let s2 = sweep.stats();
        assert_eq!(s2.steps_computed, 100);
        assert_eq!(s2.steps_demanded, 140);
        assert_eq!(s2.steps_saved(), 40);
        assert_eq!(s2.cache_hits, 1);
        assert_eq!(s2.cache_misses, 1);
        // A failed run leaves the accounting untouched.
        assert!(sweep.run(&[]).is_err());
        assert_eq!(sweep.stats(), s2);
    }

    #[test]
    fn zero_cap_yields_empty_answers() {
        let mut sweep = ScenarioSweep::new(base_samples());
        let report = sweep.run(&[Scenario::new("none").cap(0)]).unwrap();
        assert!(report.results[0].solution.points.is_empty());
        assert_eq!(report.results[0].reason, StopReason::PopulationCap);
        assert_eq!(report.steps_computed, 0);
    }

    #[test]
    fn rejects_bad_scenarios() {
        let mut sweep = ScenarioSweep::new(base_samples());
        assert!(sweep.run(&[]).is_err());
        assert!(sweep
            .run(&[Scenario::new("bad").scale_demands(0.0)])
            .is_err());
        assert!(sweep
            .run(&[Scenario::new("bad").scale_stations(vec![1.0])])
            .is_err());
        assert!(sweep
            .run(&[Scenario::new("bad").scale_stations(vec![1.0, f64::NAN])])
            .is_err());
        assert!(sweep
            .run(&[Scenario::new("bad").with_server_counts(vec![1])])
            .is_err());
    }

    fn hier_net() -> HierarchicalNetwork {
        use mvasd_queueing::hierarchy::{NetworkNode, Subsystem};
        use mvasd_queueing::network::Station;
        let tier = |name: &str, cpu: f64, disk: f64| -> NetworkNode {
            Subsystem::new(
                name,
                vec![
                    Station::queueing(&format!("{name}-cpu"), 2, 1.0, cpu).into(),
                    Station::queueing(&format!("{name}-disk"), 1, 1.0, disk).into(),
                ],
            )
            .into()
        };
        HierarchicalNetwork::new(
            vec![
                Station::queueing("lb", 1, 1.0, 0.002).into(),
                tier("app-1", 0.010, 0.004),
                tier("app-2", 0.010, 0.004),
                tier("db", 0.016, 0.007),
            ],
            0.5,
        )
        .unwrap()
    }

    #[test]
    fn hierarchical_sweep_memoizes_submodels() {
        let mut sweep =
            ScenarioSweep::over_hierarchy(hier_net(), AggregationOptions::exact()).default_cap(40);
        let report = sweep
            .run(&[Scenario::new("base"), Scenario::new("again")])
            .unwrap();
        assert_eq!(report.results.len(), 2);
        assert_eq!(report.steps_computed, 40);
        assert_eq!(report.steps_saved(), 40);
        let s1 = sweep.stats();
        // Three subsystems, two distinct shapes (app-1 and app-2 share a
        // fingerprint): 2 profile solves, at least 1 sub-model cache hit.
        assert_eq!(s1.sub_solves, 2, "stats: {s1:?}");
        assert!(s1.sub_cache_hits >= 1, "stats: {s1:?}");

        // A scenario that only rescales the root station leaves every
        // subsystem untouched: zero fresh profile solves.
        let factors = vec![0.5, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
        sweep
            .run(&[Scenario::new("fast-lb").scale_stations(factors)])
            .unwrap();
        let s2 = sweep.stats();
        assert_eq!(s2.sub_solves, s1.sub_solves, "stats: {s2:?}");
        assert!(s2.sub_cache_hits > s1.sub_cache_hits, "stats: {s2:?}");
    }

    #[test]
    fn hierarchical_sweep_matches_direct_solver() {
        let net = hier_net();
        let mut sweep =
            ScenarioSweep::over_hierarchy(net.clone(), AggregationOptions::exact()).default_cap(30);
        let report = sweep.run(&[Scenario::new("base")]).unwrap();
        let direct = HierarchicalSolver::new(net).solve(30).unwrap();
        assert_eq!(report.results[0].solution.points, direct.points);
    }

    #[test]
    fn hierarchical_sweep_rejects_server_count_overrides() {
        let mut sweep = ScenarioSweep::over_hierarchy(hier_net(), AggregationOptions::exact());
        assert!(sweep
            .run(&[Scenario::new("bad").with_server_counts(vec![1; 7])])
            .is_err());
        assert!(sweep
            .run(&[Scenario::new("bad").scale_stations(vec![1.0])])
            .is_err());
    }

    fn base_workload() -> Workload {
        use mvasd_queueing::network::StationKind;
        Workload::new(
            vec!["cpu".into(), "disk".into()],
            vec![
                StationKind::Queueing { servers: 2 },
                StationKind::Queueing { servers: 1 },
            ],
            vec![
                ClassSpec {
                    name: "browse".into(),
                    population: 12,
                    think_time: 1.0,
                    demands: vec![0.012, 0.006],
                },
                ClassSpec {
                    name: "checkout".into(),
                    population: 6,
                    think_time: 0.5,
                    demands: vec![0.004, 0.020],
                },
            ],
        )
        .unwrap()
    }

    #[test]
    fn workload_sweep_shares_prefixes_and_warm_restarts() {
        let mut sweep = ScenarioSweep::over_workload(base_workload()).default_cap(10);
        let first = sweep.run(&[Scenario::new("short")]).unwrap();
        assert_eq!(first.steps_computed, 10);
        // Deeper question on the same workload: only the unseen tail is
        // fresh, and the cap clamps to the path's end (total population 18).
        let second = sweep.run(&[Scenario::new("deep").cap(100)]).unwrap();
        assert_eq!(second.results[0].solution.points.len(), 18);
        assert_eq!(second.steps_computed, 8);
        assert_eq!(second.results[0].reason, StopReason::PopulationCap);
    }

    #[test]
    fn workload_class_scales_change_the_model() {
        let mut sweep = ScenarioSweep::over_workload(base_workload()).default_cap(18);
        let report = sweep
            .run(&[
                Scenario::new("base"),
                Scenario::new("heavy-checkout").scale_classes(vec![1.0, 1.5]),
            ])
            .unwrap();
        let base_x = report.result("base").unwrap().solution.last().throughput;
        let heavy_x = report
            .result("heavy-checkout")
            .unwrap()
            .solution
            .last()
            .throughput;
        assert!(heavy_x < base_x, "{heavy_x} vs {base_x}");
        // Distinct fingerprints: no sharing between the two groups.
        assert_eq!(report.steps_computed, 36);
        assert_eq!(report.steps_saved(), 0);
    }

    #[test]
    fn class_scales_need_a_workload_base() {
        let mut samples = ScenarioSweep::new(base_samples());
        assert!(samples
            .run(&[Scenario::new("bad").scale_classes(vec![1.0, 1.0])])
            .is_err());
        let mut hier = ScenarioSweep::over_hierarchy(hier_net(), AggregationOptions::exact());
        assert!(hier
            .run(&[Scenario::new("bad").scale_classes(vec![1.0; 7])])
            .is_err());
        let mut workload = ScenarioSweep::over_workload(base_workload());
        // Wrong arity and unsupported overrides are rejected there too.
        assert!(workload
            .run(&[Scenario::new("bad").scale_classes(vec![1.0])])
            .is_err());
        assert!(workload
            .run(&[Scenario::new("bad").with_server_counts(vec![1, 1])])
            .is_err());
    }

    #[test]
    fn results_keep_input_order_under_parallelism() {
        let mut sweep = ScenarioSweep::new(base_samples())
            .default_cap(25)
            .parallelism(4);
        let scenarios: Vec<Scenario> = (0..8)
            .map(|i| Scenario::new(&format!("s{i}")).scale_demands(1.0 + 0.05 * i as f64))
            .collect();
        let report = sweep.run(&scenarios).unwrap();
        for (i, r) in report.results.iter().enumerate() {
            assert_eq!(r.label, format!("s{i}"));
            assert_eq!(r.solution.points.len(), 25);
        }
        // Heavier demands -> lower throughput, monotone across scenarios.
        let xs: Vec<f64> = report
            .results
            .iter()
            .map(|r| r.solution.last().throughput)
            .collect();
        assert!(xs.windows(2).all(|w| w[0] > w[1]), "{xs:?}");
    }
}
