//! Algorithm 3 — MVASD: exact multi-server MVA with varying service
//! demands.
//!
//! Identical to the multi-server recursion (paper Algorithm 2 /
//! `mvasd_queueing::mva::multiserver_mva`) except that the demand of every
//! station is re-read from the interpolated profile at every population
//! step: `SSⁿ_k ← h_k(n)` (the underlined changes in the paper's
//! Algorithm 3 listing), so the residence update becomes paper eq. 11:
//!
//! ```text
//! R_k = (SSⁿ_k / C_k) · (1 + Q_k + F_k)
//! ```
//!
//! As in the Algorithm 2 implementation, the eq. 11 correction is
//! evaluated through the exact load-dependent marginal recursion (the two
//! forms are algebraically equal; the exact marginals avoid the numeric
//! instability of the truncated transcription — see
//! `mvasd_queueing::mva::multiserver_mva` docs). The marginal update uses
//! the *current* interpolated demand, mirroring how the paper's pseudocode
//! substitutes `SSⁿ_k` into every `S_k` occurrence.
//!
//! With a [`DemandAxis::Throughput`] profile the lookup abscissa is the
//! previous iteration's throughput `X_{n−1}` instead of `n` (the paper's
//! Fig. 11 variant; "more tractable … when using open systems").
//!
//! [`mvasd_single_server`] is the paper's "MVASD: Single-Server" baseline:
//! the same demand arrays but multi-server queues normalized to a single
//! server (`D/C`), run through the Algorithm-1 recursion — shown in the
//! paper (Fig. 8, Table 5) to underperform the true multi-server treatment.

use mvasd_obsv as obsv;
use mvasd_queueing::mva::{MvaPoint, MvaSolution, PopulationRecursion, SolverIter, StationPoint};
use mvasd_queueing::QueueingError;

use crate::profile::{DemandAxis, ServiceDemandProfile};
use crate::CoreError;

/// Maps an iterator-layer error back to the core vocabulary: the MVASD
/// recursions only ever fail with parameter-domain errors, which predate
/// the streaming refactor as [`CoreError::InvalidParameter`].
fn core_err(e: QueueingError) -> CoreError {
    match e {
        QueueingError::InvalidParameter { what } => CoreError::InvalidParameter { what },
        other => CoreError::Queueing(other),
    }
}

/// Resolves the profile-lookup abscissa for population `n` (the underlined
/// step of Algorithm 3). Throughput-indexed profiles bootstrap from the
/// lowest sampled abscissa on the first iteration and feed back `X_{n−1}`
/// afterwards.
fn lookup_abscissa(profile: &ServiceDemandProfile, n: usize, x_prev: f64) -> f64 {
    match profile.axis() {
        DemandAxis::Concurrency => n as f64,
        DemandAxis::Throughput => {
            if n == 1 {
                profile.sampled_levels().first().copied().unwrap_or(0.0)
            } else {
                x_prev
            }
        }
    }
}

/// The MVASD recursion (paper Algorithm 3) as a resumable iterator.
///
/// The carried state is the shared multi-server recursion engine
/// ([`PopulationRecursion`]: queues + marginal probabilities, double-double
/// precision while carried) plus the previous throughput that feeds
/// throughput-indexed profiles. Snapshotting clones that state — the
/// interpolants themselves are shared behind `Arc`, so clones are cheap.
#[derive(Debug, Clone)]
pub struct MvasdIter {
    profile: ServiceDemandProfile,
    names: std::sync::Arc<[String]>,
    rec: PopulationRecursion,
    x_prev: f64,
    n: usize,
}

impl MvasdIter {
    /// Starts a fresh recursion at population 0.
    pub fn new(profile: &ServiceDemandProfile) -> Self {
        let stations = profile.stations();
        let names = stations
            .iter()
            .map(|s| s.name.clone())
            .collect::<Vec<_>>()
            .into();
        // The exact multi-server recursion state (double-double internals)
        // is shared with Algorithm 2 — MVASD *is* that recursion with a
        // fresh demand array per population step.
        let rec = PopulationRecursion::new(
            stations.iter().map(|s| s.servers).collect(),
            profile.think_time(),
        );
        Self {
            profile: profile.clone(),
            names,
            rec,
            x_prev: 0.0,
            n: 0,
        }
    }
}

impl SolverIter for MvasdIter {
    fn station_names(&self) -> &[String] {
        &self.names
    }

    fn shared_names(&self) -> std::sync::Arc<[String]> {
        self.names.clone()
    }

    fn population(&self) -> usize {
        self.n
    }

    fn step(&mut self) -> Result<MvaPoint, QueueingError> {
        let _span = obsv::span("mvasd.step");
        obsv::counter("solver.steps", 1);
        let n = self.n + 1;
        let stations = self.profile.stations();
        let k_count = stations.len();
        let z = self.profile.think_time();

        let abscissa = lookup_abscissa(&self.profile, n, self.x_prev);
        let ss: Vec<f64> = stations.iter().map(|s| s.demand_at(abscissa)).collect();

        let (x, r_total, residence) = self.rec.step(n, &ss);
        self.x_prev = x;

        let station_points = (0..k_count)
            .map(|k| StationPoint {
                queue: self.rec.queue(k),
                residence: residence[k],
                utilization: x * ss[k] / stations[k].servers as f64,
            })
            .collect();

        self.n = n;
        Ok(MvaPoint {
            n,
            throughput: x,
            response: r_total,
            cycle_time: r_total + z,
            stations: station_points,
        })
    }

    fn boxed_clone(&self) -> Box<dyn SolverIter> {
        Box::new(self.clone())
    }
}

/// Runs MVASD (paper Algorithm 3) up to population `n_max` (a drain of
/// [`MvasdIter`]). `n_max = 0` yields an empty solution.
pub fn mvasd(profile: &ServiceDemandProfile, n_max: usize) -> Result<MvaSolution, CoreError> {
    MvasdIter::new(profile).drain(n_max).map_err(core_err)
}

/// The "MVASD: Single-Server" baseline of paper Fig. 8 / Table 5: demand
/// arrays are kept, but each multi-server queue is normalized to a single
/// server by dividing its demand by the core count, and the plain
/// Algorithm-1 recursion (`R_k = SSⁿ_k/C_k · (1 + Q_k)`) is used.
pub fn mvasd_single_server(
    profile: &ServiceDemandProfile,
    n_max: usize,
) -> Result<MvaSolution, CoreError> {
    MvasdSingleServerIter::new(profile)
        .drain(n_max)
        .map_err(core_err)
}

/// The single-server MVASD baseline as a resumable iterator; the carried
/// state is the Algorithm-1 queue vector plus the previous throughput.
#[derive(Debug, Clone)]
pub struct MvasdSingleServerIter {
    profile: ServiceDemandProfile,
    names: std::sync::Arc<[String]>,
    q: Vec<f64>,
    x_prev: f64,
    n: usize,
}

impl MvasdSingleServerIter {
    /// Starts a fresh recursion at population 0.
    pub fn new(profile: &ServiceDemandProfile) -> Self {
        let names = profile
            .stations()
            .iter()
            .map(|s| s.name.clone())
            .collect::<Vec<_>>()
            .into();
        let q = vec![0.0f64; profile.stations().len()];
        Self {
            profile: profile.clone(),
            names,
            q,
            x_prev: 0.0,
            n: 0,
        }
    }
}

impl SolverIter for MvasdSingleServerIter {
    fn station_names(&self) -> &[String] {
        &self.names
    }

    fn shared_names(&self) -> std::sync::Arc<[String]> {
        self.names.clone()
    }

    fn population(&self) -> usize {
        self.n
    }

    fn step(&mut self) -> Result<MvaPoint, QueueingError> {
        let _span = obsv::span("mvasd-single-server.step");
        obsv::counter("solver.steps", 1);
        let n = self.n + 1;
        let stations = self.profile.stations();
        let k_count = stations.len();
        let z = self.profile.think_time();

        let abscissa = lookup_abscissa(&self.profile, n, self.x_prev);
        let mut residence = vec![0.0f64; k_count];
        for (k, s) in stations.iter().enumerate() {
            let d_norm = s.demand_at(abscissa) / s.servers as f64;
            residence[k] = d_norm * (1.0 + self.q[k]);
        }
        let r_total: f64 = residence.iter().sum();
        let x = n as f64 / (r_total + z);
        self.x_prev = x;
        for (qk, rk) in self.q.iter_mut().zip(&residence) {
            *qk = x * rk;
        }

        let station_points = stations
            .iter()
            .enumerate()
            .map(|(k, s)| StationPoint {
                queue: self.q[k],
                residence: residence[k],
                utilization: x * s.demand_at(abscissa) / s.servers as f64,
            })
            .collect();

        self.n = n;
        Ok(MvaPoint {
            n,
            throughput: x,
            response: r_total,
            cycle_time: r_total + z,
            stations: station_points,
        })
    }

    fn boxed_clone(&self) -> Box<dyn SolverIter> {
        Box::new(self.clone())
    }
}

/// Approximate MVASD: Schweitzer's fixed point with the Seidmann
/// multi-server transform, evaluated with the per-population interpolated
/// demand array.
///
/// Trades the exact evaluation of [`mvasd`] for `O(K)` state and a few
/// fixed-point sweeps per population — no convolution phase, so the cost is
/// linear in `n_max` even deep into saturation, at the textbook ~2–6 %
/// accuracy of Schweitzer approximations (quantified in the
/// `ablation-solvers` experiment for the constant-demand case). Useful for
/// interactive sweeps over very large populations.
pub fn mvasd_schweitzer(
    profile: &ServiceDemandProfile,
    n_max: usize,
) -> Result<MvaSolution, CoreError> {
    MvasdSchweitzerIter::new(profile)
        .drain(n_max)
        .map_err(core_err)
}

/// The approximate MVASD variant as a resumable iterator; the carried
/// state is the Schweitzer queue vector (which warm-starts each
/// population's fixed point) plus the previous throughput.
#[derive(Debug, Clone)]
pub struct MvasdSchweitzerIter {
    profile: ServiceDemandProfile,
    names: std::sync::Arc<[String]>,
    q: Vec<f64>,
    x_prev: f64,
    n: usize,
}

impl MvasdSchweitzerIter {
    /// Starts a fresh recursion at population 0.
    pub fn new(profile: &ServiceDemandProfile) -> Self {
        let k_count = profile.stations().len();
        let names = profile
            .stations()
            .iter()
            .map(|s| s.name.clone())
            .collect::<Vec<_>>()
            .into();
        Self {
            profile: profile.clone(),
            names,
            q: vec![1.0 / k_count as f64; k_count],
            x_prev: 0.0,
            n: 0,
        }
    }
}

impl SolverIter for MvasdSchweitzerIter {
    fn station_names(&self) -> &[String] {
        &self.names
    }

    fn shared_names(&self) -> std::sync::Arc<[String]> {
        self.names.clone()
    }

    fn population(&self) -> usize {
        self.n
    }

    fn step(&mut self) -> Result<MvaPoint, QueueingError> {
        let _span = obsv::span("mvasd-schweitzer.step");
        obsv::counter("solver.steps", 1);
        let n = self.n + 1;
        let nf = n as f64;
        let stations = self.profile.stations();
        let k_count = stations.len();
        let z = self.profile.think_time();

        let abscissa = lookup_abscissa(&self.profile, n, self.x_prev);
        // Seidmann split of the interpolated demands: queueing part D/C,
        // delay part D·(C−1)/C.
        let split: Vec<(f64, f64)> = stations
            .iter()
            .map(|s| {
                let d = s.demand_at(abscissa);
                let c = s.servers as f64;
                (d / c, d * (c - 1.0) / c)
            })
            .collect();

        let mut x = 0.0;
        let mut residence = vec![0.0f64; k_count];
        let mut converged = false;
        let mut iterations = 0u64;
        for _ in 0..10_000 {
            iterations += 1;
            let mut r_total = 0.0;
            for (k, &(dq, dd)) in split.iter().enumerate() {
                residence[k] = dq * (1.0 + (nf - 1.0) / nf * self.q[k]) + dd;
                r_total += residence[k];
            }
            x = nf / (r_total + z);
            let mut delta: f64 = 0.0;
            for (qk, rk) in self.q.iter_mut().zip(&residence) {
                let new_q = x * rk;
                delta = delta.max((new_q - *qk).abs());
                *qk = new_q;
            }
            if delta < 1e-10 {
                converged = true;
                break;
            }
        }
        if obsv::enabled() {
            obsv::counter("schweitzer.fixed_point_iterations", iterations);
            obsv::observe("schweitzer.iterations_per_step", iterations);
        }
        if !converged {
            return Err(QueueingError::InvalidParameter {
                what: "Schweitzer iteration did not converge",
            });
        }
        self.x_prev = x;

        let r_total: f64 = residence.iter().sum();
        let station_points = stations
            .iter()
            .enumerate()
            .map(|(k, s)| StationPoint {
                queue: self.q[k],
                residence: residence[k],
                utilization: x * s.demand_at(abscissa) / s.servers as f64,
            })
            .collect();

        self.n = n;
        Ok(MvaPoint {
            n,
            throughput: x,
            response: r_total,
            cycle_time: r_total + z,
            stations: station_points,
        })
    }

    fn boxed_clone(&self) -> Box<dyn SolverIter> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{DemandSamples, InterpolationKind};
    use mvasd_queueing::mva::multiserver_mva;
    use mvasd_queueing::network::{ClosedNetwork, Station};

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    fn constant_samples(demands: &[(usize, f64)], z: f64) -> DemandSamples {
        DemandSamples {
            station_names: (0..demands.len()).map(|i| format!("s{i}")).collect(),
            server_counts: demands.iter().map(|(c, _)| *c).collect(),
            think_time: z,
            levels: vec![1.0, 100.0],
            demands: demands.iter().map(|(_, d)| vec![*d, *d]).collect(),
        }
    }

    #[test]
    fn constant_profile_reduces_to_algorithm_2() {
        // MVASD with a flat demand profile must equal exact multi-server MVA.
        let samples = constant_samples(&[(16, 0.02), (1, 0.004)], 1.0);
        let profile = ServiceDemandProfile::from_samples(
            &samples,
            InterpolationKind::CubicNotAKnot,
            DemandAxis::Concurrency,
        )
        .unwrap();
        let sd = mvasd(&profile, 300).unwrap();

        let net = ClosedNetwork::new(
            vec![
                Station::queueing("s0", 16, 1.0, 0.02),
                Station::queueing("s1", 1, 1.0, 0.004),
            ],
            1.0,
        )
        .unwrap();
        let a2 = multiserver_mva(&net, 300).unwrap();
        for (ps, pa) in sd.points.iter().zip(a2.points.iter()) {
            assert!(close(ps.throughput, pa.throughput, 1e-9), "n={}", ps.n);
            assert!(close(ps.response, pa.response, 1e-9));
        }
    }

    #[test]
    fn littles_law_holds_with_varying_demands() {
        let samples = DemandSamples {
            station_names: vec!["cpu".into(), "disk".into()],
            server_counts: vec![8, 1],
            think_time: 1.0,
            levels: vec![1.0, 50.0, 200.0],
            demands: vec![vec![0.06, 0.05, 0.045], vec![0.012, 0.011, 0.010]],
        };
        let profile = ServiceDemandProfile::from_samples(
            &samples,
            InterpolationKind::CubicNotAKnot,
            DemandAxis::Concurrency,
        )
        .unwrap();
        let sol = mvasd(&profile, 250).unwrap();
        for p in &sol.points {
            assert!(close(p.n as f64, p.throughput * p.cycle_time, 1e-9));
        }
    }

    #[test]
    fn varying_demand_raises_saturation_throughput() {
        // Demand falls from 12 ms to 10 ms: the MVASD ceiling follows the
        // *high-concurrency* demand (100/s), while MVA·1 (static demands
        // sampled at n = 1) saturates at 1/0.012 ≈ 83/s.
        let samples = DemandSamples {
            station_names: vec!["disk".into()],
            server_counts: vec![1],
            think_time: 1.0,
            levels: vec![1.0, 100.0, 400.0],
            demands: vec![vec![0.012, 0.0104, 0.010]],
        };
        let profile = ServiceDemandProfile::from_samples(
            &samples,
            InterpolationKind::CubicNotAKnot,
            DemandAxis::Concurrency,
        )
        .unwrap();
        let sd = mvasd(&profile, 600).unwrap();
        assert!(sd.last().throughput > 97.0, "{}", sd.last().throughput);
        assert!(sd.last().throughput <= 100.0 + 1e-6);

        let mva1 = ClosedNetwork::new(vec![Station::queueing("disk", 1, 1.0, 0.012)], 1.0).unwrap();
        let x1 = multiserver_mva(&mva1, 600).unwrap().last().throughput;
        assert!(x1 < 84.0);
        assert!(sd.last().throughput > x1 * 1.15);
    }

    #[test]
    fn single_server_variant_distorts_presaturation_response() {
        // The paper's Fig. 8 observation: normalizing a multi-server CPU to
        // a single server mispredicts even though the asymptotic ceiling
        // matches. The direction: D/C pretends a 160 ms unit of work takes
        // 10 ms, so pre-saturation response is wildly optimistic (a real
        // 16-core station still serves each customer for the full D).
        let samples = constant_samples(&[(16, 0.16)], 1.0);
        let profile = ServiceDemandProfile::from_samples(
            &samples,
            InterpolationKind::Linear,
            DemandAxis::Concurrency,
        )
        .unwrap();
        let multi = mvasd(&profile, 400).unwrap();
        let single = mvasd_single_server(&profile, 400).unwrap();
        let n_mid = 60;
        let r_multi = multi.at(n_mid).unwrap().response;
        let r_single = single.at(n_mid).unwrap().response;
        assert!(
            r_single < r_multi * 0.5,
            "single {r_single} should be far below multi {r_multi}"
        );
        assert!(close(r_multi, 0.16, 0.02));
        // Same asymptotic ceiling 16/0.16 = 100.
        assert!(close(
            single.last().throughput,
            multi.last().throughput,
            2.0
        ));
    }

    #[test]
    fn throughput_axis_profile_solves() {
        // Demands indexed by throughput; verifies the bootstrap & feedback
        // path. Falling demand vs X.
        let samples = DemandSamples {
            station_names: vec!["db".into()],
            server_counts: vec![1],
            think_time: 1.0,
            levels: vec![1.0, 40.0, 80.0], // throughputs
            demands: vec![vec![0.012, 0.011, 0.010]],
        };
        let profile = ServiceDemandProfile::from_samples(
            &samples,
            InterpolationKind::CubicNotAKnot,
            DemandAxis::Throughput,
        )
        .unwrap();
        let sol = mvasd(&profile, 400).unwrap();
        // Ceiling tracks the demand at high throughput: 1/0.010.
        assert!(sol.last().throughput > 95.0);
        assert!(sol.last().throughput <= 100.0 + 1e-6);
        // Little's law still holds.
        for p in &sol.points {
            assert!(close(p.n as f64, p.throughput * p.cycle_time, 1e-9));
        }
    }

    #[test]
    fn contention_rise_produces_throughput_dip() {
        // Demand rising past the knee (JPetStore-style) must yield a
        // non-monotone throughput curve — the feature static MVA cannot
        // reproduce but MVASD "picks up" (paper Fig. 7).
        let samples = DemandSamples {
            station_names: vec!["dbcpu".into()],
            server_counts: vec![16],
            think_time: 1.0,
            levels: vec![1.0, 70.0, 140.0, 168.0, 210.0],
            demands: vec![vec![0.145, 0.120, 0.119, 0.126, 0.128]],
        };
        let profile = ServiceDemandProfile::from_samples(
            &samples,
            InterpolationKind::CubicNotAKnot,
            DemandAxis::Concurrency,
        )
        .unwrap();
        let sol = mvasd(&profile, 210).unwrap();
        let xs = sol.throughputs();
        let peak = xs.iter().cloned().fold(0.0f64, f64::max);
        let x_end = *xs.last().unwrap();
        assert!(
            x_end < peak * 0.997,
            "dip expected: peak {peak}, end {x_end}"
        );
        // And the peak is reached strictly before the end of the range.
        let peak_n = xs.iter().position(|&x| x == peak).unwrap() + 1;
        assert!(peak_n < 200, "peak at n={peak_n}");
    }

    #[test]
    fn zero_population_yields_empty_solution() {
        let samples = constant_samples(&[(1, 0.01)], 1.0);
        let profile = ServiceDemandProfile::from_samples(
            &samples,
            InterpolationKind::Linear,
            DemandAxis::Concurrency,
        )
        .unwrap();
        let sol = mvasd(&profile, 0).unwrap();
        assert!(sol.points.is_empty());
        assert_eq!(&sol.station_names[..], &["s0".to_string()][..]);
        assert!(mvasd_single_server(&profile, 0).unwrap().points.is_empty());
    }

    #[test]
    fn schweitzer_variant_tracks_exact_mvasd() {
        let samples = DemandSamples {
            station_names: vec!["cpu".into(), "disk".into()],
            server_counts: vec![16, 1],
            think_time: 1.0,
            levels: vec![1.0, 50.0, 200.0],
            demands: vec![vec![0.14, 0.125, 0.12], vec![0.008, 0.0075, 0.007]],
        };
        let profile = ServiceDemandProfile::from_samples(
            &samples,
            InterpolationKind::CubicNotAKnot,
            DemandAxis::Concurrency,
        )
        .unwrap();
        let exact = mvasd(&profile, 600).unwrap();
        let approx = mvasd_schweitzer(&profile, 600).unwrap();
        for n in [1usize, 30, 100, 200, 300, 600] {
            let (xe, xa) = (
                exact.at(n).unwrap().throughput,
                approx.at(n).unwrap().throughput,
            );
            // The Seidmann/Schweitzer family's knee-region error on 16-core
            // stations reaches ~20 % (quantified in ablation-solvers); the
            // approximation must stay within that documented band.
            let rel = (xe - xa).abs() / xe;
            assert!(rel < 0.22, "n={n}: exact {xe} vs approx {xa}");
            // Little's law holds for the approximation too.
            let p = approx.at(n).unwrap();
            assert!(close(
                p.n as f64,
                p.throughput * p.cycle_time,
                1e-6 * p.n as f64
            ));
        }
        // Same asymptotic ceiling (interpolated bottleneck), approached
        // slowly by the approximation — 5 % far past the knee.
        let rel =
            (exact.last().throughput - approx.last().throughput).abs() / exact.last().throughput;
        assert!(
            rel < 0.05,
            "ceilings: {} vs {}",
            exact.last().throughput,
            approx.last().throughput
        );
    }

    #[test]
    fn schweitzer_variant_zero_population_is_empty() {
        let samples = constant_samples(&[(1, 0.01)], 1.0);
        let profile = ServiceDemandProfile::from_samples(
            &samples,
            InterpolationKind::Linear,
            DemandAxis::Concurrency,
        )
        .unwrap();
        assert!(mvasd_schweitzer(&profile, 0).unwrap().points.is_empty());
    }

    #[test]
    fn utilization_tracks_interpolated_demand() {
        let samples = DemandSamples {
            station_names: vec!["disk".into()],
            server_counts: vec![1],
            think_time: 1.0,
            levels: vec![1.0, 200.0],
            demands: vec![vec![0.012, 0.010]],
        };
        let profile = ServiceDemandProfile::from_samples(
            &samples,
            InterpolationKind::Linear,
            DemandAxis::Concurrency,
        )
        .unwrap();
        let sol = mvasd(&profile, 200).unwrap();
        for p in &sol.points {
            let d_n = profile.demands_at(p.n as f64)[0];
            assert!(close(p.stations[0].utilization, p.throughput * d_n, 1e-9));
            assert!(p.stations[0].utilization <= 1.0 + 1e-9);
        }
    }
}
