//! Open-system prediction with varying service demands — the extension the
//! paper's Section 7 motivates:
//!
//! > "generating splines with respect to increasing throughput can lead to
//! > more tractable models when using open systems, where throughput can be
//! > easier measured."
//!
//! In an open system the operator controls the arrival rate `λ` rather than
//! a closed population, and the throughput *is* `λ` at steady state — so a
//! demand profile indexed by throughput ([`DemandAxis::Throughput`]) plugs
//! in directly: evaluate `D_k(λ)`, solve the resulting Jackson network, no
//! fixed-point feedback needed. This module provides that sweep, including
//! saturation detection as the varying demands move the capacity ceiling.

use mvasd_queueing::network::{ClosedNetwork, Station};
use mvasd_queueing::open::solve_open;
use mvasd_queueing::QueueingError;

use crate::profile::{DemandAxis, ServiceDemandProfile};
use crate::CoreError;

/// Prediction at one arrival rate.
#[derive(Debug, Clone, PartialEq)]
pub struct OpenPrediction {
    /// Arrival rate analyzed (transactions/s).
    pub lambda: f64,
    /// Mean end-to-end response time (s).
    pub response: f64,
    /// Mean number of transactions in the system.
    pub number_in_system: f64,
    /// Per-station utilizations, profile order.
    pub utilization: Vec<f64>,
}

/// Result of an open-system sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct OpenSweep {
    /// Stable points, ascending by `lambda`.
    pub points: Vec<OpenPrediction>,
    /// The first arrival rate at which some station saturated (the sweep
    /// stops there), if saturation was hit within the requested range.
    pub saturation_lambda: Option<f64>,
}

/// Sweeps arrival rates `lambdas` (ascending) through the open model with
/// demands interpolated from a **throughput-indexed** profile.
///
/// Stops at the first unstable rate (`λ·D_k(λ) ≥ C_k` for some station) and
/// records it in [`OpenSweep::saturation_lambda`]. Errors if the profile is
/// indexed by concurrency — that axis has no meaning in an open system.
pub fn predict_open(
    profile: &ServiceDemandProfile,
    lambdas: &[f64],
) -> Result<OpenSweep, CoreError> {
    if profile.axis() != DemandAxis::Throughput {
        return Err(CoreError::InvalidParameter {
            what: "open prediction needs a throughput-indexed profile",
        });
    }
    if lambdas.is_empty() {
        return Err(CoreError::InvalidParameter {
            what: "need at least one arrival rate",
        });
    }
    if lambdas.iter().any(|l| !(l.is_finite() && *l > 0.0)) {
        return Err(CoreError::InvalidParameter {
            what: "arrival rates must be finite and > 0",
        });
    }
    if lambdas.windows(2).any(|w| w[0] >= w[1]) {
        return Err(CoreError::InvalidParameter {
            what: "arrival rates must be strictly ascending",
        });
    }

    let mut points = Vec::with_capacity(lambdas.len());
    let mut saturation_lambda = None;
    for &lambda in lambdas {
        // Demands at this operating point.
        let stations: Vec<Station> = profile
            .stations()
            .iter()
            .map(|s| Station::queueing(&s.name, s.servers, 1.0, s.demand_at(lambda)))
            .collect();
        // Think time is irrelevant to the open model but required by the
        // shared network type; zero keeps intent clear.
        let net = ClosedNetwork::new(stations, 0.0)?;
        match solve_open(&net, lambda) {
            Ok(sol) => points.push(OpenPrediction {
                lambda,
                response: sol.response,
                number_in_system: sol.number_in_system,
                utilization: sol.stations.iter().map(|s| s.utilization).collect(),
            }),
            Err(QueueingError::Unstable { .. }) => {
                saturation_lambda = Some(lambda);
                break;
            }
            Err(e) => return Err(e.into()),
        }
    }
    Ok(OpenSweep {
        points,
        saturation_lambda,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{DemandSamples, InterpolationKind};

    fn throughput_profile() -> ServiceDemandProfile {
        // Demands falling with throughput (warm caches at high rates).
        let samples = DemandSamples {
            station_names: vec!["cpu".into(), "disk".into()],
            server_counts: vec![4, 1],
            think_time: 0.0,
            levels: vec![1.0, 40.0, 80.0], // throughputs
            demands: vec![vec![0.030, 0.027, 0.026], vec![0.012, 0.011, 0.0105]],
        };
        ServiceDemandProfile::from_samples(
            &samples,
            InterpolationKind::CubicNotAKnot,
            DemandAxis::Throughput,
        )
        .unwrap()
    }

    #[test]
    fn sweep_produces_rising_response() {
        let p = throughput_profile();
        let lambdas: Vec<f64> = (1..=9).map(|i| i as f64 * 10.0).collect();
        let sweep = predict_open(&p, &lambdas).unwrap();
        assert!(sweep.points.len() >= 5);
        for w in sweep.points.windows(2) {
            assert!(w[1].response > w[0].response, "response must rise with λ");
        }
        // Utilization law: U_disk = λ·D_disk(λ).
        for pt in &sweep.points {
            let d = p.demands_at(pt.lambda)[1];
            assert!((pt.utilization[1] - pt.lambda * d).abs() < 1e-9);
            assert!((pt.number_in_system - pt.lambda * pt.response).abs() < 1e-9);
        }
    }

    #[test]
    fn saturation_detected_where_varying_demand_predicts() {
        let p = throughput_profile();
        // Disk demand clamps at 0.0105 => ceiling ≈ 95.2/s.
        let lambdas: Vec<f64> = (1..=12).map(|i| i as f64 * 10.0).collect();
        let sweep = predict_open(&p, &lambdas).unwrap();
        assert_eq!(sweep.saturation_lambda, Some(100.0));
        assert_eq!(sweep.points.len(), 9); // 10..=90 stable
    }

    #[test]
    fn rejects_concurrency_axis_and_bad_rates() {
        let samples = DemandSamples {
            station_names: vec!["s".into()],
            server_counts: vec![1],
            think_time: 1.0,
            levels: vec![1.0, 10.0],
            demands: vec![vec![0.01, 0.01]],
        };
        let p = ServiceDemandProfile::from_samples(
            &samples,
            InterpolationKind::Linear,
            DemandAxis::Concurrency,
        )
        .unwrap();
        assert!(predict_open(&p, &[1.0]).is_err());

        let pt = ServiceDemandProfile::from_samples(
            &samples,
            InterpolationKind::Linear,
            DemandAxis::Throughput,
        )
        .unwrap();
        assert!(predict_open(&pt, &[]).is_err());
        assert!(predict_open(&pt, &[0.0]).is_err());
        assert!(predict_open(&pt, &[2.0, 1.0]).is_err());
        assert!(predict_open(&pt, &[f64::NAN]).is_err());
    }

    #[test]
    fn open_matches_closed_at_light_load() {
        // With a modest λ the open response approaches Σ D (no queueing).
        let p = throughput_profile();
        let sweep = predict_open(&p, &[1.0]).unwrap();
        let d_total: f64 = p.demands_at(1.0).iter().sum();
        assert!((sweep.points[0].response - d_total).abs() < 0.01 * d_total + 1e-3);
    }
}
