//! Parametric service-demand modeling — the paper's stated future work:
//!
//! > "As the service demand evolves with concurrency finding a general
//! > representation of this with a few samples is a challenge and will be
//! > explored in future work." (Section 7)
//!
//! Instead of a non-parametric spline through the samples, fit the
//! three-parameter warm-up law the demand physics suggests (caching/
//! batching benefits saturating with load):
//!
//! ```text
//! D(n) = d_∞ · (1 + α · e^{−(n−1)/τ})
//! ```
//!
//! * `d_∞` — the fully warmed demand (sets the saturation throughput);
//! * `α`  — the relative cold-start surcharge at `n = 1`;
//! * `τ`  — the concurrency scale on which the warm-up completes.
//!
//! A parametric form needs as few as 3 samples, cannot oscillate between
//! them (no Runge risk at all — the paper's Section 8 problem disappears by
//! construction), extrapolates sensibly below the first sample, and its
//! parameters are individually meaningful to a performance engineer. The
//! `ablation-demandfit` experiment compares it against spline
//! interpolation on the reproduction workloads.

use mvasd_numerics::optimize::{nelder_mead, NelderMeadOptions};

use crate::profile::{DemandAxis, DemandSamples, InterpolationKind, ServiceDemandProfile};
use crate::CoreError;

/// A fitted warm-up demand law for one station.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WarmupLaw {
    /// Asymptotic (fully warmed) demand `d_∞` (seconds).
    pub d_inf: f64,
    /// Relative cold surcharge `α ≥ 0`.
    pub alpha: f64,
    /// Warm-up concurrency scale `τ > 0`.
    pub tau: f64,
    /// Root-mean-square relative residual of the fit.
    pub rms_rel_residual: f64,
}

impl WarmupLaw {
    /// Evaluates `D(n)`.
    pub fn at(&self, n: f64) -> f64 {
        let n = n.max(1.0);
        self.d_inf * (1.0 + self.alpha * (-(n - 1.0) / self.tau).exp())
    }

    /// Fits the law to `(levels, demands)` samples by least squares on the
    /// relative residuals (so milli-second and second scale stations fit
    /// equally well). Needs ≥ 3 samples (3 parameters).
    pub fn fit(levels: &[f64], demands: &[f64]) -> Result<WarmupLaw, CoreError> {
        if levels.len() != demands.len() {
            return Err(CoreError::InvalidParameter {
                what: "levels and demands must have equal length",
            });
        }
        if levels.len() < 3 {
            return Err(CoreError::InvalidParameter {
                what: "need at least 3 samples for a 3-parameter law",
            });
        }
        if demands.iter().any(|d| !(d.is_finite() && *d > 0.0)) {
            return Err(CoreError::InvalidParameter {
                what: "demands must be finite and > 0",
            });
        }
        if levels.iter().any(|l| !(l.is_finite() && *l >= 1.0)) {
            return Err(CoreError::InvalidParameter {
                what: "levels must be finite and >= 1",
            });
        }

        let d_min = demands.iter().cloned().fold(f64::INFINITY, f64::min);
        let d_first = demands[0];
        let span = levels.last().expect("len >= 3 validated above") - levels[0];
        // Parameterize positively via squares to keep NM unconstrained:
        // p = [d_inf, alpha, tau] directly with penalty guards.
        let data: Vec<(f64, f64)> = levels
            .iter()
            .cloned()
            .zip(demands.iter().cloned())
            .collect();
        let objective = |p: &[f64]| -> f64 {
            let (d_inf, alpha, tau) = (p[0], p[1], p[2]);
            if d_inf <= 0.0 || alpha < 0.0 || tau <= 0.0 {
                return 1e30;
            }
            data.iter()
                .map(|&(n, d)| {
                    let m = d_inf * (1.0 + alpha * (-(n - 1.0) / tau).exp());
                    ((m - d) / d).powi(2)
                })
                .sum()
        };
        let init = [
            d_min,
            ((d_first / d_min) - 1.0).max(0.01),
            (span / 4.0).max(1.0),
        ];
        let fit = nelder_mead(
            objective,
            &init,
            NelderMeadOptions {
                max_iterations: 6000,
                ..NelderMeadOptions::default()
            },
        )?;
        let rms = (fit.value / data.len() as f64).sqrt();
        Ok(WarmupLaw {
            d_inf: fit.x[0],
            alpha: fit.x[1].max(0.0),
            tau: fit.x[2],
            rms_rel_residual: rms,
        })
    }
}

/// Fits a [`WarmupLaw`] per station and returns a demand profile backed by
/// the fitted laws, ready for [`crate::algorithm::mvasd`].
///
/// Internally the laws are densely tabulated and handed to the standard
/// profile machinery (PCHIP through law-generated points reproduces the
/// law to ~1e-6, and keeps the solver interface uniform).
pub fn fit_profile(
    samples: &DemandSamples,
) -> Result<(Vec<WarmupLaw>, ServiceDemandProfile), CoreError> {
    if samples.demands.is_empty() {
        return Err(CoreError::InvalidParameter {
            what: "need at least one station to fit demand laws",
        });
    }
    let laws: Vec<WarmupLaw> = samples
        .demands
        .iter()
        .map(|row| WarmupLaw::fit(&samples.levels, row))
        .collect::<Result<_, _>>()?;

    // Dense tabulation — extended well past the sampled range, because the
    // whole point of the parametric law is principled extrapolation of the
    // warm-up decline (the clamped spline freezes at the last sample). Ten
    // time-constants past the last sample the law sits at its asymptote,
    // so the profile's clamp beyond the grid is then exact.
    let lo = samples.levels[0];
    let tau_max = laws.iter().map(|l| l.tau).fold(0.0f64, f64::max);
    let hi = samples.levels.last().expect("fit validated >= 3 levels") + 10.0 * tau_max;
    let steps = 256usize;
    let grid: Vec<f64> = (0..=steps)
        .map(|i| lo + (hi - lo) * i as f64 / steps as f64)
        .collect();
    let dense = DemandSamples {
        station_names: samples.station_names.clone(),
        server_counts: samples.server_counts.clone(),
        think_time: samples.think_time,
        levels: grid.clone(),
        demands: laws
            .iter()
            .map(|law| grid.iter().map(|&n| law.at(n)).collect())
            .collect(),
    };
    let profile = ServiceDemandProfile::from_samples(
        &dense,
        InterpolationKind::Pchip,
        DemandAxis::Concurrency,
    )?;
    Ok((laws, profile))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_known_parameters() {
        let truth = WarmupLaw {
            d_inf: 0.010,
            alpha: 0.25,
            tau: 60.0,
            rms_rel_residual: 0.0,
        };
        let levels = vec![1.0, 20.0, 50.0, 100.0, 200.0, 400.0];
        let demands: Vec<f64> = levels.iter().map(|&n| truth.at(n)).collect();
        let fit = WarmupLaw::fit(&levels, &demands).unwrap();
        assert!((fit.d_inf - 0.010).abs() < 1e-4, "{fit:?}");
        assert!((fit.alpha - 0.25).abs() < 0.01);
        assert!((fit.tau - 60.0).abs() < 2.0);
        assert!(fit.rms_rel_residual < 1e-5);
    }

    #[test]
    fn three_samples_suffice_for_clean_data() {
        let truth = WarmupLaw {
            d_inf: 0.02,
            alpha: 0.3,
            tau: 40.0,
            rms_rel_residual: 0.0,
        };
        let levels = vec![1.0, 60.0, 250.0];
        let demands: Vec<f64> = levels.iter().map(|&n| truth.at(n)).collect();
        let fit = WarmupLaw::fit(&levels, &demands).unwrap();
        // Interpolates well at unmeasured points (the paper's Fig. 12
        // problem — 3 equispaced samples distorted the spline — is gone).
        for n in [10.0, 30.0, 120.0, 400.0] {
            let rel = (fit.at(n) - truth.at(n)).abs() / truth.at(n);
            assert!(rel < 0.02, "n={n}: {} vs {}", fit.at(n), truth.at(n));
        }
    }

    #[test]
    fn constant_demand_fits_with_zero_alpha() {
        let levels = vec![1.0, 50.0, 150.0, 300.0];
        let demands = vec![0.005; 4];
        let fit = WarmupLaw::fit(&levels, &demands).unwrap();
        assert!((fit.d_inf - 0.005).abs() < 1e-5);
        assert!(fit.alpha.abs() < 0.02, "{fit:?}");
    }

    #[test]
    fn profile_from_laws_solves_and_bounds_hold() {
        let samples = DemandSamples {
            station_names: vec!["cpu".into(), "disk".into()],
            server_counts: vec![8, 1],
            think_time: 1.0,
            levels: vec![1.0, 40.0, 120.0, 250.0],
            demands: vec![
                vec![0.050, 0.0445, 0.0415, 0.040],
                vec![0.012, 0.0108, 0.0102, 0.010],
            ],
        };
        let (laws, profile) = fit_profile(&samples).unwrap();
        assert_eq!(laws.len(), 2);
        let sol = crate::algorithm::mvasd(&profile, 400).unwrap();
        // Ceiling from the fitted asymptotic demand of the bottleneck (disk).
        let cap = 1.0 / laws[1].d_inf;
        assert!(sol.last().throughput <= cap * 1.001);
        assert!(sol.last().throughput > 0.95 * cap);
        for p in &sol.points {
            assert!((p.n as f64 - p.throughput * p.cycle_time).abs() < 1e-6 * p.n as f64);
        }
    }

    #[test]
    fn fit_profile_rejects_empty_samples() {
        // Regression: a station-less sample set used to index into
        // `levels` unchecked and panic instead of erroring.
        let empty = DemandSamples {
            station_names: vec![],
            server_counts: vec![],
            think_time: 1.0,
            levels: vec![],
            demands: vec![],
        };
        assert!(matches!(
            fit_profile(&empty),
            Err(CoreError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(WarmupLaw::fit(&[1.0, 2.0], &[0.1, 0.1]).is_err());
        assert!(WarmupLaw::fit(&[1.0, 2.0, 3.0], &[0.1, 0.1]).is_err());
        assert!(WarmupLaw::fit(&[1.0, 2.0, 3.0], &[0.1, -0.1, 0.1]).is_err());
        assert!(WarmupLaw::fit(&[0.0, 2.0, 3.0], &[0.1, 0.1, 0.1]).is_err());
        assert!(WarmupLaw::fit(&[1.0, 2.0, f64::NAN], &[0.1, 0.1, 0.1]).is_err());
    }

    #[test]
    fn evaluation_clamps_below_one() {
        let law = WarmupLaw {
            d_inf: 0.01,
            alpha: 0.5,
            tau: 10.0,
            rms_rel_residual: 0.0,
        };
        assert_eq!(law.at(0.0), law.at(1.0));
        assert_eq!(law.at(-3.0), law.at(1.0));
    }
}
