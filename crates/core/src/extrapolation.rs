//! Curve-fitting throughput extrapolation — the baseline of the paper's
//! related work (ref. \[4], Dattagupta et al. / PerfExt; also the approach
//! behind tools like TeamQuest):
//!
//! > "makes use of curve fitting to extrapolate measured throughput and
//! > response time values in order to predict values at higher
//! > concurrencies. Using linear regression for linearly increasing
//! > throughput and sigmoid curves for saturation, the extrapolation
//! > technique is shown to work well against measured values."
//!
//! The predictor fits both shapes to the measured `(N, X)` points and keeps
//! the better one (by residual sum of squares):
//!
//! * **linear-capped** — `X(N) = min(a·N, X_max)`: Little's-law growth into
//!   a hard ceiling;
//! * **sigmoid** — `X(N) = X_max / (1 + e^{−(N − n₀)/s})`, fitted with
//!   Nelder–Mead.
//!
//! Cycle times come from Little's law on the extrapolated throughput
//! (`R + Z = N / X(N)`). Unlike MVASD this has no model of *why* the curve
//! bends — no per-resource demands, no multi-server structure, no
//! utilization outputs, no what-if capability — which is exactly the
//! comparison the `ablation-curvefit` experiment quantifies.

use mvasd_numerics::optimize::{nelder_mead, NelderMeadOptions};
use mvasd_numerics::stats::linear_regression;

use crate::CoreError;

/// Which functional form won the fit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FittedShape {
    /// `X(N) = min(a·N, X_max)`.
    LinearCapped,
    /// `X(N) = X_max / (1 + e^{−(N−n₀)/s})`.
    Sigmoid,
}

/// A fitted throughput-extrapolation model.
#[derive(Debug, Clone)]
pub struct CurveFitPredictor {
    shape: FittedShape,
    /// LinearCapped: `[a, x_max]`; Sigmoid: `[x_max, n0, s]`.
    params: Vec<f64>,
    think_time: f64,
    /// Residual sum of squares of the winning fit.
    rss: f64,
}

impl CurveFitPredictor {
    /// Fits the predictor to measured `(levels, throughputs)` pairs.
    /// Needs at least 3 points (a saturating curve cannot be identified
    /// from fewer).
    pub fn fit(levels: &[f64], throughputs: &[f64], think_time: f64) -> Result<Self, CoreError> {
        if levels.len() != throughputs.len() {
            return Err(CoreError::InvalidParameter {
                what: "levels and throughputs must have equal length",
            });
        }
        if levels.len() < 3 {
            return Err(CoreError::InvalidParameter {
                what: "need at least 3 measured points",
            });
        }
        if levels
            .iter()
            .chain(throughputs.iter())
            .any(|v| !v.is_finite())
        {
            return Err(CoreError::InvalidParameter {
                what: "levels and throughputs must be finite",
            });
        }
        if throughputs.iter().any(|&x| x <= 0.0) {
            return Err(CoreError::InvalidParameter {
                what: "throughputs must be positive",
            });
        }
        if !(think_time.is_finite() && think_time >= 0.0) {
            return Err(CoreError::InvalidParameter {
                what: "think time must be finite and >= 0",
            });
        }

        let x_peak = throughputs.iter().cloned().fold(0.0f64, f64::max);

        // Candidate 1: linear ramp (through the origin-ish low-load points)
        // capped at a fitted ceiling. Slope from the points below 60 % of
        // the peak (the "linearly increasing" regime of ref. [4]), ceiling
        // fitted as the mean of the near-peak points.
        let low: (Vec<f64>, Vec<f64>) = levels
            .iter()
            .zip(throughputs.iter())
            .filter(|(_, &x)| x < 0.6 * x_peak)
            .map(|(&n, &x)| (n, x))
            .unzip();
        let slope = if low.0.len() >= 2 {
            linear_regression(&low.0, &low.1)
                .map(|r| r.slope)
                .unwrap_or(0.0)
        } else {
            // Degenerate: use the first point's ray.
            throughputs[0] / levels[0].max(1.0)
        };
        let cap = {
            let near: Vec<f64> = throughputs
                .iter()
                .cloned()
                .filter(|&x| x >= 0.9 * x_peak)
                .collect();
            near.iter().sum::<f64>() / near.len() as f64
        };
        let linear_rss: f64 = levels
            .iter()
            .zip(throughputs.iter())
            .map(|(&n, &x)| {
                let m = (slope * n).min(cap);
                (m - x).powi(2)
            })
            .sum();

        // Candidate 2: sigmoid, fitted by Nelder–Mead on SSE with
        // positivity penalties.
        let data: Vec<(f64, f64)> = levels
            .iter()
            .cloned()
            .zip(throughputs.iter().cloned())
            .collect();
        let sse = |p: &[f64]| -> f64 {
            if p[0] <= 0.0 || p[2] <= 0.0 {
                return 1e30;
            }
            data.iter()
                .map(|&(n, x)| {
                    let m = p[0] / (1.0 + (-(n - p[1]) / p[2]).exp());
                    (m - x).powi(2)
                })
                .sum()
        };
        // Init: ceiling slightly above peak, midpoint at half-peak level.
        let half_level = data
            .iter()
            .find(|&&(_, x)| x >= 0.5 * x_peak)
            .map(|&(n, _)| n)
            .unwrap_or(levels[levels.len() / 2]);
        let span = (levels[levels.len() - 1] - levels[0]).max(1.0);
        let fit = nelder_mead(
            sse,
            &[x_peak * 1.05, half_level, span / 8.0],
            NelderMeadOptions {
                max_iterations: 4000,
                ..NelderMeadOptions::default()
            },
        )?;

        if fit.value < linear_rss {
            Ok(Self {
                shape: FittedShape::Sigmoid,
                params: fit.x,
                think_time,
                rss: fit.value,
            })
        } else {
            Ok(Self {
                shape: FittedShape::LinearCapped,
                params: vec![slope, cap],
                think_time,
                rss: linear_rss,
            })
        }
    }

    /// The winning functional form.
    pub fn shape(&self) -> FittedShape {
        self.shape
    }

    /// Residual sum of squares of the fit.
    pub fn rss(&self) -> f64 {
        self.rss
    }

    /// Extrapolated throughput at concurrency `n`.
    pub fn throughput(&self, n: f64) -> f64 {
        match self.shape {
            FittedShape::LinearCapped => (self.params[0] * n).min(self.params[1]),
            FittedShape::Sigmoid => {
                self.params[0] / (1.0 + (-(n - self.params[1]) / self.params[2]).exp())
            }
        }
    }

    /// Extrapolated cycle time `R + Z = N / X(N)` (Little's law); the
    /// low-load floor `R ≥ 0` is enforced by capping at `Z` from below.
    pub fn cycle_time(&self, n: f64) -> f64 {
        let x = self.throughput(n);
        if x <= 0.0 {
            return self.think_time;
        }
        (n / x).max(self.think_time)
    }

    /// Extrapolated response time `R = N/X − Z`, floored at zero.
    pub fn response(&self, n: f64) -> f64 {
        (self.cycle_time(n) - self.think_time).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn recovers_a_sigmoid_curve() {
        let truth = |n: f64| 100.0 / (1.0 + (-(n - 60.0) / 18.0).exp());
        let levels: Vec<f64> = vec![5.0, 20.0, 40.0, 60.0, 90.0, 150.0, 250.0];
        let xs: Vec<f64> = levels.iter().map(|&n| truth(n)).collect();
        let p = CurveFitPredictor::fit(&levels, &xs, 1.0).unwrap();
        assert_eq!(p.shape(), FittedShape::Sigmoid);
        for n in [10.0, 75.0, 120.0, 300.0] {
            assert!(
                close(p.throughput(n), truth(n), 0.02 * truth(n)),
                "n={n}: {} vs {}",
                p.throughput(n),
                truth(n)
            );
        }
    }

    #[test]
    fn recovers_linear_then_flat() {
        // Classic closed-network shape: X = min(N/(D+Z), 1/Dmax).
        let (d, z, cap) = (0.02f64, 1.0f64, 40.0f64);
        let truth = |n: f64| (n / (d + z)).min(cap);
        let levels: Vec<f64> = vec![1.0, 10.0, 20.0, 30.0, 60.0, 120.0, 240.0];
        let xs: Vec<f64> = levels.iter().map(|&n| truth(n)).collect();
        let p = CurveFitPredictor::fit(&levels, &xs, z).unwrap();
        for n in [5.0, 15.0, 100.0, 400.0] {
            assert!(
                close(p.throughput(n), truth(n), 0.08 * truth(n)),
                "n={n}: {} vs {}",
                p.throughput(n),
                truth(n)
            );
        }
    }

    #[test]
    fn littles_law_cycle_times() {
        let levels = vec![10.0, 50.0, 100.0, 200.0];
        let xs = vec![9.0, 40.0, 60.0, 62.0];
        let p = CurveFitPredictor::fit(&levels, &xs, 1.0).unwrap();
        let n = 150.0;
        assert!(close(p.cycle_time(n), n / p.throughput(n), 1e-12));
        assert!(close(p.response(n), p.cycle_time(n) - 1.0, 1e-12));
        // Low load: cycle time floored at Z.
        assert!(p.cycle_time(0.5) >= 1.0);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(CurveFitPredictor::fit(&[1.0, 2.0], &[1.0, 2.0], 1.0).is_err());
        assert!(CurveFitPredictor::fit(&[1.0, 2.0, 3.0], &[1.0, 2.0], 1.0).is_err());
        assert!(CurveFitPredictor::fit(&[1.0, 2.0, 3.0], &[1.0, -2.0, 3.0], 1.0).is_err());
        assert!(CurveFitPredictor::fit(&[1.0, 2.0, f64::NAN], &[1.0, 2.0, 3.0], 1.0).is_err());
        assert!(CurveFitPredictor::fit(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0], -1.0).is_err());
    }

    #[test]
    fn extrapolates_beyond_measured_range() {
        // The whole point of ref. [4]: predict past the last test.
        let truth = |n: f64| 80.0 / (1.0 + (-(n - 45.0) / 12.0).exp());
        let levels: Vec<f64> = vec![5.0, 15.0, 30.0, 45.0, 60.0];
        let xs: Vec<f64> = levels.iter().map(|&n| truth(n)).collect();
        let p = CurveFitPredictor::fit(&levels, &xs, 1.0).unwrap();
        // At N = 200, far past the data, the fitted ceiling applies.
        assert!(close(p.throughput(200.0), 80.0, 4.0));
    }
}
