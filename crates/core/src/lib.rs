//! # mvasd-core
//!
//! **MVASD** — exact multi-server Mean Value Analysis with *varying service
//! demands* — the primary contribution of Kattepur & Nambiar, "Performance
//! Modeling of Multi-tiered Web Applications with Varying Service Demands"
//! (IPPS 2015 / IJNC 6(1) 2016), Algorithm 3.
//!
//! Classic MVA takes one static service demand per station; the paper shows
//! that measured demands *change with concurrency* (caching, batching,
//! branch prediction), so whichever concurrency level the demands were
//! sampled at, static MVA mispredicts. MVASD instead accepts an **array of
//! demands** sampled at a handful of concurrency levels, interpolates them
//! with cubic splines (clamped outside the sampled range, paper eq. 14),
//! and evaluates the interpolant *inside* the population recursion:
//! at population `n` the algorithm uses `SSⁿ_k = h_k(n)`.
//!
//! * [`profile`] — [`profile::ServiceDemandProfile`]: the interpolated
//!   demand arrays (vs concurrency, or vs throughput as in paper Fig. 11).
//! * [`algorithm`] — [`algorithm::mvasd`] (Algorithm 3), the
//!   [`algorithm::mvasd_single_server`] baseline the paper shows to
//!   underperform (demands normalized by core count, single-server MVA),
//!   and [`algorithm::mvasd_schweitzer`] (fast approximate variant for
//!   very large populations).
//! * [`designer`] — load-test sample placement: Chebyshev Nodes (paper
//!   Section 8), equi-spaced, and random strategies.
//! * [`demand_fit`] — parametric demand laws `D(n) = d_∞(1 + α·e^{−n/τ})`
//!   fitted from a few samples: the paper's Section 7 future work.
//! * [`accuracy`] — the mean-percentage-deviation reports of paper
//!   Tables 4–5.
//! * [`extrapolation`] — the curve-fitting baseline of the paper's related
//!   work (ref. \[4]: linear/sigmoid throughput extrapolation), for
//!   head-to-head comparison against MVASD.
//! * [`open_system`] — open-system (arrival-rate driven) prediction from
//!   throughput-indexed profiles, the extension paper Section 7 motivates.
//! * [`pipeline`] — the three-step prediction workflow of paper Fig. 17
//!   (design points → load test → interpolate + predict).
//! * [`solver`] — [`mvasd_queueing::mva::ClosedSolver`] adapters for the
//!   MVASD family, so the algorithms here slot into the same comparison
//!   pipelines as the static solvers and the simulation estimator.
//! * [`sweep`] — warm-restart scenario sweeps: families of what-if models
//!   served from shared, memoized population iterators with early-exit
//!   stop conditions.
//!
//! ## Quickstart
//!
//! ```
//! use mvasd_core::profile::{DemandSamples, ServiceDemandProfile, InterpolationKind, DemandAxis};
//! use mvasd_core::solver::MvasdSolver;
//! use mvasd_queueing::mva::ClosedSolver;
//!
//! // Demands measured at 3 concurrency levels for 2 stations.
//! let samples = DemandSamples {
//!     station_names: vec!["cpu".into(), "disk".into()],
//!     server_counts: vec![4, 1],
//!     think_time: 1.0,
//!     levels: vec![1.0, 50.0, 200.0],
//!     demands: vec![
//!         vec![0.024, 0.021, 0.020], // cpu falls with load
//!         vec![0.012, 0.011, 0.0105],
//!     ],
//! };
//! let profile = ServiceDemandProfile::from_samples(
//!     &samples, InterpolationKind::CubicNotAKnot, DemandAxis::Concurrency,
//! ).unwrap();
//! // MvasdSolver implements the workspace-wide ClosedSolver trait, so it
//! // drops into any pipeline alongside the static MVA solvers.
//! let solver = MvasdSolver::new(profile);
//! assert_eq!(solver.name(), "mvasd");
//! let prediction = solver.solve(300).unwrap();
//! assert!(prediction.last().throughput <= 1.0 / 0.0105 + 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accuracy;
pub mod algorithm;
pub mod demand_fit;
pub mod designer;
pub mod extrapolation;
pub mod open_system;
pub mod pipeline;
pub mod profile;
pub mod solver;
pub mod sweep;

/// Errors from MVASD model construction and solution.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A parameter was outside its legal domain.
    InvalidParameter {
        /// Description of the violated constraint.
        what: &'static str,
    },
    /// Error from the numerics layer (interpolation).
    Numerics(mvasd_numerics::NumericsError),
    /// Error from the queueing layer.
    Queueing(mvasd_queueing::QueueingError),
}

impl core::fmt::Display for CoreError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CoreError::InvalidParameter { what } => write!(f, "invalid parameter: {what}"),
            CoreError::Numerics(e) => write!(f, "numerics error: {e}"),
            CoreError::Queueing(e) => write!(f, "queueing error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<mvasd_numerics::NumericsError> for CoreError {
    fn from(e: mvasd_numerics::NumericsError) -> Self {
        CoreError::Numerics(e)
    }
}

impl From<mvasd_queueing::QueueingError> for CoreError {
    fn from(e: mvasd_queueing::QueueingError) -> Self {
        CoreError::Queueing(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_from() {
        let e: CoreError = mvasd_numerics::NumericsError::SingularSystem.into();
        assert!(!e.to_string().is_empty());
        let e: CoreError = mvasd_queueing::QueueingError::EmptyNetwork.into();
        assert!(!e.to_string().is_empty());
        assert!(!CoreError::InvalidParameter { what: "x" }
            .to_string()
            .is_empty());
    }
}
