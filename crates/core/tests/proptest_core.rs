//! Property-based tests of the MVASD layer: algorithm invariants over
//! random demand profiles and the designer/extrapolation helpers.

use proptest::prelude::*;

use mvasd_core::algorithm::{mvasd, mvasd_single_server};
use mvasd_core::designer::{design_levels, SamplingStrategy};
use mvasd_core::extrapolation::CurveFitPredictor;
use mvasd_core::profile::{
    DemandAxis, DemandSamples, InterpolationKind, ServiceDemandProfile,
};

/// Random monotone-falling demand samples for a small station set.
fn arb_samples() -> impl Strategy<Value = DemandSamples> {
    let station = (
        prop_oneof![Just(1usize), Just(2), Just(4), Just(8), Just(16)],
        0.002f64..0.08, // asymptotic demand
        0.0f64..0.4,    // cold surcharge
    );
    (proptest::collection::vec(station, 1..4), 0.1f64..2.0).prop_map(|(specs, z)| {
        let levels = vec![1.0, 25.0, 75.0, 150.0];
        DemandSamples {
            station_names: (0..specs.len()).map(|i| format!("s{i}")).collect(),
            server_counts: specs.iter().map(|s| s.0).collect(),
            think_time: z,
            levels: levels.clone(),
            demands: specs
                .iter()
                .map(|&(_, base, alpha)| {
                    levels
                        .iter()
                        .map(|&l| base * (1.0 + alpha * (-(l - 1.0) / 40.0).exp()))
                        .collect()
                })
                .collect(),
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn mvasd_satisfies_operational_invariants(samples in arb_samples(), n_max in 5usize..160) {
        let profile = ServiceDemandProfile::from_samples(
            &samples, InterpolationKind::CubicNotAKnot, DemandAxis::Concurrency,
        ).unwrap();
        let sol = mvasd(&profile, n_max).unwrap();
        for p in &sol.points {
            // Little's law.
            prop_assert!((p.n as f64 - p.throughput * p.cycle_time).abs() < 1e-6 * p.n as f64);
            // Bottleneck law with the *minimum* interpolated demand over
            // the curve (demands are monotone falling here).
            let cap = samples.demands.iter().zip(samples.server_counts.iter())
                .map(|(row, &c)| row.last().unwrap() / c as f64)
                .fold(0.0f64, f64::max);
            prop_assert!(p.throughput <= 1.0 / cap * (1.0 + 1e-6), "n={}", p.n);
            // Utilizations are fractions.
            for sp in &p.stations {
                prop_assert!(sp.utilization <= 1.0 + 1e-9);
                prop_assert!(sp.utilization >= -1e-12);
            }
        }
        // Response never below the zero-contention floor at n = 1.
        let d1: f64 = profile.demands_at(1.0).iter().sum();
        prop_assert!(sol.at(1).unwrap().response >= d1 * (1.0 - 1e-9));
    }

    #[test]
    fn design_levels_cover_the_interval(
        points in 2usize..10,
        a in 1.0f64..20.0,
        width in 20.0f64..400.0,
    ) {
        let b = a + width;
        for strat in [
            SamplingStrategy::Chebyshev,
            SamplingStrategy::EquiSpaced,
            SamplingStrategy::Random { seed: points as u64 },
        ] {
            let levels = design_levels(strat, points, a, b).unwrap();
            prop_assert!(!levels.is_empty());
            prop_assert!(levels.windows(2).all(|w| w[0] < w[1]));
            for &l in &levels {
                prop_assert!((l as f64) >= a.floor() && (l as f64) <= b.ceil(), "{strat:?}: {l}");
            }
        }
    }

    #[test]
    fn curvefit_recovers_noiseless_sigmoids(
        xmax in 20.0f64..200.0,
        n0 in 30.0f64..120.0,
        s in 8.0f64..30.0,
    ) {
        let truth = move |n: f64| xmax / (1.0 + (-(n - n0) / s).exp());
        let levels: Vec<f64> = vec![5.0, 25.0, 55.0, 90.0, 140.0, 220.0, 320.0];
        let xs: Vec<f64> = levels.iter().map(|&n| truth(n)).collect();
        let p = CurveFitPredictor::fit(&levels, &xs, 1.0).unwrap();
        for n in [15.0, 70.0, 180.0, 400.0] {
            let t = truth(n);
            prop_assert!(
                (p.throughput(n) - t).abs() <= 0.05 * t + 0.5,
                "n={n}: {} vs {t}", p.throughput(n)
            );
        }
    }

    #[test]
    fn throughput_axis_profile_keeps_littles_law(samples in arb_samples(), n_max in 5usize..120) {
        // Reinterpret the levels as throughputs (any ascending positive
        // axis is legal) and solve with feedback.
        let profile = ServiceDemandProfile::from_samples(
            &samples, InterpolationKind::CubicNotAKnot, DemandAxis::Throughput,
        ).unwrap();
        let sol = mvasd(&profile, n_max).unwrap();
        for p in &sol.points {
            prop_assert!((p.n as f64 - p.throughput * p.cycle_time).abs() < 1e-6 * p.n as f64);
        }
    }
}

/// Deterministic (non-property) checks that would be too expensive to run
/// under many random cases on a single-core CI box: the multi-server and
/// single-server-normalized variants share the asymptotic ceiling.
#[test]
fn single_server_variant_shares_the_ceiling_fixed_cases() {
    // (servers, base demand, cold surcharge); think time 0.5 s. Demands are
    // sized so the knee sits well below the solved population.
    for (c, base, alpha) in [(1usize, 0.02f64, 0.2f64), (4, 0.06, 0.3), (16, 0.2, 0.25)] {
        let levels = vec![1.0, 25.0, 75.0, 150.0];
        let samples = DemandSamples {
            station_names: vec!["s".into()],
            server_counts: vec![c],
            think_time: 0.5,
            levels: levels.clone(),
            demands: vec![levels
                .iter()
                .map(|&l| base * (1.0 + alpha * (-(l - 1.0) / 40.0).exp()))
                .collect()],
        };
        let profile = ServiceDemandProfile::from_samples(
            &samples,
            InterpolationKind::CubicNotAKnot,
            DemandAxis::Concurrency,
        )
        .unwrap();
        let n = 400;
        let multi = mvasd(&profile, n).unwrap();
        let single = mvasd_single_server(&profile, n).unwrap();
        let rel = (multi.last().throughput - single.last().throughput).abs()
            / multi.last().throughput;
        assert!(
            rel < 0.05,
            "c={c}: multi {} vs single {}",
            multi.last().throughput,
            single.last().throughput
        );
    }
}
