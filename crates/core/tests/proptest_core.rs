//! Property-based tests of the MVASD layer: algorithm invariants over
//! random demand profiles and the designer/extrapolation helpers.
//!
//! Runs on the in-house deterministic harness (`mvasd_numerics::propcheck`).

use mvasd_numerics::propcheck::{check, Config, Gen};

use mvasd_core::algorithm::{mvasd, mvasd_single_server};
use mvasd_core::designer::{design_levels, SamplingStrategy};
use mvasd_core::extrapolation::CurveFitPredictor;
use mvasd_core::profile::{DemandAxis, DemandSamples, InterpolationKind, ServiceDemandProfile};

fn cfg() -> Config {
    Config::default().cases(24)
}

/// Random monotone-falling demand samples for a small station set.
fn gen_samples(g: &mut Gen) -> DemandSamples {
    let count = g.usize_in(1, 3);
    let levels: Vec<f64> = vec![1.0, 25.0, 75.0, 150.0];
    let mut server_counts = Vec::with_capacity(count);
    let mut demands = Vec::with_capacity(count);
    for _ in 0..count {
        let c = *g.choose(&[1usize, 2, 4, 8, 16]);
        let base = g.f64_in(0.002, 0.08); // asymptotic demand
        let alpha = g.f64_in(0.0, 0.4); // cold surcharge
        server_counts.push(c);
        demands.push(
            levels
                .iter()
                .map(|&l| base * (1.0 + alpha * (-(l - 1.0) / 40.0).exp()))
                .collect(),
        );
    }
    DemandSamples {
        station_names: (0..count).map(|i| format!("s{i}")).collect(),
        server_counts,
        think_time: g.f64_in(0.1, 2.0),
        levels,
        demands,
    }
}

#[test]
fn mvasd_satisfies_operational_invariants() {
    check("mvasd_satisfies_operational_invariants", &cfg(), |g| {
        let samples = gen_samples(g);
        let n_max = g.usize_in(5, 159);
        let profile = ServiceDemandProfile::from_samples(
            &samples,
            InterpolationKind::CubicNotAKnot,
            DemandAxis::Concurrency,
        )
        .unwrap();
        let sol = mvasd(&profile, n_max).unwrap();
        for p in &sol.points {
            // Little's law.
            assert!((p.n as f64 - p.throughput * p.cycle_time).abs() < 1e-6 * p.n as f64);
            // Bottleneck law with the *minimum* interpolated demand over
            // the curve (demands are monotone falling here).
            let cap = samples
                .demands
                .iter()
                .zip(samples.server_counts.iter())
                .map(|(row, &c)| row.last().unwrap() / c as f64)
                .fold(0.0f64, f64::max);
            assert!(p.throughput <= 1.0 / cap * (1.0 + 1e-6), "n={}", p.n);
            // Utilizations are fractions.
            for sp in &p.stations {
                assert!(sp.utilization <= 1.0 + 1e-9);
                assert!(sp.utilization >= -1e-12);
            }
        }
        // Response never below the zero-contention floor at n = 1.
        let d1: f64 = profile.demands_at(1.0).iter().sum();
        assert!(sol.at(1).unwrap().response >= d1 * (1.0 - 1e-9));
    });
}

#[test]
fn design_levels_cover_the_interval() {
    check("design_levels_cover_the_interval", &cfg(), |g| {
        let points = g.usize_in(2, 9);
        let a = g.f64_in(1.0, 20.0);
        let b = a + g.f64_in(20.0, 400.0);
        for strat in [
            SamplingStrategy::Chebyshev,
            SamplingStrategy::EquiSpaced,
            SamplingStrategy::Random {
                seed: points as u64,
            },
        ] {
            let levels = design_levels(strat, points, a, b).unwrap();
            assert!(!levels.is_empty());
            assert!(levels.windows(2).all(|w| w[0] < w[1]));
            for &l in &levels {
                assert!(
                    (l as f64) >= a.floor() && (l as f64) <= b.ceil(),
                    "{strat:?}: {l}"
                );
            }
        }
    });
}

#[test]
fn curvefit_recovers_noiseless_sigmoids() {
    check("curvefit_recovers_noiseless_sigmoids", &cfg(), |g| {
        let xmax = g.f64_in(20.0, 200.0);
        let n0 = g.f64_in(30.0, 120.0);
        let s = g.f64_in(8.0, 30.0);
        let truth = move |n: f64| xmax / (1.0 + (-(n - n0) / s).exp());
        let levels: Vec<f64> = vec![5.0, 25.0, 55.0, 90.0, 140.0, 220.0, 320.0];
        let xs: Vec<f64> = levels.iter().map(|&n| truth(n)).collect();
        let p = CurveFitPredictor::fit(&levels, &xs, 1.0).unwrap();
        for n in [15.0, 70.0, 180.0, 400.0] {
            let t = truth(n);
            assert!(
                (p.throughput(n) - t).abs() <= 0.05 * t + 0.5,
                "n={n}: {} vs {t}",
                p.throughput(n)
            );
        }
    });
}

#[test]
fn throughput_axis_profile_keeps_littles_law() {
    check("throughput_axis_profile_keeps_littles_law", &cfg(), |g| {
        let samples = gen_samples(g);
        let n_max = g.usize_in(5, 119);
        // Reinterpret the levels as throughputs (any ascending positive
        // axis is legal) and solve with feedback.
        let profile = ServiceDemandProfile::from_samples(
            &samples,
            InterpolationKind::CubicNotAKnot,
            DemandAxis::Throughput,
        )
        .unwrap();
        let sol = mvasd(&profile, n_max).unwrap();
        for p in &sol.points {
            assert!((p.n as f64 - p.throughput * p.cycle_time).abs() < 1e-6 * p.n as f64);
        }
    });
}

/// Deterministic (non-property) checks that would be too expensive to run
/// under many random cases on a single-core CI box: the multi-server and
/// single-server-normalized variants share the asymptotic ceiling.
#[test]
fn single_server_variant_shares_the_ceiling_fixed_cases() {
    // (servers, base demand, cold surcharge); think time 0.5 s. Demands are
    // sized so the knee sits well below the solved population.
    for (c, base, alpha) in [(1usize, 0.02f64, 0.2f64), (4, 0.06, 0.3), (16, 0.2, 0.25)] {
        let levels = vec![1.0, 25.0, 75.0, 150.0];
        let samples = DemandSamples {
            station_names: vec!["s".into()],
            server_counts: vec![c],
            think_time: 0.5,
            levels: levels.clone(),
            demands: vec![levels
                .iter()
                .map(|&l| base * (1.0 + alpha * (-(l - 1.0) / 40.0).exp()))
                .collect()],
        };
        let profile = ServiceDemandProfile::from_samples(
            &samples,
            InterpolationKind::CubicNotAKnot,
            DemandAxis::Concurrency,
        )
        .unwrap();
        let n = 400;
        let multi = mvasd(&profile, n).unwrap();
        let single = mvasd_single_server(&profile, n).unwrap();
        let rel =
            (multi.last().throughput - single.last().throughput).abs() / multi.last().throughput;
        assert!(
            rel < 0.05,
            "c={c}: multi {} vs single {}",
            multi.last().throughput,
            single.last().throughput
        );
    }
}
