//! The closed queueing-network model of paper Fig. 2.
//!
//! A load test is modelled as `N` statistically identical customers cycling
//! through a think stage (mean `Z`) and a set of service stations. Each of
//! the three servers (load injector, web/application, database) contributes
//! four hardware stations — multi-core CPU, Disk, Net-Tx, Net-Rx — giving
//! the 12-station networks used throughout the evaluation. Software
//! bottlenecks (locks, connection pools) are assumed tuned away, as in the
//! paper.

use crate::QueueingError;

/// What kind of service a station provides.
#[derive(Debug, Clone, PartialEq)]
pub enum StationKind {
    /// FCFS queueing station with `servers` identical servers (paper's
    /// multi-server queue; `servers = 1` is the classic single-server case).
    Queueing {
        /// Number of servers `C_k` (CPU cores, disk spindles, …).
        servers: usize,
    },
    /// Infinite-server (delay) station: no queueing, pure latency.
    Delay,
    /// Load-dependent station: the service rate is a function of the number
    /// of customers present. `rates[j-1]` is the speedup factor with `j`
    /// customers, relative to the station's base service rate (so a plain
    /// single server is `[1.0, 1.0, …]`); populations beyond the table
    /// clamp to the last entry. This is the station shape a Norton
    /// flow-equivalent server produces when a subnetwork is aggregated
    /// (see the `hierarchy` module).
    LoadDependent {
        /// Relative service rates `μ(j)/μ(1)` for `j = 1, 2, …`.
        rates: Vec<f64>,
    },
}

impl StationKind {
    /// The declared server count: `Some(c)` for a queueing station, `None`
    /// for delay and load-dependent stations, which have no meaningful
    /// scalar server count. (Replaces the old `servers()` accessor that
    /// returned a `usize::MAX` sentinel for delay stations.)
    pub fn server_count(&self) -> Option<usize> {
        match self {
            StationKind::Queueing { servers } => Some(*servers),
            StationKind::Delay | StationKind::LoadDependent { .. } => None,
        }
    }

    /// The largest relative service rate the station can reach: `C` for a
    /// `C`-server queueing station, the table maximum for a load-dependent
    /// station, and `∞` for a delay station (it never saturates).
    pub fn max_rate(&self) -> f64 {
        match self {
            StationKind::Queueing { servers } => *servers as f64,
            StationKind::Delay => f64::INFINITY,
            StationKind::LoadDependent { rates } => rates.iter().copied().fold(0.0, f64::max),
        }
    }
}

/// One service station of the closed network.
#[derive(Debug, Clone, PartialEq)]
pub struct Station {
    /// Human-readable identifier, e.g. `"db-disk"`.
    pub name: String,
    /// Queueing discipline / server count.
    pub kind: StationKind,
    /// Mean visits per system-level interaction, `V_k`.
    pub visits: f64,
    /// Mean service time per visit, `S_k` (seconds).
    pub service_time: f64,
}

impl Station {
    /// Convenience constructor for a queueing station.
    pub fn queueing(name: &str, servers: usize, visits: f64, service_time: f64) -> Self {
        Self {
            name: name.to_string(),
            kind: StationKind::Queueing { servers },
            visits,
            service_time,
        }
    }

    /// Convenience constructor for a delay (infinite-server) station.
    pub fn delay(name: &str, visits: f64, service_time: f64) -> Self {
        Self {
            name: name.to_string(),
            kind: StationKind::Delay,
            visits,
            service_time,
        }
    }

    /// Convenience constructor for a load-dependent station: `service_time`
    /// is the base (single-customer) service time and `rates[j-1]` the
    /// relative speedup with `j` customers present.
    pub fn load_dependent(name: &str, visits: f64, service_time: f64, rates: Vec<f64>) -> Self {
        Self {
            name: name.to_string(),
            kind: StationKind::LoadDependent { rates },
            visits,
            service_time,
        }
    }

    /// Service demand `D_k = V_k · S_k` (paper eq. 3).
    pub fn demand(&self) -> f64 {
        self.visits * self.service_time
    }

    /// Effective demand for bottleneck analysis: `D_k / C_k` for a
    /// queueing station (a `C`-server station saturates at `C/D_k`),
    /// `D_k / max_j μ(j)` for a load-dependent station, and `0` for a
    /// delay station (it never saturates).
    pub fn effective_demand(&self) -> f64 {
        match &self.kind {
            StationKind::Queueing { servers } => self.demand() / *servers as f64,
            StationKind::Delay => 0.0,
            StationKind::LoadDependent { .. } => self.demand() / self.kind.max_rate(),
        }
    }

    fn validate(&self) -> Result<(), QueueingError> {
        match &self.kind {
            StationKind::Queueing { servers } => {
                if *servers == 0 {
                    return Err(QueueingError::InvalidParameter {
                        what: "station must have at least one server",
                    });
                }
            }
            StationKind::Delay => {}
            StationKind::LoadDependent { rates } => {
                if rates.is_empty() {
                    return Err(QueueingError::InvalidParameter {
                        what: "load-dependent rate table must be non-empty",
                    });
                }
                if !rates.iter().all(|r| r.is_finite() && *r > 0.0) {
                    return Err(QueueingError::InvalidParameter {
                        what: "load-dependent rates must be finite and > 0",
                    });
                }
            }
        }
        if !(self.visits.is_finite() && self.visits >= 0.0) {
            return Err(QueueingError::InvalidParameter {
                what: "visits must be finite and >= 0",
            });
        }
        if !(self.service_time.is_finite() && self.service_time >= 0.0) {
            return Err(QueueingError::InvalidParameter {
                what: "service time must be finite and >= 0",
            });
        }
        Ok(())
    }
}

/// A single-class closed queueing network with terminal think time.
#[derive(Debug, Clone, PartialEq)]
pub struct ClosedNetwork {
    stations: Vec<Station>,
    think_time: f64,
}

impl ClosedNetwork {
    /// Builds a network; validates every station and the think time.
    pub fn new(stations: Vec<Station>, think_time: f64) -> Result<Self, QueueingError> {
        if stations.is_empty() {
            return Err(QueueingError::EmptyNetwork);
        }
        for s in &stations {
            s.validate()?;
        }
        if !(think_time.is_finite() && think_time >= 0.0) {
            return Err(QueueingError::InvalidParameter {
                what: "think time must be finite and >= 0",
            });
        }
        // lint: float-eq-ok validation rejects the exact all-zero-demand input, not near-zero
        if stations.iter().all(|s| s.demand() == 0.0) {
            return Err(QueueingError::InvalidParameter {
                what: "at least one station must have positive demand",
            });
        }
        Ok(Self {
            stations,
            think_time,
        })
    }

    /// The stations, in declaration order.
    pub fn stations(&self) -> &[Station] {
        &self.stations
    }

    /// Mean terminal think time `Z`.
    pub fn think_time(&self) -> f64 {
        self.think_time
    }

    /// Returns a copy with a different think time (used in think-time
    /// sensitivity sweeps).
    pub fn with_think_time(&self, z: f64) -> Result<Self, QueueingError> {
        Self::new(self.stations.clone(), z)
    }

    /// Returns a copy with station demands replaced by `demands` (same
    /// order; visits are kept, service times rescaled). Panics are avoided:
    /// errors if lengths mismatch or a demand is negative.
    ///
    /// This is how MVASD's interpolated demand array is injected into the
    /// static solvers for comparison runs.
    pub fn with_demands(&self, demands: &[f64]) -> Result<Self, QueueingError> {
        if demands.len() != self.stations.len() {
            return Err(QueueingError::InvalidParameter {
                what: "demand array length must match station count",
            });
        }
        let mut stations = self.stations.clone();
        for (s, &d) in stations.iter_mut().zip(demands.iter()) {
            if !(d.is_finite() && d >= 0.0) {
                return Err(QueueingError::InvalidParameter {
                    what: "demands must be finite and >= 0",
                });
            }
            if s.visits > 0.0 {
                s.service_time = d / s.visits;
            } else {
                s.visits = 1.0;
                s.service_time = d;
            }
        }
        Self::new(stations, self.think_time)
    }

    /// Per-station service demands `D_k` in declaration order.
    pub fn demands(&self) -> Vec<f64> {
        self.stations.iter().map(Station::demand).collect()
    }

    /// Total demand `Σ D_k` — the zero-contention response time.
    pub fn total_demand(&self) -> f64 {
        self.stations.iter().map(Station::demand).sum()
    }

    /// The bottleneck: index and effective demand of the station with the
    /// largest `D_k / C_k`.
    pub fn bottleneck(&self) -> (usize, f64) {
        let mut best = (0usize, 0.0f64);
        for (i, s) in self.stations.iter().enumerate() {
            let d = s.effective_demand();
            if d > best.1 {
                best = (i, d);
            }
        }
        best
    }

    /// Maximum achievable throughput `1 / max_k(D_k / C_k)` (paper eq. 5
    /// generalized for multi-server stations).
    pub fn max_throughput(&self) -> f64 {
        let (_, d) = self.bottleneck();
        if d > 0.0 {
            1.0 / d
        } else {
            f64::INFINITY
        }
    }

    /// Population at which the asymptotic bounds cross,
    /// `N* = (Σ D_k + Z) / max_k(D_k/C_k)` — the knee of the throughput
    /// curve and a useful default for test-range selection.
    pub fn knee_population(&self) -> f64 {
        let (_, d) = self.bottleneck();
        if d > 0.0 {
            (self.total_demand() + self.think_time) / d
        } else {
            f64::INFINITY
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> ClosedNetwork {
        ClosedNetwork::new(
            vec![
                Station::queueing("cpu", 16, 1.0, 0.004),
                Station::queueing("disk", 1, 1.0, 0.012),
                Station::delay("lan", 1.0, 0.001),
            ],
            1.0,
        )
        .unwrap()
    }

    #[test]
    fn demand_is_visits_times_service() {
        let s = Station::queueing("cpu", 4, 7.0, 0.002);
        assert!((s.demand() - 0.014).abs() < 1e-15);
    }

    #[test]
    fn effective_demand_divides_by_servers() {
        let s = Station::queueing("cpu", 4, 1.0, 0.02);
        assert!((s.effective_demand() - 0.005).abs() < 1e-15);
        let d = Station::delay("z", 1.0, 5.0);
        assert_eq!(d.effective_demand(), 0.0);
    }

    #[test]
    fn bottleneck_accounts_for_servers() {
        let n = net();
        // cpu effective = 0.004/16 = 0.00025; disk = 0.012 => disk wins.
        let (idx, d) = n.bottleneck();
        assert_eq!(idx, 1);
        assert!((d - 0.012).abs() < 1e-15);
        assert!((n.max_throughput() - 1.0 / 0.012).abs() < 1e-9);
    }

    #[test]
    fn knee_population_formula() {
        let n = net();
        let expect = (0.004 + 0.012 + 0.001 + 1.0) / 0.012;
        assert!((n.knee_population() - expect).abs() < 1e-9);
    }

    #[test]
    fn with_demands_rescales() {
        let n = net();
        let n2 = n.with_demands(&[0.008, 0.006, 0.001]).unwrap();
        let d = n2.demands();
        assert!((d[0] - 0.008).abs() < 1e-15);
        assert!((d[1] - 0.006).abs() < 1e-15);
        // Bottleneck moved to... cpu effective 0.0005 vs disk 0.006: disk still.
        assert_eq!(n2.bottleneck().0, 1);
        assert!(n.with_demands(&[0.1]).is_err());
        assert!(n.with_demands(&[0.1, -0.1, 0.0]).is_err());
    }

    #[test]
    fn rejects_invalid_models() {
        assert!(ClosedNetwork::new(vec![], 1.0).is_err());
        assert!(ClosedNetwork::new(vec![Station::queueing("s", 0, 1.0, 0.1)], 1.0).is_err());
        assert!(ClosedNetwork::new(vec![Station::queueing("s", 1, -1.0, 0.1)], 1.0).is_err());
        assert!(ClosedNetwork::new(vec![Station::queueing("s", 1, 1.0, f64::NAN)], 1.0).is_err());
        assert!(ClosedNetwork::new(vec![Station::queueing("s", 1, 1.0, 0.1)], -1.0).is_err());
        assert!(ClosedNetwork::new(vec![Station::queueing("s", 1, 1.0, 0.0)], 1.0).is_err());
    }

    #[test]
    fn with_think_time_changes_z_only() {
        let n = net().with_think_time(2.0).unwrap();
        assert_eq!(n.think_time(), 2.0);
        assert_eq!(n.stations().len(), 3);
    }

    #[test]
    fn effective_demand_drives_knee_not_raw_demand() {
        // A 16-core CPU with the biggest raw demand must NOT be the
        // bottleneck when a single-server disk has higher effective demand.
        let net = ClosedNetwork::new(
            vec![
                Station::queueing("cpu", 16, 1.0, 0.06),  // eff 3.75 ms
                Station::queueing("disk", 1, 1.0, 0.009), // eff 9 ms
            ],
            1.0,
        )
        .unwrap();
        assert_eq!(net.bottleneck().0, 1);
        assert!((net.max_throughput() - 1.0 / 0.009).abs() < 1e-9);
    }

    #[test]
    fn zero_think_time_is_legal() {
        // Batch (no terminals) workloads have Z = 0.
        let n = ClosedNetwork::new(vec![Station::queueing("s", 1, 1.0, 0.1)], 0.0).unwrap();
        assert_eq!(n.think_time(), 0.0);
    }

    #[test]
    fn server_count_is_typed_not_sentinel() {
        assert_eq!(StationKind::Queueing { servers: 4 }.server_count(), Some(4));
        assert_eq!(StationKind::Delay.server_count(), None);
        assert_eq!(
            StationKind::LoadDependent { rates: vec![1.0] }.server_count(),
            None
        );
    }

    #[test]
    fn load_dependent_station_validates_and_reports_rates() {
        let s = Station::load_dependent("fes", 1.0, 0.01, vec![1.0, 1.8, 2.4]);
        assert!((s.kind.max_rate() - 2.4).abs() < 1e-15);
        assert!((s.effective_demand() - 0.01 / 2.4).abs() < 1e-15);
        let net = ClosedNetwork::new(vec![s], 1.0).unwrap();
        assert_eq!(net.stations().len(), 1);

        let empty = Station::load_dependent("e", 1.0, 0.01, vec![]);
        assert!(ClosedNetwork::new(vec![empty], 1.0).is_err());
        let bad = Station::load_dependent("b", 1.0, 0.01, vec![1.0, 0.0]);
        assert!(ClosedNetwork::new(vec![bad], 1.0).is_err());
        let nan = Station::load_dependent("n", 1.0, 0.01, vec![f64::NAN]);
        assert!(ClosedNetwork::new(vec![nan], 1.0).is_err());
    }

    #[test]
    fn delay_station_never_saturates() {
        assert_eq!(StationKind::Delay.max_rate(), f64::INFINITY);
    }
}
