//! Hierarchical topology layer: Norton flow-equivalent-server aggregation.
//!
//! The paper's VINS case study is a flat twelve-station network, but the
//! same tiered structure repeats at microservice scale: a hundred-station
//! estate is really a handful of tiers, each a small subnetwork that the
//! rest of the system only sees through its throughput. This module makes
//! that structure explicit. A [`HierarchicalNetwork`] is a tree of
//! [`NetworkNode`]s whose leaves are ordinary [`Station`]s and whose
//! interior nodes are named [`Subsystem`]s. Each subsystem is solved **in
//! isolation** (think time zero — the subnetwork "shorted" in Norton's
//! sense) across populations `1..=j`, and its throughput profile `X(j)`
//! becomes the rate table of a single load-dependent *flow-equivalent
//! server* (FES) in the parent: demand `1/X(1)`, rate multiplier
//! `X(j)/X(1)`. By the Chandy–Herzog–Woo theorem this substitution is
//! **exact** for product-form networks, so the aggregated model reproduces
//! the flat solution to numerical precision while the parent recursion
//! walks only a handful of stations per step.
//!
//! Per-station results are not lost in the aggregate: the engine keeps the
//! isolated per-population queue lengths of every subsystem leaf and
//! *disaggregates* the FES queue through the parent's marginal occupancy
//! distribution, `Q_leaf(n) = Σ_j p_FES(j|n) · Q_leaf^iso(j)`, recovering
//! the full flat station vector at every population.
//!
//! Profiles are grown lazily in geometric chunks as the parent population
//! climbs, optionally truncated once the subsystem throughput plateaus
//! ([`AggregationOptions::truncation`]), and memoized across solves and
//! scenario sweeps through a shared [`ProfileCache`] keyed by a structural
//! fingerprint (station names excluded — ten identical replicas of a
//! service tier share one profile). Stale profiles at one level are
//! mutually independent, so [`AggregationOptions::parallelism`] can fan
//! their extensions across scoped worker threads; the commit back into the
//! cache is always serial in subsystem index order, keeping parallel
//! output bit-identical to the serial schedule.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use mvasd_numerics::pool;
use mvasd_obsv as obsv;

use crate::mva::convolution::{ConvStation, ConvWorkspace};
use crate::mva::{
    ClosedSolver, MulticlassIter, MvaPoint, MvaSolution, RateFunction, SolverIter, StationPoint,
    Workload,
};
use crate::network::{ClosedNetwork, Station, StationKind};
use crate::QueueingError;

/// Profiles are extended in geometric chunks no smaller than this, so a
/// population sweep triggers `O(log n)` rebuilds rather than one per step.
const MIN_CHUNK: usize = 8;

/// Truncation never fires before a profile has this many entries — the
/// early profile can look locally flat before the knee.
const MIN_PROFILE: usize = 8;

/// A node of a hierarchical topology: either a concrete service station (a
/// leaf — exactly the flat model's [`Station`]) or a whole subnetwork to be
/// aggregated into a flow-equivalent server.
#[derive(Debug, Clone, PartialEq)]
pub enum NetworkNode {
    /// A leaf station, identical to its flat-network meaning.
    Station(Station),
    /// An interior node: a named subnetwork solved in isolation and
    /// replaced by one load-dependent station in its parent.
    Subsystem(Subsystem),
}

impl From<Station> for NetworkNode {
    fn from(s: Station) -> Self {
        NetworkNode::Station(s)
    }
}

impl From<Subsystem> for NetworkNode {
    fn from(s: Subsystem) -> Self {
        NetworkNode::Subsystem(s)
    }
}

/// A named subnetwork of a hierarchical topology. Subsystems nest: a node
/// of a subsystem may itself be a subsystem, aggregated bottom-up.
#[derive(Debug, Clone, PartialEq)]
pub struct Subsystem {
    name: String,
    nodes: Vec<NetworkNode>,
}

impl Subsystem {
    /// Creates a named subnetwork from its child nodes. Structural
    /// validation happens when the enclosing [`HierarchicalNetwork`] is
    /// built.
    pub fn new(name: &str, nodes: Vec<NetworkNode>) -> Self {
        Self {
            name: name.to_string(),
            nodes,
        }
    }

    /// The subsystem's display name (spans and FES station labels).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The child nodes, in visit order.
    pub fn nodes(&self) -> &[NetworkNode] {
        &self.nodes
    }
}

/// A closed queueing network expressed as a tree of stations and
/// subsystems, plus the terminal think time.
///
/// [`flatten`](Self::flatten) recovers the equivalent flat
/// [`ClosedNetwork`] (leaves in depth-first order); every hierarchical
/// result is reported against that flat station list.
#[derive(Debug, Clone, PartialEq)]
pub struct HierarchicalNetwork {
    nodes: Vec<NetworkNode>,
    think_time: f64,
}

impl HierarchicalNetwork {
    /// Validates and builds a hierarchical network.
    ///
    /// Rejects empty trees, empty subsystems, subsystems with no positive
    /// demand anywhere beneath them (their flow-equivalent server would
    /// have no throughput to equalize), and anything the flat
    /// [`ClosedNetwork`] validation rejects.
    pub fn new(nodes: Vec<NetworkNode>, think_time: f64) -> Result<Self, QueueingError> {
        validate_nodes(&nodes)?;
        let mut leaves = Vec::new();
        collect_leaves(&nodes, &mut leaves);
        ClosedNetwork::new(leaves, think_time)?;
        Ok(Self { nodes, think_time })
    }

    /// The root-level nodes, in visit order.
    pub fn nodes(&self) -> &[NetworkNode] {
        &self.nodes
    }

    /// Terminal think time `Z` (seconds per interaction).
    pub fn think_time(&self) -> f64 {
        self.think_time
    }

    /// Number of leaf stations in the whole tree.
    pub fn leaf_count(&self) -> usize {
        count_leaves(&self.nodes)
    }

    /// The equivalent flat network: all leaves in depth-first order, same
    /// think time. This is the model every hierarchical result is
    /// reported against, and the reference the cross-validation suite
    /// compares to.
    pub fn flatten(&self) -> ClosedNetwork {
        let mut leaves = Vec::new();
        collect_leaves(&self.nodes, &mut leaves);
        ClosedNetwork::new(leaves, self.think_time)
            .expect("flat projection was validated at construction")
    }

    /// Returns a copy with a different think time.
    pub fn with_think_time(&self, think_time: f64) -> Result<Self, QueueingError> {
        Self::new(self.nodes.clone(), think_time)
    }

    /// Returns a copy with every leaf's service time multiplied by the
    /// matching factor (leaves in depth-first order — the same order as
    /// [`flatten`](Self::flatten)). This is the hierarchical counterpart
    /// of a sweep scenario's per-station demand scaling.
    pub fn with_leaf_scales(&self, factors: &[f64]) -> Result<Self, QueueingError> {
        if factors.len() != self.leaf_count() {
            return Err(QueueingError::InvalidParameter {
                what: "leaf scale count must match the flat station count",
            });
        }
        let mut nodes = self.nodes.clone();
        let mut next = 0usize;
        scale_leaves(&mut nodes, factors, &mut next);
        Self::new(nodes, self.think_time)
    }

    /// A structural fingerprint of the whole tree (topology, demands,
    /// kinds, think time — names excluded). Two networks with equal words
    /// produce identical solutions, which makes this the natural
    /// memoization key for scenario sweeps.
    pub fn fingerprint_words(&self) -> Vec<u64> {
        let mut words = Vec::with_capacity(4 * self.leaf_count() + 2);
        words.push(self.think_time.to_bits());
        words.push(self.nodes.len() as u64);
        for node in &self.nodes {
            push_node_words(node, &mut words);
        }
        words
    }
}

fn validate_nodes(nodes: &[NetworkNode]) -> Result<(), QueueingError> {
    for node in nodes {
        if let NetworkNode::Subsystem(sub) = node {
            if sub.nodes.is_empty() {
                return Err(QueueingError::InvalidParameter {
                    what: "subsystem must contain at least one node",
                });
            }
            if !has_positive_demand(&sub.nodes) {
                return Err(QueueingError::InvalidParameter {
                    what: "subsystem needs at least one leaf with positive demand",
                });
            }
            validate_nodes(&sub.nodes)?;
        }
    }
    Ok(())
}

fn has_positive_demand(nodes: &[NetworkNode]) -> bool {
    nodes.iter().any(|node| match node {
        NetworkNode::Station(s) => s.demand() > 0.0,
        NetworkNode::Subsystem(sub) => has_positive_demand(&sub.nodes),
    })
}

fn collect_leaves(nodes: &[NetworkNode], out: &mut Vec<Station>) {
    for node in nodes {
        match node {
            NetworkNode::Station(s) => out.push(s.clone()),
            NetworkNode::Subsystem(sub) => collect_leaves(&sub.nodes, out),
        }
    }
}

fn count_leaves(nodes: &[NetworkNode]) -> usize {
    nodes
        .iter()
        .map(|node| match node {
            NetworkNode::Station(_) => 1,
            NetworkNode::Subsystem(sub) => count_leaves(&sub.nodes),
        })
        .sum()
}

fn scale_leaves(nodes: &mut [NetworkNode], factors: &[f64], next: &mut usize) {
    for node in nodes {
        match node {
            NetworkNode::Station(s) => {
                s.service_time *= factors.get(*next).copied().unwrap_or(1.0);
                *next += 1;
            }
            NetworkNode::Subsystem(sub) => scale_leaves(&mut sub.nodes, factors, next),
        }
    }
}

fn push_node_words(node: &NetworkNode, out: &mut Vec<u64>) {
    match node {
        NetworkNode::Station(s) => {
            out.push(1);
            match &s.kind {
                StationKind::Queueing { servers } => {
                    out.push(2);
                    out.push(*servers as u64);
                }
                StationKind::Delay => out.push(3),
                StationKind::LoadDependent { rates } => {
                    out.push(4);
                    out.push(rates.len() as u64);
                    for r in rates {
                        out.push(r.to_bits());
                    }
                }
            }
            out.push(s.visits.to_bits());
            out.push(s.service_time.to_bits());
        }
        NetworkNode::Subsystem(sub) => {
            out.push(5);
            out.push(sub.nodes.len() as u64);
            for child in &sub.nodes {
                push_node_words(child, out);
            }
            out.push(6);
        }
    }
}

/// Controls how subsystem throughput profiles are grown.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AggregationOptions {
    /// Plateau truncation threshold. `None` (the default) keeps extending
    /// every profile to the parent population — the aggregation stays
    /// exact for product-form networks. `Some(eps)` stops extending a
    /// profile once the relative throughput gain per extra customer drops
    /// to `eps` or below; beyond the table the flow-equivalent server is
    /// treated as saturated, which bounds the relative throughput error by
    /// roughly `eps` per aggregated level while capping profile length at
    /// the subsystem's knee.
    pub truncation: Option<f64>,
    /// Worker threads for independent subsystem profile extensions.
    /// `0` and `1` both mean serial (the default). With `n > 1`, stale
    /// subsystems at one level extend concurrently on up to `n` scoped
    /// threads; results are committed serially in subsystem index order, so
    /// the output — solutions *and* cache contents — is bit-identical to
    /// the serial schedule. Excluded from every cache/fingerprint key: it
    /// changes wall-clock, never results.
    pub parallelism: usize,
}

impl AggregationOptions {
    /// Exact aggregation: profiles track the parent population.
    pub fn exact() -> Self {
        Self::default()
    }

    /// Truncated aggregation with the given plateau threshold.
    pub fn truncated(eps: f64) -> Self {
        Self {
            truncation: Some(eps),
            ..Self::default()
        }
    }

    /// Returns a copy with the given sub-solve worker count
    /// (see [`AggregationOptions::parallelism`]).
    pub fn parallelism(mut self, workers: usize) -> Self {
        self.parallelism = workers;
        self
    }

    fn validate(&self) -> Result<(), QueueingError> {
        if let Some(eps) = self.truncation {
            if !(eps.is_finite() && eps > 0.0 && eps < 1.0) {
                return Err(QueueingError::InvalidParameter {
                    what: "truncation threshold must be in (0, 1)",
                });
            }
        }
        Ok(())
    }
}

/// Aggregate statistics read back off a [`ProfileCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AggregationStats {
    /// Subsystem profiles solved from scratch (cache misses).
    pub solves: u64,
    /// Subsystem profiles reused from the cache.
    pub hits: u64,
}

/// Shared memoization of solved subsystem profiles.
///
/// Keys are structural fingerprints ([`HierarchicalNetwork`] node words
/// plus the truncation setting); subsystem *names are excluded*, so
/// identical replicas of a service tier — the common microservice shape —
/// share a single entry. Clone the [`Arc`] into every
/// [`HierarchicalSolver`] (or hand the cache to a scenario sweep) to reuse
/// profiles across solves.
#[derive(Debug, Default)]
pub struct ProfileCache {
    entries: Mutex<HashMap<Vec<u64>, SubEngine>>,
    solves: AtomicU64,
    hits: AtomicU64,
    parallel_solves: AtomicU64,
}

impl ProfileCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct subsystem profiles currently cached.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether the cache holds no profiles.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Solve/hit counters since construction.
    pub fn stats(&self) -> AggregationStats {
        AggregationStats {
            solves: self.solves.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
        }
    }

    /// Subsystem profile extensions executed on a parallel worker pool
    /// (zero unless some solver ran with
    /// [`AggregationOptions::parallelism`] above one). A subset of the
    /// work behind [`stats`](Self::stats) — parallelism changes the
    /// schedule, never the profiles.
    pub fn parallel_solves(&self) -> u64 {
        self.parallel_solves.load(Ordering::Relaxed)
    }

    fn note_parallel_solves(&self, n: u64) {
        self.parallel_solves.fetch_add(n, Ordering::Relaxed);
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<Vec<u64>, SubEngine>> {
        self.entries.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn checkout(&self, key: &[u64]) -> Option<SubEngine> {
        let hit = self.lock().get(key).cloned();
        if hit.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.emit_hit_rate();
        }
        hit
    }

    fn note_solve(&self) {
        self.solves.fetch_add(1, Ordering::Relaxed);
        self.emit_hit_rate();
    }

    /// Publishes the running hit rate as a health gauge so a snapshot
    /// taken at any point reflects cache effectiveness so far.
    fn emit_hit_rate(&self) {
        if obsv::enabled() {
            let hits = self.hits.load(Ordering::Relaxed) as f64;
            let solves = self.solves.load(Ordering::Relaxed) as f64;
            if hits + solves > 0.0 {
                obsv::gauge("health.hierarchy.cache_hit_rate", hits / (hits + solves));
            }
        }
    }

    /// Deterministic snapshot of every cached profile, sorted by key:
    /// `(key, isolated throughput profile, flat leaf-queue rows)`.
    ///
    /// Two caches whose work histories produced bitwise-identical
    /// profiles yield equal snapshots regardless of insertion order, so
    /// this is the comparison surface for schedule-independence tests
    /// (the interleaving explorer asserts snapshot equality across every
    /// forced completion order).
    pub fn profiles(&self) -> Vec<(Vec<u64>, Vec<f64>, Vec<f64>)> {
        let mut out: Vec<_> = self
            .lock()
            .iter()
            .map(|(k, sub)| (k.clone(), sub.profile.clone(), sub.leaf_rows.clone()))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Stores `sub` unless an entry with an equal-or-longer profile is
    /// already present (longer profiles subsume shorter ones).
    fn store(&self, key: &[u64], sub: &SubEngine) {
        let mut map = self.lock();
        match map.get(key) {
            Some(existing) if existing.profile.len() >= sub.profile.len() => {}
            _ => {
                map.insert(key.to_vec(), sub.clone());
            }
        }
    }
}

/// Where a parent-level convolution station draws its flat results from.
#[derive(Debug, Clone, Copy)]
enum Source {
    /// An ordinary leaf station: parent queue is the flat queue.
    Leaf,
    /// A flow-equivalent server backed by `subs[i]`; its queue is
    /// disaggregated over the subsystem's leaves.
    Sub(usize),
}

/// One aggregated subsystem: its isolated solver plus the captured
/// throughput profile and per-population leaf queue rows.
///
/// This is the unit the [`ProfileCache`] stores — it carries no name, so
/// identically-shaped subsystems are interchangeable.
#[derive(Debug, Clone)]
struct SubEngine {
    /// The subsystem solved in isolation (think time zero).
    inner: LevelEngine,
    /// `profile[j-1] = X(j)`: isolated throughput at population `j`.
    profile: Vec<f64>,
    /// Flat leaf queues of the isolated solve, row `j-1` at offset
    /// `(j-1)*width`: `leaf_rows[(j-1)*width + l] = Q_l^iso(j)`.
    leaf_rows: Vec<f64>,
    /// Number of flat leaves beneath this subsystem.
    width: usize,
    /// Set once truncation fires; the profile stops growing.
    finalized: bool,
    truncation: Option<f64>,
}

impl SubEngine {
    fn fresh(
        sub: &Subsystem,
        opts: AggregationOptions,
        cache: Option<&Arc<ProfileCache>>,
    ) -> Result<Self, QueueingError> {
        let inner = LevelEngine::build(&sub.nodes, 0.0, opts, cache)?;
        let width = inner.width;
        let mut engine = Self {
            inner,
            profile: Vec::new(),
            leaf_rows: Vec::new(),
            width,
            finalized: false,
            truncation: opts.truncation,
        };
        // Every profile needs X(1) — it defines the FES demand.
        engine.extend_to(1, sub.name())?;
        Ok(engine)
    }

    /// Extends the isolated profile to cover at least `target` customers
    /// (or until the plateau fires). Returns the number of entries added.
    fn extend_to(&mut self, target: usize, name: &str) -> Result<usize, QueueingError> {
        if self.finalized || self.profile.len() >= target {
            return Ok(0);
        }
        let _span = obsv::span_with("aggregation.subsystem", || {
            format!("{name} -> {target} customers")
        });
        let mut added = 0usize;
        while self.profile.len() < target && !self.finalized {
            self.inner.advance()?;
            let x = self.inner.ws.throughput();
            if let (Some(eps), Some(&prev)) = (self.truncation, self.profile.last()) {
                if self.profile.len() >= MIN_PROFILE && prev > 0.0 && (x - prev) / prev <= eps {
                    self.finalized = true;
                }
            }
            self.profile.push(x);
            self.leaf_rows.extend_from_slice(&self.inner.flat_queues);
            added += 1;
        }
        if added > 0 {
            obsv::counter("aggregation.profile_len", added as u64);
        }
        Ok(added)
    }

    /// The flow-equivalent server for the current profile: demand
    /// `1/X(1)`, rate multipliers `X(j)/X(1)`.
    fn fes_station(&self, name: &str) -> ConvStation {
        let x1 = self
            .profile
            .first()
            .copied()
            .expect("profiles always hold X(1)");
        let table = self.profile.iter().map(|x| x / x1).collect();
        ConvStation {
            name: name.to_string(),
            demand: 1.0 / x1,
            rate: RateFunction::Custom(table),
        }
    }
}

/// One level of the hierarchy: a convolution workspace over the level's
/// own stations plus one FES per child subsystem, with enough bookkeeping
/// to disaggregate FES queues back onto flat leaves.
#[derive(Debug, Clone)]
struct LevelEngine {
    ws: ConvWorkspace,
    subs: Vec<SubEngine>,
    /// Per parent station: leaf or which subsystem backs it.
    sources: Vec<Source>,
    /// Per parent station: offset of its first flat leaf in `flat_queues`.
    offsets: Vec<usize>,
    /// Display name per subsystem (spans); kept out of [`SubEngine`] so
    /// cached engines stay name-free.
    sub_names: Vec<String>,
    /// Cache key per subsystem.
    sub_keys: Vec<Vec<u64>>,
    /// Total flat leaves under this level.
    width: usize,
    /// Disaggregated flat queues at the last advanced population.
    flat_queues: Vec<f64>,
    /// Largest population this engine was asked to pre-size for.
    reserved: usize,
    /// Worker threads for stale-profile extensions
    /// ([`AggregationOptions::parallelism`]; `0`/`1` = serial).
    parallelism: usize,
    cache: Option<Arc<ProfileCache>>,
    /// Watches the FES disaggregation closure error `|Σ_l Q_l − Q_FES|`
    /// and counts residual clamps; buffered locally, flushed on drop.
    disagg_health: obsv::HealthProbe,
}

impl LevelEngine {
    fn build(
        nodes: &[NetworkNode],
        think_time: f64,
        opts: AggregationOptions,
        cache: Option<&Arc<ProfileCache>>,
    ) -> Result<Self, QueueingError> {
        let mut conv = Vec::with_capacity(nodes.len());
        let mut subs = Vec::new();
        let mut sources = Vec::with_capacity(nodes.len());
        let mut offsets = Vec::with_capacity(nodes.len());
        let mut sub_names = Vec::new();
        let mut sub_keys = Vec::new();
        let mut width = 0usize;
        for node in nodes {
            offsets.push(width);
            match node {
                NetworkNode::Station(s) => {
                    conv.push(ConvStation {
                        name: s.name.clone(),
                        demand: s.demand(),
                        rate: rate_of(&s.kind),
                    });
                    sources.push(Source::Leaf);
                    width += 1;
                }
                NetworkNode::Subsystem(sub) => {
                    let key = subsystem_key(sub, opts);
                    let engine = match cache.and_then(|c| c.checkout(&key)) {
                        Some(hit) => {
                            obsv::counter("aggregation.cache_hits", 1);
                            hit
                        }
                        None => {
                            obsv::counter("aggregation.solves", 1);
                            if let Some(c) = cache {
                                c.note_solve();
                            }
                            let fresh = SubEngine::fresh(sub, opts, cache)?;
                            if let Some(c) = cache {
                                c.store(&key, &fresh);
                            }
                            fresh
                        }
                    };
                    conv.push(engine.fes_station(sub.name()));
                    sources.push(Source::Sub(subs.len()));
                    width += engine.width;
                    subs.push(engine);
                    sub_names.push(sub.name().to_string());
                    sub_keys.push(key);
                }
            }
        }
        let limits = fes_limits(&conv, &sources, &subs);
        let ws = ConvWorkspace::from_conv(conv, think_time, limits)?;
        Ok(Self {
            ws,
            subs,
            sources,
            offsets,
            sub_names,
            sub_keys,
            width,
            flat_queues: vec![0.0; width],
            reserved: 0,
            parallelism: opts.parallelism,
            cache: cache.cloned(),
            disagg_health: obsv::HealthProbe::new("hierarchy.disagg"),
        })
    }

    /// Pre-extends every subsystem profile and every buffer for
    /// populations up to `n_max`; afterwards [`advance`](Self::advance)
    /// allocates nothing until the sweep passes `n_max`.
    fn reserve(&mut self, n_max: usize) -> Result<(), QueueingError> {
        self.reserved = n_max;
        self.ensure(n_max)?;
        self.ws.reserve(n_max);
        Ok(())
    }

    /// Advances to the next population: grow/rebuild if any profile must
    /// extend, then take the allocation-free hot path.
    fn advance(&mut self) -> Result<(), QueueingError> {
        let m = self.ws.population() + 1;
        self.ensure(m)?;
        self.advance_hot()
    }

    /// Makes every non-finalized subsystem profile cover parent population
    /// `m`, extending in geometric chunks and rebuilding the parent
    /// workspace when any flow-equivalent rate table grew. The rebuild
    /// re-advances a fresh workspace to the carried population — bit-exact
    /// by the workspace's append-only column guarantee, since every column
    /// at or below the carried population only reads rate-table entries
    /// that existed before the extension.
    ///
    /// Runs as a **plan/commit** two-phase. Plan: list the stale
    /// subsystems and extend each one's isolated profile —
    /// [`SubEngine::extend_to`] touches nothing outside its own engine, so
    /// with [`AggregationOptions::parallelism`] above one the extensions
    /// fan out across scoped worker threads. Commit: always serial, in
    /// subsystem index order — staleness counters, cache stores, and the
    /// single rebuild happen in the same order under any worker count, so
    /// the solutions *and* the [`ProfileCache`] contents are bit-identical
    /// to the serial schedule.
    // lint: bit-identical
    fn ensure(&mut self, m: usize) -> Result<(), QueueingError> {
        // Plan: which subsystems are stale, and how far each must extend.
        // `Vec::new` defers its first allocation to the first push, so a
        // warm steady state (nothing dirty) stays allocation-free.
        let mut dirty: Vec<(usize, usize)> = Vec::new();
        for (i, sub) in self.subs.iter().enumerate() {
            let len = sub.profile.len();
            if sub.finalized || len >= m {
                continue;
            }
            dirty.push((i, m.max(len * 2).max(MIN_CHUNK)));
        }
        if dirty.is_empty() {
            return Ok(());
        }

        // Extend every dirty profile; results come back in dirty-list
        // order from either schedule.
        let extended: Vec<Result<usize, QueueingError>> = if self.parallelism > 1 && dirty.len() > 1
        {
            let started = std::time::Instant::now();
            let Self {
                subs,
                sub_names,
                parallelism,
                cache,
                ..
            } = self;
            let jobs: Vec<Mutex<(&mut SubEngine, &str, usize)>> = {
                let mut want = dirty.iter().peekable();
                subs.iter_mut()
                    .enumerate()
                    .filter_map(|(i, sub)| match want.peek() {
                        Some(&&(di, target)) if di == i => {
                            want.next();
                            Some(Mutex::new((sub, sub_names[i].as_str(), target)))
                        }
                        _ => None,
                    })
                    .collect()
            };
            let out = pool::scoped_indexed(jobs.len(), *parallelism, |j| {
                // lint: interference-ok per-subsystem job slot, each index locked by one task
                let mut slot = jobs[j].lock().unwrap_or_else(|p| p.into_inner());
                let (sub, name, target) = &mut *slot;
                sub.extend_to(*target, name)
            });
            if let Some(cache) = cache {
                cache.note_parallel_solves(out.len() as u64);
            }
            if obsv::enabled() {
                obsv::counter("hierarchy.parallel.sub_solves", out.len() as u64);
                obsv::counter(
                    "hierarchy.parallel.queue_wait_ns",
                    started.elapsed().as_nanos() as u64,
                );
            }
            out
        } else {
            dirty
                .iter()
                .map(|&(i, target)| {
                    let name = &self.sub_names[i];
                    self.subs[i].extend_to(target, name)
                })
                .collect()
        };

        // Commit: serial, in subsystem index order — deterministic counter
        // emission and cache fills regardless of worker count.
        let mut grew = false;
        // lint: commit-phase
        for (&(i, _), added) in dirty.iter().zip(extended) {
            let added = added?;
            if added > 0 {
                grew = true;
                // Staleness: the carried (possibly cache-reused) profile
                // did not cover this population and had to extend.
                obsv::counter("health.hierarchy.profile_stale_steps", added as u64);
                if let Some(cache) = &self.cache {
                    cache.store(&self.sub_keys[i], &self.subs[i]);
                }
            }
        }
        if grew {
            self.rebuild()?;
        }
        Ok(())
    }

    /// Rebuilds the parent workspace with the current (longer) rate
    /// tables and marginal limits, then re-advances it to the population
    /// it previously carried.
    fn rebuild(&mut self) -> Result<(), QueueingError> {
        let carried = self.ws.population();
        let think_time = self.ws.think_time();
        let mut conv = Vec::with_capacity(self.sources.len());
        for (k, src) in self.sources.iter().enumerate() {
            match src {
                Source::Leaf => conv.push(self.ws.stations()[k].clone()),
                Source::Sub(i) => conv.push(self.subs[*i].fes_station(&self.ws.stations()[k].name)),
            }
        }
        let limits = fes_limits(&conv, &self.sources, &self.subs);
        let mut ws = ConvWorkspace::from_conv(conv, think_time, limits)?;
        if self.reserved > 0 {
            ws.reserve(self.reserved);
        }
        for _ in 0..carried {
            ws.advance()?;
        }
        self.ws = ws;
        Ok(())
    }

    /// The per-step aggregation hot path: one incremental convolution
    /// step on the parent plus in-place disaggregation of every
    /// flow-equivalent queue onto the flat leaves.
    // lint: no-alloc
    fn advance_hot(&mut self) -> Result<(), QueueingError> {
        self.ws.advance()?;
        self.disaggregate();
        Ok(())
    }

    /// Splits every FES queue over its subsystem's leaves through the
    /// parent marginal occupancy: `Q_l(n) = Σ_j p_FES(j|n)·Q_l^iso(j)`.
    /// For truncated profiles the occupancy mass beyond the table is
    /// attributed proportionally to the deepest stored row, preserving
    /// `Σ_l Q_l = Q_FES` exactly.
    // lint: no-alloc
    fn disaggregate(&mut self) {
        let Self {
            ws,
            subs,
            sources,
            offsets,
            flat_queues,
            disagg_health,
            ..
        } = self;
        let queues = ws.queues();
        let m = ws.population();
        for (k, src) in sources.iter().enumerate() {
            let off = offsets[k];
            match src {
                Source::Leaf => flat_queues[off] = queues[k],
                Source::Sub(i) => {
                    let sub = &subs[*i];
                    let w = sub.width;
                    let table_len = sub.profile.len();
                    let marg = ws.marginals_of(k);
                    let out = &mut flat_queues[off..off + w];
                    for v in out.iter_mut() {
                        *v = 0.0;
                    }
                    let mut attributed = 0.0;
                    let j_max = m.min(table_len);
                    for (j, &p) in marg.iter().enumerate().take(j_max + 1).skip(1) {
                        attributed += p * j as f64;
                        let row = &sub.leaf_rows[(j - 1) * w..j * w];
                        for (o, r) in out.iter_mut().zip(row) {
                            *o += p * r;
                        }
                    }
                    if m > table_len && table_len > 0 {
                        // Truncated profile: populations past the table
                        // carry queue mass the marginals above cannot
                        // attribute. Spread the residual in the shape of
                        // the deepest isolated row (its queues sum to
                        // exactly `table_len` — the subsystem holds every
                        // customer when solved with zero think time).
                        let raw = queues[k] - attributed;
                        if raw < 0.0 {
                            disagg_health.count_clamp();
                        }
                        let residual = raw.max(0.0);
                        let row = &sub.leaf_rows[(table_len - 1) * w..table_len * w];
                        let scale = residual / table_len as f64;
                        for (o, r) in out.iter_mut().zip(row) {
                            *o += scale * r;
                        }
                    }
                    let total: f64 = out.iter().sum();
                    disagg_health.watch((total - queues[k]).abs());
                }
            }
        }
    }
}

fn rate_of(kind: &StationKind) -> RateFunction {
    match kind {
        StationKind::Queueing { servers: 1 } => RateFunction::SingleServer,
        StationKind::Queueing { servers } => RateFunction::MultiServer(*servers),
        StationKind::Delay => RateFunction::Delay,
        StationKind::LoadDependent { rates } => RateFunction::Custom(rates.clone()),
    }
}

/// Marginal limits for a level: flow-equivalent stations track their full
/// occupancy distribution (`table_len + 1` states, occupancies `0..=len`);
/// plain leaves track none.
fn fes_limits(conv: &[ConvStation], sources: &[Source], subs: &[SubEngine]) -> Vec<usize> {
    let mut limits = vec![0usize; conv.len()];
    for (limit, src) in limits.iter_mut().zip(sources) {
        if let Source::Sub(i) = src {
            *limit = subs[*i].profile.len() + 1;
        }
    }
    limits
}

/// Aggregates a multiclass [`Workload`] into one **class-aggregated
/// flow-equivalent server**, usable as a leaf anywhere in a
/// [`HierarchicalNetwork`]: the workload's subnetwork is solved in
/// isolation along its proportional path (class think times count as
/// internal delay of the subnetwork), and the aggregate throughput profile
/// `X(j)` at `j` admitted customers becomes the FES rate table — demand
/// `1/X(1)`, rate multipliers `X(j)/X(1)`, exactly the Norton shape the
/// engine builds for its own subsystems.
///
/// **Error bound.** For a single-class workload over single-server and
/// delay stations the substitution is the classic Chandy–Herzog–Woo
/// aggregation and therefore *exact* (machine precision against the flat
/// solve; asserted below). Multi-server stations pass through the
/// multiclass solver's Seidmann split first, so they carry the usual
/// Seidmann deviation (≲1e-4 relative at low populations, vanishing at
/// saturation) before aggregation even starts. For `C > 1` classes
/// the FES collapses the class-population vector onto the proportional
/// path: `X(j)` is the true aggregate throughput of the subnetwork when
/// the `j` customers inside it follow the workload's class mix, so the
/// parent model is exact whenever the subnetwork's occupancy stays
/// mix-proportional and degrades smoothly with mix skew — identical class
/// demand rows collapse exactly (asserted below), and the skew error is
/// bounded by the spread `max_j |X_path(j) − X_worst(j)| / X_path(j)` of
/// per-mix throughput at each occupancy, the multiclass analogue of the
/// profile-truncation bound.
pub fn workload_fes_station(name: &str, workload: &Workload) -> Result<Station, QueueingError> {
    let total = workload.total_population();
    if total == 0 {
        return Err(QueueingError::InvalidParameter {
            what: "workload FES needs at least one customer",
        });
    }
    let _span = obsv::span_with("hierarchy.workload_fes", || {
        format!("name={name} population={total}")
    });
    let mut iter = MulticlassIter::new(workload)?;
    let mut profile = Vec::with_capacity(total);
    for _ in 0..total {
        profile.push(iter.step()?.throughput);
    }
    let x1 = profile.first().copied().unwrap_or(0.0);
    if !(x1.is_finite() && x1 > 0.0) {
        return Err(QueueingError::InvalidParameter {
            what: "workload FES needs positive aggregate throughput at one customer",
        });
    }
    let rates = profile.iter().map(|x| x / x1).collect();
    Ok(Station::load_dependent(name, 1.0, 1.0 / x1, rates))
}

fn subsystem_key(sub: &Subsystem, opts: AggregationOptions) -> Vec<u64> {
    let mut words = Vec::new();
    words.push(match opts.truncation {
        Some(eps) => eps.to_bits(),
        // eps is validated to lie in (0, 1), whose bit patterns never
        // collide with u64::MAX.
        None => u64::MAX,
    });
    words.push(sub.nodes.len() as u64);
    for node in &sub.nodes {
        push_node_words(node, &mut words);
    }
    words
}

/// The aggregation engine behind [`HierarchicalSolver`]: a resumable
/// population stepper over a hierarchical network, exposing the flat
/// disaggregated queue vector at every population.
///
/// This is the low-level face (the hierarchical analogue of
/// [`ConvWorkspace`]); most callers want [`HierarchicalSolver`] and its
/// [`SolverIter`] instead.
#[derive(Debug, Clone)]
pub struct HierarchicalWorkspace {
    engine: LevelEngine,
    think_time: f64,
}

impl HierarchicalWorkspace {
    /// Builds the aggregation engine for `net`, solving every subsystem's
    /// first profile point. With a `cache`, already-solved subsystem
    /// shapes are reused instead of re-solved.
    pub fn new(
        net: &HierarchicalNetwork,
        opts: AggregationOptions,
        cache: Option<&Arc<ProfileCache>>,
    ) -> Result<Self, QueueingError> {
        opts.validate()?;
        let engine = LevelEngine::build(net.nodes(), net.think_time(), opts, cache)?;
        Ok(Self {
            engine,
            think_time: net.think_time(),
        })
    }

    /// Pre-extends every profile and buffer for populations up to
    /// `n_max`; afterwards [`advance`](Self::advance) allocates nothing
    /// until the sweep passes `n_max`.
    pub fn reserve(&mut self, n_max: usize) -> Result<(), QueueingError> {
        self.engine.reserve(n_max)
    }

    /// Advances the recursion one population.
    pub fn advance(&mut self) -> Result<(), QueueingError> {
        self.engine.advance()
    }

    /// Last population evaluated (0 = fresh).
    pub fn population(&self) -> usize {
        self.engine.ws.population()
    }

    /// System throughput at the last advanced population.
    pub fn throughput(&self) -> f64 {
        self.engine.ws.throughput()
    }

    /// Terminal think time of the underlying network.
    pub fn think_time(&self) -> f64 {
        self.think_time
    }

    /// Disaggregated flat queue lengths (depth-first leaf order, matching
    /// [`HierarchicalNetwork::flatten`]) at the last advanced population.
    pub fn leaf_queues(&self) -> &[f64] {
        &self.engine.flat_queues
    }
}

/// Per-leaf constants used to report utilization exactly as the flat
/// convolution backend would.
#[derive(Debug, Clone, Copy)]
struct LeafMeta {
    demand: f64,
    max_rate: Option<f64>,
}

/// The hierarchical recursion as a resumable [`SolverIter`] over the flat
/// leaf stations.
#[derive(Debug, Clone)]
struct HierIter {
    ws: HierarchicalWorkspace,
    names: Arc<[String]>,
    metas: Arc<[LeafMeta]>,
}

impl HierIter {
    fn new(
        net: &HierarchicalNetwork,
        opts: AggregationOptions,
        cache: Option<&Arc<ProfileCache>>,
    ) -> Result<Self, QueueingError> {
        let ws = HierarchicalWorkspace::new(net, opts, cache)?;
        let flat = net.flatten();
        let names: Arc<[String]> = flat
            .stations()
            .iter()
            .map(|s| s.name.clone())
            .collect::<Vec<_>>()
            .into();
        let metas: Arc<[LeafMeta]> = flat
            .stations()
            .iter()
            .map(|s| LeafMeta {
                demand: s.demand(),
                max_rate: rate_of(&s.kind).max_rate(),
            })
            .collect::<Vec<_>>()
            .into();
        Ok(Self { ws, names, metas })
    }
}

impl SolverIter for HierIter {
    fn station_names(&self) -> &[String] {
        &self.names
    }

    fn shared_names(&self) -> Arc<[String]> {
        self.names.clone()
    }

    fn population(&self) -> usize {
        self.ws.population()
    }

    fn step(&mut self) -> Result<MvaPoint, QueueingError> {
        let _span = obsv::span("hierarchy.step");
        obsv::counter("solver.steps", 1);
        self.ws.advance()?;
        let x = self.ws.throughput();
        let n = self.ws.population();
        let queues = self.ws.leaf_queues();
        let stations: Vec<StationPoint> = queues
            .iter()
            .zip(self.metas.iter())
            .map(|(&q, meta)| StationPoint {
                queue: q,
                residence: if x > 0.0 { q / x } else { 0.0 },
                utilization: match meta.max_rate {
                    Some(mr) => x * meta.demand / mr,
                    None => x * meta.demand,
                },
            })
            .collect();
        let total_q: f64 = queues.iter().sum();
        let response = total_q / if x > 0.0 { x } else { 1.0 };
        Ok(MvaPoint {
            n,
            throughput: x,
            response,
            cycle_time: response + self.ws.think_time(),
            stations,
        })
    }

    fn boxed_clone(&self) -> Box<dyn SolverIter> {
        Box::new(self.clone())
    }
}

/// Norton flow-equivalent-server solver for hierarchical networks
/// (`"hierarchical-mva"`).
///
/// Solves every subsystem in isolation, substitutes load-dependent
/// flow-equivalent stations into the parent, and runs the exact
/// convolution recursion on the (much smaller) aggregated model. Results
/// are reported against the **flat** leaf stations — disaggregated queue,
/// residence, and utilization per leaf — so the solver drops into every
/// comparison that consumes a [`ClosedSolver`].
#[derive(Debug, Clone)]
pub struct HierarchicalSolver {
    net: HierarchicalNetwork,
    opts: AggregationOptions,
    cache: Option<Arc<ProfileCache>>,
}

impl HierarchicalSolver {
    /// Exact aggregation over `net` (profiles track the population).
    pub fn new(net: HierarchicalNetwork) -> Self {
        Self {
            net,
            opts: AggregationOptions::exact(),
            cache: None,
        }
    }

    /// Aggregation with explicit [`AggregationOptions`].
    pub fn with_options(net: HierarchicalNetwork, opts: AggregationOptions) -> Self {
        Self {
            net,
            opts,
            cache: None,
        }
    }

    /// Attaches a shared [`ProfileCache`] so repeated solves (and
    /// identically-shaped subsystems) reuse solved profiles.
    pub fn with_cache(mut self, cache: Arc<ProfileCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The hierarchical model this solver is bound to.
    pub fn network(&self) -> &HierarchicalNetwork {
        &self.net
    }
}

impl ClosedSolver for HierarchicalSolver {
    fn name(&self) -> &str {
        "hierarchical-mva"
    }

    fn start(&self) -> Result<Box<dyn SolverIter>, QueueingError> {
        Ok(Box::new(HierIter::new(
            &self.net,
            self.opts,
            self.cache.as_ref(),
        )?))
    }
}

/// Convenience drain: solves `net` for populations `1..=n_max` with the
/// given options (no cache).
pub fn hierarchical_mva(
    net: &HierarchicalNetwork,
    n_max: usize,
    opts: AggregationOptions,
) -> Result<MvaSolution, QueueingError> {
    HierarchicalSolver::with_options(net.clone(), opts).solve(n_max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mva::MultiserverMvaSolver;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * a.abs().max(b.abs()).max(1.0)
    }

    fn tier(name: &str, cpu: f64, disk: f64) -> Subsystem {
        Subsystem::new(
            name,
            vec![
                Station::queueing(&format!("{name}-cpu"), 2, 1.0, cpu).into(),
                Station::queueing(&format!("{name}-disk"), 1, 1.0, disk).into(),
            ],
        )
    }

    fn two_tier_net() -> HierarchicalNetwork {
        HierarchicalNetwork::new(
            vec![
                Station::queueing("lb", 1, 1.0, 0.002).into(),
                tier("app", 0.010, 0.004).into(),
                tier("db", 0.016, 0.007).into(),
                Station::delay("lan", 1.0, 0.003).into(),
            ],
            0.5,
        )
        .unwrap()
    }

    #[test]
    fn aggregated_matches_flat_exact() {
        let net = two_tier_net();
        let flat = MultiserverMvaSolver::new(net.flatten()).solve(60).unwrap();
        let hier = HierarchicalSolver::new(net).solve(60).unwrap();
        assert_eq!(&flat.station_names[..], &hier.station_names[..]);
        for (pf, ph) in flat.points.iter().zip(hier.points.iter()) {
            assert!(
                close(pf.throughput, ph.throughput, 1e-9),
                "n={}: X {} vs {}",
                pf.n,
                pf.throughput,
                ph.throughput
            );
            assert!(close(pf.cycle_time, ph.cycle_time, 1e-9), "n={}", pf.n);
            for (sf, sh) in pf.stations.iter().zip(ph.stations.iter()) {
                assert!(
                    close(sf.queue, sh.queue, 1e-6),
                    "n={} queue {} vs {}",
                    pf.n,
                    sf.queue,
                    sh.queue
                );
                assert!(close(sf.utilization, sh.utilization, 1e-6), "n={}", pf.n);
            }
        }
    }

    #[test]
    fn nested_subsystems_match_flat_exact() {
        let inner = Subsystem::new(
            "svc",
            vec![
                Station::queueing("svc-cpu", 4, 1.0, 0.006).into(),
                Station::queueing("svc-io", 1, 1.0, 0.002).into(),
            ],
        );
        let net = HierarchicalNetwork::new(
            vec![
                Station::queueing("gw", 1, 1.0, 0.001).into(),
                Subsystem::new(
                    "tier",
                    vec![
                        inner.into(),
                        Station::queueing("tier-disk", 1, 1.0, 0.004).into(),
                    ],
                )
                .into(),
            ],
            0.2,
        )
        .unwrap();
        let flat = MultiserverMvaSolver::new(net.flatten()).solve(40).unwrap();
        let hier = HierarchicalSolver::new(net).solve(40).unwrap();
        for (pf, ph) in flat.points.iter().zip(hier.points.iter()) {
            assert!(close(pf.throughput, ph.throughput, 1e-9), "n={}", pf.n);
            for (sf, sh) in pf.stations.iter().zip(ph.stations.iter()) {
                assert!(close(sf.queue, sh.queue, 1e-6), "n={}", pf.n);
            }
        }
    }

    #[test]
    fn truncated_profiles_stay_close_and_conserve_population() {
        let net = two_tier_net();
        let exact = HierarchicalSolver::new(net.clone()).solve(120).unwrap();
        let trunc = HierarchicalSolver::with_options(net, AggregationOptions::truncated(1e-6))
            .solve(120)
            .unwrap();
        for (pe, pt) in exact.points.iter().zip(trunc.points.iter()) {
            let rel = (pe.throughput - pt.throughput).abs() / pe.throughput;
            assert!(rel < 1e-3, "n={}: rel {rel}", pe.n);
            // Disaggregation must conserve customers: queues + thinking = N.
            let in_system: f64 = pt.stations.iter().map(|s| s.queue).sum();
            let thinking = pt.throughput * 0.5;
            assert!(
                (in_system + thinking - pt.n as f64).abs() < 1e-3 * pt.n as f64,
                "n={}: {} + {} != {}",
                pt.n,
                in_system,
                thinking,
                pt.n
            );
        }
    }

    #[test]
    fn cache_shares_identical_subsystems_and_counts() {
        let cache = Arc::new(ProfileCache::new());
        let net = HierarchicalNetwork::new(
            vec![
                Station::queueing("lb", 1, 1.0, 0.002).into(),
                tier("a", 0.010, 0.004).into(),
                tier("b", 0.010, 0.004).into(),
                tier("c", 0.016, 0.007).into(),
            ],
            0.5,
        )
        .unwrap();
        let solver = HierarchicalSolver::new(net).with_cache(cache.clone());
        solver.solve(30).unwrap();
        let s1 = cache.stats();
        // Tiers a and b share a fingerprint (names excluded): 2 distinct
        // shapes solved, 1 hit at construction.
        assert_eq!(s1.solves, 2, "stats: {s1:?}");
        assert!(s1.hits >= 1, "stats: {s1:?}");
        assert_eq!(cache.len(), 2);
        // A second solve reuses every profile.
        solver.solve(30).unwrap();
        let s2 = cache.stats();
        assert_eq!(s2.solves, 2, "stats: {s2:?}");
        assert!(s2.hits > s1.hits);
    }

    #[test]
    fn parallel_sub_solves_are_bit_identical_to_serial() {
        // Several distinct tiers go stale together at every geometric
        // growth step, so the parallel plan phase really fans out.
        let net = HierarchicalNetwork::new(
            vec![
                Station::queueing("lb", 1, 1.0, 0.002).into(),
                tier("a", 0.010, 0.004).into(),
                tier("b", 0.012, 0.005).into(),
                tier("c", 0.016, 0.007).into(),
                tier("d", 0.009, 0.003).into(),
                Station::delay("lan", 1.0, 0.003).into(),
            ],
            0.5,
        )
        .unwrap();
        let serial = HierarchicalSolver::with_options(net.clone(), AggregationOptions::exact())
            .solve(60)
            .unwrap();
        let par = HierarchicalSolver::with_options(net, AggregationOptions::exact().parallelism(4))
            .solve(60)
            .unwrap();
        for (s, p) in serial.points.iter().zip(par.points.iter()) {
            assert_eq!(s.throughput.to_bits(), p.throughput.to_bits(), "n={}", s.n);
            assert_eq!(s.response.to_bits(), p.response.to_bits(), "n={}", s.n);
            for (a, b) in s.stations.iter().zip(&p.stations) {
                assert_eq!(a.queue.to_bits(), b.queue.to_bits(), "n={}", s.n);
            }
        }
    }

    #[test]
    fn parallel_cache_fills_match_serial() {
        // Plan/commit protocol: the cache after a parallel solve holds the
        // same entries (same keys, same profile lengths) as after a serial
        // one, and only the parallel run reports parallel sub-solves.
        let net = HierarchicalNetwork::new(
            vec![
                Station::queueing("lb", 1, 1.0, 0.002).into(),
                tier("a", 0.010, 0.004).into(),
                tier("b", 0.010, 0.004).into(),
                tier("c", 0.016, 0.007).into(),
            ],
            0.5,
        )
        .unwrap();
        let serial_cache = Arc::new(ProfileCache::new());
        HierarchicalSolver::with_options(net.clone(), AggregationOptions::exact())
            .with_cache(serial_cache.clone())
            .solve(40)
            .unwrap();
        let par_cache = Arc::new(ProfileCache::new());
        HierarchicalSolver::with_options(net, AggregationOptions::exact().parallelism(3))
            .with_cache(par_cache.clone())
            .solve(40)
            .unwrap();
        assert_eq!(serial_cache.len(), par_cache.len());
        assert_eq!(serial_cache.stats(), par_cache.stats());
        assert_eq!(serial_cache.parallel_solves(), 0);
        assert!(par_cache.parallel_solves() > 0);
        let (s_profiles, p_profiles) = (serial_cache.lock(), par_cache.lock());
        for (key, sub) in s_profiles.iter() {
            let twin = p_profiles.get(key).expect("same keys under parallelism");
            assert_eq!(sub.profile.len(), twin.profile.len());
            for (a, b) in sub.profile.iter().zip(&twin.profile) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn every_schedule_of_parallel_sub_solves_is_bit_identical() {
        // Dynamic witness for the plan/commit protocol: force every
        // completion order of the ≤4-task parallel plan phase and assert
        // the solution *and* the cache contents are bitwise equal to the
        // serial run on each one. A scheduling-dependent commit (e.g. a
        // worker publishing into the shared cache mid-plan) would flip
        // bits on at least one permutation.
        let net = HierarchicalNetwork::new(
            vec![
                Station::queueing("fe", 1, 1.0, 0.002).into(),
                tier("a", 0.010, 0.004).into(),
                tier("b", 0.012, 0.005).into(),
                tier("c", 0.016, 0.007).into(),
                tier("d", 0.009, 0.003).into(),
            ],
            0.5,
        )
        .unwrap();
        let serial_cache = Arc::new(ProfileCache::new());
        let serial = HierarchicalSolver::with_options(net.clone(), AggregationOptions::exact())
            .with_cache(serial_cache.clone())
            .solve(30)
            .unwrap();
        let reference = serial_cache.profiles();
        assert!(!reference.is_empty());

        let runs = pool::explore_schedules(4, |_sched| {
            let cache = Arc::new(ProfileCache::new());
            let par = HierarchicalSolver::with_options(
                net.clone(),
                AggregationOptions::exact().parallelism(4),
            )
            .with_cache(cache.clone())
            .solve(30)
            .unwrap();
            (par, cache.profiles())
        });
        assert_eq!(runs.len(), 24, "4 tasks => 4! exhaustive schedules");
        for (sched, (par, profiles)) in &runs {
            for (s, p) in serial.points.iter().zip(par.points.iter()) {
                assert_eq!(
                    s.throughput.to_bits(),
                    p.throughput.to_bits(),
                    "schedule {sched:?} n={}",
                    s.n
                );
                for (a, b) in s.stations.iter().zip(&p.stations) {
                    assert_eq!(a.queue.to_bits(), b.queue.to_bits(), "schedule {sched:?}");
                }
            }
            assert_eq!(profiles.len(), reference.len(), "schedule {sched:?}");
            for ((k, prof, rows), (rk, rprof, rrows)) in profiles.iter().zip(&reference) {
                assert_eq!(k, rk, "schedule {sched:?}");
                assert_eq!(prof.len(), rprof.len(), "schedule {sched:?}");
                for (a, b) in prof.iter().zip(rprof) {
                    assert_eq!(a.to_bits(), b.to_bits(), "schedule {sched:?} key {k:?}");
                }
                for (a, b) in rows.iter().zip(rrows) {
                    assert_eq!(a.to_bits(), b.to_bits(), "schedule {sched:?} key {k:?}");
                }
            }
        }
    }

    #[test]
    fn propcheck_parallel_equals_serial_bitwise() {
        use mvasd_numerics::propcheck::{check, Config};
        check(
            "hierarchy.parallel_bit_identity",
            &Config::default().cases(10),
            |g| {
                let net = HierarchicalNetwork::new(
                    vec![
                        Station::queueing("fe", 1, 1.0, g.f64_in(0.001, 0.01)).into(),
                        tier("t1", g.f64_in(0.004, 0.02), g.f64_in(0.001, 0.01)).into(),
                        tier("t2", g.f64_in(0.004, 0.02), g.f64_in(0.001, 0.01)).into(),
                        tier("t3", g.f64_in(0.004, 0.02), g.f64_in(0.001, 0.01)).into(),
                    ],
                    g.f64_in(0.05, 1.0),
                )
                .unwrap();
                let opts = if g.bool() {
                    AggregationOptions::exact()
                } else {
                    AggregationOptions::truncated(1e-6)
                };
                let n = g.usize_in(3, 45);
                let workers = g.usize_in(2, 6);
                let serial = HierarchicalSolver::with_options(net.clone(), opts)
                    .solve(n)
                    .unwrap();
                let par = HierarchicalSolver::with_options(net, opts.parallelism(workers))
                    .solve(n)
                    .unwrap();
                for (s, p) in serial.points.iter().zip(par.points.iter()) {
                    assert_eq!(s.throughput.to_bits(), p.throughput.to_bits(), "n={}", s.n);
                    for (a, b) in s.stations.iter().zip(&p.stations) {
                        assert_eq!(a.queue.to_bits(), b.queue.to_bits(), "n={}", s.n);
                    }
                }
            },
        );
    }

    #[test]
    fn streaming_matches_batch() {
        let net = two_tier_net();
        let solver = HierarchicalSolver::new(net);
        let batch = solver.solve(25).unwrap();
        let mut iter = solver.start().unwrap();
        for p in &batch.points {
            let q = iter.step().unwrap();
            assert_eq!(p.throughput.to_bits(), q.throughput.to_bits(), "n={}", p.n);
            assert_eq!(p.response.to_bits(), q.response.to_bits(), "n={}", p.n);
        }
    }

    #[test]
    fn workspace_reserve_then_advance() {
        let net = two_tier_net();
        let mut ws = HierarchicalWorkspace::new(&net, AggregationOptions::exact(), None).unwrap();
        ws.reserve(40).unwrap();
        for _ in 0..40 {
            ws.advance().unwrap();
        }
        assert_eq!(ws.population(), 40);
        assert_eq!(ws.leaf_queues().len(), 6);
        assert!(ws.throughput() > 0.0);
    }

    #[test]
    fn validation_rejects_bad_trees() {
        // Empty subsystem.
        assert!(
            HierarchicalNetwork::new(vec![Subsystem::new("empty", vec![]).into()], 1.0).is_err()
        );
        // Subsystem with only zero-demand leaves.
        assert!(HierarchicalNetwork::new(
            vec![
                Station::queueing("cpu", 1, 1.0, 0.01).into(),
                Subsystem::new("idle", vec![Station::queueing("x", 1, 0.0, 0.01).into()]).into()
            ],
            1.0
        )
        .is_err());
        // Empty tree.
        assert!(HierarchicalNetwork::new(vec![], 1.0).is_err());
        // Bad truncation threshold.
        let net = two_tier_net();
        assert!(
            HierarchicalSolver::with_options(net, AggregationOptions::truncated(0.0))
                .start()
                .is_err()
        );
    }

    #[test]
    fn fingerprints_ignore_names_but_not_structure() {
        let a = two_tier_net();
        let b = HierarchicalNetwork::new(
            vec![
                Station::queueing("other", 1, 1.0, 0.002).into(),
                tier("x", 0.010, 0.004).into(),
                tier("y", 0.016, 0.007).into(),
                Station::delay("wan", 1.0, 0.003).into(),
            ],
            0.5,
        )
        .unwrap();
        assert_eq!(a.fingerprint_words(), b.fingerprint_words());
        let c = a.with_think_time(0.6).unwrap();
        assert_ne!(a.fingerprint_words(), c.fingerprint_words());
        let d = a.with_leaf_scales(&[1.0, 1.1, 1.0, 1.0, 1.0, 1.0]).unwrap();
        assert_ne!(a.fingerprint_words(), d.fingerprint_words());
    }

    #[test]
    fn single_class_workload_fes_is_exact() {
        use crate::mva::ClassSpec;
        // A 1-class workload FES is classic Chandy–Herzog–Woo aggregation:
        // the parent model must reproduce the flat network to machine
        // precision.
        let w = Workload::new(
            vec!["w-cpu".into(), "w-disk".into()],
            vec![
                StationKind::Queueing { servers: 1 },
                StationKind::Queueing { servers: 1 },
            ],
            vec![ClassSpec {
                name: "all".into(),
                population: 40,
                think_time: 0.0,
                demands: vec![0.010, 0.004],
            }],
        )
        .unwrap();
        let fes = workload_fes_station("w", &w).unwrap();
        let hier = HierarchicalNetwork::new(
            vec![
                Station::queueing("lb", 1, 1.0, 0.002).into(),
                fes.into(),
                Station::delay("lan", 1.0, 0.003).into(),
            ],
            0.5,
        )
        .unwrap();
        let aggregated = HierarchicalSolver::new(hier).solve(30).unwrap();
        let flat = ClosedNetwork::new(
            vec![
                Station::queueing("lb", 1, 1.0, 0.002),
                Station::queueing("w-cpu", 1, 1.0, 0.010),
                Station::queueing("w-disk", 1, 1.0, 0.004),
                Station::delay("lan", 1.0, 0.003),
            ],
            0.5,
        )
        .unwrap();
        let reference = MultiserverMvaSolver::new(flat).solve(30).unwrap();
        for (a, r) in aggregated.points.iter().zip(reference.points.iter()) {
            assert!(
                close(a.throughput, r.throughput, 1e-9),
                "n={}: X {} vs {}",
                a.n,
                a.throughput,
                r.throughput
            );
            assert!(close(a.cycle_time, r.cycle_time, 1e-9), "n={}", a.n);
        }
    }

    #[test]
    fn identical_classes_collapse_to_the_merged_fes() {
        use crate::mva::ClassSpec;
        let spec = |name: &str, pop: usize| ClassSpec {
            name: name.into(),
            population: pop,
            think_time: 0.4,
            demands: vec![0.012, 0.005],
        };
        let names = vec!["cpu".to_string(), "disk".to_string()];
        let kinds = vec![
            StationKind::Queueing { servers: 1 },
            StationKind::Queueing { servers: 1 },
        ];
        let split = Workload::new(
            names.clone(),
            kinds.clone(),
            vec![spec("a", 10), spec("b", 10)],
        )
        .unwrap();
        let merged = Workload::new(names, kinds, vec![spec("ab", 20)]).unwrap();
        let fes_split = workload_fes_station("w", &split).unwrap();
        let fes_merged = workload_fes_station("w", &merged).unwrap();
        assert!((fes_split.demand() - fes_merged.demand()).abs() <= 1e-9);
        match (&fes_split.kind, &fes_merged.kind) {
            (
                StationKind::LoadDependent { rates: ra },
                StationKind::LoadDependent { rates: rb },
            ) => {
                assert_eq!(ra.len(), rb.len());
                for (a, b) in ra.iter().zip(rb) {
                    assert!(close(*a, *b, 1e-9), "{a} vs {b}");
                }
            }
            other => panic!("expected load-dependent FES stations, got {other:?}"),
        }
    }

    #[test]
    fn mixed_workload_fes_solves_in_a_parent_and_rejects_empty() {
        use crate::mva::ClassSpec;
        let w = Workload::new(
            vec!["cpu".into(), "disk".into()],
            vec![
                StationKind::Queueing { servers: 2 },
                StationKind::Queueing { servers: 1 },
            ],
            vec![
                ClassSpec {
                    name: "browse".into(),
                    population: 9,
                    think_time: 0.2,
                    demands: vec![0.010, 0.003],
                },
                ClassSpec {
                    name: "checkout".into(),
                    population: 6,
                    think_time: 0.1,
                    demands: vec![0.004, 0.018],
                },
            ],
        )
        .unwrap();
        let fes = workload_fes_station("mix", &w).unwrap();
        // Aggregate throughput can only grow with occupancy: the rate
        // table must be monotone nondecreasing from 1.
        if let StationKind::LoadDependent { rates } = &fes.kind {
            assert_eq!(rates.len(), 15);
            assert!(close(rates[0], 1.0, 1e-12));
            assert!(rates.windows(2).all(|p| p[1] >= p[0] - 1e-12), "{rates:?}");
        } else {
            panic!("expected a load-dependent FES station");
        }
        let hier = HierarchicalNetwork::new(
            vec![Station::queueing("lb", 1, 1.0, 0.002).into(), fes.into()],
            0.5,
        )
        .unwrap();
        let sol = HierarchicalSolver::new(hier).solve(12).unwrap();
        assert_eq!(sol.points.len(), 12);
        assert!(sol.last().throughput > 0.0);

        // A workload with no customers has no X(1) to define the FES.
        let empty = Workload::new(
            vec!["cpu".into()],
            vec![StationKind::Queueing { servers: 1 }],
            vec![ClassSpec {
                name: "none".into(),
                population: 0,
                think_time: 0.1,
                demands: vec![0.01],
            }],
        )
        .unwrap();
        assert!(workload_fes_station("mix", &empty).is_err());
    }

    #[test]
    fn leaf_scales_match_flat_scaling() {
        let net = two_tier_net();
        let factors = [1.0, 0.9, 1.2, 1.0, 0.8, 1.0];
        let scaled = net.with_leaf_scales(&factors).unwrap();
        let flat = net.flatten();
        for (k, s) in scaled.flatten().stations().iter().enumerate() {
            assert!(
                (s.demand() - flat.stations()[k].demand() * factors[k]).abs() < 1e-15,
                "station {k}"
            );
        }
        assert!(net.with_leaf_scales(&[1.0]).is_err());
    }
}
