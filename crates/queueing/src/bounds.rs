//! Asymptotic throughput/response bounds for closed networks.
//!
//! Sanity envelopes around the MVA solutions (paper eq. 5–6): every exact
//! or approximate solver output in this workspace is property-tested
//! against these bounds, and the capacity-planning example uses them for
//! quick feasibility checks before running a solver.
//!
//! * The **optimistic** side combines the low-population limit
//!   `X ≤ n/(D + Z)` (no queueing anywhere) with the Bottleneck Law
//!   `X ≤ 1/max_k(D_k/C_k)`.
//! * The **pessimistic** side assumes every one of the other `n − 1`
//!   customers is queued ahead at the bottleneck: `R ≤ D + (n−1)·D_max`,
//!   hence `X ≥ n/(D + Z + (n−1)·D_max)`.
//!
//! Both sides use **effective demands** `D_k / C_k` for multi-server
//! stations: exact for the saturation term; for the pessimistic queueing
//! term a `C`-server station delays strictly less than a single server of
//! demand `D/C` under the same backlog only when more than one server can
//! engage, so the bound stays valid (it is loose, not wrong).
//!
//! Tighter balanced-job bounds exist (Zahorjan et al. 1982) but their
//! terminal-workload, multi-server generalizations are easy to get subtly
//! wrong; since these bounds gate property tests, we deliberately keep the
//! provably safe forms.

use crate::network::ClosedNetwork;

/// Throughput envelope at population `n`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputBounds {
    /// Optimistic bound `min(n / (D + Z), 1 / max(D_k/C_k))`.
    pub upper: f64,
    /// Pessimistic bound `n / (D + Z + (n−1)·D_max)`.
    pub lower: f64,
}

/// Response-time envelope at population `n` (system response, excluding
/// think time).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResponseBounds {
    /// `max(D, n·max(D_k/C_k) − Z)` (paper eq. 6 generalized).
    pub lower: f64,
    /// `D + (n−1)·D_max` — full queueing at the bottleneck.
    pub upper: f64,
}

/// Effective-demand summary of a network: `(D_total, D_max, Z)`.
fn demand_summary(net: &ClosedNetwork) -> (f64, f64, f64) {
    let ds: Vec<f64> = net
        .stations()
        .iter()
        .map(|s| s.effective_demand())
        .collect();
    let d_total: f64 = ds.iter().sum();
    let d_max = ds.iter().cloned().fold(0.0f64, f64::max);
    (d_total, d_max, net.think_time())
}

/// Asymptotic throughput bounds at population `n` (module docs for the
/// derivation).
pub fn throughput_bounds(net: &ClosedNetwork, n: usize) -> ThroughputBounds {
    let (d_total, d_max, z) = demand_summary(net);
    let nf = n as f64;
    let upper = (nf / (d_total + z)).min(if d_max > 0.0 {
        1.0 / d_max
    } else {
        f64::INFINITY
    });
    let lower = nf / (d_total + z + (nf - 1.0) * d_max);
    ThroughputBounds { upper, lower }
}

/// Asymptotic response bounds at population `n` (module docs for the
/// derivation).
pub fn response_bounds(net: &ClosedNetwork, n: usize) -> ResponseBounds {
    let (d_total, d_max, z) = demand_summary(net);
    let nf = n as f64;
    let lower = d_total.max(nf * d_max - z);
    let upper = d_total + (nf - 1.0) * d_max;
    ResponseBounds { lower, upper }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Station;

    fn net() -> ClosedNetwork {
        ClosedNetwork::new(
            vec![
                Station::queueing("a", 1, 1.0, 0.02),
                Station::queueing("b", 1, 1.0, 0.01),
            ],
            1.0,
        )
        .unwrap()
    }

    #[test]
    fn single_customer_bounds_are_tight() {
        let n = net();
        let tb = throughput_bounds(&n, 1);
        let rb = response_bounds(&n, 1);
        // n = 1: X = 1/(D+Z) exactly; both bounds must pinch it.
        let x = 1.0 / (0.03 + 1.0);
        assert!((tb.upper - x).abs() < 1e-12);
        assert!((tb.lower - x).abs() < 1e-12);
        assert!((rb.lower - 0.03).abs() < 1e-12);
        assert!((rb.upper - 0.03).abs() < 1e-12);
    }

    #[test]
    fn upper_bound_saturates_at_bottleneck() {
        let n = net();
        let tb = throughput_bounds(&n, 10_000);
        assert!((tb.upper - 50.0).abs() < 1e-9); // 1/0.02
    }

    #[test]
    fn lower_below_upper_everywhere() {
        let n = net();
        for pop in [1usize, 2, 5, 10, 50, 100, 1000] {
            let tb = throughput_bounds(&n, pop);
            let rb = response_bounds(&n, pop);
            assert!(tb.lower <= tb.upper + 1e-12, "pop {pop}");
            assert!(rb.lower <= rb.upper + 1e-12, "pop {pop}");
        }
    }

    #[test]
    fn multiserver_effective_demand_raises_ceiling() {
        let single = ClosedNetwork::new(vec![Station::queueing("cpu", 1, 1.0, 0.02)], 0.5).unwrap();
        let multi = ClosedNetwork::new(vec![Station::queueing("cpu", 4, 1.0, 0.02)], 0.5).unwrap();
        let ts = throughput_bounds(&single, 10_000).upper;
        let tm = throughput_bounds(&multi, 10_000).upper;
        assert!((ts - 50.0).abs() < 1e-9);
        assert!((tm - 200.0).abs() < 1e-9);
    }

    #[test]
    fn response_lower_grows_linearly_past_knee() {
        let n = net();
        let r1 = response_bounds(&n, 100).lower;
        let r2 = response_bounds(&n, 200).lower;
        // Past the knee the slope is D_max per customer.
        assert!((r2 - r1 - 100.0 * 0.02).abs() < 1e-9);
    }
}
