//! Exact multiclass MVA (extension beyond the paper).
//!
//! The paper restricts itself to "single class models wherein the customers
//! are assumed to be indistinguishable from one another" (Section 5.1). Real
//! load tests mix workflows — e.g. VINS' Registration vs Renew-Policy users
//! — so the suite ships the exact multiclass recursion as an extension: the
//! population recursion runs over the full lattice of class-population
//! vectors, applying the multiclass Arrival Theorem
//! `R_{c,k}(n⃗) = D_{c,k} · (1 + Q_k(n⃗ − e_c))`.
//!
//! Complexity is `O(K · Π_c (N_c + 1))`; the solver refuses lattices above a
//! safety cap rather than exhausting memory.

use crate::network::StationKind;
use crate::QueueingError;

/// One customer class: its population, think time, and per-station demands.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassSpec {
    /// Class label, e.g. `"renew-policy"`.
    pub name: String,
    /// Number of customers of this class, `N_c`.
    pub population: usize,
    /// Class think time `Z_c`.
    pub think_time: f64,
    /// Service demand of this class at each station, `D_{c,k}` (same station
    /// order across classes).
    pub demands: Vec<f64>,
}

/// Per-class results at the full population.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassMetrics {
    /// Class label.
    pub name: String,
    /// Class throughput `X_c`.
    pub throughput: f64,
    /// Class response time `R_c` (excluding think time).
    pub response: f64,
}

/// Solution of the multiclass model at the full population vector.
#[derive(Debug, Clone, PartialEq)]
pub struct MulticlassSolution {
    /// Per-class throughput/response.
    pub classes: Vec<ClassMetrics>,
    /// Mean total queue length per station (all classes).
    pub station_queues: Vec<f64>,
    /// Per-station total utilization `Σ_c X_c · D_{c,k}` (divided by server
    /// count for multi-server stations).
    pub station_utilizations: Vec<f64>,
}

/// Maximum number of lattice points the solver will allocate (`K` floats
/// each). 16 M points ≈ 128 MB·K/8 — generous but bounded.
const MAX_LATTICE: usize = 16_000_000;

/// Runs exact multiclass MVA.
///
/// `station_kinds` gives the discipline per station (shared by all classes).
/// Multi-server queueing stations are handled with the demand-normalization
/// heuristic (`D/C`, plus a delay of `D·(C−1)/C`) — the exact multiclass
/// multi-server recursion is out of scope, matching standard practice.
pub fn multiclass_mva(
    classes: &[ClassSpec],
    station_kinds: &[StationKind],
) -> Result<MulticlassSolution, QueueingError> {
    if classes.is_empty() {
        return Err(QueueingError::InvalidParameter {
            what: "need at least one class",
        });
    }
    let k_count = station_kinds.len();
    if k_count == 0 {
        return Err(QueueingError::EmptyNetwork);
    }
    for c in classes {
        if c.demands.len() != k_count {
            return Err(QueueingError::InvalidParameter {
                what: "every class must give one demand per station",
            });
        }
        if c.demands.iter().any(|d| !(d.is_finite() && *d >= 0.0)) {
            return Err(QueueingError::InvalidParameter {
                what: "demands must be finite and >= 0",
            });
        }
        if !(c.think_time.is_finite() && c.think_time >= 0.0) {
            return Err(QueueingError::InvalidParameter {
                what: "think time must be finite and >= 0",
            });
        }
    }
    for kind in station_kinds {
        match kind {
            StationKind::Queueing { servers: 0 } => {
                return Err(QueueingError::InvalidParameter {
                    what: "station must have at least one server",
                });
            }
            StationKind::LoadDependent { .. } => {
                return Err(QueueingError::InvalidParameter {
                    what: "exact multiclass MVA does not support load-dependent stations",
                });
            }
            _ => {}
        }
    }

    // Seidmann-style split per (class, station): queueing part + delay part.
    let nclasses = classes.len();
    let mut dq = vec![vec![0.0f64; k_count]; nclasses];
    let mut dd = vec![vec![0.0f64; k_count]; nclasses];
    for (ci, c) in classes.iter().enumerate() {
        for (k, kind) in station_kinds.iter().enumerate() {
            match kind {
                StationKind::Delay => dd[ci][k] = c.demands[k],
                StationKind::Queueing { servers } => {
                    let cc = *servers as f64;
                    dq[ci][k] = c.demands[k] / cc;
                    dd[ci][k] = c.demands[k] * (cc - 1.0) / cc;
                }
                // Rejected by the validation above.
                StationKind::LoadDependent { .. } => unreachable!(),
            }
        }
    }

    // Mixed-radix lattice over populations 0..=N_c.
    let dims: Vec<usize> = classes.iter().map(|c| c.population + 1).collect();
    let lattice: usize = dims
        .iter()
        .try_fold(1usize, |acc, &d| {
            acc.checked_mul(d).filter(|&v| v <= MAX_LATTICE)
        })
        .ok_or(QueueingError::InvalidParameter {
            what: "population lattice too large for exact multiclass MVA",
        })?;

    let strides: Vec<usize> = {
        let mut s = vec![1usize; nclasses];
        for i in 1..nclasses {
            s[i] = s[i - 1] * dims[i - 1];
        }
        s
    };

    // Q[idx * K + k]: total queue length at station k for population vector
    // `idx`. Processed in lexicographic index order, which visits n⃗ − e_c
    // (a strictly smaller index) before n⃗.
    let mut q = vec![0.0f64; lattice * k_count];
    let mut final_classes = Vec::with_capacity(nclasses);
    let mut final_x = vec![0.0f64; nclasses];
    let mut final_r = vec![0.0f64; nclasses];

    let mut pops = vec![0usize; nclasses];
    for idx in 1..lattice {
        // Decode index -> population vector.
        {
            let mut rem = idx;
            for c in 0..nclasses {
                pops[c] = rem % dims[c];
                rem /= dims[c];
            }
        }
        let mut xs = vec![0.0f64; nclasses];
        let mut rs = vec![0.0f64; nclasses];
        for ci in 0..nclasses {
            if pops[ci] == 0 {
                continue;
            }
            let prev_idx = idx - strides[ci];
            let mut r_c = 0.0;
            for k in 0..k_count {
                let q_prev = q[prev_idx * k_count + k];
                r_c += dq[ci][k] * (1.0 + q_prev) + dd[ci][k];
            }
            rs[ci] = r_c;
            xs[ci] = pops[ci] as f64 / (r_c + classes[ci].think_time);
        }
        // Q_k(n⃗) = Σ_c X_c · (residence of class c at k).
        for k in 0..k_count {
            let mut qk = 0.0;
            for ci in 0..nclasses {
                if pops[ci] == 0 {
                    continue;
                }
                let prev_idx = idx - strides[ci];
                let q_prev = q[prev_idx * k_count + k];
                let res = dq[ci][k] * (1.0 + q_prev) + dd[ci][k];
                qk += xs[ci] * res;
            }
            q[idx * k_count + k] = qk;
        }
        if idx == lattice - 1 {
            final_x = xs;
            final_r = rs;
        }
    }

    // Handle the degenerate all-zero-population case.
    let full_idx = lattice - 1;
    for (ci, c) in classes.iter().enumerate() {
        final_classes.push(ClassMetrics {
            name: c.name.clone(),
            throughput: if c.population == 0 { 0.0 } else { final_x[ci] },
            response: if c.population == 0 { 0.0 } else { final_r[ci] },
        });
    }
    let station_queues: Vec<f64> = (0..k_count).map(|k| q[full_idx * k_count + k]).collect();
    let station_utilizations: Vec<f64> = (0..k_count)
        .map(|k| {
            let total: f64 = classes
                .iter()
                .enumerate()
                .map(|(ci, c)| final_classes[ci].throughput * c.demands[k])
                .sum();
            match station_kinds[k].server_count() {
                Some(servers) => total / servers as f64,
                None => total,
            }
        })
        .collect();

    Ok(MulticlassSolution {
        classes: final_classes,
        station_queues,
        station_utilizations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mva::exact_mva;
    use crate::network::{ClosedNetwork, Station};

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn single_class_matches_exact_mva() {
        let demands = vec![0.006, 0.010];
        let classes = vec![ClassSpec {
            name: "only".into(),
            population: 40,
            think_time: 1.0,
            demands: demands.clone(),
        }];
        let kinds = vec![
            StationKind::Queueing { servers: 1 },
            StationKind::Queueing { servers: 1 },
        ];
        let mc = multiclass_mva(&classes, &kinds).unwrap();

        let net = ClosedNetwork::new(
            vec![
                Station::queueing("a", 1, 1.0, 0.006),
                Station::queueing("b", 1, 1.0, 0.010),
            ],
            1.0,
        )
        .unwrap();
        let sc = exact_mva(&net, 40).unwrap();
        assert!(close(mc.classes[0].throughput, sc.last().throughput, 1e-9));
        assert!(close(mc.classes[0].response, sc.last().response, 1e-9));
        assert!(close(
            mc.station_queues[1],
            sc.last().stations[1].queue,
            1e-8
        ));
    }

    #[test]
    fn two_identical_classes_equal_one_merged_class() {
        let kinds = vec![StationKind::Queueing { servers: 1 }];
        let half = |name: &str| ClassSpec {
            name: name.into(),
            population: 10,
            think_time: 1.0,
            demands: vec![0.02],
        };
        let split = multiclass_mva(&[half("a"), half("b")], &kinds).unwrap();
        let merged = multiclass_mva(
            &[ClassSpec {
                name: "ab".into(),
                population: 20,
                think_time: 1.0,
                demands: vec![0.02],
            }],
            &kinds,
        )
        .unwrap();
        let x_split = split.classes[0].throughput + split.classes[1].throughput;
        assert!(close(x_split, merged.classes[0].throughput, 1e-9));
        assert!(close(
            split.station_queues[0],
            merged.station_queues[0],
            1e-8
        ));
    }

    #[test]
    fn heavier_class_sees_longer_response() {
        let kinds = vec![StationKind::Queueing { servers: 1 }];
        let sol = multiclass_mva(
            &[
                ClassSpec {
                    name: "light".into(),
                    population: 5,
                    think_time: 1.0,
                    demands: vec![0.01],
                },
                ClassSpec {
                    name: "heavy".into(),
                    population: 5,
                    think_time: 1.0,
                    demands: vec![0.05],
                },
            ],
            &kinds,
        )
        .unwrap();
        assert!(sol.classes[1].response > sol.classes[0].response);
    }

    #[test]
    fn empty_class_population_is_ok() {
        let kinds = vec![StationKind::Queueing { servers: 1 }];
        let sol = multiclass_mva(
            &[
                ClassSpec {
                    name: "zero".into(),
                    population: 0,
                    think_time: 1.0,
                    demands: vec![0.02],
                },
                ClassSpec {
                    name: "busy".into(),
                    population: 8,
                    think_time: 1.0,
                    demands: vec![0.02],
                },
            ],
            &kinds,
        )
        .unwrap();
        assert_eq!(sol.classes[0].throughput, 0.0);
        assert!(sol.classes[1].throughput > 0.0);
    }

    #[test]
    fn delay_station_handled() {
        let kinds = vec![StationKind::Queueing { servers: 1 }, StationKind::Delay];
        let sol = multiclass_mva(
            &[ClassSpec {
                name: "c".into(),
                population: 15,
                think_time: 0.5,
                demands: vec![0.01, 0.003],
            }],
            &kinds,
        )
        .unwrap();
        assert!(sol.classes[0].response >= 0.013 - 1e-12);
    }

    #[test]
    fn rejects_bad_inputs() {
        let kinds = vec![StationKind::Queueing { servers: 1 }];
        assert!(multiclass_mva(&[], &kinds).is_err());
        assert!(multiclass_mva(
            &[ClassSpec {
                name: "c".into(),
                population: 1,
                think_time: 1.0,
                demands: vec![0.1, 0.2], // wrong arity
            }],
            &kinds
        )
        .is_err());
        assert!(multiclass_mva(
            &[ClassSpec {
                name: "c".into(),
                population: 1,
                think_time: -1.0,
                demands: vec![0.1],
            }],
            &kinds
        )
        .is_err());
        // Lattice blow-up guard.
        let huge = ClassSpec {
            name: "h".into(),
            population: 100_000,
            think_time: 1.0,
            demands: vec![0.1],
        };
        let sol = multiclass_mva(&[huge.clone(), huge.clone(), huge], &kinds);
        assert!(sol.is_err());
    }

    #[test]
    fn utilizations_are_reported_per_station() {
        let kinds = vec![
            StationKind::Queueing { servers: 2 },
            StationKind::Queueing { servers: 1 },
        ];
        let sol = multiclass_mva(
            &[ClassSpec {
                name: "c".into(),
                population: 30,
                think_time: 1.0,
                demands: vec![0.02, 0.01],
            }],
            &kinds,
        )
        .unwrap();
        assert_eq!(sol.station_utilizations.len(), 2);
        for u in &sol.station_utilizations {
            assert!(*u >= 0.0 && *u <= 1.0 + 1e-9);
        }
    }
}
