//! Schweitzer's approximate MVA — paper eq. 9 — with the Seidmann
//! multi-server transform (the approximation family of the paper's refs.
//! [18]/[19] that MAQ-PRO builds on, and which the paper criticizes for its
//! accuracy at high concurrency).
//!
//! Schweitzer replaces the exact arrival-theorem term `Q_k(n−1)` with the
//! proportional estimate `(n−1)/n · Q_k(n)`, turning the population
//! recursion into a fixed point that is solved iteratively per population.
//! Multi-server stations are handled with Seidmann's decomposition: a
//! `C`-server station of demand `D` becomes a single-server station of
//! demand `D/C` in series with a pure delay of `D·(C−1)/C`.

use crate::network::{ClosedNetwork, StationKind};
use crate::QueueingError;
use mvasd_obsv as obsv;

use super::stepping::{MvaPoint, SolverIter};
use super::{MvaSolution, StationPoint};

/// Convergence controls for the fixed-point iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchweitzerOptions {
    /// Stop when the max queue-length change drops below this.
    pub tolerance: f64,
    /// Hard iteration cap per population level.
    pub max_iterations: usize,
}

impl Default for SchweitzerOptions {
    fn default() -> Self {
        Self {
            tolerance: 1e-10,
            max_iterations: 10_000,
        }
    }
}

/// The Schweitzer fixed point as a resumable iterator: the carried state
/// is the queue-length vector that warm-starts each population's fixed
/// point from the previous population's solution.
#[derive(Debug, Clone)]
pub struct SchweitzerIter {
    net: ClosedNetwork,
    opts: SchweitzerOptions,
    names: std::sync::Arc<[String]>,
    /// Seidmann decomposition: per station, (queueing demand, delay
    /// demand, is-queueing).
    split: Vec<(f64, f64, bool)>,
    /// Warm-start queues from the last yielded population.
    q: Vec<f64>,
    n: usize,
}

impl SchweitzerIter {
    /// Starts a fresh recursion at population 0. Rejects non-positive /
    /// non-finite tolerances and a zero iteration cap.
    pub fn new(net: ClosedNetwork, opts: SchweitzerOptions) -> Result<Self, QueueingError> {
        if !opts.tolerance.is_finite() || opts.tolerance <= 0.0 || opts.max_iterations == 0 {
            return Err(QueueingError::InvalidParameter {
                what: "tolerance must be > 0 and max_iterations >= 1",
            });
        }
        let names = net
            .stations()
            .iter()
            .map(|s| s.name.clone())
            .collect::<Vec<_>>()
            .into();
        let mut split = Vec::with_capacity(net.stations().len());
        for s in net.stations() {
            let d = s.demand();
            split.push(match &s.kind {
                StationKind::Delay => (0.0, d, false),
                StationKind::Queueing { servers } => {
                    let c = *servers as f64;
                    (d / c, d * (c - 1.0) / c, true)
                }
                // The Seidmann transform has no analogue for an arbitrary
                // rate table; aggregated stations need an exact backend.
                StationKind::LoadDependent { .. } => {
                    return Err(QueueingError::InvalidParameter {
                        what: "Schweitzer AMVA does not support load-dependent stations",
                    })
                }
            });
        }
        let q = vec![0.0f64; net.stations().len()];
        Ok(Self {
            net,
            opts,
            names,
            split,
            q,
            n: 0,
        })
    }
}

impl SolverIter for SchweitzerIter {
    fn station_names(&self) -> &[String] {
        &self.names
    }

    fn shared_names(&self) -> std::sync::Arc<[String]> {
        self.names.clone()
    }

    fn population(&self) -> usize {
        self.n
    }

    fn step(&mut self) -> Result<MvaPoint, QueueingError> {
        let _span = obsv::span("schweitzer.step");
        obsv::counter("solver.steps", 1);
        let n = self.n + 1;
        let nf = n as f64;
        let stations = self.net.stations();
        let k_count = stations.len();
        let z = self.net.think_time();

        // Initial guess: previous population's queues, floored to spread.
        if n == 1 {
            for qk in self.q.iter_mut() {
                *qk = 1.0 / k_count as f64;
            }
        }
        let mut x = 0.0;
        let mut residence = vec![0.0f64; k_count];
        let mut converged = false;
        let mut iterations = 0u64;
        let mut last_delta = f64::INFINITY;
        for _ in 0..self.opts.max_iterations {
            iterations += 1;
            let mut r_total = 0.0;
            for (k, &(dq, dd, is_queueing)) in self.split.iter().enumerate() {
                let rq = if is_queueing {
                    dq * (1.0 + (nf - 1.0) / nf * self.q[k])
                } else {
                    0.0
                };
                residence[k] = rq + dd;
                r_total += residence[k];
            }
            x = nf / (r_total + z);
            let mut delta: f64 = 0.0;
            for (qk, rk) in self.q.iter_mut().zip(&residence) {
                let new_q = x * rk;
                delta = delta.max((new_q - *qk).abs());
                *qk = new_q;
            }
            if delta < self.opts.tolerance {
                converged = true;
                last_delta = delta;
                break;
            }
            last_delta = delta;
        }
        if obsv::enabled() {
            obsv::counter("schweitzer.fixed_point_iterations", iterations);
            obsv::observe("schweitzer.iterations_per_step", iterations);
            // Final fixed-point residual as converged digits × 100: the
            // health floor `mvasd-doctor` compares across runs.
            obsv::observe(
                "health.schweitzer.residual_digits",
                obsv::health::residual_digits(last_delta),
            );
        }
        if !converged {
            return Err(QueueingError::InvalidParameter {
                what: "Schweitzer iteration did not converge",
            });
        }

        let r_total: f64 = residence.iter().sum();
        let station_points = stations
            .iter()
            .enumerate()
            .map(|(k, s)| StationPoint {
                queue: self.q[k],
                residence: residence[k],
                // LoadDependent was rejected at construction, so only the
                // two classic kinds reach this point.
                utilization: match s.kind.server_count() {
                    Some(servers) => x * s.demand() / servers as f64,
                    None => x * s.demand(),
                },
            })
            .collect();

        self.n = n;
        Ok(MvaPoint {
            n,
            throughput: x,
            response: r_total,
            cycle_time: r_total + z,
            stations: station_points,
        })
    }

    fn boxed_clone(&self) -> Box<dyn SolverIter> {
        Box::new(self.clone())
    }
}

/// Runs Schweitzer approximate MVA for every population `1..=n_max` (a
/// drain of [`SchweitzerIter`]). `n_max = 0` yields an empty solution.
pub fn schweitzer_mva(
    net: &ClosedNetwork,
    n_max: usize,
    opts: SchweitzerOptions,
) -> Result<MvaSolution, QueueingError> {
    SchweitzerIter::new(net.clone(), opts)?.drain(n_max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mva::{exact_mva, multiserver_mva};
    use crate::network::Station;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    fn simple_net() -> ClosedNetwork {
        ClosedNetwork::new(
            vec![
                Station::queueing("cpu", 1, 1.0, 0.006),
                Station::queueing("disk", 1, 1.0, 0.010),
            ],
            1.0,
        )
        .unwrap()
    }

    #[test]
    fn close_to_exact_for_single_server() {
        let net = simple_net();
        let ex = exact_mva(&net, 200).unwrap();
        let ap = schweitzer_mva(&net, 200, SchweitzerOptions::default()).unwrap();
        for (pe, pa) in ex.points.iter().zip(ap.points.iter()) {
            let rel = (pe.throughput - pa.throughput).abs() / pe.throughput;
            // Schweitzer's error peaks near the knee; 3 % is its textbook band.
            assert!(rel < 0.03, "n={}: rel {rel}", pe.n);
        }
    }

    #[test]
    fn exact_at_n_equals_one() {
        // With one customer Schweitzer's correction term vanishes: exact.
        let net = simple_net();
        let ap = schweitzer_mva(&net, 1, SchweitzerOptions::default()).unwrap();
        assert!(close(ap.at(1).unwrap().response, 0.016, 1e-9));
    }

    #[test]
    fn littles_law_holds() {
        let net = simple_net();
        let sol = schweitzer_mva(&net, 100, SchweitzerOptions::default()).unwrap();
        for p in &sol.points {
            assert!(close(p.n as f64, p.throughput * p.cycle_time, 1e-6));
        }
    }

    #[test]
    fn multiserver_seidmann_tracks_algorithm_2() {
        let net = ClosedNetwork::new(
            vec![
                Station::queueing("cpu16", 16, 1.0, 0.02),
                Station::queueing("disk", 1, 1.0, 0.002),
            ],
            1.0,
        )
        .unwrap();
        let a2 = multiserver_mva(&net, 900).unwrap();
        let sw = schweitzer_mva(&net, 900, SchweitzerOptions::default()).unwrap();
        // Same saturation ceiling; bounded relative error in between.
        for n in [1usize, 50, 200, 400, 900] {
            let xa = a2.at(n).unwrap().throughput;
            let xs = sw.at(n).unwrap().throughput;
            let rel = (xa - xs).abs() / xa;
            assert!(rel < 0.12, "n={n}: algorithm2 {xa} vs schweitzer {xs}");
        }
    }

    #[test]
    fn saturates_at_bottleneck() {
        let net = simple_net();
        let sol = schweitzer_mva(&net, 2000, SchweitzerOptions::default()).unwrap();
        assert!(sol.last().throughput <= 100.0 + 1e-6);
        assert!(sol.last().throughput > 99.0);
    }

    #[test]
    fn rejects_bad_options() {
        let net = simple_net();
        assert!(schweitzer_mva(
            &net,
            10,
            SchweitzerOptions {
                tolerance: 0.0,
                max_iterations: 100
            }
        )
        .is_err());
        assert!(schweitzer_mva(
            &net,
            10,
            SchweitzerOptions {
                tolerance: 1e-9,
                max_iterations: 0
            }
        )
        .is_err());
        // Zero population is a valid, empty sweep (options still checked).
        let empty = schweitzer_mva(&net, 0, SchweitzerOptions::default()).unwrap();
        assert!(empty.points.is_empty());
        assert!(schweitzer_mva(
            &net,
            0,
            SchweitzerOptions {
                tolerance: -1.0,
                max_iterations: 100
            }
        )
        .is_err());
    }
}
