//! Exact multi-server MVA — paper Algorithm 2.
//!
//! Tightly coupled multi-core CPUs are multi-server queues; single-server
//! MVA (Algorithm 1) needs the heuristic "divide the demand by the core
//! count", which the paper shows to mispredict. Algorithm 2 instead values
//! a multi-server station through the marginal-probability correction of
//! paper eq. 10:
//!
//! ```text
//! R_k(n) = (D_k / C_k) · (1 + Q_k(n−1) + F_k(n−1)),
//! F_k    = Σ_{j=0}^{C_k−2} (C_k − 1 − j) · p_k(j)
//! ```
//!
//! ## Numerical evaluation
//!
//! The obvious way to carry the marginals — the population recursion with
//! the `p(0) = 1 − Σ…` closure — is **numerically unstable**: close to
//! saturation the closure cancels catastrophically and the recursion
//! amplifies round-off exponentially (measured gain ≈ 1.5–2× per
//! population step for a 16-core station, the paper's hardware). Plain
//! `f64` breaks a few dozen populations past the knee, and even
//! double-double state only delays the blow-up. [`multiserver_mva`]
//! therefore evaluates the network through the normalization-constant
//! (convolution) form in log-domain — mathematically identical for
//! constant demands, and a ratio of sums of positive terms, hence stable
//! at every population (validated against the machine-repair closed form
//! to 1e-9 in the tests).
//!
//! [`PopulationRecursion`] — the stepping engine shared with MVASD
//! (Algorithm 3), where demands change at every population and a one-pass
//! convolution is impossible — uses the carried recursion in double-double
//! precision only while every multi-server station is safely below the
//! instability region, and switches permanently to per-step quasi-static
//! convolution solves beyond it.
//!
//! The quasi-static solves are served by a carried incremental
//! [`ConvWorkspace`] rather than a from-scratch evaluation: when the
//! demand array changes between steps (the MVASD case) the workspace
//! rebuilds its carried factor columns in `O(K·n)`, and when it does not
//! (constant-demand Algorithm 2 driven through the recursion) each step
//! extends the columns by a single entry in `O(K)` — against the old
//! `O(K·n²)` per-step rebuild either way. The workspace's scratch buffers
//! are allocated once and reused for the rest of the sweep.

use mvasd_numerics::dd::Dd;

use crate::network::{ClosedNetwork, StationKind};
use crate::QueueingError;

use super::convolution::{solve, to_mva_solution, ConvStation, ConvWorkspace};
use super::loaddep::RateFunction;
use super::MvaSolution;

/// Snapshot history of the marginal queue-length probabilities of one
/// station (the entries that drive the eq. 10 correction).
#[derive(Debug, Clone, PartialEq)]
pub struct MarginalTrace {
    /// Index of the traced station in the network.
    pub station: usize,
    /// `history[n - 1][j]` is `p_k(j | n)` — the probability that exactly
    /// `j` customers are at the station (hence `j` servers busy, for
    /// `j < C_k`) after the population-`n` step (`j = 0 … C_k − 1`).
    pub history: Vec<Vec<f64>>,
}

impl MarginalTrace {
    /// The probability that **all** servers are busy at each population,
    /// `1 − Σ_{j<C} p(j)` (clamped to `[0, 1]`).
    pub fn all_busy(&self) -> Vec<f64> {
        self.history
            .iter()
            .map(|snap| (1.0 - snap.iter().sum::<f64>()).clamp(0.0, 1.0))
            .collect()
    }
}

pub(crate) fn conv_stations(net: &ClosedNetwork) -> Vec<ConvStation> {
    net.stations()
        .iter()
        .map(|s| ConvStation {
            name: s.name.clone(),
            demand: s.demand(),
            rate: match &s.kind {
                StationKind::Delay => RateFunction::Delay,
                StationKind::Queueing { servers: 1 } => RateFunction::SingleServer,
                StationKind::Queueing { servers } => RateFunction::MultiServer(*servers),
                StationKind::LoadDependent { rates } => RateFunction::Custom(rates.clone()),
            },
        })
        .collect()
}

/// Runs exact multi-server MVA (paper Algorithm 2) up to `n_max`. The
/// series is produced by draining the incremental convolution state (see
/// [`super::convolution`]); `n_max = 0` yields an empty solution.
pub fn multiserver_mva(net: &ClosedNetwork, n_max: usize) -> Result<MvaSolution, QueueingError> {
    let conv = conv_stations(net);
    let limits = vec![0usize; conv.len()];
    let sol = solve(&conv, net.think_time(), n_max, &limits)?;
    Ok(to_mva_solution(&conv, net.think_time(), &sol))
}

/// As [`multiserver_mva`], additionally recording the marginal-probability
/// history of `trace_station` — the data behind the paper's Fig. 3
/// ("Marginal Probability of a CPU Core being busy with increasing
/// Concurrency").
pub fn multiserver_mva_with_marginals(
    net: &ClosedNetwork,
    n_max: usize,
    trace_station: usize,
) -> Result<(MvaSolution, MarginalTrace), QueueingError> {
    if trace_station >= net.stations().len() {
        return Err(QueueingError::InvalidParameter {
            what: "trace station index out of range",
        });
    }
    let conv = conv_stations(net);
    let mut limits = vec![0usize; conv.len()];
    limits[trace_station] = match &net.stations()[trace_station].kind {
        StationKind::Queueing { servers } => *servers,
        StationKind::Delay => 0,
        // Track the whole occupancy table of an aggregated station.
        StationKind::LoadDependent { rates } => rates.len(),
    };
    let sol = solve(&conv, net.think_time(), n_max, &limits)?;
    let history = sol.marginals[trace_station].clone();
    let mva = to_mva_solution(&conv, net.think_time(), &sol);
    Ok((
        mva,
        MarginalTrace {
            station: trace_station,
            history,
        },
    ))
}

/// Per-server utilization above which a multi-server station is considered
/// at risk of entering the unstable region of the carried marginal
/// recursion; the [`PopulationRecursion`] switches to quasi-static
/// convolution evaluation from the first step where any station crosses it.
/// Well inside the provably contractive regime (instability has only been
/// observed from ≈ 0.9 upward; the carried state at the switch is accurate
/// to ~1e-28).
const QUASI_STATIC_SWITCH: f64 = 0.5;

/// Shared population-stepping engine of Algorithms 2 and 3.
///
/// Advances one population at a time with whatever demand array the caller
/// supplies — constant demands reproduce Algorithm 2; feeding the
/// spline-interpolated `SSⁿ` array at each step is exactly MVASD
/// (Algorithm 3), which is how `mvasd-core` uses this type.
///
/// Internally it runs the exact carried recursion (double-double state)
/// while every multi-server station's utilization stays below
/// [`QUASI_STATIC_SWITCH`], then switches permanently to per-step
/// quasi-static convolution solves: each step is solved as a constant-
/// demand network frozen at that step's demand array — the numerically
/// robust reading of the same algorithm, and the semantically right one
/// for steady-state prediction (a load test at `N` users measures the
/// steady state of the system *with the demands it has at `N`*).
#[derive(Debug, Clone)]
pub struct PopulationRecursion {
    /// Server count per station (`usize::MAX` encodes a delay station).
    servers: Vec<usize>,
    think_time: f64,
    /// Queue lengths (double-double while in carried mode).
    q: Vec<Dd>,
    /// Marginals p(0..C−1) per multi-server station (empty otherwise).
    p: Vec<Vec<Dd>>,
    /// Once true, every step is evaluated quasi-statically.
    quasi_static: bool,
    /// Carried convolution state for the quasi-static regime, built lazily
    /// on the first quasi-static step and reused (extended or rebuilt in
    /// place) for every step after.
    ws: Option<ConvWorkspace>,
}

impl PopulationRecursion {
    /// Creates the state for the given per-station server counts
    /// (`usize::MAX` encodes a delay station) and think time.
    pub fn new(servers: Vec<usize>, think_time: f64) -> Self {
        let p = servers
            .iter()
            .map(|&c| {
                if c != usize::MAX && c > 1 {
                    let mut v = vec![Dd::ZERO; c];
                    v[0] = Dd::ONE;
                    v
                } else {
                    Vec::new()
                }
            })
            .collect();
        Self {
            q: vec![Dd::ZERO; servers.len()],
            servers,
            think_time,
            p,
            quasi_static: false,
            ws: None,
        }
    }

    /// Whether the engine has switched to quasi-static evaluation.
    pub fn is_quasi_static(&self) -> bool {
        self.quasi_static
    }

    /// Advances one population step with the given demand array; returns
    /// `(throughput, response, residences)` rounded to `f64`.
    pub fn step(&mut self, n: usize, demands: &[f64]) -> (f64, f64, Vec<f64>) {
        if self.quasi_static {
            return self.quasi_static_step(n, demands);
        }
        let k_count = self.servers.len();
        let mut residence = vec![Dd::ZERO; k_count];
        for k in 0..k_count {
            let d = demands[k];
            residence[k] = match self.servers[k] {
                usize::MAX => Dd::from_f64(d),
                1 => (self.q[k] + 1.0) * d,
                c => {
                    // eq. 10: (D/C)(1 + Q + F), F = Σ (C−1−j)p(j).
                    let mut f = Dd::ZERO;
                    for (j, pj) in self.p[k].iter().take(c - 1).enumerate() {
                        f = f + *pj * ((c - 1 - j) as f64);
                    }
                    (self.q[k] + f + 1.0) * (d / c as f64)
                }
            };
        }
        let mut r_total = Dd::ZERO;
        for r in &residence {
            r_total = r_total + *r;
        }
        let x = (r_total + self.think_time).recip_mul(n as f64);

        // Check the stability envelope before committing this step: if any
        // multi-server station is past the switch utilization, redo the
        // step quasi-statically and stay there.
        for k in 0..k_count {
            let c = self.servers[k];
            if c != usize::MAX && c > 1 && x.to_f64() * demands[k] / c as f64 > QUASI_STATIC_SWITCH
            {
                self.quasi_static = true;
                return self.quasi_static_step(n, demands);
            }
        }

        for k in 0..k_count {
            self.q[k] = x * residence[k];
            let c = self.servers[k];
            if c != usize::MAX && c > 1 {
                let u = x * demands[k];
                let old = self.p[k].clone();
                for j in 1..c {
                    self.p[k][j] = (u * old[j - 1] * (1.0 / j as f64)).max_zero();
                }
                // Busy-server identity closes p(0).
                let mut weighted = Dd::ZERO;
                for j in 1..c {
                    weighted = weighted + self.p[k][j] * ((c - j) as f64);
                }
                self.p[k][0] = (Dd::ONE - (u + weighted) * (1.0 / c as f64)).max_zero();
            }
        }

        (
            x.to_f64(),
            r_total.to_f64(),
            residence.iter().map(|r| r.to_f64()).collect(),
        )
    }

    /// One quasi-static step: exact constant-demand solve at population `n`
    /// with this step's demand array, served by the carried incremental
    /// workspace (same-demand steps extend in `O(K)`; demand changes
    /// rebuild the carried columns in `O(K·n)`).
    fn quasi_static_step(&mut self, n: usize, demands: &[f64]) -> (f64, f64, Vec<f64>) {
        if self.ws.is_none() {
            let conv: Vec<ConvStation> = self
                .servers
                .iter()
                .zip(demands.iter())
                .enumerate()
                .map(|(k, (&c, &d))| ConvStation {
                    name: format!("s{k}"),
                    demand: d,
                    rate: match c {
                        usize::MAX => RateFunction::Delay,
                        1 => RateFunction::SingleServer,
                        c => RateFunction::MultiServer(c),
                    },
                })
                .collect();
            let limits: Vec<usize> = self
                .servers
                .iter()
                .map(|&c| if c != usize::MAX && c > 1 { c } else { 0 })
                .collect();
            self.ws = Some(
                ConvWorkspace::from_conv(conv, self.think_time, limits)
                    .expect("quasi-static workspace over a validated network"),
            );
        }
        let ws = self.ws.as_mut().expect("just built");
        ws.solve_at(n, demands)
            .expect("quasi-static solve of a validated network");
        let x = ws.throughput();
        let queues = ws.queues();
        // Refresh the carried state so marginals()/queue() stay meaningful.
        for (k, &qk) in queues.iter().enumerate().take(self.servers.len()) {
            self.q[k] = Dd::from_f64(qk);
            if !self.p[k].is_empty() {
                let marg = ws.marginals_of(k);
                for (j, slot) in self.p[k].iter_mut().enumerate() {
                    *slot = Dd::from_f64(marg.get(j).copied().unwrap_or(0.0));
                }
            }
        }
        let residences: Vec<f64> = queues
            .iter()
            .map(|q| if x > 0.0 { q / x } else { 0.0 })
            .collect();
        let r_total: f64 = residences.iter().sum();
        (x, r_total, residences)
    }

    /// Current marginal snapshot of station `k` (empty for single-server
    /// and delay stations), rounded to `f64`.
    pub fn marginals(&self, k: usize) -> Vec<f64> {
        self.p[k].iter().map(|d| d.to_f64()).collect()
    }

    /// Current queue length of station `k`.
    pub fn queue(&self, k: usize) -> f64 {
        self.q[k].to_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mva::{exact_mva, load_dependent_mva, LdStation};
    use crate::network::Station;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn reduces_to_algorithm_1_for_single_servers() {
        let net = ClosedNetwork::new(
            vec![
                Station::queueing("a", 1, 1.0, 0.004),
                Station::queueing("b", 1, 2.0, 0.003),
                Station::delay("lan", 1.0, 0.001),
            ],
            0.75,
        )
        .unwrap();
        let ms = multiserver_mva(&net, 200).unwrap();
        let ss = exact_mva(&net, 200).unwrap();
        for (pm, ps) in ms.points.iter().zip(ss.points.iter()) {
            let rel = (pm.throughput - ps.throughput).abs() / ps.throughput;
            assert!(
                rel < 1e-9,
                "n={}: {} vs {}",
                pm.n,
                pm.throughput,
                ps.throughput
            );
            assert!(close(pm.response, ps.response, 1e-8 * ps.response.max(1.0)));
        }
    }

    #[test]
    fn littles_law_holds() {
        let net = ClosedNetwork::new(
            vec![
                Station::queueing("cpu16", 16, 1.0, 0.020),
                Station::queueing("disk", 1, 1.0, 0.004),
            ],
            1.0,
        )
        .unwrap();
        let sol = multiserver_mva(&net, 400).unwrap();
        for p in &sol.points {
            assert!(close(
                p.n as f64,
                p.throughput * p.cycle_time,
                1e-6 * p.n as f64
            ));
        }
    }

    #[test]
    fn multiserver_beats_single_server_throughput() {
        // Same total demand; 4 cores must sustain ~4x the single-server
        // ceiling when CPU-bound.
        let single = ClosedNetwork::new(vec![Station::queueing("cpu", 1, 1.0, 0.02)], 1.0).unwrap();
        let quad = ClosedNetwork::new(vec![Station::queueing("cpu", 4, 1.0, 0.02)], 1.0).unwrap();
        let xs = multiserver_mva(&single, 600).unwrap().last().throughput;
        let xq = multiserver_mva(&quad, 600).unwrap().last().throughput;
        assert!(xs < 51.0);
        assert!(xq > 195.0, "got {xq}");
        assert!(xq <= 200.0 + 1e-6);
    }

    #[test]
    fn matches_machine_repair_closed_form_exactly() {
        // Single multi-server station + think time: exact result available.
        for (c, s, z, n_max) in [(4usize, 0.25f64, 1.0f64, 80usize), (16, 0.16, 1.0, 400)] {
            let net = ClosedNetwork::new(vec![Station::queueing("st", c, 1.0, s)], z).unwrap();
            let sol = multiserver_mva(&net, n_max).unwrap();
            for n in 1..=n_max {
                let (x_exact, _) = mvasd_numerics::erlang::machine_repair(n, c, s, z).unwrap();
                let x = sol.at(n).unwrap().throughput;
                let rel = (x - x_exact).abs() / x_exact;
                assert!(
                    rel < 1e-9,
                    "c={c} n={n}: {x} vs exact {x_exact} (rel {rel:e})"
                );
            }
        }
    }

    #[test]
    fn agrees_with_load_dependent_gold_standard() {
        // Both go through the same convolution machinery now; this guards
        // the station-kind translation.
        let net = ClosedNetwork::new(
            vec![
                Station::queueing("cpu16", 16, 1.0, 0.02),
                Station::queueing("disk", 1, 1.0, 0.002),
            ],
            1.0,
        )
        .unwrap();
        let a2 = multiserver_mva(&net, 800).unwrap();
        let ld = load_dependent_mva(
            &[
                LdStation::new("cpu16", 0.02, RateFunction::MultiServer(16)),
                LdStation::new("disk", 0.002, RateFunction::SingleServer),
            ],
            1.0,
            800,
        )
        .unwrap();
        for (pa, pl) in a2.points.iter().zip(ld.points.iter()) {
            let rel = (pa.throughput - pl.throughput).abs() / pl.throughput;
            assert!(rel < 1e-12, "n={}", pa.n);
        }
    }

    #[test]
    fn throughput_monotone_even_around_the_knee() {
        // The brutal case for the naive recursion: 16 cores, deep
        // saturation traversal. Convolution must be monotone and respect
        // the Bottleneck Law everywhere.
        let net = ClosedNetwork::new(vec![Station::queueing("cpu", 16, 1.0, 0.16)], 1.0).unwrap();
        let sol = multiserver_mva(&net, 400).unwrap();
        let xs = sol.throughputs();
        for w in xs.windows(2) {
            assert!(w[1] >= w[0] - 1e-9, "dip: {} -> {}", w[0], w[1]);
        }
        assert!(sol.last().throughput > 99.9);
        assert!(sol.last().throughput <= 100.0 + 1e-6);
    }

    #[test]
    fn single_customer_never_queues_even_multiserver() {
        let net = ClosedNetwork::new(vec![Station::queueing("cpu", 8, 1.0, 0.4)], 1.0).unwrap();
        let p = multiserver_mva(&net, 1).unwrap();
        // One customer is served at full speed: R = D.
        assert!(close(p.at(1).unwrap().response, 0.4, 1e-9));
    }

    #[test]
    fn marginals_trace_is_a_probability_vector() {
        let net = ClosedNetwork::new(vec![Station::queueing("cpu", 4, 1.0, 0.1)], 1.0).unwrap();
        let (_, trace) = multiserver_mva_with_marginals(&net, 80, 0).unwrap();
        assert_eq!(trace.history.len(), 80);
        for snap in &trace.history {
            assert_eq!(snap.len(), 4);
            let sum: f64 = snap.iter().sum();
            for &pj in snap {
                assert!((0.0..=1.0 + 1e-9).contains(&pj), "p out of range: {pj}");
            }
            assert!(sum <= 1.0 + 1e-6, "partial masses exceed 1: {sum}");
        }
        // At saturation all mass moves to "all 4 busy".
        let all_busy = trace.all_busy();
        assert!(all_busy[79] > 0.9, "got {}", all_busy[79]);
        assert!(all_busy[0] < 0.1);
    }

    #[test]
    fn trace_rejects_bad_station() {
        let net = ClosedNetwork::new(vec![Station::queueing("cpu", 4, 1.0, 0.1)], 1.0).unwrap();
        assert!(multiserver_mva_with_marginals(&net, 10, 1).is_err());
    }

    #[test]
    fn trace_works_for_single_server_station() {
        let net = ClosedNetwork::new(vec![Station::queueing("disk", 1, 1.0, 0.01)], 1.0).unwrap();
        let (sol, trace) = multiserver_mva_with_marginals(&net, 50, 0).unwrap();
        for (snap, p) in trace.history.iter().zip(sol.points.iter()) {
            assert_eq!(snap.len(), 1);
            // p(0|n) = 1 − U for a single-server station.
            assert!(close(snap[0], (1.0 - p.throughput * 0.01).max(0.0), 1e-8));
        }
    }

    #[test]
    fn utilization_per_server_bounded_by_one() {
        let net = ClosedNetwork::new(
            vec![
                Station::queueing("cpu16", 16, 1.0, 0.08),
                Station::queueing("disk", 1, 1.0, 0.004),
            ],
            1.0,
        )
        .unwrap();
        let sol = multiserver_mva(&net, 1000).unwrap();
        for p in &sol.points {
            for sp in &p.stations {
                assert!(sp.utilization <= 1.0 + 1e-9);
            }
        }
        // CPU is the bottleneck (0.08/16 = 5 ms effective > 4 ms disk):
        // its per-server utilization should approach 1.
        assert!(
            sol.last().stations[0].utilization > 0.98,
            "got {}",
            sol.last().stations[0].utilization
        );
    }

    #[test]
    fn paper_scale_network_respects_bottleneck_law() {
        // 12-station, 3-tier, 16-core network at VINS scale (N = 1500).
        let net = ClosedNetwork::new(
            vec![
                Station::queueing("load-cpu", 16, 1.0, 0.004),
                Station::queueing("load-disk", 1, 1.0, 0.0085),
                Station::queueing("load-tx", 1, 1.0, 0.0012),
                Station::queueing("load-rx", 1, 1.0, 0.0018),
                Station::queueing("app-cpu", 16, 1.0, 0.012),
                Station::queueing("app-disk", 1, 1.0, 0.0022),
                Station::queueing("app-tx", 1, 1.0, 0.0015),
                Station::queueing("app-rx", 1, 1.0, 0.0015),
                Station::queueing("db-cpu", 16, 1.0, 0.055),
                Station::queueing("db-disk", 1, 1.0, 0.0098),
                Station::queueing("db-tx", 1, 1.0, 0.0014),
                Station::queueing("db-rx", 1, 1.0, 0.0012),
            ],
            1.0,
        )
        .unwrap();
        let sol = multiserver_mva(&net, 1500).unwrap();
        let cap = net.max_throughput();
        for p in &sol.points {
            assert!(
                p.throughput <= cap + 1e-6,
                "n={}: {} > {cap}",
                p.n,
                p.throughput
            );
        }
        assert!(sol.last().throughput > 0.99 * cap);
    }

    #[test]
    fn recursion_engine_matches_full_solver_constant_demands() {
        // Drive PopulationRecursion with constant demands across the
        // quasi-static switch; it must agree with multiserver_mva
        // everywhere (exactly in the quasi-static regime, to the carried
        // recursion's precision before it).
        let net = ClosedNetwork::new(
            vec![
                Station::queueing("cpu", 16, 1.0, 0.16),
                Station::queueing("disk", 1, 1.0, 0.004),
            ],
            1.0,
        )
        .unwrap();
        let reference = multiserver_mva(&net, 250).unwrap();
        let mut rec = PopulationRecursion::new(vec![16, 1], 1.0);
        let demands = vec![0.16, 0.004];
        let mut switched_at = None;
        for n in 1..=250usize {
            let (x, r, _) = rec.step(n, &demands);
            if switched_at.is_none() && rec.is_quasi_static() {
                switched_at = Some(n);
            }
            let pr = reference.at(n).unwrap();
            let rel = (x - pr.throughput).abs() / pr.throughput;
            assert!(rel < 1e-6, "n={n}: {x} vs {} (rel {rel:e})", pr.throughput);
            assert!(
                close(r, pr.response, 1e-5 * pr.response.max(1e-9)),
                "R at n={n}"
            );
        }
        // The switch must have fired well before the knee (~116).
        let s = switched_at.expect("must switch for a saturating CPU");
        assert!(s < 116, "switched at {s}");
    }

    #[test]
    fn recursion_engine_stays_carried_for_low_utilization() {
        let mut rec = PopulationRecursion::new(vec![16, 1], 1.0);
        // CPU never exceeds 35 % of 16 cores; disk is the bottleneck but is
        // single-server (always stable).
        let demands = vec![0.055, 0.0098];
        for n in 1..=1500usize {
            rec.step(n, &demands);
        }
        assert!(!rec.is_quasi_static());
    }

    #[test]
    fn zero_population_yields_empty_solution() {
        let net = ClosedNetwork::new(vec![Station::queueing("s", 1, 1.0, 0.1)], 1.0).unwrap();
        let sol = multiserver_mva(&net, 0).unwrap();
        assert!(sol.points.is_empty());
        let (sol, trace) = multiserver_mva_with_marginals(&net, 0, 0).unwrap();
        assert!(sol.points.is_empty());
        assert!(trace.history.is_empty());
    }
}
