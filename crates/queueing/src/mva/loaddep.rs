//! Exact load-dependent analysis.
//!
//! The textbook-exact treatment of stations whose service *rate* depends on
//! the local queue length. A multi-server station is the special case
//! `rate(j) = min(j, C)`, which makes this solver the gold standard the
//! paper's Algorithm 2 is validated against in the tests and ablation
//! benches. The paper mentions exactly this capability existing in JMT ("a
//! load-dependent array of service demands has been proposed and
//! implemented in … JMT [17]").
//!
//! The evaluation goes through the normalization-constant (convolution)
//! route in log-domain (see [`super::convolution`] internals): the naive
//! population recursion for load-dependent stations is numerically unstable
//! near saturation — its `p(0) = 1 − Σ…` closure cancels catastrophically
//! and the recursion amplifies round-off exponentially — while the
//! convolution form is a ratio of positive sums and is stable at any
//! population.
//!
//! Note this models *rate* dependence on the **local** queue length; the
//! paper's MVASD models *demand* dependence on the **global** population,
//! which is a different (and weaker-studied) axis — see `mvasd-core`.

use crate::QueueingError;

use super::convolution::{solve, to_mva_solution, ConvStation};
use super::MvaSolution;

/// How a station's aggregate service rate scales with its queue length.
#[derive(Debug, Clone, PartialEq)]
pub enum RateFunction {
    /// Constant-rate single server: `rate(j) = 1`.
    SingleServer,
    /// `C` parallel servers: `rate(j) = min(j, C)`.
    MultiServer(usize),
    /// Infinite-server (delay): `rate(j) = j`.
    Delay,
    /// Arbitrary multipliers: `rate(j) = table[min(j, len) − 1]`, clamped to
    /// the last entry beyond the table.
    Custom(Vec<f64>),
}

impl RateFunction {
    /// The rate multiplier with `j ≥ 1` jobs present.
    pub fn rate(&self, j: usize) -> f64 {
        debug_assert!(j >= 1);
        match self {
            RateFunction::SingleServer => 1.0,
            RateFunction::MultiServer(c) => j.min(*c) as f64,
            RateFunction::Delay => j as f64,
            RateFunction::Custom(t) => t[(j - 1).min(t.len() - 1)],
        }
    }

    /// The saturation multiplier (`lim_{j→∞} rate(j)`), used for
    /// utilization reporting. `None` for delay stations (they never
    /// saturate).
    pub fn max_rate(&self) -> Option<f64> {
        match self {
            RateFunction::SingleServer => Some(1.0),
            RateFunction::MultiServer(c) => Some(*c as f64),
            RateFunction::Delay => None,
            RateFunction::Custom(t) => t.iter().cloned().reduce(f64::max),
        }
    }

    fn validate(&self) -> Result<(), QueueingError> {
        match self {
            RateFunction::MultiServer(0) => Err(QueueingError::InvalidParameter {
                what: "multi-server station needs >= 1 server",
            }),
            RateFunction::Custom(t) if t.is_empty() => Err(QueueingError::InvalidParameter {
                what: "custom rate table must be non-empty",
            }),
            RateFunction::Custom(t) if t.iter().any(|r| !(r.is_finite() && *r > 0.0)) => {
                Err(QueueingError::InvalidParameter {
                    what: "custom rates must be finite and > 0",
                })
            }
            _ => Ok(()),
        }
    }
}

/// A station of the load-dependent network.
#[derive(Debug, Clone, PartialEq)]
pub struct LdStation {
    /// Human-readable identifier.
    pub name: String,
    /// Service demand `D_k = V_k·S_k` at rate multiplier 1.
    pub demand: f64,
    /// Queue-length dependent rate multiplier.
    pub rate: RateFunction,
}

impl LdStation {
    /// Convenience constructor.
    pub fn new(name: &str, demand: f64, rate: RateFunction) -> Self {
        Self {
            name: name.to_string(),
            demand,
            rate,
        }
    }
}

/// Validates a load-dependent model and lowers it to the convolution
/// layer's station form. Shared by the batch solve and the streaming
/// solver entry point.
pub(crate) fn validated_conv_stations(
    stations: &[LdStation],
    think_time: f64,
) -> Result<Vec<ConvStation>, QueueingError> {
    if stations.is_empty() {
        return Err(QueueingError::EmptyNetwork);
    }
    if !(think_time.is_finite() && think_time >= 0.0) {
        return Err(QueueingError::InvalidParameter {
            what: "think time must be finite and >= 0",
        });
    }
    for s in stations {
        if !(s.demand.is_finite() && s.demand >= 0.0) {
            return Err(QueueingError::InvalidParameter {
                what: "demand must be finite and >= 0",
            });
        }
        s.rate.validate()?;
    }
    // lint: float-eq-ok validation rejects the exact all-zero-demand, zero-think-time input
    if stations.iter().all(|s| s.demand == 0.0) && think_time == 0.0 {
        return Err(QueueingError::InvalidParameter {
            what: "network needs positive demand or think time",
        });
    }
    Ok(stations
        .iter()
        .map(|s| ConvStation {
            name: s.name.clone(),
            demand: s.demand,
            rate: s.rate.clone(),
        })
        .collect())
}

/// Runs exact load-dependent analysis up to population `n_max`.
/// `n_max = 0` yields an empty solution (the model is still validated).
///
/// Complexity `O(N² · K)` log-sum-exp operations and `O(N · K)` memory.
pub fn load_dependent_mva(
    stations: &[LdStation],
    think_time: f64,
    n_max: usize,
) -> Result<MvaSolution, QueueingError> {
    let conv = validated_conv_stations(stations, think_time)?;
    let limits = vec![0usize; conv.len()];
    let sol = solve(&conv, think_time, n_max, &limits)?;
    Ok(to_mva_solution(&conv, think_time, &sol))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mva::exact_mva;
    use crate::network::{ClosedNetwork, Station};

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn single_server_matches_algorithm_1() {
        let ld = vec![
            LdStation::new("cpu", 0.006, RateFunction::SingleServer),
            LdStation::new("disk", 0.010, RateFunction::SingleServer),
        ];
        let net = ClosedNetwork::new(
            vec![
                Station::queueing("cpu", 1, 1.0, 0.006),
                Station::queueing("disk", 1, 1.0, 0.010),
            ],
            1.0,
        )
        .unwrap();
        let a = load_dependent_mva(&ld, 1.0, 150).unwrap();
        let b = exact_mva(&net, 150).unwrap();
        for (pa, pb) in a.points.iter().zip(b.points.iter()) {
            assert!(close(pa.throughput, pb.throughput, 1e-9), "n={}", pa.n);
            assert!(close(pa.response, pb.response, 1e-9));
            assert!(close(pa.stations[0].queue, pb.stations[0].queue, 1e-8));
        }
    }

    #[test]
    fn multiserver_matches_machine_repair_exactly() {
        // This solver must be EXACT for the machine-repair model (unlike
        // the paper's Algorithm 2, which approximates the marginals).
        let (c, s, z) = (4usize, 0.25f64, 1.0f64);
        let ld = vec![LdStation::new("st", s, RateFunction::MultiServer(c))];
        let sol = load_dependent_mva(&ld, z, 60).unwrap();
        for n in 1..=60usize {
            let (x_exact, q_exact) = mvasd_numerics::erlang::machine_repair(n, c, s, z).unwrap();
            let p = sol.at(n).unwrap();
            assert!(close(p.throughput, x_exact, 1e-9), "n={n}");
            assert!(close(p.stations[0].queue, q_exact, 1e-8), "n={n}");
        }
    }

    #[test]
    fn delay_rate_function_means_no_queueing() {
        let ld = vec![
            LdStation::new("cpu", 0.01, RateFunction::SingleServer),
            LdStation::new("lan", 0.005, RateFunction::Delay),
        ];
        let sol = load_dependent_mva(&ld, 0.5, 80).unwrap();
        for p in &sol.points {
            // Delay station residence stays at the raw demand.
            assert!(close(p.stations[1].residence, 0.005, 1e-9), "n={}", p.n);
        }
    }

    #[test]
    fn marginal_distributions_are_probabilities() {
        let ld = vec![LdStation::new("st", 0.2, RateFunction::MultiServer(3))];
        let sol = load_dependent_mva(&ld, 1.0, 30).unwrap();
        // Conservation: queue + thinking = n.
        for p in &sol.points {
            let thinking = p.throughput * 1.0;
            assert!(close(p.stations[0].queue + thinking, p.n as f64, 1e-8));
        }
    }

    #[test]
    fn custom_rate_interpolates_between_regimes() {
        // Rates 1, 1.8, 2.4 then flat: a "2.4-way" station with overhead.
        let ld = vec![LdStation::new(
            "st",
            0.1,
            RateFunction::Custom(vec![1.0, 1.8, 2.4]),
        )];
        let sol = load_dependent_mva(&ld, 0.2, 100).unwrap();
        // Ceiling: 2.4 / 0.1 = 24/s.
        assert!(sol.last().throughput <= 24.0 + 1e-9);
        assert!(sol.last().throughput > 23.0);
    }

    #[test]
    fn utilization_capped_at_one() {
        let ld = vec![LdStation::new("st", 0.5, RateFunction::MultiServer(8))];
        let sol = load_dependent_mva(&ld, 0.1, 300).unwrap();
        for p in &sol.points {
            assert!(p.stations[0].utilization <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(load_dependent_mva(&[], 1.0, 10).is_err());
        let ld = vec![LdStation::new("s", 0.1, RateFunction::SingleServer)];
        // Zero population: valid empty sweep, but invalid models still fail.
        assert!(load_dependent_mva(&ld, 1.0, 0).unwrap().points.is_empty());
        assert!(load_dependent_mva(&ld, -1.0, 0).is_err());
        assert!(load_dependent_mva(&ld, -1.0, 10).is_err());
        let bad = vec![LdStation::new("s", 0.1, RateFunction::MultiServer(0))];
        assert!(load_dependent_mva(&bad, 1.0, 10).is_err());
        let bad = vec![LdStation::new("s", 0.1, RateFunction::Custom(vec![]))];
        assert!(load_dependent_mva(&bad, 1.0, 10).is_err());
        let bad = vec![LdStation::new("s", 0.1, RateFunction::Custom(vec![0.0]))];
        assert!(load_dependent_mva(&bad, 1.0, 10).is_err());
        let bad = vec![LdStation::new("s", f64::NAN, RateFunction::SingleServer)];
        assert!(load_dependent_mva(&bad, 1.0, 10).is_err());
    }

    #[test]
    fn rate_function_accessors() {
        assert_eq!(RateFunction::SingleServer.rate(5), 1.0);
        assert_eq!(RateFunction::MultiServer(4).rate(2), 2.0);
        assert_eq!(RateFunction::MultiServer(4).rate(9), 4.0);
        assert_eq!(RateFunction::Delay.rate(7), 7.0);
        let c = RateFunction::Custom(vec![1.0, 1.5]);
        assert_eq!(c.rate(1), 1.0);
        assert_eq!(c.rate(2), 1.5);
        assert_eq!(c.rate(10), 1.5);
        assert_eq!(RateFunction::MultiServer(4).max_rate(), Some(4.0));
        assert_eq!(RateFunction::Delay.max_rate(), None);
    }
}
