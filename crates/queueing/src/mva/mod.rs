//! Mean Value Analysis solvers.
//!
//! All solvers walk the population up from 1 customer to `N` (the exact MVA
//! recursion of paper Algorithm 1/2) or fix-point at `N` (Schweitzer), and
//! return the full per-population series — the paper's figures plot
//! throughput and cycle time against concurrency, so the whole curve is the
//! natural output, not just the final point.

pub(crate) mod convolution;
mod exact;
mod loaddep;
mod multiclass;
mod multiserver;
mod schweitzer;
mod solver;
mod stepping;

pub use convolution::{kernel, reference_solve_at, ConvWorkspace, PointSolution};
pub use exact::{exact_mva, ExactMvaIter};
pub use loaddep::{load_dependent_mva, LdStation, RateFunction};
pub use multiclass::{
    backend_divergence, multiclass_mva, run_until_classes, ClassMetrics, ClassPoint,
    ClassRunOutcome, ClassSpec, ClassStopReason, MomIter, MomSolver, MulticlassIter,
    MulticlassMvaSolver, MulticlassPoint, MulticlassSolution, MulticlassStepper,
    MulticlassWorkspace, Workload,
};
pub use multiserver::{
    multiserver_mva, multiserver_mva_with_marginals, MarginalTrace, PopulationRecursion,
};
pub use schweitzer::{schweitzer_mva, SchweitzerIter, SchweitzerOptions};
pub use solver::{
    ClosedSolver, ConvolutionSolver, ExactMvaSolver, LoadDependentSolver, MultiserverMvaSolver,
    SchweitzerSolver,
};
pub use stepping::{
    run_until, MvaPoint, RunOutcome, SolverIter, SolverState, StopCondition, StopReason,
};

/// Per-station metrics at one population level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StationPoint {
    /// Mean number of customers at the station (queued + in service), `Q_k`.
    pub queue: f64,
    /// Residence time per system interaction, `V_k · R_k` (seconds).
    pub residence: f64,
    /// Per-server utilization `X·D_k/C_k` for queueing stations (fraction of
    /// one server's capacity, in `[0, 1]`); `X·D_k` (mean jobs in service)
    /// for delay stations.
    pub utilization: f64,
}

/// System-level and per-station metrics at one population level.
#[derive(Debug, Clone, PartialEq)]
pub struct PopulationPoint {
    /// Population (number of concurrent users) `n`.
    pub n: usize,
    /// System throughput `X_n` (interactions per second).
    pub throughput: f64,
    /// System response time `R_n` (seconds, excluding think time).
    pub response: f64,
    /// Cycle time `R_n + Z` (the paper reports this as "Response Time
    /// (Cycle Time)" in Tables 4–5).
    pub cycle_time: f64,
    /// Per-station metrics, in network declaration order.
    pub stations: Vec<StationPoint>,
}

/// The population series produced by a solver.
#[derive(Debug, Clone, PartialEq)]
pub struct MvaSolution {
    /// Station names, in network declaration order. Shared (`Arc`) because
    /// every drained solution, early-exit outcome, and sweep result carries
    /// the same names — cloning a solution or assembling one per scenario
    /// bumps a reference count instead of re-cloning every `String`.
    pub station_names: std::sync::Arc<[String]>,
    /// One point per population `1..=N`, ascending.
    pub points: Vec<PopulationPoint>,
}

impl MvaSolution {
    /// The point at population `n` (1-based); `None` if out of range.
    pub fn at(&self, n: usize) -> Option<&PopulationPoint> {
        if n == 0 {
            return None;
        }
        self.points.get(n - 1)
    }

    /// The highest-population point.
    ///
    /// # Panics
    /// On an empty solution (a `solve(0)` / fully-drained sweep yields no
    /// points); use `points.last()` when emptiness is expected.
    pub fn last(&self) -> &PopulationPoint {
        self.points
            .last()
            .expect("solution has no points (population 0 sweep?)")
    }

    /// Throughput series `X_1..X_N`.
    pub fn throughputs(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.throughput).collect()
    }

    /// Response-time series `R_1..R_N`.
    pub fn responses(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.response).collect()
    }

    /// Cycle-time series `(R+Z)_1..(R+Z)_N`.
    pub fn cycle_times(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.cycle_time).collect()
    }

    /// Per-population utilization series for station `k`.
    pub fn utilizations(&self, k: usize) -> Vec<f64> {
        self.points
            .iter()
            .map(|p| p.stations[k].utilization)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_solution() -> MvaSolution {
        MvaSolution {
            station_names: vec!["a".to_string()].into(),
            points: (1..=3)
                .map(|n| PopulationPoint {
                    n,
                    throughput: n as f64,
                    response: 0.1 * n as f64,
                    cycle_time: 0.1 * n as f64 + 1.0,
                    stations: vec![StationPoint {
                        queue: n as f64 * 0.5,
                        residence: 0.1,
                        utilization: 0.2 * n as f64,
                    }],
                })
                .collect(),
        }
    }

    #[test]
    fn accessors() {
        let s = dummy_solution();
        assert_eq!(s.at(0), None);
        assert_eq!(s.at(2).unwrap().n, 2);
        assert_eq!(s.at(4), None);
        assert_eq!(s.last().n, 3);
        assert_eq!(s.throughputs(), vec![1.0, 2.0, 3.0]);
        assert_eq!(s.responses().len(), 3);
        assert_eq!(s.cycle_times()[0], 1.1);
        assert_eq!(s.utilizations(0), vec![0.2, 0.4, 0.6000000000000001]);
    }
}
