//! The full-lattice multiclass recursion — the from-scratch oracle.
//!
//! [`multiclass_mva`] solves the whole population lattice in one call:
//! every population vector `n⃗ ≤ N⃗` in lexicographic index order, applying
//! the multiclass Arrival Theorem
//! `R_{c,k}(n⃗) = D_{c,k} · (1 + Q_k(n⃗ − e_c))` at each point. It rebuilds
//! its arrays per call, which is exactly why the carried
//! [`super::MulticlassWorkspace`] exists — but the one-shot form stays as
//! the oracle the workspace and the Method-of-Moments backend are checked
//! against (bit-for-bit and ≤1e-8 respectively), and as the baseline the
//! `multiclass` bench measures the carried workspace's speedup over.

use crate::network::StationKind;
use crate::QueueingError;

use super::{
    lattice_dims, lattice_size, lattice_strides, split_demands, validate_classes, ClassMetrics,
    ClassSpec, MulticlassSolution,
};

/// Runs exact multiclass MVA over the full population lattice.
///
/// `station_kinds` gives the discipline per station (shared by all classes).
/// Multi-server queueing stations are handled with the demand-normalization
/// heuristic (`D/C`, plus a delay of `D·(C−1)/C`) — the exact multiclass
/// multi-server recursion is out of scope, matching standard practice.
pub fn multiclass_mva(
    classes: &[ClassSpec],
    station_kinds: &[StationKind],
) -> Result<MulticlassSolution, QueueingError> {
    validate_classes(classes, station_kinds)?;
    let k_count = station_kinds.len();
    let nclasses = classes.len();

    // Seidmann-style split per (class, station): queueing part + delay part,
    // flat `c * K + k`.
    let (dq, dd) = split_demands(classes, station_kinds);

    // Mixed-radix lattice over populations 0..=N_c.
    let dims = lattice_dims(classes);
    let lattice = lattice_size(&dims, 1)?;
    let strides = lattice_strides(&dims);

    // Q[idx * K + k]: queue length at station k for population vector `idx`,
    // *queueing parts only* — the Seidmann delay parts are pure IS terms that
    // never feed the Arrival Theorem (that keeps the split model exactly
    // product-form, which is what makes the MoM backend's ≤1e-8 agreement an
    // honest cross-check). Processed in lexicographic index order, which
    // visits n⃗ − e_c (a strictly smaller index) before n⃗.
    let mut q = vec![0.0f64; lattice * k_count];
    let mut final_classes = Vec::with_capacity(nclasses);
    let mut final_x = vec![0.0f64; nclasses];
    let mut final_r = vec![0.0f64; nclasses];

    let mut pops = vec![0usize; nclasses];
    // Hoisted out of the lattice loop: one pre-sized pair of per-class
    // scratch buffers instead of two fresh `Vec`s per lattice index.
    let mut xs = vec![0.0f64; nclasses];
    let mut rs = vec![0.0f64; nclasses];
    for idx in 1..lattice {
        // Decode index -> population vector.
        {
            let mut rem = idx;
            for c in 0..nclasses {
                pops[c] = rem % dims[c];
                rem /= dims[c];
            }
        }
        xs.fill(0.0);
        rs.fill(0.0);
        for ci in 0..nclasses {
            if pops[ci] == 0 {
                continue;
            }
            let prev_idx = idx - strides[ci];
            let mut r_c = 0.0;
            for k in 0..k_count {
                let q_prev = q[prev_idx * k_count + k];
                r_c += dq[ci * k_count + k] * (1.0 + q_prev) + dd[ci * k_count + k];
            }
            rs[ci] = r_c;
            xs[ci] = pops[ci] as f64 / (r_c + classes[ci].think_time);
        }
        // Q_k(n⃗) = Σ_c X_c · (queueing-part residence of class c at k).
        for k in 0..k_count {
            let mut qk = 0.0;
            for ci in 0..nclasses {
                if pops[ci] == 0 {
                    continue;
                }
                let prev_idx = idx - strides[ci];
                let q_prev = q[prev_idx * k_count + k];
                qk += xs[ci] * (dq[ci * k_count + k] * (1.0 + q_prev));
            }
            q[idx * k_count + k] = qk;
        }
        if idx == lattice - 1 {
            final_x.copy_from_slice(&xs);
            final_r.copy_from_slice(&rs);
        }
    }

    // Handle the degenerate all-zero-population case.
    let full_idx = lattice - 1;
    for (ci, c) in classes.iter().enumerate() {
        final_classes.push(ClassMetrics {
            name: c.name.clone(),
            throughput: if c.population == 0 { 0.0 } else { final_x[ci] },
            response: if c.population == 0 { 0.0 } else { final_r[ci] },
        });
    }
    // Reported station queues add back the Seidmann delay-part customers
    // (`X_c · dd_{c,k}`) so they count everyone *at* the station.
    let station_queues: Vec<f64> = (0..k_count)
        .map(|k| {
            let mut delay = 0.0;
            for ci in 0..nclasses {
                delay += final_x[ci] * dd[ci * k_count + k];
            }
            q[full_idx * k_count + k] + delay
        })
        .collect();
    let station_utilizations: Vec<f64> = (0..k_count)
        .map(|k| {
            let total: f64 = classes
                .iter()
                .enumerate()
                .map(|(ci, c)| final_classes[ci].throughput * c.demands[k])
                .sum();
            match station_kinds[k].server_count() {
                Some(servers) => total / servers as f64,
                None => total,
            }
        })
        .collect();

    Ok(MulticlassSolution {
        classes: final_classes,
        station_queues,
        station_utilizations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mva::exact_mva;
    use crate::network::{ClosedNetwork, Station};

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn single_class_matches_exact_mva() {
        let demands = vec![0.006, 0.010];
        let classes = vec![ClassSpec {
            name: "only".into(),
            population: 40,
            think_time: 1.0,
            demands: demands.clone(),
        }];
        let kinds = vec![
            StationKind::Queueing { servers: 1 },
            StationKind::Queueing { servers: 1 },
        ];
        let mc = multiclass_mva(&classes, &kinds).unwrap();

        let net = ClosedNetwork::new(
            vec![
                Station::queueing("a", 1, 1.0, 0.006),
                Station::queueing("b", 1, 1.0, 0.010),
            ],
            1.0,
        )
        .unwrap();
        let sc = exact_mva(&net, 40).unwrap();
        assert!(close(mc.classes[0].throughput, sc.last().throughput, 1e-9));
        assert!(close(mc.classes[0].response, sc.last().response, 1e-9));
        assert!(close(
            mc.station_queues[1],
            sc.last().stations[1].queue,
            1e-8
        ));
    }

    #[test]
    fn two_identical_classes_equal_one_merged_class() {
        let kinds = vec![StationKind::Queueing { servers: 1 }];
        let half = |name: &str| ClassSpec {
            name: name.into(),
            population: 10,
            think_time: 1.0,
            demands: vec![0.02],
        };
        let split = multiclass_mva(&[half("a"), half("b")], &kinds).unwrap();
        let merged = multiclass_mva(
            &[ClassSpec {
                name: "ab".into(),
                population: 20,
                think_time: 1.0,
                demands: vec![0.02],
            }],
            &kinds,
        )
        .unwrap();
        let x_split = split.classes[0].throughput + split.classes[1].throughput;
        assert!(close(x_split, merged.classes[0].throughput, 1e-9));
        assert!(close(
            split.station_queues[0],
            merged.station_queues[0],
            1e-8
        ));
    }

    #[test]
    fn heavier_class_sees_longer_response() {
        let kinds = vec![StationKind::Queueing { servers: 1 }];
        let sol = multiclass_mva(
            &[
                ClassSpec {
                    name: "light".into(),
                    population: 5,
                    think_time: 1.0,
                    demands: vec![0.01],
                },
                ClassSpec {
                    name: "heavy".into(),
                    population: 5,
                    think_time: 1.0,
                    demands: vec![0.05],
                },
            ],
            &kinds,
        )
        .unwrap();
        assert!(sol.classes[1].response > sol.classes[0].response);
    }

    #[test]
    fn empty_class_population_is_ok() {
        let kinds = vec![StationKind::Queueing { servers: 1 }];
        let sol = multiclass_mva(
            &[
                ClassSpec {
                    name: "zero".into(),
                    population: 0,
                    think_time: 1.0,
                    demands: vec![0.02],
                },
                ClassSpec {
                    name: "busy".into(),
                    population: 8,
                    think_time: 1.0,
                    demands: vec![0.02],
                },
            ],
            &kinds,
        )
        .unwrap();
        assert_eq!(sol.classes[0].throughput, 0.0);
        assert!(sol.classes[1].throughput > 0.0);
    }

    #[test]
    fn delay_station_handled() {
        let kinds = vec![StationKind::Queueing { servers: 1 }, StationKind::Delay];
        let sol = multiclass_mva(
            &[ClassSpec {
                name: "c".into(),
                population: 15,
                think_time: 0.5,
                demands: vec![0.01, 0.003],
            }],
            &kinds,
        )
        .unwrap();
        assert!(sol.classes[0].response >= 0.013 - 1e-12);
    }

    #[test]
    fn rejects_bad_inputs() {
        let kinds = vec![StationKind::Queueing { servers: 1 }];
        assert!(multiclass_mva(&[], &kinds).is_err());
        assert!(multiclass_mva(
            &[ClassSpec {
                name: "c".into(),
                population: 1,
                think_time: 1.0,
                demands: vec![0.1, 0.2], // wrong arity
            }],
            &kinds
        )
        .is_err());
        assert!(multiclass_mva(
            &[ClassSpec {
                name: "c".into(),
                population: 1,
                think_time: -1.0,
                demands: vec![0.1],
            }],
            &kinds
        )
        .is_err());
        // Lattice blow-up guard.
        let huge = ClassSpec {
            name: "h".into(),
            population: 100_000,
            think_time: 1.0,
            demands: vec![0.1],
        };
        let sol = multiclass_mva(&[huge.clone(), huge.clone(), huge], &kinds);
        assert!(sol.is_err());
    }

    #[test]
    fn utilizations_are_reported_per_station() {
        let kinds = vec![
            StationKind::Queueing { servers: 2 },
            StationKind::Queueing { servers: 1 },
        ];
        let sol = multiclass_mva(
            &[ClassSpec {
                name: "c".into(),
                population: 30,
                think_time: 1.0,
                demands: vec![0.02, 0.01],
            }],
            &kinds,
        )
        .unwrap();
        assert_eq!(sol.station_utilizations.len(), 2);
        for u in &sol.station_utilizations {
            assert!(*u >= 0.0 && *u <= 1.0 + 1e-9);
        }
    }
}
