//! The carried multiclass recursion workspace.
//!
//! The scratch oracle recomputes the whole population lattice per call; a
//! streaming sweep that re-ran it at every path step would pay
//! `Σ_t Π_c (n_c(t)+1)` lattice points — quadratic blow-up along the path.
//! [`MulticlassWorkspace`] instead carries the queue-length lattice `Q`
//! across steps, exactly like the single-class `ConvWorkspace` carries its
//! factor columns: [`advance`](MulticlassWorkspace::advance) on class `c`
//! computes only the *new slab* of lattice points exposed by that customer
//! (`m_c` equal to the new population, every other coordinate within the
//! already-filled box), so a full walk to `N⃗` costs exactly one lattice
//! solve in total — the `multiclass` bench records the resulting speedup.
//!
//! Layout follows the house flat-buffer style: the lattice is one
//! stride-indexed `Vec<f64>` of `K` queue lengths per point, sized once at
//! construction for the target population box and **NaN-poisoned** beyond
//! the filled region, so any indexing bug surfaces as a NaN in the first
//! touched output instead of a silently-wrong number. Each point's
//! arithmetic is token-for-token the scratch oracle's, so the filled
//! lattice — and every derived output — is bit-identical to a fresh
//! [`super::multiclass_mva`] call at the same population vector (asserted
//! below and in `tests/properties.rs`).
//!
//! The steady state allocates nothing: every buffer (lattice, per-class
//! scratch, per-step outputs) is pre-sized in [`MulticlassWorkspace::new`],
//! and [`advance`](MulticlassWorkspace::advance) runs under the L4
//! `no-alloc` lint contract with a counting-allocator proof in
//! `tests/alloc_steady_state.rs`.

use crate::mva::convolution::kernel;
use crate::QueueingError;
use mvasd_obsv as obsv;

use super::{lattice_dims, lattice_size, lattice_strides, split_demands, StepOutputs, Workload};

/// Carried state of the streaming multiclass recursion: the queue-length
/// lattice over the already-admitted population box, plus pre-sized
/// scratch and output buffers.
#[derive(Debug, Clone)]
pub struct MulticlassWorkspace {
    k_count: usize,
    nclasses: usize,
    /// Lattice dimensions `N_c + 1` (targets fixed at construction).
    dims: Vec<usize>,
    strides: Vec<usize>,
    /// Per-class think times `Z_c`.
    think: Vec<f64>,
    /// Seidmann queueing parts, flat `c * K + k`.
    dq: Vec<f64>,
    /// Seidmann delay parts, flat `c * K + k`.
    dd: Vec<f64>,
    /// Raw demands, flat `c * K + k` (utilization numerators).
    demands: Vec<f64>,
    /// Per-station utilization divisor: server count, or 1 for delay.
    util_div: Vec<f64>,
    /// `Q[idx * K + k]`, queueing parts only (the Seidmann delay parts stay
    /// out of the Arrival Theorem, exactly as in the scratch oracle); NaN
    /// outside the filled box.
    q: Vec<f64>,
    /// Current per-class populations (the filled box is `m⃗ ≤ pops`).
    pops: Vec<usize>,
    total: usize,
    /// Slab walk counter (mixed-radix over the non-advancing classes).
    walk: Vec<usize>,
    /// Per-class throughputs at the current box corner.
    xs: Vec<f64>,
    /// Per-class responses at the current box corner.
    rs: Vec<f64>,
    /// Per-class per-station residences at the corner, flat `c * K + k`.
    res: Vec<f64>,
    /// Total queue per station at the corner.
    out_q: Vec<f64>,
    /// Per-class queue per station at the corner, flat `c * K + k`.
    out_cq: Vec<f64>,
    /// Total utilization per station at the corner.
    out_util: Vec<f64>,
}

impl MulticlassWorkspace {
    /// Sizes the workspace for the workload's full population box and
    /// fills the origin (empty network). The lattice is allocated once,
    /// here; it is the same `O(K · Π (N_c + 1))` memory the scratch oracle
    /// allocates per call.
    pub fn new(workload: &Workload) -> Result<Self, QueueingError> {
        let classes = workload.classes();
        let kinds = workload.station_kinds();
        let k_count = kinds.len();
        let nclasses = classes.len();
        let (dq, dd) = split_demands(classes, kinds);
        let dims = lattice_dims(classes);
        let lattice = lattice_size(&dims, 1)?;
        let strides = lattice_strides(&dims);
        let mut q = vec![f64::NAN; lattice * k_count];
        for cell in q.iter_mut().take(k_count) {
            *cell = 0.0;
        }
        let demands = classes
            .iter()
            .flat_map(|c| c.demands.iter().copied())
            .collect();
        let util_div = kinds
            .iter()
            .map(|kind| kind.server_count().unwrap_or(1) as f64)
            .collect();
        Ok(Self {
            k_count,
            nclasses,
            dims,
            strides,
            think: classes.iter().map(|c| c.think_time).collect(),
            dq,
            dd,
            demands,
            util_div,
            q,
            pops: vec![0; nclasses],
            total: 0,
            walk: vec![0; nclasses],
            xs: vec![0.0; nclasses],
            rs: vec![0.0; nclasses],
            res: vec![0.0; nclasses * k_count],
            out_q: vec![0.0; k_count],
            out_cq: vec![0.0; nclasses * k_count],
            out_util: vec![0.0; k_count],
        })
    }

    /// Current per-class populations.
    pub fn populations(&self) -> &[usize] {
        &self.pops
    }

    /// Total admitted population `Σ_c n_c`.
    pub fn total_population(&self) -> usize {
        self.total
    }

    /// Per-class throughputs `X_c` at the current population vector.
    pub fn class_throughputs(&self) -> &[f64] {
        &self.xs
    }

    /// Per-class responses `R_c` (excluding think) at the current vector.
    pub fn class_responses(&self) -> &[f64] {
        &self.rs
    }

    /// Total mean queue length per station at the current vector.
    pub fn station_queues(&self) -> &[f64] {
        &self.out_q
    }

    /// Per-class per-station mean queue lengths, flat `c * K + k`.
    pub fn class_station_queues(&self) -> &[f64] {
        &self.out_cq
    }

    /// Per-station total utilization at the current vector.
    pub fn station_utilizations(&self) -> &[f64] {
        &self.out_util
    }

    /// Borrowed per-step outputs for the point assemblers.
    pub(crate) fn step_outputs(&self) -> StepOutputs<'_> {
        StepOutputs {
            populations: &self.pops,
            xs: &self.xs,
            rs: &self.rs,
            res: &self.res,
            queues: &self.out_q,
            class_queues: &self.out_cq,
            utilizations: &self.out_util,
            think: &self.think,
        }
    }

    /// Admits one customer of `class`, filling the newly exposed lattice
    /// slab (`m_class` at the new population, all other coordinates within
    /// the current box) and refreshing the corner outputs. Cost is
    /// `O(K · C · Π_{c≠class} (n_c + 1))`; summed over a full walk this
    /// telescopes to exactly one full-lattice solve.
    // lint: no-alloc
    pub fn advance(&mut self, class: usize) -> Result<(), QueueingError> {
        if class >= self.nclasses {
            return Err(QueueingError::InvalidParameter {
                what: "class index out of range",
            });
        }
        if self.pops[class] + 1 >= self.dims[class] {
            return Err(QueueingError::InvalidParameter {
                what: "class population already at its target",
            });
        }
        self.pops[class] += 1;
        self.total += 1;
        let k_count = self.k_count;
        let nc = self.nclasses;

        // Walk the slab in lexicographic index order (class 0 fastest),
        // with the advancing class pinned at its new population. Within
        // the slab every `m⃗ − e_c` either sits earlier in this walk
        // (c ≠ class) or inside the previously filled box (c = class), so
        // each read hits a computed cell — never NaN poison.
        for w in self.walk.iter_mut() {
            *w = 0;
        }
        self.walk[class] = self.pops[class];
        loop {
            let mut idx = 0usize;
            for c in 0..nc {
                idx += self.walk[c] * self.strides[c];
            }
            // Point arithmetic: token-for-token the scratch oracle's, so
            // the filled lattice stays bit-identical to a fresh solve.
            for ci in 0..nc {
                self.xs[ci] = 0.0;
                self.rs[ci] = 0.0;
            }
            for ci in 0..nc {
                if self.walk[ci] == 0 {
                    continue;
                }
                let prev_idx = idx - self.strides[ci];
                // Arrival theorem over the neighbor point's queues; the
                // kernel helper keeps the oracle's op order bit-for-bit.
                let r_c = kernel::residence_fill(
                    &self.dq[ci * k_count..(ci + 1) * k_count],
                    &self.dd[ci * k_count..(ci + 1) * k_count],
                    &self.q[prev_idx * k_count..(prev_idx + 1) * k_count],
                    &mut self.res[ci * k_count..(ci + 1) * k_count],
                );
                self.rs[ci] = r_c;
                self.xs[ci] = self.walk[ci] as f64 / (r_c + self.think[ci]);
            }
            for k in 0..k_count {
                let mut qk = 0.0;
                for ci in 0..nc {
                    if self.walk[ci] == 0 {
                        continue;
                    }
                    let prev_idx = idx - self.strides[ci];
                    let q_prev = self.q[prev_idx * k_count + k];
                    qk += self.xs[ci] * (self.dq[ci * k_count + k] * (1.0 + q_prev));
                }
                self.q[idx * k_count + k] = qk;
            }
            // Mixed-radix increment over the non-pinned classes; the walk
            // ends at the box corner `m⃗ = pops`, so the scratch buffers
            // hold corner values when the loop exits.
            let mut done = true;
            for c in 0..nc {
                if c == class {
                    continue;
                }
                if self.walk[c] < self.pops[c] {
                    self.walk[c] += 1;
                    for lower in 0..c {
                        if lower != class {
                            self.walk[lower] = 0;
                        }
                    }
                    done = false;
                    break;
                }
            }
            if done {
                break;
            }
        }

        // Corner outputs: totals, per-class queues, utilizations.
        let mut corner = 0usize;
        for c in 0..nc {
            corner += self.pops[c] * self.strides[c];
        }
        for k in 0..k_count {
            // Reported queues add back the delay-part customers, mirroring
            // the scratch oracle token-for-token.
            let mut delay = 0.0;
            for ci in 0..nc {
                delay += self.xs[ci] * self.dd[ci * k_count + k];
            }
            self.out_q[k] = self.q[corner * k_count + k] + delay;
            let mut total = 0.0;
            for ci in 0..nc {
                self.out_cq[ci * k_count + k] = if self.pops[ci] == 0 {
                    0.0
                } else {
                    self.xs[ci] * self.res[ci * k_count + k]
                };
                total += self.xs[ci] * self.demands[ci * k_count + k];
            }
            self.out_util[k] = total / self.util_div[k];
        }
        if obsv::enabled() {
            obsv::counter("multiclass.slab_points", self.slab_points(class) as u64);
        }
        Ok(())
    }

    /// Lattice points the last `advance(class)` filled.
    fn slab_points(&self, class: usize) -> usize {
        let mut points = 1usize;
        for c in 0..self.nclasses {
            if c != class {
                points *= self.pops[c] + 1;
            }
        }
        points
    }
}

#[cfg(test)]
mod tests {
    use super::super::{multiclass_mva, ClassSpec, Workload};
    use super::*;
    use crate::network::StationKind;

    fn mix() -> Workload {
        Workload::new(
            vec!["cpu".into(), "disk".into(), "lan".into()],
            vec![
                StationKind::Queueing { servers: 4 },
                StationKind::Queueing { servers: 1 },
                StationKind::Delay,
            ],
            vec![
                ClassSpec {
                    name: "renew".into(),
                    population: 5,
                    think_time: 1.0,
                    demands: vec![0.020, 0.012, 0.004],
                },
                ClassSpec {
                    name: "browse".into(),
                    population: 4,
                    think_time: 2.0,
                    demands: vec![0.006, 0.002, 0.004],
                },
                ClassSpec {
                    name: "api".into(),
                    population: 3,
                    think_time: 0.1,
                    demands: vec![0.010, 0.001, 0.001],
                },
            ],
        )
        .expect("valid mix")
    }

    #[test]
    fn full_walk_matches_scratch_bitwise() {
        let w = mix();
        let mut ws = MulticlassWorkspace::new(&w).expect("workspace");
        for class in w.proportional_path() {
            ws.advance(class).expect("advance");
        }
        let oracle = multiclass_mva(w.classes(), w.station_kinds()).expect("oracle");
        for (ci, m) in oracle.classes.iter().enumerate() {
            assert_eq!(m.throughput.to_bits(), ws.class_throughputs()[ci].to_bits());
            assert_eq!(m.response.to_bits(), ws.class_responses()[ci].to_bits());
        }
        for (a, b) in oracle.station_queues.iter().zip(ws.station_queues()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in oracle
            .station_utilizations
            .iter()
            .zip(ws.station_utilizations())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn any_admission_order_reaches_the_same_corner() {
        let w = mix();
        let mut a = MulticlassWorkspace::new(&w).expect("workspace");
        for class in w.proportional_path() {
            a.advance(class).expect("advance");
        }
        // Class-by-class order instead of interleaved.
        let mut b = MulticlassWorkspace::new(&w).expect("workspace");
        for (c, spec) in w.classes().iter().enumerate() {
            for _ in 0..spec.population {
                b.advance(c).expect("advance");
            }
        }
        for (x, y) in a.class_throughputs().iter().zip(b.class_throughputs()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        for (x, y) in a.station_queues().iter().zip(b.station_queues()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn outputs_stay_finite_and_poison_never_leaks() {
        let w = mix();
        let mut ws = MulticlassWorkspace::new(&w).expect("workspace");
        for class in w.proportional_path() {
            ws.advance(class).expect("advance");
            for x in ws.class_throughputs() {
                assert!(x.is_finite());
            }
            for q in ws.station_queues() {
                assert!(q.is_finite());
            }
            for u in ws.station_utilizations() {
                assert!(u.is_finite());
            }
        }
    }

    #[test]
    fn rejects_overfull_and_unknown_classes() {
        let w = mix();
        let mut ws = MulticlassWorkspace::new(&w).expect("workspace");
        assert!(ws.advance(99).is_err());
        for _ in 0..5 {
            ws.advance(0).expect("within target");
        }
        assert!(ws.advance(0).is_err());
    }
}
