//! The Method-of-Moments multiclass backend.
//!
//! Casale's *Multi-Branched Method of Moments* (see PAPERS.md) solves
//! closed multiclass product-form networks through recurrences on
//! normalizing constants and their first queue moments instead of the
//! Arrival-Theorem lattice recursion. This module implements that
//! moment-identity family directly, in the log domain:
//!
//! * **Normalizing constants.** With the Seidmann split folding every
//!   delay part into a per-class extended think `z_c = Z_c + Σ_k dd_{c,k}`,
//!   the model is an IS station plus PS queueing stations, and the
//!   station-by-station convolution
//!   `G_r(n⃗) = G_{r−1}(n⃗) + Σ_c dq_{c,r} · G_r(n⃗ − e_c)` runs **in place**
//!   over one lattice array in lexicographic order (the shifted cells are
//!   already upgraded to `G_r` when a point is reached), seeded by the IS
//!   factor `G_0(n⃗) = Π_c z_c^{n_c} / n_c!`.
//! * **First moments.** Mean queue lengths come from the moment recurrence
//!   `h_{c,k}(n⃗) = dq_{c,k} · (G(n⃗ − e_c) + H_k(n⃗ − e_c))` with
//!   `H_k = Σ_c h_{c,k}`, derived from the PS factor identity
//!   `m_c · P_k(m⃗) = |m⃗| · dq_{c,k} · P_k(m⃗ − e_c)`; then
//!   `Q_{c,k}(n⃗) = h_{c,k}(n⃗) / G(n⃗)` plus the Seidmann delay part
//!   `X_c · dd_{c,k}`.
//! * **Outputs.** `X_c = G(N⃗ − e_c) / G(N⃗)` and `R_c = N_c/X_c − Z_c`
//!   (exact per-class Little), so the backend shares *no arithmetic* with
//!   the Arrival-Theorem faces — agreement to ≤1e-8 (root
//!   cross-validation suite) is a genuine independent check, not a
//!   tautology.
//!
//! Scope note: this is the moment-recurrence core underlying MoM, not
//! Casale's full matrix-basis reduction (which batch-solves many
//! population shifts through structured linear systems; our hermetic
//! `numerics` seeds carry only banded solvers, so that reduction stays on
//! the roadmap). Complexity is the same `O(C · K · Π (N_c + 1))` as the
//! lattice oracle, but the precompute is a one-shot: after it, streaming a
//! path point costs `O(C · K)` reads — and the carried state is plain
//! normalizing constants, `K×` smaller than the oracle's queue lattice.
//!
//! Everything runs in the log domain through the compensated `lse2` from
//! the batched convolution kernel; raw `exp`/`ln` appear only at the model
//! boundary (demand/think intake, output extraction) on annotated lines.

use std::sync::Arc;

use crate::mva::convolution::kernel::lse2;
use crate::QueueingError;
use mvasd_obsv as obsv;

use super::{
    aggregate_mva_point, assemble_class_point, empty_solution, lattice_dims, lattice_size,
    lattice_strides, solution_from_point, split_demands, ClosedSolver, MulticlassPoint,
    MulticlassSolution, MulticlassStepper, StepOutputs, Workload,
};
use crate::mva::stepping::{MvaPoint, SolverIter};

/// Streaming face of the Method-of-Moments backend: the normalizing
/// constants and queue moments are precomputed over the population lattice
/// once at [`MomIter::new`]; each step then walks the proportional path
/// reading off `G`-ratios — `O(C · K)` per point.
#[derive(Debug, Clone)]
pub struct MomIter {
    workload: Workload,
    path: Arc<[usize]>,
    step_idx: usize,
    k_count: usize,
    nclasses: usize,
    strides: Vec<usize>,
    think: Vec<f64>,
    dd: Vec<f64>,
    demands: Vec<f64>,
    util_div: Vec<f64>,
    /// `ln G(n⃗)` over the full lattice (all stations convolved).
    ln_g: Vec<f64>,
    /// `ln h_{c,k}(n⃗)`, flat `idx * C*K + c*K + k`.
    ln_h: Vec<f64>,
    /// Current per-class populations along the path.
    pops: Vec<usize>,
    // Pre-sized per-step output buffers (StepOutputs shape).
    xs: Vec<f64>,
    rs: Vec<f64>,
    res: Vec<f64>,
    out_q: Vec<f64>,
    out_cq: Vec<f64>,
    out_util: Vec<f64>,
}

impl MomIter {
    /// Precomputes the normalizing-constant and moment lattices for the
    /// workload, then stands at the empty population.
    pub fn new(workload: &Workload) -> Result<Self, QueueingError> {
        let _span = obsv::span("mom.precompute");
        let classes = workload.classes();
        let kinds = workload.station_kinds();
        let k_count = kinds.len();
        let nclasses = classes.len();
        let ck = nclasses * k_count;
        let (dq, dd) = split_demands(classes, kinds);

        let dims = lattice_dims(classes);
        // Floats carried per lattice point: G, the C·K moment cells, and
        // the K running H_k sums.
        let lattice = lattice_size(&dims, 1 + ck + k_count)?;
        let strides = lattice_strides(&dims);

        // Extended per-class think: Z_c plus every Seidmann delay part.
        let zd: Vec<f64> = classes
            .iter()
            .enumerate()
            .map(|(c, spec)| {
                let delay: f64 = dd[c * k_count..(c + 1) * k_count].iter().sum();
                spec.think_time + delay
            })
            .collect();

        // ln(dq) and per-class IS factor tables
        // `ln(z_c^j / j!) = j·ln z_c − ln j!`.
        let ln_dq: Vec<f64> = dq
            .iter()
            // lint: log-domain-ok boundary: demand intake into the log domain
            .map(|d| if *d > 0.0 { d.ln() } else { f64::NEG_INFINITY })
            .collect();
        let max_dim = dims.iter().copied().max().unwrap_or(1);
        let mut ln_fact = vec![0.0f64; max_dim];
        for j in 2..max_dim {
            // lint: log-domain-ok boundary: factorial table for the IS factor
            ln_fact[j] = ln_fact[j - 1] + (j as f64).ln();
        }
        let ln_zd_pow: Vec<Vec<f64>> = zd
            .iter()
            .zip(&dims)
            .map(|(z, &dim)| {
                (0..dim)
                    .map(|j| {
                        if j == 0 {
                            0.0
                        } else if *z > 0.0 {
                            // lint: log-domain-ok boundary: think intake into the log domain
                            j as f64 * z.ln() - ln_fact[j]
                        } else {
                            f64::NEG_INFINITY
                        }
                    })
                    .collect()
            })
            .collect();

        // Seed with the IS factor, walking the lattice with an incremental
        // mixed-radix population counter.
        let mut ln_g = vec![0.0f64; lattice];
        let mut pops = vec![0usize; nclasses];
        for cell in ln_g.iter_mut() {
            let mut acc = 0.0;
            for c in 0..nclasses {
                acc += ln_zd_pow[c][pops[c]];
            }
            *cell = acc;
            bump_counter(&mut pops, &dims);
        }

        // Convolve each queueing station in: in-place ascending pass per
        // station (shifted cells are already G_r when a point is reached).
        let mut iterations = 0u64;
        for k in 0..k_count {
            if (0..nclasses).all(|c| dq[c * k_count + k] <= 0.0) {
                continue;
            }
            pops.fill(0);
            for idx in 0..lattice {
                let mut acc = ln_g[idx];
                for c in 0..nclasses {
                    if pops[c] > 0 && dq[c * k_count + k] > 0.0 {
                        acc = lse2(acc, ln_dq[c * k_count + k] + ln_g[idx - strides[c]]);
                        iterations += 1;
                    }
                }
                ln_g[idx] = acc;
                bump_counter(&mut pops, &dims);
            }
        }

        // Moment pass over the completed G: one ascending sweep fills
        // h_{c,k} and the per-station totals H_k together.
        let mut ln_h = vec![f64::NEG_INFINITY; lattice * ck];
        let mut ln_bigh = vec![f64::NEG_INFINITY; lattice * k_count];
        pops.fill(0);
        for idx in 0..lattice {
            for k in 0..k_count {
                let mut total = f64::NEG_INFINITY;
                for c in 0..nclasses {
                    if pops[c] > 0 && dq[c * k_count + k] > 0.0 {
                        let prev = idx - strides[c];
                        let cell =
                            ln_dq[c * k_count + k] + lse2(ln_g[prev], ln_bigh[prev * k_count + k]);
                        ln_h[idx * ck + c * k_count + k] = cell;
                        total = lse2(total, cell);
                        iterations += 1;
                    }
                }
                ln_bigh[idx * k_count + k] = total;
            }
            bump_counter(&mut pops, &dims);
        }
        obsv::counter("mom.iterations", iterations);
        if obsv::enabled() {
            // Recurrence conditioning: dynamic range (and NaN trips) of the
            // completed `ln G` lattice, plus the spread between the
            // first-moment and normalization lattices at the full
            // population — the quantities the moment recurrence divides.
            let mut probe = obsv::HealthProbe::new("mom.lng");
            for &v in &ln_g {
                probe.watch(v);
            }
            probe.flush();
            let top = lattice - 1;
            let g_top = ln_g[top];
            let mut spread = 0.0f64;
            for k in 0..k_count {
                let h = ln_bigh[top * k_count + k];
                if h.is_finite() && g_top.is_finite() {
                    spread = spread.max((h - g_top).abs());
                }
            }
            obsv::gauge("health.mom.moment_spread", spread);
        }

        let demands = classes
            .iter()
            .flat_map(|c| c.demands.iter().copied())
            .collect();
        let util_div = kinds
            .iter()
            .map(|kind| kind.server_count().unwrap_or(1) as f64)
            .collect();
        let path: Arc<[usize]> = workload.proportional_path().into();
        Ok(Self {
            workload: workload.clone(),
            path,
            step_idx: 0,
            k_count,
            nclasses,
            strides,
            think: classes.iter().map(|c| c.think_time).collect(),
            dd,
            demands,
            util_div,
            ln_g,
            ln_h,
            pops: vec![0; nclasses],
            xs: vec![0.0; nclasses],
            rs: vec![0.0; nclasses],
            res: vec![0.0; ck],
            out_q: vec![0.0; k_count],
            out_cq: vec![0.0; ck],
            out_util: vec![0.0; k_count],
        })
    }

    /// The population path being walked.
    pub fn path(&self) -> &[usize] {
        &self.path
    }

    /// Current per-class populations.
    pub fn populations(&self) -> &[usize] {
        &self.pops
    }

    fn advance_one(&mut self) -> Result<(), QueueingError> {
        let _span = obsv::span("multiclass.step");
        let class = *self
            .path
            .get(self.step_idx)
            .ok_or(QueueingError::InvalidParameter {
                what: "population path exhausted: all class targets reached",
            })?;
        self.pops[class] += 1;
        self.step_idx += 1;
        self.refresh_outputs();
        obsv::counter("solver.steps", 1);
        obsv::counter("multiclass.steps", 1);
        Ok(())
    }

    /// Reads the current population vector's metrics off the precomputed
    /// lattices into the step-output buffers.
    fn refresh_outputs(&mut self) {
        let k_count = self.k_count;
        let ck = self.nclasses * k_count;
        let mut idx = 0usize;
        for c in 0..self.nclasses {
            idx += self.pops[c] * self.strides[c];
        }
        let ln_g_here = self.ln_g[idx];
        for c in 0..self.nclasses {
            if self.pops[c] == 0 {
                self.xs[c] = 0.0;
                self.rs[c] = 0.0;
                continue;
            }
            let prev = idx - self.strides[c];
            // lint: log-domain-ok boundary: throughput extraction X_c = G(N−e_c)/G(N)
            self.xs[c] = (self.ln_g[prev] - ln_g_here).exp();
            self.rs[c] = self.pops[c] as f64 / self.xs[c] - self.think[c];
        }
        for k in 0..k_count {
            let mut qk = 0.0;
            let mut util = 0.0;
            for c in 0..self.nclasses {
                let cell = self.ln_h[idx * ck + c * k_count + k];
                // lint: log-domain-ok boundary: queue extraction Q = h/G
                let ps_queue = (cell - ln_g_here).exp();
                let queue = ps_queue + self.xs[c] * self.dd[c * k_count + k];
                self.out_cq[c * k_count + k] = queue;
                self.res[c * k_count + k] = if self.pops[c] > 0 {
                    queue / self.xs[c]
                } else {
                    0.0
                };
                qk += queue;
                util += self.xs[c] * self.demands[c * k_count + k];
            }
            self.out_q[k] = qk;
            self.out_util[k] = util / self.util_div[k];
        }
    }

    fn outputs(&self) -> StepOutputs<'_> {
        StepOutputs {
            populations: &self.pops,
            xs: &self.xs,
            rs: &self.rs,
            res: &self.res,
            queues: &self.out_q,
            class_queues: &self.out_cq,
            utilizations: &self.out_util,
            think: &self.think,
        }
    }
}

/// Mixed-radix increment of a population counter (class 0 fastest) —
/// pairs each lattice index with its population vector during the sweeps.
fn bump_counter(pops: &mut [usize], dims: &[usize]) {
    for (p, d) in pops.iter_mut().zip(dims) {
        *p += 1;
        if *p < *d {
            return;
        }
        *p = 0;
    }
}

impl MulticlassStepper for MomIter {
    fn step_classes(&mut self) -> Result<MulticlassPoint, QueueingError> {
        self.advance_one()?;
        Ok(assemble_class_point(&self.outputs(), self.step_idx))
    }

    fn steps_done(&self) -> usize {
        self.step_idx
    }

    fn steps_total(&self) -> usize {
        self.path.len()
    }
}

impl SolverIter for MomIter {
    fn station_names(&self) -> &[String] {
        self.workload.station_names()
    }

    fn shared_names(&self) -> Arc<[String]> {
        self.workload.shared_names()
    }

    fn population(&self) -> usize {
        self.step_idx
    }

    fn step(&mut self) -> Result<MvaPoint, QueueingError> {
        self.advance_one()?;
        Ok(aggregate_mva_point(&self.outputs(), self.step_idx))
    }

    fn boxed_clone(&self) -> Box<dyn SolverIter> {
        Box::new(self.clone())
    }
}

/// The Method-of-Moments backend behind the unified [`ClosedSolver`]
/// interface (`"multiclass-mom"`). Exact for the same model class as
/// [`super::multiclass_mva`]; independent arithmetic (normalizing-constant
/// recurrences, not the Arrival Theorem).
#[derive(Debug, Clone)]
pub struct MomSolver {
    workload: Workload,
}

impl MomSolver {
    /// Binds the solver to a workload.
    pub fn new(workload: Workload) -> Self {
        Self { workload }
    }

    /// Starts the class-aware streaming face.
    pub fn start_classes(&self) -> Result<MomIter, QueueingError> {
        MomIter::new(&self.workload)
    }

    /// Solves at the full population vector, returning the batch
    /// [`MulticlassSolution`] shape (the [`super::multiclass_mva`]
    /// contract).
    pub fn solve_classes(&self) -> Result<MulticlassSolution, QueueingError> {
        let mut iter = self.start_classes()?;
        let mut last: Option<MulticlassPoint> = None;
        while iter.steps_done() < iter.steps_total() {
            last = Some(iter.step_classes()?);
        }
        Ok(match last {
            Some(p) => solution_from_point(&self.workload, &p),
            None => empty_solution(&self.workload),
        })
    }
}

impl ClosedSolver for MomSolver {
    fn name(&self) -> &str {
        "multiclass-mom"
    }

    fn start(&self) -> Result<Box<dyn SolverIter>, QueueingError> {
        Ok(Box::new(MomIter::new(&self.workload)?))
    }
}

#[cfg(test)]
mod tests {
    use super::super::{multiclass_mva, ClassSpec};
    use super::*;
    use crate::network::StationKind;

    fn assert_close(a: f64, b: f64, tol: f64, what: &str) {
        assert!((a - b).abs() <= tol, "{what}: {a} vs {b}");
    }

    fn check_against_oracle(w: &Workload, tol: f64) {
        let mom = MomSolver::new(w.clone()).solve_classes().expect("mom");
        let oracle = multiclass_mva(w.classes(), w.station_kinds()).expect("oracle");
        for (m, o) in mom.classes.iter().zip(&oracle.classes) {
            assert_close(m.throughput, o.throughput, tol, "throughput");
            assert_close(m.response, o.response, tol, "response");
        }
        for (m, o) in mom.station_queues.iter().zip(&oracle.station_queues) {
            assert_close(*m, *o, tol, "queue");
        }
        for (m, o) in mom
            .station_utilizations
            .iter()
            .zip(&oracle.station_utilizations)
        {
            assert_close(*m, *o, tol, "utilization");
        }
    }

    #[test]
    fn matches_oracle_on_a_three_class_mix() {
        let w = Workload::new(
            vec!["cpu".into(), "disk".into(), "lan".into()],
            vec![
                StationKind::Queueing { servers: 4 },
                StationKind::Queueing { servers: 1 },
                StationKind::Delay,
            ],
            vec![
                ClassSpec {
                    name: "a".into(),
                    population: 6,
                    think_time: 1.0,
                    demands: vec![0.020, 0.012, 0.004],
                },
                ClassSpec {
                    name: "b".into(),
                    population: 4,
                    think_time: 2.0,
                    demands: vec![0.006, 0.002, 0.004],
                },
                ClassSpec {
                    name: "c".into(),
                    population: 5,
                    think_time: 0.1,
                    demands: vec![0.010, 0.001, 0.001],
                },
            ],
        )
        .expect("workload");
        check_against_oracle(&w, 1e-10);
    }

    #[test]
    fn matches_oracle_with_zero_think_time() {
        let w = Workload::new(
            vec!["q1".into(), "q2".into()],
            vec![
                StationKind::Queueing { servers: 1 },
                StationKind::Queueing { servers: 1 },
            ],
            vec![
                ClassSpec {
                    name: "a".into(),
                    population: 7,
                    think_time: 0.0,
                    demands: vec![0.03, 0.01],
                },
                ClassSpec {
                    name: "b".into(),
                    population: 3,
                    think_time: 0.0,
                    demands: vec![0.005, 0.04],
                },
            ],
        )
        .expect("workload");
        check_against_oracle(&w, 1e-10);
    }

    #[test]
    fn matches_single_class_machine_repair() {
        // Single PS queue + think = machine repair; MoM against the
        // closed-form Erlang solution.
        let w = Workload::new(
            vec!["st".into()],
            vec![StationKind::Queueing { servers: 1 }],
            vec![ClassSpec {
                name: "only".into(),
                population: 15,
                think_time: 1.0,
                demands: vec![0.25],
            }],
        )
        .expect("workload");
        let mom = MomSolver::new(w).solve_classes().expect("mom");
        let (x_exact, q_exact) =
            mvasd_numerics::erlang::machine_repair(15, 1, 0.25, 1.0).expect("closed form");
        assert_close(mom.classes[0].throughput, x_exact, 1e-10, "throughput");
        assert_close(mom.station_queues[0], q_exact, 1e-9, "queue");
    }

    #[test]
    fn streaming_prefixes_match_partial_oracle_solves() {
        let w = Workload::new(
            vec!["cpu".into(), "disk".into()],
            vec![
                StationKind::Queueing { servers: 2 },
                StationKind::Queueing { servers: 1 },
            ],
            vec![
                ClassSpec {
                    name: "a".into(),
                    population: 4,
                    think_time: 0.5,
                    demands: vec![0.02, 0.01],
                },
                ClassSpec {
                    name: "b".into(),
                    population: 4,
                    think_time: 1.0,
                    demands: vec![0.004, 0.03],
                },
            ],
        )
        .expect("workload");
        let mut iter = MomIter::new(&w).expect("iter");
        let mut pops = vec![0usize; 2];
        for t in 0..w.total_population() {
            let class = iter.path()[t];
            pops[class] += 1;
            let point = iter.step_classes().expect("step");
            let partial: Vec<ClassSpec> = w
                .classes()
                .iter()
                .zip(&pops)
                .map(|(c, &p)| ClassSpec {
                    population: p,
                    ..c.clone()
                })
                .collect();
            let oracle = multiclass_mva(&partial, w.station_kinds()).expect("oracle");
            for (cp, om) in point.classes.iter().zip(&oracle.classes) {
                assert_close(cp.throughput, om.throughput, 1e-10, "prefix throughput");
                assert_close(cp.response, om.response, 1e-9, "prefix response");
            }
            for (a, b) in point.station_queues.iter().zip(&oracle.station_queues) {
                assert_close(*a, *b, 1e-9, "prefix queue");
            }
        }
    }

    #[test]
    fn deep_population_stays_finite_in_log_domain() {
        // 300 customers through a near-saturated queue: the naive linear
        // normalizing constant underflows; the log domain must not.
        let w = Workload::new(
            vec!["cpu".into()],
            vec![StationKind::Queueing { servers: 1 }],
            vec![ClassSpec {
                name: "deep".into(),
                population: 300,
                think_time: 1.0,
                demands: vec![0.08],
            }],
        )
        .expect("workload");
        let mom = MomSolver::new(w).solve_classes().expect("mom");
        assert!(mom.classes[0].throughput.is_finite());
        // Saturation: X → 1/D = 12.5.
        assert!(mom.classes[0].throughput > 12.0);
    }

    #[test]
    fn refuses_oversized_moment_lattices() {
        let huge = ClassSpec {
            name: "h".into(),
            population: 4000,
            think_time: 1.0,
            demands: vec![0.01],
        };
        let w = Workload::new(
            vec!["q".into()],
            vec![StationKind::Queueing { servers: 1 }],
            vec![huge.clone(), huge.clone(), huge],
        )
        .expect("workload");
        assert!(MomIter::new(&w).is_err());
    }
}
