//! Multiclass MVA: class-aware workloads, streaming lattice recursion, and
//! a Method-of-Moments backend (extension beyond the paper).
//!
//! The paper restricts itself to "single class models wherein the customers
//! are assumed to be indistinguishable from one another" (Section 5.1). Real
//! load tests mix workflows — e.g. VINS' Registration vs Renew-Policy users
//! — so the suite ships exact multiclass analysis as an extension built
//! around three faces:
//!
//! * [`multiclass_mva`] (in [`scratch`]) — the original one-shot full
//!   lattice recursion, kept verbatim as the oracle every other face is
//!   checked against.
//! * [`MulticlassWorkspace`] / [`MulticlassIter`] — the carried-state
//!   streaming face: the population grows one customer at a time along a
//!   [`Workload::proportional_path`] through the class lattice, and each
//!   [`MulticlassWorkspace::advance`] fills only the *new slab* of lattice
//!   points exposed by that step. A full walk costs exactly one lattice
//!   solve in total, where re-running the scratch oracle per step costs a
//!   quadratic blow-up (see `benches/multiclass.rs`).
//! * [`MomSolver`] / [`MomIter`] — an independent exact backend computing
//!   normalizing constants and first queue moments by recurrence (the
//!   moment-identity family underlying Casale's Method of Moments), in the
//!   log domain. It shares no arithmetic with the Arrival-Theorem faces,
//!   which makes it a genuine cross-check (≤1e-8 in the root
//!   cross-validation suite).
//!
//! All faces apply the multiclass Arrival Theorem
//! `R_{c,k}(n⃗) = D_{c,k} · (1 + Q_k(n⃗ − e_c))` (or its product-form
//! equivalent) and handle multi-server stations with the Seidmann split
//! (`D/C` queueing part plus a `D·(C−1)/C` delay part).
//!
//! Complexity is `O(K · Π_c (N_c + 1))`; every face refuses lattices above
//! a safety cap rather than exhausting memory.
//!
//! The single-class embedding is exact by construction: a one-class
//! [`Workload`] steps through [`MulticlassIter`] with arithmetic that is
//! bit-for-bit the single-class [`super::ExactMvaIter`] recursion on
//! single-server networks (enforced by a propcheck in `tests/properties.rs`).

mod mom;
mod scratch;
mod workspace;

pub use mom::{MomIter, MomSolver};
pub use scratch::multiclass_mva;
pub use workspace::MulticlassWorkspace;

use std::sync::Arc;

use crate::network::{ClosedNetwork, StationKind};
use crate::QueueingError;
use mvasd_obsv as obsv;

use super::stepping::{MvaPoint, SolverIter, StopCondition, StopReason};
use super::{ClosedSolver, StationPoint};

/// One customer class: its population, think time, and per-station demands.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassSpec {
    /// Class label, e.g. `"renew-policy"`.
    pub name: String,
    /// Number of customers of this class, `N_c`.
    pub population: usize,
    /// Class think time `Z_c`.
    pub think_time: f64,
    /// Service demand of this class at each station, `D_{c,k}` (same station
    /// order across classes).
    pub demands: Vec<f64>,
}

/// Per-class results at the full population.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassMetrics {
    /// Class label.
    pub name: String,
    /// Class throughput `X_c`.
    pub throughput: f64,
    /// Class response time `R_c` (excluding think time).
    pub response: f64,
}

/// Solution of the multiclass model at the full population vector.
#[derive(Debug, Clone, PartialEq)]
pub struct MulticlassSolution {
    /// Per-class throughput/response.
    pub classes: Vec<ClassMetrics>,
    /// Mean total queue length per station (all classes).
    pub station_queues: Vec<f64>,
    /// Per-station total utilization `Σ_c X_c · D_{c,k}` (divided by server
    /// count for multi-server stations).
    pub station_utilizations: Vec<f64>,
}

/// Maximum relative divergence between two multiclass solutions of the
/// same model — the lattice-vs-MoM cross-check distilled to one number:
/// the worst relative difference over per-class throughputs, per-class
/// responses, and per-station total queues. Emits the
/// `health.multiclass.lattice_mom_divergence` gauge when a recorder is
/// installed, so `mvasd-doctor` can hold the two exact backends to an
/// agreement floor. Mismatched shapes diverge infinitely.
pub fn backend_divergence(a: &MulticlassSolution, b: &MulticlassSolution) -> f64 {
    let mut worst = 0.0f64;
    let mut rel = |x: f64, y: f64| {
        let denom = x.abs().max(y.abs()).max(1e-300);
        worst = worst.max((x - y).abs() / denom);
    };
    if a.classes.len() != b.classes.len() || a.station_queues.len() != b.station_queues.len() {
        return f64::INFINITY;
    }
    for (ca, cb) in a.classes.iter().zip(&b.classes) {
        rel(ca.throughput, cb.throughput);
        rel(ca.response, cb.response);
    }
    for (&qa, &qb) in a.station_queues.iter().zip(&b.station_queues) {
        rel(qa, qb);
    }
    if obsv::enabled() {
        obsv::gauge("health.multiclass.lattice_mom_divergence", worst);
    }
    worst
}

/// Maximum number of lattice points the solvers will allocate (`K` floats
/// each for the MVA faces). 16 M points ≈ 128 MB·K/8 — generous but bounded.
pub(crate) const MAX_LATTICE: usize = 16_000_000;

/// Validates a class/station description shared by every multiclass face.
pub(crate) fn validate_classes(
    classes: &[ClassSpec],
    station_kinds: &[StationKind],
) -> Result<(), QueueingError> {
    if classes.is_empty() {
        return Err(QueueingError::InvalidParameter {
            what: "need at least one class",
        });
    }
    let k_count = station_kinds.len();
    if k_count == 0 {
        return Err(QueueingError::EmptyNetwork);
    }
    for c in classes {
        if c.demands.len() != k_count {
            return Err(QueueingError::InvalidParameter {
                what: "every class must give one demand per station",
            });
        }
        if c.demands.iter().any(|d| !(d.is_finite() && *d >= 0.0)) {
            return Err(QueueingError::InvalidParameter {
                what: "demands must be finite and >= 0",
            });
        }
        if !(c.think_time.is_finite() && c.think_time >= 0.0) {
            return Err(QueueingError::InvalidParameter {
                what: "think time must be finite and >= 0",
            });
        }
    }
    for kind in station_kinds {
        match kind {
            StationKind::Queueing { servers: 0 } => {
                return Err(QueueingError::InvalidParameter {
                    what: "station must have at least one server",
                });
            }
            StationKind::LoadDependent { .. } => {
                return Err(QueueingError::InvalidParameter {
                    what: "exact multiclass MVA does not support load-dependent stations",
                });
            }
            _ => {}
        }
    }
    Ok(())
}

/// Seidmann-style split per (class, station) into flat `C×K` buffers
/// (`c * K + k`): queueing part `D/C` and delay part `D·(C−1)/C`; delay
/// stations are all delay part.
pub(crate) fn split_demands(
    classes: &[ClassSpec],
    station_kinds: &[StationKind],
) -> (Vec<f64>, Vec<f64>) {
    let k_count = station_kinds.len();
    let mut dq = vec![0.0f64; classes.len() * k_count];
    let mut dd = vec![0.0f64; classes.len() * k_count];
    for (ci, c) in classes.iter().enumerate() {
        for (k, kind) in station_kinds.iter().enumerate() {
            match kind {
                StationKind::Delay => dd[ci * k_count + k] = c.demands[k],
                StationKind::Queueing { servers } => {
                    let cc = *servers as f64;
                    dq[ci * k_count + k] = c.demands[k] / cc;
                    dd[ci * k_count + k] = c.demands[k] * (cc - 1.0) / cc;
                }
                // Rejected by `validate_classes`.
                StationKind::LoadDependent { .. } => unreachable!(),
            }
        }
    }
    (dq, dd)
}

/// Per-class lattice dimensions `N_c + 1`.
pub(crate) fn lattice_dims(classes: &[ClassSpec]) -> Vec<usize> {
    classes.iter().map(|c| c.population + 1).collect()
}

/// Total lattice points, refused above `MAX_LATTICE / weight` (`weight`
/// counts the floats each face stores per lattice point).
pub(crate) fn lattice_size(dims: &[usize], weight: usize) -> Result<usize, QueueingError> {
    let cap = MAX_LATTICE / weight.max(1);
    dims.iter()
        .try_fold(1usize, |acc, &d| acc.checked_mul(d).filter(|&v| v <= cap))
        .ok_or(QueueingError::InvalidParameter {
            what: "population lattice too large for exact multiclass analysis",
        })
}

/// Mixed-radix strides for lexicographic lattice indexing (class 0 fastest).
pub(crate) fn lattice_strides(dims: &[usize]) -> Vec<usize> {
    let mut s = vec![1usize; dims.len()];
    for i in 1..dims.len() {
        s[i] = s[i - 1] * dims[i - 1];
    }
    s
}

/// A closed multiclass model: shared stations plus a set of customer
/// classes. This is the model every multiclass backend is constructed
/// from, and the single-class [`ClosedNetwork`] embeds into it via
/// [`Workload::single_class`] without changing a bit of the recursion.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    names: Arc<[String]>,
    kinds: Vec<StationKind>,
    classes: Vec<ClassSpec>,
}

impl Workload {
    /// Builds a workload from station names/kinds (shared by all classes)
    /// and per-class populations/think times/demands.
    pub fn new(
        station_names: Vec<String>,
        station_kinds: Vec<StationKind>,
        classes: Vec<ClassSpec>,
    ) -> Result<Self, QueueingError> {
        if station_names.len() != station_kinds.len() {
            return Err(QueueingError::InvalidParameter {
                what: "need one station name per station kind",
            });
        }
        validate_classes(&classes, &station_kinds)?;
        Ok(Self {
            names: station_names.into(),
            kinds: station_kinds,
            classes,
        })
    }

    /// Builds a workload on an existing network's stations; each class
    /// brings its own demand vector (the network's per-station demands are
    /// ignored, its station kinds and order are kept).
    pub fn from_network(
        net: &ClosedNetwork,
        classes: Vec<ClassSpec>,
    ) -> Result<Self, QueueingError> {
        let names = net.stations().iter().map(|s| s.name.clone()).collect();
        let kinds = net.stations().iter().map(|s| s.kind.clone()).collect();
        Self::new(names, kinds, classes)
    }

    /// The 1-class embedding of a single-class network: one class named
    /// `"all"` carrying the network's demands and think time.
    pub fn single_class(net: &ClosedNetwork, population: usize) -> Result<Self, QueueingError> {
        let demands = net.stations().iter().map(|s| s.demand()).collect();
        Self::from_network(
            net,
            vec![ClassSpec {
                name: "all".to_string(),
                population,
                think_time: net.think_time(),
                demands,
            }],
        )
    }

    /// Station names, in declaration order.
    pub fn station_names(&self) -> &[String] {
        &self.names
    }

    /// Station names as a shared handle.
    pub fn shared_names(&self) -> Arc<[String]> {
        self.names.clone()
    }

    /// Station kinds, in declaration order.
    pub fn station_kinds(&self) -> &[StationKind] {
        &self.kinds
    }

    /// The customer classes.
    pub fn classes(&self) -> &[ClassSpec] {
        &self.classes
    }

    /// Number of classes `C`.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Number of stations `K`.
    pub fn station_count(&self) -> usize {
        self.kinds.len()
    }

    /// Index of the class with the given name.
    pub fn class_index(&self, name: &str) -> Option<usize> {
        self.classes.iter().position(|c| c.name == name)
    }

    /// Target population per class, `N_c`.
    pub fn populations(&self) -> Vec<usize> {
        self.classes.iter().map(|c| c.population).collect()
    }

    /// Total population `Σ_c N_c` — the number of steps a full streaming
    /// walk takes.
    pub fn total_population(&self) -> usize {
        self.classes.iter().map(|c| c.population).sum()
    }

    /// The population path the streaming faces walk: one class index per
    /// step, total `Σ N_c` steps, chosen by largest-remainder proportional
    /// interleaving so every prefix of the path holds the class mix as
    /// close to the target ratio as integer populations allow. Ties break
    /// toward the lowest class index, so the path is deterministic.
    pub fn proportional_path(&self) -> Vec<usize> {
        let total = self.total_population();
        let mut taken = vec![0usize; self.classes.len()];
        let mut path = Vec::with_capacity(total);
        for t in 1..=total {
            let mut best = usize::MAX;
            let mut best_score = i128::MIN;
            for (c, class) in self.classes.iter().enumerate() {
                if taken[c] >= class.population {
                    continue;
                }
                // Deficit of class c if it does NOT receive customer t:
                // target share N_c·t/T minus what it already holds.
                let score = (class.population * t) as i128 - (taken[c] * total) as i128;
                if score > best_score {
                    best_score = score;
                    best = c;
                }
            }
            debug_assert!(best < self.classes.len(), "path shorter than total");
            taken[best] += 1;
            path.push(best);
        }
        path
    }

    /// Structural fingerprint words for sweep grouping: two workloads with
    /// equal words run the same recursion (same stations, kinds, class
    /// populations, think times, and demand bits).
    pub fn fingerprint_words(&self) -> Vec<u64> {
        let mut words = Vec::with_capacity(
            2 + 2 * self.kinds.len() + self.classes.len() * (2 + self.kinds.len()),
        );
        words.push(self.classes.len() as u64);
        words.push(self.kinds.len() as u64);
        for kind in &self.kinds {
            match kind {
                StationKind::Queueing { servers } => {
                    words.push(1);
                    words.push(*servers as u64);
                }
                StationKind::Delay => {
                    words.push(2);
                    words.push(0);
                }
                StationKind::LoadDependent { rates } => {
                    words.push(3);
                    words.push(rates.len() as u64);
                }
            }
        }
        for class in &self.classes {
            words.push(class.population as u64);
            words.push(class.think_time.to_bits());
            for d in &class.demands {
                words.push(d.to_bits());
            }
        }
        words
    }
}

/// Per-class metrics at one population-path step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassPoint {
    /// Customers of this class currently in the model, `n_c`.
    pub population: usize,
    /// Class throughput `X_c` (0 while the class has no customers).
    pub throughput: f64,
    /// Class response time `R_c` (seconds, excluding think time).
    pub response: f64,
    /// Class cycle time `R_c + Z_c` (0 while the class has no customers).
    pub cycle_time: f64,
}

/// The class-aware face of one streamed population step: everything the
/// aggregate [`MvaPoint`] reports, broken down per class.
#[derive(Debug, Clone, PartialEq)]
pub struct MulticlassPoint {
    /// Path step (1-based) — equals the total population `Σ_c n_c`.
    pub step: usize,
    /// Current population per class.
    pub populations: Vec<usize>,
    /// Per-class throughput/response/cycle time.
    pub classes: Vec<ClassPoint>,
    /// Mean total queue length per station (all classes).
    pub station_queues: Vec<f64>,
    /// Per-class per-station mean queue lengths, flat `c * K + k`.
    pub class_station_queues: Vec<f64>,
    /// Per-station total utilization (per-server for queueing stations).
    pub station_utilizations: Vec<f64>,
}

impl MulticlassPoint {
    /// Aggregate throughput `Σ_c X_c`.
    pub fn total_throughput(&self) -> f64 {
        self.classes.iter().map(|c| c.throughput).sum()
    }

    /// Mean queue length of class `c` at station `k`.
    pub fn class_queue(&self, c: usize, k: usize) -> f64 {
        self.class_station_queues[c * self.station_queues.len() + k]
    }

    /// Whether `condition` is met *for one class* at this point. Response
    /// and throughput conditions read the class' own metrics;
    /// `TargetPopulation` counts the class' customers; bottleneck
    /// saturation reads the shared station utilizations (a saturated
    /// resource is saturated for every class).
    pub fn class_meets(
        &self,
        condition: &StopCondition,
        class: usize,
        prev: Option<&MulticlassPoint>,
    ) -> bool {
        let Some(cp) = self.classes.get(class) else {
            return false;
        };
        match *condition {
            StopCondition::TargetPopulation(n) => cp.population >= n,
            StopCondition::BottleneckSaturation { utilization } => {
                self.station_utilizations.iter().any(|u| *u >= utilization)
            }
            StopCondition::SlaResponseTime { max_response } => {
                cp.population > 0 && cp.response > max_response
            }
            StopCondition::ThroughputPlateau { epsilon } => {
                match prev.and_then(|p| p.classes.get(class)) {
                    Some(pp) if pp.throughput > 0.0 => {
                        (cp.throughput - pp.throughput) / pp.throughput <= epsilon
                    }
                    _ => false,
                }
            }
        }
    }
}

/// A streaming multiclass solver face: yields one [`MulticlassPoint`] per
/// population-path step. Implemented by both exact backends so per-class
/// early-exit sweeps ([`run_until_classes`]) are backend-agnostic.
pub trait MulticlassStepper {
    /// Steps the underlying recursion one customer along the path and
    /// yields the class-aware point.
    fn step_classes(&mut self) -> Result<MulticlassPoint, QueueingError>;

    /// Path steps already taken.
    fn steps_done(&self) -> usize;

    /// Total path length `Σ_c N_c`.
    fn steps_total(&self) -> usize;
}

/// Why a [`run_until_classes`] sweep stopped.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ClassStopReason {
    /// This (class, condition) pair fired first.
    Met {
        /// Index of the class whose condition fired.
        class: usize,
        /// The fired condition.
        condition: StopCondition,
    },
    /// The population path was fully walked (or the step cap hit) without
    /// any condition firing.
    PathExhausted,
}

/// The output of a [`run_until_classes`] sweep.
#[derive(Debug, Clone)]
pub struct ClassRunOutcome {
    /// The class-aware points yielded by this run, ascending along the
    /// path; the last one triggered `reason` unless the path ran out.
    pub points: Vec<MulticlassPoint>,
    /// What stopped the sweep.
    pub reason: ClassStopReason,
    /// Path steps actually executed.
    pub steps: usize,
}

/// Steps a multiclass iterator until any per-class stop condition fires or
/// the population path is exhausted (optionally bounded by `step_cap`
/// total customers). Conditions are checked after every yielded point in
/// slice order; the first match wins — the multiclass analogue of
/// [`super::run_until`].
pub fn run_until_classes<S: MulticlassStepper + ?Sized>(
    iter: &mut S,
    conditions: &[(usize, StopCondition)],
    step_cap: usize,
) -> Result<ClassRunOutcome, QueueingError> {
    let _span = obsv::span_with("run_until_classes", || format!("cap={step_cap}"));
    let cap = step_cap.min(iter.steps_total());
    let mut points: Vec<MulticlassPoint> = Vec::new();
    let reason = loop {
        if iter.steps_done() >= cap {
            break ClassStopReason::PathExhausted;
        }
        let point = iter.step_classes()?;
        let met = conditions
            .iter()
            .find(|(class, c)| point.class_meets(c, *class, points.last()))
            .copied();
        points.push(point);
        if let Some((class, condition)) = met {
            break ClassStopReason::Met { class, condition };
        }
    };
    let steps = points.len();
    if obsv::enabled() {
        obsv::counter("run_until.calls", 1);
        obsv::counter("run_until.steps", steps as u64);
        obsv::counter(
            "run_until.steps_saved",
            cap.saturating_sub(iter.steps_done()) as u64,
        );
        let metric = match reason {
            ClassStopReason::Met { condition, .. } => StopReason::Met(condition).metric_name(),
            ClassStopReason::PathExhausted => StopReason::PopulationCap.metric_name(),
        };
        obsv::counter(metric, 1);
    }
    Ok(ClassRunOutcome {
        points,
        reason,
        steps,
    })
}

/// Borrowed per-step outputs a backend hands to the point assemblers. All
/// slices are class-major (`c * K + k`) where two-dimensional.
pub(crate) struct StepOutputs<'a> {
    /// Current per-class populations.
    pub populations: &'a [usize],
    /// Per-class throughputs `X_c` (0 for empty classes).
    pub xs: &'a [f64],
    /// Per-class responses `R_c` (0 for empty classes).
    pub rs: &'a [f64],
    /// Per-class per-station residences (rows of empty classes unused).
    pub res: &'a [f64],
    /// Total queue length per station.
    pub queues: &'a [f64],
    /// Per-class per-station queue lengths.
    pub class_queues: &'a [f64],
    /// Total utilization per station.
    pub utilizations: &'a [f64],
    /// Per-class think times `Z_c`.
    pub think: &'a [f64],
}

/// Assembles the aggregate [`MvaPoint`] for step `n` (total population).
///
/// The single-class case bypasses the throughput weighting so its output
/// is bit-for-bit the arithmetic of the single-class recursion:
/// `(X·R)/X` round-trips are not bitwise identities, so a 1-class
/// workload reports `R_0` directly rather than `X_0·R_0/X_0`.
pub(crate) fn aggregate_mva_point(out: &StepOutputs<'_>, n: usize) -> MvaPoint {
    let k_count = out.queues.len();
    let single = out.xs.len() == 1;
    let x_total: f64 = out.xs.iter().sum();
    let (response, z_eff) = if single {
        (
            out.rs.first().copied().unwrap_or(0.0),
            out.think.first().copied().unwrap_or(0.0),
        )
    } else {
        let wr: f64 = out.xs.iter().zip(out.rs).map(|(x, r)| x * r).sum();
        let wz: f64 = out.xs.iter().zip(out.think).map(|(x, z)| x * z).sum();
        (wr / x_total, wz / x_total)
    };
    let stations = (0..k_count)
        .map(|k| StationPoint {
            queue: out.queues[k],
            residence: if single {
                out.res[k]
            } else {
                out.queues[k] / x_total
            },
            utilization: out.utilizations[k],
        })
        .collect();
    MvaPoint {
        n,
        throughput: x_total,
        response,
        cycle_time: response + z_eff,
        stations,
    }
}

/// Assembles the class-aware [`MulticlassPoint`] for step `step`.
pub(crate) fn assemble_class_point(out: &StepOutputs<'_>, step: usize) -> MulticlassPoint {
    let classes = out
        .populations
        .iter()
        .zip(out.xs.iter().zip(out.rs.iter().zip(out.think)))
        .map(|(&population, (&x, (&r, &z)))| ClassPoint {
            population,
            throughput: x,
            response: r,
            cycle_time: if population > 0 { r + z } else { 0.0 },
        })
        .collect();
    MulticlassPoint {
        step,
        populations: out.populations.to_vec(),
        classes,
        station_queues: out.queues.to_vec(),
        class_station_queues: out.class_queues.to_vec(),
        station_utilizations: out.utilizations.to_vec(),
    }
}

/// Packs the final streamed point into the batch [`MulticlassSolution`]
/// shape (the [`multiclass_mva`] output contract).
pub(crate) fn solution_from_point(
    workload: &Workload,
    point: &MulticlassPoint,
) -> MulticlassSolution {
    MulticlassSolution {
        classes: workload
            .classes()
            .iter()
            .zip(&point.classes)
            .map(|(spec, cp)| ClassMetrics {
                name: spec.name.clone(),
                throughput: cp.throughput,
                response: cp.response,
            })
            .collect(),
        station_queues: point.station_queues.clone(),
        station_utilizations: point.station_utilizations.clone(),
    }
}

/// The all-zero-population degenerate solution.
pub(crate) fn empty_solution(workload: &Workload) -> MulticlassSolution {
    MulticlassSolution {
        classes: workload
            .classes()
            .iter()
            .map(|spec| ClassMetrics {
                name: spec.name.clone(),
                throughput: 0.0,
                response: 0.0,
            })
            .collect(),
        station_queues: vec![0.0; workload.station_count()],
        station_utilizations: vec![0.0; workload.station_count()],
    }
}

/// The streaming exact multiclass recursion: a [`SolverIter`] whose carried
/// state is a [`MulticlassWorkspace`] and whose population steps walk the
/// workload's proportional path through the class lattice.
///
/// Both faces advance the same recursion: [`SolverIter::step`] yields the
/// aggregate [`MvaPoint`] (total throughput, throughput-weighted response),
/// [`MulticlassStepper::step_classes`] yields the per-class breakdown.
/// Mixing them is fine — each call advances exactly one path step.
#[derive(Debug, Clone)]
pub struct MulticlassIter {
    workload: Workload,
    ws: MulticlassWorkspace,
    path: Arc<[usize]>,
    step_idx: usize,
}

impl MulticlassIter {
    /// Starts a fresh walk at the empty population.
    pub fn new(workload: &Workload) -> Result<Self, QueueingError> {
        let ws = MulticlassWorkspace::new(workload)?;
        let path: Arc<[usize]> = workload.proportional_path().into();
        Ok(Self {
            workload: workload.clone(),
            ws,
            path,
            step_idx: 0,
        })
    }

    /// The population path being walked (one class index per step).
    pub fn path(&self) -> &[usize] {
        &self.path
    }

    /// Current per-class populations.
    pub fn populations(&self) -> &[usize] {
        self.ws.populations()
    }

    /// The workload this iterator solves.
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    fn advance_one(&mut self) -> Result<(), QueueingError> {
        let _span = obsv::span("multiclass.step");
        let class = *self
            .path
            .get(self.step_idx)
            .ok_or(QueueingError::InvalidParameter {
                what: "population path exhausted: all class targets reached",
            })?;
        self.ws.advance(class)?;
        self.step_idx += 1;
        obsv::counter("solver.steps", 1);
        obsv::counter("multiclass.steps", 1);
        Ok(())
    }

    fn outputs(&self) -> StepOutputs<'_> {
        self.ws.step_outputs()
    }
}

impl MulticlassStepper for MulticlassIter {
    fn step_classes(&mut self) -> Result<MulticlassPoint, QueueingError> {
        self.advance_one()?;
        Ok(assemble_class_point(&self.outputs(), self.step_idx))
    }

    fn steps_done(&self) -> usize {
        self.step_idx
    }

    fn steps_total(&self) -> usize {
        self.path.len()
    }
}

impl SolverIter for MulticlassIter {
    fn station_names(&self) -> &[String] {
        self.workload.station_names()
    }

    fn shared_names(&self) -> Arc<[String]> {
        self.workload.shared_names()
    }

    fn population(&self) -> usize {
        self.step_idx
    }

    fn step(&mut self) -> Result<MvaPoint, QueueingError> {
        self.advance_one()?;
        Ok(aggregate_mva_point(&self.outputs(), self.step_idx))
    }

    fn boxed_clone(&self) -> Box<dyn SolverIter> {
        Box::new(self.clone())
    }
}

/// Exact multiclass MVA behind the unified [`ClosedSolver`] interface
/// (`"multiclass-mva"`): the carried-workspace streaming recursion.
///
/// `solve(n_max)` walks at most `n_max` customers along the proportional
/// path; `n_max` beyond the workload's total population is an error (the
/// lattice has no points there).
#[derive(Debug, Clone)]
pub struct MulticlassMvaSolver {
    workload: Workload,
}

impl MulticlassMvaSolver {
    /// Binds the solver to a workload.
    pub fn new(workload: Workload) -> Self {
        Self { workload }
    }

    /// Starts the class-aware streaming face.
    pub fn start_classes(&self) -> Result<MulticlassIter, QueueingError> {
        MulticlassIter::new(&self.workload)
    }

    /// Solves at the full population vector, returning the batch
    /// [`MulticlassSolution`] shape (the [`multiclass_mva`] contract).
    pub fn solve_classes(&self) -> Result<MulticlassSolution, QueueingError> {
        let mut iter = self.start_classes()?;
        let mut last: Option<MulticlassPoint> = None;
        while iter.steps_done() < iter.steps_total() {
            last = Some(iter.step_classes()?);
        }
        Ok(match last {
            Some(p) => solution_from_point(&self.workload, &p),
            None => empty_solution(&self.workload),
        })
    }
}

impl ClosedSolver for MulticlassMvaSolver {
    fn name(&self) -> &str {
        "multiclass-mva"
    }

    fn start(&self) -> Result<Box<dyn SolverIter>, QueueingError> {
        Ok(Box::new(MulticlassIter::new(&self.workload)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Station;

    fn two_class_workload() -> Workload {
        Workload::new(
            vec!["cpu".into(), "disk".into()],
            vec![
                StationKind::Queueing { servers: 1 },
                StationKind::Queueing { servers: 1 },
            ],
            vec![
                ClassSpec {
                    name: "a".into(),
                    population: 6,
                    think_time: 1.0,
                    demands: vec![0.02, 0.01],
                },
                ClassSpec {
                    name: "b".into(),
                    population: 3,
                    think_time: 0.5,
                    demands: vec![0.005, 0.03],
                },
            ],
        )
        .expect("valid workload")
    }

    #[test]
    fn proportional_path_interleaves_by_largest_remainder() {
        let w = two_class_workload();
        let path = w.proportional_path();
        assert_eq!(path.len(), 9);
        assert_eq!(path.iter().filter(|&&c| c == 0).count(), 6);
        assert_eq!(path.iter().filter(|&&c| c == 1).count(), 3);
        // Every prefix holds the 2:1 mix within one customer.
        let mut taken = [0i64; 2];
        for (t, &c) in path.iter().enumerate() {
            taken[c] += 1;
            let t = (t + 1) as f64;
            assert!((taken[0] as f64 - t * 6.0 / 9.0).abs() <= 1.0);
        }
    }

    #[test]
    fn streamed_corner_matches_scratch_oracle_bitwise() {
        let w = two_class_workload();
        let oracle = multiclass_mva(w.classes(), w.station_kinds()).expect("oracle");
        let sol = MulticlassMvaSolver::new(w).solve_classes().expect("stream");
        for (a, b) in oracle.classes.iter().zip(&sol.classes) {
            assert_eq!(a.throughput.to_bits(), b.throughput.to_bits());
            assert_eq!(a.response.to_bits(), b.response.to_bits());
        }
        for (a, b) in oracle.station_queues.iter().zip(&sol.station_queues) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in oracle
            .station_utilizations
            .iter()
            .zip(&sol.station_utilizations)
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn every_path_prefix_matches_a_fresh_scratch_solve() {
        let w = two_class_workload();
        let mut iter = MulticlassIter::new(&w).expect("iter");
        let mut pops = vec![0usize; 2];
        for t in 0..w.total_population() {
            let class = iter.path()[t];
            pops[class] += 1;
            let point = iter.step_classes().expect("step");
            let partial: Vec<ClassSpec> = w
                .classes()
                .iter()
                .zip(&pops)
                .map(|(c, &p)| ClassSpec {
                    population: p,
                    ..c.clone()
                })
                .collect();
            let oracle = multiclass_mva(&partial, w.station_kinds()).expect("oracle");
            for (cp, om) in point.classes.iter().zip(&oracle.classes) {
                assert_eq!(cp.throughput.to_bits(), om.throughput.to_bits(), "t={t}");
                assert_eq!(cp.response.to_bits(), om.response.to_bits(), "t={t}");
            }
            for (a, b) in point.station_queues.iter().zip(&oracle.station_queues) {
                assert_eq!(a.to_bits(), b.to_bits(), "t={t}");
            }
        }
    }

    #[test]
    fn aggregate_face_satisfies_littles_law() {
        let w = two_class_workload();
        let mut iter = MulticlassIter::new(&w).expect("iter");
        let mut prev_x = 0.0;
        for _ in 0..w.total_population() {
            let p = iter.step().expect("step");
            // N = X·(R + Z_eff) by construction of the weighted response.
            assert!((p.n as f64 - p.throughput * p.cycle_time).abs() < 1e-9);
            assert!(p.throughput >= prev_x - 1e-12);
            prev_x = p.throughput;
        }
    }

    #[test]
    fn stepping_past_the_path_errors() {
        let w = two_class_workload();
        let mut iter = MulticlassIter::new(&w).expect("iter");
        for _ in 0..w.total_population() {
            iter.step().expect("in path");
        }
        assert!(iter.step().is_err());
    }

    #[test]
    fn per_class_early_exit_stops_on_the_sla_class() {
        let w = two_class_workload();
        let mut iter = MulticlassIter::new(&w).expect("iter");
        // Class b is disk-heavy; stop when its response crosses a tight
        // ceiling while class a would still be fine.
        let out = run_until_classes(
            &mut iter,
            &[(1, StopCondition::SlaResponseTime { max_response: 0.04 })],
            usize::MAX,
        )
        .expect("run");
        match out.reason {
            ClassStopReason::Met { class, .. } => assert_eq!(class, 1),
            ClassStopReason::PathExhausted => {
                panic!("expected the disk-heavy class to trip the SLA")
            }
        }
        assert!(out.steps < w.total_population());
        let last = out.points.last().expect("at least one step");
        assert!(last.classes[1].response > 0.04);
    }

    #[test]
    fn single_class_workload_from_network() {
        let net = crate::network::ClosedNetwork::new(
            vec![
                Station::queueing("cpu", 1, 1.0, 0.005),
                Station::delay("lan", 1.0, 0.002),
            ],
            1.0,
        )
        .expect("net");
        let w = Workload::single_class(&net, 30).expect("workload");
        assert_eq!(w.class_count(), 1);
        assert_eq!(w.total_population(), 30);
        assert_eq!(w.proportional_path(), vec![0; 30]);
    }

    #[test]
    fn fingerprint_words_separate_distinct_mixes() {
        let a = two_class_workload();
        let mut b = two_class_workload();
        assert_eq!(a.fingerprint_words(), b.fingerprint_words());
        b.classes[1].demands[0] *= 1.5;
        assert_ne!(a.fingerprint_words(), b.fingerprint_words());
    }

    #[test]
    fn rejects_mismatched_station_names() {
        let err = Workload::new(
            vec!["a".into()],
            vec![
                StationKind::Queueing { servers: 1 },
                StationKind::Queueing { servers: 1 },
            ],
            vec![ClassSpec {
                name: "c".into(),
                population: 1,
                think_time: 0.0,
                demands: vec![0.1, 0.1],
            }],
        );
        assert!(err.is_err());
    }
}
